//! RSASSA-PKCS1-v1_5 with SHA-256 (RFC 8017 §8.2 / §9.2).
//!
//! This is the exact signature scheme the ADLP prototype uses
//! (`sign_x(h(seq ‖ D))` with RSA-1024 → 128-byte signatures).

use crate::bignum::BigUint;
use crate::rsa::{RsaPrivateKey, RsaPublicKey};
use crate::sha256::{Digest, DIGEST_LEN};
use crate::CryptoError;
use std::fmt;

/// ASN.1 DER `DigestInfo` prefix for SHA-256 (RFC 8017 §9.2 note 1).
const SHA256_DIGEST_INFO_PREFIX: [u8; 19] = [
    0x30, 0x31, 0x30, 0x0d, 0x06, 0x09, 0x60, 0x86, 0x48, 0x01, 0x65, 0x03, 0x04, 0x02, 0x01,
    0x05, 0x00, 0x04, 0x20,
];

/// A detached RSASSA-PKCS1-v1_5 signature.
///
/// The byte length always equals the signer's modulus length (128 bytes for
/// the paper's RSA-1024), which is what makes ADLP's message and log-entry
/// size overheads constant per entry.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Signature(Vec<u8>);

impl Signature {
    /// Wraps raw signature bytes (e.g. read from a log).
    pub fn from_bytes(bytes: Vec<u8>) -> Self {
        Signature(bytes)
    }

    /// Borrows the raw bytes.
    pub fn as_bytes(&self) -> &[u8] {
        &self.0
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether the signature is empty (never true for real signatures).
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Consumes self, returning the raw bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.0
    }
}

impl fmt::Debug for Signature {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Signature({} bytes, {}…)",
            self.0.len(),
            crate::hex::encode(self.0.get(..self.0.len().min(8)).unwrap_or(&[]))
        )
    }
}

impl AsRef<[u8]> for Signature {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

/// EMSA-PKCS1-v1_5 encoding of a SHA-256 digest into `em_len` bytes:
/// `0x00 0x01 PS 0x00 DigestInfo` with `PS` = `0xff` padding.
///
/// # Errors
///
/// Returns [`CryptoError::KeyTooSmall`] when `em_len` cannot fit the
/// encoding with the mandatory 8 padding bytes.
pub fn emsa_pkcs1_v15_encode(digest: &Digest, em_len: usize) -> Result<Vec<u8>, CryptoError> {
    let t_len = SHA256_DIGEST_INFO_PREFIX.len() + DIGEST_LEN;
    if em_len < t_len + 11 {
        return Err(CryptoError::KeyTooSmall);
    }
    let mut em = Vec::with_capacity(em_len);
    em.push(0x00);
    em.push(0x01);
    em.resize(em_len - t_len - 1, 0xff);
    em.push(0x00);
    em.extend_from_slice(&SHA256_DIGEST_INFO_PREFIX);
    em.extend_from_slice(digest.as_bytes());
    debug_assert_eq!(em.len(), em_len);
    Ok(em)
}

/// Signs a precomputed SHA-256 digest.
///
/// # Errors
///
/// Returns [`CryptoError::KeyTooSmall`] for moduli under 62 bytes.
///
/// ```
/// use adlp_crypto::{pkcs1, rsa::RsaKeyPair, sha256::sha256};
/// use rand::SeedableRng;
///
/// # fn main() -> Result<(), adlp_crypto::CryptoError> {
/// let mut rng = rand::rngs::StdRng::seed_from_u64(5);
/// let keys = RsaKeyPair::generate(512, &mut rng);
/// let sig = pkcs1::sign_digest(keys.private_key(), &sha256(b"msg"))?;
/// assert_eq!(sig.len(), 64);
/// # Ok(())
/// # }
/// ```
pub fn sign_digest(key: &RsaPrivateKey, digest: &Digest) -> Result<Signature, CryptoError> {
    let k = key.public_key().modulus_len();
    let em = emsa_pkcs1_v15_encode(digest, k)?;
    let m = BigUint::from_bytes_be(&em);
    let s = key.raw_sign(&m)?;
    Ok(Signature(s.to_bytes_be_padded(k)?))
}

/// Signs a message by hashing it first.
///
/// # Errors
///
/// Propagates [`sign_digest`] errors.
pub fn sign(key: &RsaPrivateKey, message: &[u8]) -> Result<Signature, CryptoError> {
    sign_digest(key, &crate::sha256::sha256(message))
}

/// Verifies a signature over a precomputed digest. Returns `false` for any
/// failure (wrong key, wrong digest, malformed signature) — never panics.
pub fn verify_digest(key: &RsaPublicKey, digest: &Digest, signature: &Signature) -> bool {
    let k = key.modulus_len();
    if signature.len() != k {
        return false;
    }
    let s = BigUint::from_bytes_be(signature.as_bytes());
    let Ok(m) = key.raw_verify(&s) else {
        return false;
    };
    let Ok(em) = m.to_bytes_be_padded(k) else {
        return false;
    };
    match emsa_pkcs1_v15_encode(digest, k) {
        Ok(expected) => crate::ct::constant_time_eq(&em, &expected),
        Err(_) => false,
    }
}

/// Verifies a signature over a message.
pub fn verify(key: &RsaPublicKey, message: &[u8], signature: &Signature) -> bool {
    verify_digest(key, &crate::sha256::sha256(message), signature)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rsa::RsaKeyPair;
    use crate::sha256::sha256;
    use rand::SeedableRng;

    fn keys() -> RsaKeyPair {
        let mut rng = rand::rngs::StdRng::seed_from_u64(2024);
        RsaKeyPair::generate(512, &mut rng)
    }

    #[test]
    fn sign_verify_roundtrip() {
        let kp = keys();
        let sig = sign(kp.private_key(), b"lidar scan #17").unwrap();
        assert_eq!(sig.len(), 64);
        assert!(verify(kp.public_key(), b"lidar scan #17", &sig));
    }

    #[test]
    fn tampered_message_fails() {
        let kp = keys();
        let sig = sign(kp.private_key(), b"steering 0.10").unwrap();
        assert!(!verify(kp.public_key(), b"steering 0.11", &sig));
    }

    #[test]
    fn tampered_signature_fails() {
        let kp = keys();
        let sig = sign(kp.private_key(), b"msg").unwrap();
        let mut bytes = sig.into_bytes();
        bytes[10] ^= 0x01;
        assert!(!verify(kp.public_key(), b"msg", &Signature::from_bytes(bytes)));
    }

    #[test]
    fn wrong_key_fails() {
        let kp = keys();
        let mut rng = rand::rngs::StdRng::seed_from_u64(999);
        let other = RsaKeyPair::generate(512, &mut rng);
        let sig = sign(kp.private_key(), b"msg").unwrap();
        assert!(!verify(other.public_key(), b"msg", &sig));
    }

    #[test]
    fn wrong_length_signature_fails_cleanly() {
        let kp = keys();
        assert!(!verify(
            kp.public_key(),
            b"msg",
            &Signature::from_bytes(vec![0u8; 10])
        ));
        assert!(!verify(
            kp.public_key(),
            b"msg",
            &Signature::from_bytes(vec![])
        ));
        // All 0xff of the right length: numerically >= n, must fail cleanly.
        assert!(!verify(
            kp.public_key(),
            b"msg",
            &Signature::from_bytes(vec![0xff; 64])
        ));
    }

    #[test]
    fn em_encoding_structure() {
        let em = emsa_pkcs1_v15_encode(&sha256(b"x"), 128).unwrap();
        assert_eq!(em.len(), 128);
        assert_eq!(em[0], 0x00);
        assert_eq!(em[1], 0x01);
        let sep = em.iter().skip(2).position(|&b| b != 0xff).unwrap() + 2;
        assert_eq!(em[sep], 0x00);
        assert_eq!(&em[sep + 1..sep + 20], &SHA256_DIGEST_INFO_PREFIX);
    }

    #[test]
    fn key_too_small_for_encoding() {
        assert_eq!(
            emsa_pkcs1_v15_encode(&sha256(b"x"), 32),
            Err(CryptoError::KeyTooSmall)
        );
    }

    #[test]
    fn digest_reuse_matches_message_signing() {
        let kp = keys();
        let d = sha256(b"payload");
        let s1 = sign_digest(kp.private_key(), &d).unwrap();
        let s2 = sign(kp.private_key(), b"payload").unwrap();
        // PKCS#1 v1.5 is deterministic.
        assert_eq!(s1, s2);
        assert!(verify_digest(kp.public_key(), &d, &s1));
    }
}
