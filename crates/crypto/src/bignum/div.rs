//! Division: short division by a limb and Knuth Algorithm D for the general
//! case (TAOCP Vol. 2, §4.3.1).

use super::BigUint;
use crate::CryptoError;
use std::ops::Rem;

impl BigUint {
    /// Computes `(self / divisor, self % divisor)`.
    ///
    /// # Errors
    ///
    /// Returns [`CryptoError::DivisionByZero`] if `divisor` is zero.
    ///
    /// ```
    /// use adlp_crypto::BigUint;
    /// let a = BigUint::from_u64(1000);
    /// let (q, r) = a.div_rem(&BigUint::from_u64(7)).unwrap();
    /// assert_eq!(q, BigUint::from_u64(142));
    /// assert_eq!(r, BigUint::from_u64(6));
    /// ```
    pub fn div_rem(&self, divisor: &BigUint) -> Result<(BigUint, BigUint), CryptoError> {
        if divisor.is_zero() {
            return Err(CryptoError::DivisionByZero);
        }
        if self < divisor {
            return Ok((BigUint::zero(), self.clone()));
        }
        if let [d] = divisor.limbs.as_slice() {
            let (q, r) = self.div_rem_u64(*d);
            return Ok((q, BigUint::from_u64(r)));
        }
        Ok(knuth_d(self, divisor))
    }

    /// Computes `(self / d, self % d)` for a single non-zero limb.
    ///
    /// # Panics
    ///
    /// Panics if `d == 0`.
    pub fn div_rem_u64(&self, d: u64) -> (BigUint, u64) {
        assert!(d != 0, "division by zero");
        let mut quotient = vec![0u64; self.limbs.len()];
        let mut rem = 0u128;
        for (q, &limb) in quotient.iter_mut().rev().zip(self.limbs.iter().rev()) {
            let cur = (rem << 64) | u128::from(limb);
            *q = (cur / u128::from(d)) as u64;
            rem = cur % u128::from(d);
        }
        (BigUint::from_limbs(quotient), rem as u64)
    }

    /// `self mod m` (internal fast path). A zero modulus yields `self`
    /// unchanged — the `gcd(x, 0) = x` convention — so the operation is
    /// total; every arithmetic call site passes a nonzero modulus anyway
    /// (Montgomery contexts and modular inverses reject zero at
    /// construction).
    pub(crate) fn rem_internal(&self, m: &BigUint) -> BigUint {
        match self.div_rem(m) {
            Ok((_, r)) => r,
            Err(_) => self.clone(),
        }
    }
}

/// Knuth Algorithm D for multi-limb divisors (`v.limbs.len() ≥ 2`, both
/// operands normalized, `u ≥ v` — guaranteed by `div_rem`). Written with
/// slice patterns and zipped windows so no arithmetic step can panic on
/// out-of-range access.
fn knuth_d(u: &BigUint, v: &BigUint) -> (BigUint, BigUint) {
    let n = v.limbs.len();
    let m = u.limbs.len().saturating_sub(n);

    // D1: normalize so the divisor's top limb has its high bit set.
    let shift = v.limbs.last().map_or(0, |top| top.leading_zeros() as usize);
    let vn = (v << shift).limbs;
    let mut un = (u << shift).limbs;
    un.resize(u.limbs.len() + 1, 0); // extra high limb for the algorithm

    // Top two normalized divisor limbs; the multi-limb path guarantees
    // n ≥ 2, so the pattern always matches.
    let [.., v_next, v_top] = vn.as_slice() else {
        return (BigUint::zero(), u.clone());
    };
    let (v_top, v_next) = (u128::from(*v_top), u128::from(*v_next));

    // D2-D7: main loop over quotient digits, highest first.
    let mut q_rev = Vec::with_capacity(m + 1);
    for j in (0..=m).rev() {
        // The active dividend window un[j ..= j+n]: n+1 limbs, always in
        // range because un was resized to u.limbs.len()+1 ≥ j+n+1.
        let Some(win) = un.get_mut(j..=j + n) else {
            break;
        };
        // D3: estimate the quotient digit from the top two dividend limbs.
        // With a normalized divisor, clamping the estimate to b-1 leaves it
        // at most 2 above the true digit (Knuth Theorem B), so the
        // correction loop below runs at most twice.
        let [.., third, second, top] = &*win else {
            break; // n ≥ 2 ⇒ the window has ≥ 3 limbs
        };
        let num = (u128::from(*top) << 64) | u128::from(*second);
        let num_third = u128::from(*third);
        let mut qhat = num / v_top;
        let mut rhat = num % v_top;
        if qhat > u128::from(u64::MAX) {
            qhat = u128::from(u64::MAX);
            rhat = num - qhat * v_top;
        }
        while rhat <= u128::from(u64::MAX)
            && qhat * v_next > ((rhat << 64) | num_third)
        {
            qhat -= 1;
            rhat += v_top;
        }

        // D4: multiply-subtract qhat * v from the dividend window (the
        // zip covers the n low limbs; the window's top limb takes the
        // final carry/borrow).
        let mut borrow = 0i128;
        let mut carry = 0u128;
        for (ui, &vi) in win.iter_mut().zip(vn.iter()) {
            let p = qhat * u128::from(vi) + carry;
            carry = p >> 64;
            let t = i128::from(*ui) - i128::from(p as u64) - borrow;
            *ui = t as u64;
            borrow = i64::from(t < 0) as i128;
        }
        let mut t = 0i128;
        if let Some(top) = win.last_mut() {
            t = i128::from(*top) - i128::from(carry as u64) - borrow;
            *top = t as u64;
        }

        // D5-D6: if we overshot (rare), add the divisor back once.
        if t < 0 {
            qhat -= 1;
            let mut carry = 0u128;
            for (ui, &vi) in win.iter_mut().zip(vn.iter()) {
                let s = u128::from(*ui) + u128::from(vi) + carry;
                *ui = s as u64;
                carry = s >> 64;
            }
            if let Some(top) = win.last_mut() {
                *top = top.wrapping_add(carry as u64);
            }
        }
        q_rev.push(qhat as u64);
    }
    q_rev.reverse();

    // D8: denormalize the remainder (the low n limbs of un).
    un.truncate(n);
    let r = BigUint::from_limbs(un) >> shift;
    (BigUint::from_limbs(q_rev), r)
}

impl Rem<&BigUint> for &BigUint {
    type Output = BigUint;
    /// Total remainder: `x % 0` is `x` (the Euclidean `gcd(x, 0) = x`
    /// convention); use [`BigUint::div_rem`] to treat a zero divisor as an
    /// error instead.
    fn rem(self, rhs: &BigUint) -> BigUint {
        self.rem_internal(rhs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn division_by_zero_is_error() {
        let a = BigUint::from_u64(5);
        assert_eq!(a.div_rem(&BigUint::zero()), Err(CryptoError::DivisionByZero));
    }

    #[test]
    fn rem_by_zero_is_identity_not_panic() {
        let a = BigUint::from_u64(5);
        assert_eq!(&a % &BigUint::zero(), a);
        assert!(BigUint::zero().rem_internal(&BigUint::zero()).is_zero());
    }

    #[test]
    fn smaller_dividend() {
        let a = BigUint::from_u64(5);
        let b = BigUint::from_u64(9);
        let (q, r) = a.div_rem(&b).unwrap();
        assert!(q.is_zero());
        assert_eq!(r, a);
    }

    #[test]
    fn exact_division() {
        let b = BigUint::from_hex("deadbeefcafebabe1234567890").unwrap();
        let a = &b * &BigUint::from_u64(1_000_003);
        let (q, r) = a.div_rem(&b).unwrap();
        assert_eq!(q, BigUint::from_u64(1_000_003));
        assert!(r.is_zero());
    }

    #[test]
    fn single_limb_divisor() {
        let a = BigUint::from_hex("ffffffffffffffffffffffffffffffff").unwrap();
        let (q, r) = a.div_rem(&BigUint::from_u64(10)).unwrap();
        assert_eq!(&q.mul_u64(10) + &BigUint::from_u64(r.low_u64()), a);
    }

    #[test]
    fn knuth_d_identity_random() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(99);
        for i in 0..200 {
            let a_bits = 64 + (i * 13) % 1500;
            let b_bits = 65 + (i * 7) % (a_bits.max(66) - 1);
            let a = BigUint::random_bits(a_bits, &mut rng);
            let b = BigUint::random_bits(b_bits, &mut rng);
            let (q, r) = a.div_rem(&b).unwrap();
            assert!(r < b, "remainder must be < divisor");
            assert_eq!(&(&q * &b) + &r, a, "identity failed at iter {i}");
        }
    }

    #[test]
    fn knuth_d_qhat_estimate_overflow() {
        // Regression: when the top dividend limb equals the top divisor
        // limb, the initial digit estimate is ≥ 2^64 and must be clamped to
        // 2^64 - 1, not decremented one-by-one (hang) or used unclamped
        // (multiply overflow → wrong remainder → Euclid loops downstream).
        let v = BigUint::from_limbs(vec![0, 1u64 << 63]);
        for low in [0u64, 1, u64::MAX, 1 << 63] {
            let u = BigUint::from_limbs(vec![low, 1 << 63, 1 << 63]);
            let (q, r) = u.div_rem(&v).unwrap();
            assert!(r < v, "remainder out of range for low={low}");
            assert_eq!(&(&q * &v) + &r, u, "identity failed for low={low}");
        }
        // And a dense randomized sweep over this shape.
        use rand::{RngCore, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(7777);
        for _ in 0..500 {
            let top = (1u64 << 63) | (rng.next_u64() >> 1);
            let v = BigUint::from_limbs(vec![rng.next_u64(), top]);
            let u = BigUint::from_limbs(vec![rng.next_u64(), rng.next_u64(), top]);
            let (q, r) = u.div_rem(&v).unwrap();
            assert!(r < v);
            assert_eq!(&(&q * &v) + &r, u);
        }
    }

    #[test]
    fn knuth_d_addback_case() {
        // Classic add-back trigger: dividend just below a multiple of divisor
        // with maximal top limbs.
        let v = BigUint::from_limbs(vec![0, u64::MAX, u64::MAX >> 1 | 1 << 63]);
        let u = &(&v * &BigUint::from_limbs(vec![u64::MAX, u64::MAX])) + &BigUint::from_u64(5);
        let (q, r) = u.div_rem(&v).unwrap();
        assert_eq!(q, BigUint::from_limbs(vec![u64::MAX, u64::MAX]));
        assert_eq!(r, BigUint::from_u64(5));
    }
}
