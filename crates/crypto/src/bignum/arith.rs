//! Addition, subtraction and multiplication (schoolbook + Karatsuba).

use super::BigUint;
use std::ops::{Add, Mul, Shl, Shr, Sub};

/// Limb count above which multiplication switches to Karatsuba.
const KARATSUBA_THRESHOLD: usize = 32;

pub(crate) fn add_limbs(a: &[u64], b: &[u64]) -> Vec<u64> {
    let (longer, shorter) = if a.len() >= b.len() { (a, b) } else { (b, a) };
    let mut out = Vec::with_capacity(longer.len() + 1);
    let mut carry = 0u64;
    for (i, &limb) in longer.iter().enumerate() {
        let (mut sum, mut c) = limb.overflowing_add(carry);
        if let Some(&s) = shorter.get(i) {
            let (sum2, c2) = sum.overflowing_add(s);
            sum = sum2;
            c |= c2;
        }
        out.push(sum);
        carry = u64::from(c);
    }
    if carry != 0 {
        out.push(carry);
    }
    out
}

/// Subtracts `b` from `a` in place over limb slices. Returns the final borrow
/// (non-zero means `b > a`, leaving wrapped limbs behind).
pub(crate) fn sub_limbs_in_place(a: &mut [u64], b: &[u64]) -> u64 {
    debug_assert!(a.len() >= b.len());
    let mut borrow = 0u64;
    for (i, limb) in a.iter_mut().enumerate() {
        let (mut diff, mut br) = limb.overflowing_sub(borrow);
        if let Some(&s) = b.get(i) {
            let (diff2, br2) = diff.overflowing_sub(s);
            diff = diff2;
            br |= br2;
        } else if borrow == 0 {
            // Nothing left to subtract and no borrow: remaining limbs copy over.
            break;
        }
        *limb = diff;
        borrow = u64::from(br);
    }
    borrow
}

/// Schoolbook product of limb slices.
fn mul_schoolbook(a: &[u64], b: &[u64]) -> Vec<u64> {
    if a.is_empty() || b.is_empty() {
        return Vec::new();
    }
    let mut out = vec![0u64; a.len() + b.len()];
    for (i, &ai) in a.iter().enumerate() {
        if ai == 0 {
            continue;
        }
        // Row `i` of the product lands at limb offset `i`; `out` always has
        // `b.len() + 1` or more limbs past that point, so the zip below
        // consumes all of `b` and leaves room for the carry to settle.
        let (_, row) = out.split_at_mut(i);
        let mut slots = row.iter_mut();
        let mut carry = 0u128;
        for (&bj, slot) in b.iter().zip(&mut slots) {
            let t = u128::from(ai) * u128::from(bj) + u128::from(*slot) + carry;
            *slot = t as u64;
            carry = t >> 64;
        }
        for slot in slots {
            if carry == 0 {
                break;
            }
            let t = u128::from(*slot) + carry;
            *slot = t as u64;
            carry = t >> 64;
        }
    }
    out
}

/// Karatsuba product: splits at half the shorter length and recombines as
/// `z2·B² + (z1 − z2 − z0)·B + z0`.
fn mul_karatsuba(a: &[u64], b: &[u64]) -> Vec<u64> {
    let split = a.len().min(b.len()) / 2;
    if split < KARATSUBA_THRESHOLD / 2 {
        return mul_schoolbook(a, b);
    }
    let (a0, a1) = a.split_at(split);
    let (b0, b1) = b.split_at(split);

    let z0 = mul_karatsuba(a0, b0);
    let z2 = mul_karatsuba(a1, b1);
    let a01 = add_limbs(a0, a1);
    let b01 = add_limbs(b0, b1);
    let mut z1 = mul_karatsuba(&a01, &b01);
    // z1 -= z0 + z2 (never underflows).
    let borrow1 = sub_limbs_in_place(&mut z1, &z0);
    let borrow2 = sub_limbs_in_place(&mut z1, &z2);
    debug_assert_eq!(borrow1 | borrow2, 0, "karatsuba middle term underflow");

    let mut out = vec![0u64; a.len() + b.len()];
    add_into(&mut out, &z0, 0);
    add_into(&mut out, &z1, split);
    add_into(&mut out, &z2, 2 * split);
    out
}

/// `acc[offset..] += src` with carry propagation; `acc` must be long enough
/// for the sum (all callers size it to hold the full product).
fn add_into(acc: &mut [u64], src: &[u64], offset: usize) {
    let (_, dst) = acc.split_at_mut(offset);
    let mut slots = dst.iter_mut();
    let mut carry = 0u64;
    for (&s, slot) in src.iter().zip(&mut slots) {
        let (s1, c1) = slot.overflowing_add(s);
        let (s2, c2) = s1.overflowing_add(carry);
        *slot = s2;
        carry = u64::from(c1) + u64::from(c2);
    }
    for slot in slots {
        if carry == 0 {
            break;
        }
        let (s, c) = slot.overflowing_add(carry);
        *slot = s;
        carry = u64::from(c);
    }
    debug_assert_eq!(carry, 0, "add_into accumulator too short");
}

pub(crate) fn mul_limbs(a: &[u64], b: &[u64]) -> Vec<u64> {
    if a.len().min(b.len()) >= KARATSUBA_THRESHOLD {
        mul_karatsuba(a, b)
    } else {
        mul_schoolbook(a, b)
    }
}

impl BigUint {
    /// Checked subtraction; `None` when `other > self`.
    ///
    /// ```
    /// use adlp_crypto::BigUint;
    /// let five = BigUint::from_u64(5);
    /// let seven = BigUint::from_u64(7);
    /// assert_eq!(seven.checked_sub(&five), Some(BigUint::from_u64(2)));
    /// assert_eq!(five.checked_sub(&seven), None);
    /// ```
    pub fn checked_sub(&self, other: &BigUint) -> Option<BigUint> {
        if self < other {
            return None;
        }
        let mut limbs = self.limbs.clone();
        let borrow = sub_limbs_in_place(&mut limbs, &other.limbs);
        debug_assert_eq!(borrow, 0);
        Some(BigUint::from_limbs(limbs))
    }

    /// Multiplies by a single limb.
    pub fn mul_u64(&self, rhs: u64) -> BigUint {
        if rhs == 0 || self.is_zero() {
            return BigUint::zero();
        }
        let mut out = Vec::with_capacity(self.limbs.len() + 1);
        let mut carry = 0u128;
        for &l in &self.limbs {
            let t = u128::from(l) * u128::from(rhs) + carry;
            out.push(t as u64);
            carry = t >> 64;
        }
        if carry != 0 {
            out.push(carry as u64);
        }
        BigUint::from_limbs(out)
    }

    /// The square of this value (dispatches to the same kernels as `Mul`).
    pub fn square(&self) -> BigUint {
        BigUint::from_limbs(mul_limbs(&self.limbs, &self.limbs))
    }
}

impl Add<&BigUint> for &BigUint {
    type Output = BigUint;
    fn add(self, rhs: &BigUint) -> BigUint {
        BigUint::from_limbs(add_limbs(&self.limbs, &rhs.limbs))
    }
}

impl Add for BigUint {
    type Output = BigUint;
    fn add(self, rhs: BigUint) -> BigUint {
        &self + &rhs
    }
}

impl Add<&BigUint> for BigUint {
    type Output = BigUint;
    fn add(self, rhs: &BigUint) -> BigUint {
        &self + rhs
    }
}

impl Add<u64> for &BigUint {
    type Output = BigUint;
    fn add(self, rhs: u64) -> BigUint {
        self + &BigUint::from_u64(rhs)
    }
}

impl Sub<&BigUint> for &BigUint {
    type Output = BigUint;
    /// # Panics
    ///
    /// Panics on underflow; use [`BigUint::checked_sub`] to handle it.
    fn sub(self, rhs: &BigUint) -> BigUint {
        // adlp-lint: allow(no-panic-paths) — the panic is the documented operator contract; checked_sub is the fallible form
        self.checked_sub(rhs).expect("BigUint subtraction underflow")
    }
}

impl Sub for BigUint {
    type Output = BigUint;
    fn sub(self, rhs: BigUint) -> BigUint {
        &self - &rhs
    }
}

impl Sub<&BigUint> for BigUint {
    type Output = BigUint;
    /// # Panics
    ///
    /// Panics on underflow; use [`BigUint::checked_sub`] to handle it.
    fn sub(self, rhs: &BigUint) -> BigUint {
        &self - rhs
    }
}

impl Mul<&BigUint> for &BigUint {
    type Output = BigUint;
    fn mul(self, rhs: &BigUint) -> BigUint {
        BigUint::from_limbs(mul_limbs(&self.limbs, &rhs.limbs))
    }
}

impl Mul for BigUint {
    type Output = BigUint;
    fn mul(self, rhs: BigUint) -> BigUint {
        &self * &rhs
    }
}

impl Mul<&BigUint> for BigUint {
    type Output = BigUint;
    fn mul(self, rhs: &BigUint) -> BigUint {
        &self * rhs
    }
}

impl Shl<usize> for BigUint {
    type Output = BigUint;
    fn shl(self, shift: usize) -> BigUint {
        &self << shift
    }
}

impl Shl<usize> for &BigUint {
    type Output = BigUint;
    fn shl(self, shift: usize) -> BigUint {
        if self.is_zero() {
            return BigUint::zero();
        }
        let (limb_shift, bit_shift) = (shift / 64, shift % 64);
        let mut out = vec![0u64; limb_shift];
        if bit_shift == 0 {
            out.extend_from_slice(&self.limbs);
        } else {
            let mut carry = 0u64;
            for &l in &self.limbs {
                out.push((l << bit_shift) | carry);
                carry = l >> (64 - bit_shift);
            }
            if carry != 0 {
                out.push(carry);
            }
        }
        BigUint::from_limbs(out)
    }
}

impl Shr<usize> for BigUint {
    type Output = BigUint;
    fn shr(self, shift: usize) -> BigUint {
        &self >> shift
    }
}

impl Shr<usize> for &BigUint {
    type Output = BigUint;
    fn shr(self, shift: usize) -> BigUint {
        let limb_shift = shift / 64;
        if limb_shift >= self.limbs.len() {
            return BigUint::zero();
        }
        let bit_shift = shift % 64;
        let src = self.limbs.get(limb_shift..).unwrap_or(&[]);
        if bit_shift == 0 {
            return BigUint::from_limbs(src.to_vec());
        }
        let mut out = Vec::with_capacity(src.len());
        for (i, &lo) in src.iter().enumerate() {
            let hi = src.get(i + 1).copied().unwrap_or(0);
            out.push((lo >> bit_shift) | (hi << (64 - bit_shift)));
        }
        BigUint::from_limbs(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn big(hex: &str) -> BigUint {
        BigUint::from_hex(hex).unwrap()
    }

    #[test]
    fn add_with_carry_chain() {
        let a = big("ffffffffffffffffffffffffffffffff");
        let one = BigUint::one();
        assert_eq!((&a + &one).to_hex(), "100000000000000000000000000000000");
    }

    #[test]
    fn sub_borrow_chain() {
        let a = big("100000000000000000000000000000000");
        let one = BigUint::one();
        assert_eq!((&a - &one).to_hex(), "ffffffffffffffffffffffffffffffff");
    }

    #[test]
    fn sub_equal_is_zero() {
        let a = big("deadbeef00112233");
        assert!((&a - &a).is_zero());
    }

    #[test]
    fn mul_small() {
        let a = BigUint::from_u64(0xffff_ffff_ffff_ffff);
        let sq = &a * &a;
        assert_eq!(sq.to_hex(), "fffffffffffffffe0000000000000001");
        assert_eq!(a.square(), sq);
    }

    #[test]
    fn mul_by_zero_and_one() {
        let a = big("123456789abcdef0123456789abcdef0");
        assert!((&a * &BigUint::zero()).is_zero());
        assert_eq!(&a * &BigUint::one(), a);
        assert_eq!(a.mul_u64(0), BigUint::zero());
        assert_eq!(a.mul_u64(1), a);
    }

    #[test]
    fn shifts_roundtrip() {
        let a = big("deadbeefcafebabe12345");
        for s in [0usize, 1, 17, 63, 64, 65, 130] {
            assert_eq!((&a << s) >> s, a, "shift {s}");
        }
        assert_eq!(&big("f0") >> 4, big("f"));
    }

    #[test]
    fn karatsuba_matches_schoolbook() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(42);
        for _ in 0..10 {
            // Wide enough to cross KARATSUBA_THRESHOLD.
            let a = BigUint::random_bits(64 * 80, &mut rng);
            let b = BigUint::random_bits(64 * 70, &mut rng);
            let k = mul_karatsuba(&a.limbs, &b.limbs);
            let s = mul_schoolbook(&a.limbs, &b.limbs);
            assert_eq!(BigUint::from_limbs(k), BigUint::from_limbs(s));
        }
    }

    #[test]
    fn distributive_law() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        for _ in 0..20 {
            let a = BigUint::random_bits(300, &mut rng);
            let b = BigUint::random_bits(200, &mut rng);
            let c = BigUint::random_bits(250, &mut rng);
            assert_eq!(&a * &(&b + &c), &(&a * &b) + &(&a * &c));
        }
    }
}
