//! Montgomery modular multiplication (CIOS) and windowed exponentiation.

use super::BigUint;
use crate::CryptoError;

/// Precomputed context for Montgomery arithmetic modulo an odd modulus.
///
/// # Example
///
/// ```
/// use adlp_crypto::{BigUint, bignum::Montgomery};
///
/// let m = BigUint::from_u64(97);
/// let mont = Montgomery::new(&m).unwrap();
/// let r = mont.mod_pow(&BigUint::from_u64(5), &BigUint::from_u64(3));
/// assert_eq!(r, BigUint::from_u64(28)); // 125 mod 97
/// ```
#[derive(Debug, Clone)]
pub struct Montgomery {
    n: Vec<u64>,
    n_big: BigUint,
    /// `-n^{-1} mod 2^64`.
    n0inv: u64,
    /// `R^2 mod n` where `R = 2^(64·len(n))`.
    r2: Vec<u64>,
}

impl Montgomery {
    /// Builds a context for odd modulus `n > 1`.
    ///
    /// # Errors
    ///
    /// Returns [`CryptoError::NotInvertible`] for even moduli and
    /// [`CryptoError::DivisionByZero`] for zero.
    pub fn new(n: &BigUint) -> Result<Self, CryptoError> {
        if n.is_zero() {
            return Err(CryptoError::DivisionByZero);
        }
        if n.is_even() || n.is_one() {
            return Err(CryptoError::NotInvertible);
        }
        let limbs = n.limbs.clone();
        let s = limbs.len();
        // Newton iteration for the inverse of n[0] mod 2^64 (5 steps suffice).
        // A non-zero modulus always has a low limb; the odd fallback keeps the
        // iteration well-defined regardless.
        let n0 = limbs.first().copied().unwrap_or(1);
        let mut inv = n0;
        for _ in 0..6 {
            inv = inv.wrapping_mul(2u64.wrapping_sub(n0.wrapping_mul(inv)));
        }
        debug_assert_eq!(n0.wrapping_mul(inv), 1);
        let r2 = (BigUint::one() << (2 * 64 * s)).rem_internal(n);
        let mut r2_limbs = r2.limbs;
        r2_limbs.resize(s, 0);
        Ok(Montgomery {
            n: limbs,
            n_big: n.clone(),
            n0inv: inv.wrapping_neg(),
            r2: r2_limbs,
        })
    }

    /// The modulus this context reduces by.
    pub fn modulus(&self) -> &BigUint {
        &self.n_big
    }

    /// CIOS Montgomery product of two fully-reduced, `s`-limb operands.
    /// Returns `a·b·R^{-1} mod n` as `s` limbs.
    ///
    /// The accumulator is the `s` limbs of `t` plus two scalar high limbs
    /// (`t_hi`, `t_hi2`), so every limb access is a zip over slices of equal
    /// length — no index arithmetic, nothing to go out of range.
    fn mont_mul(&self, a: &[u64], b: &[u64]) -> Vec<u64> {
        let s = self.n.len();
        debug_assert!(a.len() == s && b.len() == s);
        let mut t = vec![0u64; s];
        let mut t_hi = 0u64; // accumulator limb s
        let mut t_hi2 = 0u64; // accumulator limb s+1
        for &ai in a {
            // t += ai * b
            let mut carry = 0u128;
            for (tj, &bj) in t.iter_mut().zip(b.iter()) {
                let sum = u128::from(*tj) + u128::from(ai) * u128::from(bj) + carry;
                *tj = sum as u64;
                carry = sum >> 64;
            }
            let sum = u128::from(t_hi) + carry;
            t_hi = sum as u64;
            t_hi2 += (sum >> 64) as u64;

            // m chosen so that (t + m·n) ≡ 0 mod 2^64: add m·n aligned
            // (forcing the low limb to zero), then shift down one limb.
            let m = t.first().map_or(0, |&t0| t0.wrapping_mul(self.n0inv));
            let mut carry = 0u128;
            for (tj, &nj) in t.iter_mut().zip(self.n.iter()) {
                let sum = u128::from(*tj) + u128::from(m) * u128::from(nj) + carry;
                *tj = sum as u64;
                carry = sum >> 64;
            }
            let sum = u128::from(t_hi) + carry;
            // Divide by 2^64: rotate the zeroed low limb out and replace it
            // with what was accumulator limb s.
            t.rotate_left(1);
            if let Some(top) = t.last_mut() {
                *top = sum as u64;
            }
            t_hi = t_hi2 + (sum >> 64) as u64;
            t_hi2 = 0;
        }
        // Final conditional subtraction: result < 2n at this point, so one
        // subtraction of n cancels the high limb and fits in s limbs.
        if t_hi != 0 || cmp_limbs(&t, &self.n) != std::cmp::Ordering::Less {
            let _borrow = super::arith::sub_limbs_in_place(&mut t, &self.n);
        }
        t
    }

    /// Converts to Montgomery form (`a·R mod n`).
    fn to_mont(&self, a: &BigUint) -> Vec<u64> {
        let mut reduced = a.rem_internal(&self.n_big).limbs;
        reduced.resize(self.n.len(), 0);
        self.mont_mul(&reduced, &self.r2)
    }

    /// Converts out of Montgomery form (named for symmetry with `to_mont`,
    /// not as a constructor).
    #[allow(clippy::wrong_self_convention)]
    fn from_mont(&self, a: &[u64]) -> BigUint {
        let mut one = vec![0u64; self.n.len()];
        if let Some(low) = one.first_mut() {
            *low = 1;
        }
        BigUint::from_limbs(self.mont_mul(a, &one))
    }

    /// `(a * b) mod n` through a Montgomery round-trip.
    pub fn mul(&self, a: &BigUint, b: &BigUint) -> BigUint {
        let am = self.to_mont(a);
        let bm = self.to_mont(b);
        self.from_mont(&self.mont_mul(&am, &bm))
    }

    /// `base^exp mod n` using a 4-bit fixed window.
    pub fn mod_pow(&self, base: &BigUint, exp: &BigUint) -> BigUint {
        if exp.is_zero() {
            return BigUint::one().rem_internal(&self.n_big);
        }
        let base_m = self.to_mont(base);
        // table[i] = base^i in Montgomery form
        let mut table = Vec::with_capacity(16);
        let mut one = vec![0u64; self.n.len()];
        if let Some(low) = one.first_mut() {
            *low = 1;
        }
        table.push(self.mont_mul(&one, &self.r2)); // R mod n == mont(1)
        table.push(base_m.clone());
        while table.len() < 16 {
            let next = match table.last() {
                Some(prev) => self.mont_mul(prev, &base_m),
                None => break,
            };
            table.push(next);
        }

        let bits = exp.bits();
        let windows = bits.div_ceil(4);
        // window_at yields 0..=15 and the table holds 16 entries, so the
        // lookups always hit; the fallbacks only keep the accesses total.
        let mut acc = table
            .get(window_at(exp, windows - 1))
            .cloned()
            .unwrap_or_default();
        for w in (0..windows - 1).rev() {
            for _ in 0..4 {
                acc = self.mont_mul(&acc, &acc);
            }
            let digit = window_at(exp, w);
            if digit != 0 {
                if let Some(entry) = table.get(digit) {
                    acc = self.mont_mul(&acc, entry);
                }
            }
        }
        self.from_mont(&acc)
    }
}

/// Extracts the `w`-th 4-bit window (little-endian) of `exp`.
fn window_at(exp: &BigUint, w: usize) -> usize {
    let bit = w * 4;
    let limb = bit / 64;
    let off = bit % 64;
    let lo = exp.limbs.get(limb).copied().unwrap_or(0) >> off;
    let val = if off > 60 {
        let hi = exp.limbs.get(limb + 1).copied().unwrap_or(0);
        lo | (hi << (64 - off))
    } else {
        lo
    };
    (val & 0xf) as usize
}

fn cmp_limbs(a: &[u64], b: &[u64]) -> std::cmp::Ordering {
    debug_assert_eq!(a.len(), b.len());
    for (x, y) in a.iter().rev().zip(b.iter().rev()) {
        match x.cmp(y) {
            std::cmp::Ordering::Equal => continue,
            o => return o,
        }
    }
    std::cmp::Ordering::Equal
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn rejects_even_or_trivial_moduli() {
        assert!(Montgomery::new(&BigUint::from_u64(10)).is_err());
        assert!(Montgomery::new(&BigUint::zero()).is_err());
        assert!(Montgomery::new(&BigUint::one()).is_err());
    }

    #[test]
    fn mul_matches_plain() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        for _ in 0..50 {
            let mut m = BigUint::random_bits(256, &mut rng);
            m.set_bit(0);
            let mont = Montgomery::new(&m).unwrap();
            let a = BigUint::random_below(&m, &mut rng);
            let b = BigUint::random_below(&m, &mut rng);
            assert_eq!(mont.mul(&a, &b), (&a * &b).rem_internal(&m));
        }
    }

    #[test]
    fn mod_pow_matches_plain_many_widths() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(4);
        for bits in [64usize, 65, 128, 512, 1024] {
            let mut m = BigUint::random_bits(bits, &mut rng);
            m.set_bit(0);
            let mont = Montgomery::new(&m).unwrap();
            let base = BigUint::random_below(&m, &mut rng);
            let exp = BigUint::random_bits(bits.min(96), &mut rng);
            assert_eq!(
                mont.mod_pow(&base, &exp),
                base.mod_pow_plain(&exp, &m),
                "width {bits}"
            );
        }
    }

    #[test]
    fn mod_pow_zero_exponent() {
        let m = BigUint::from_u64(97);
        let mont = Montgomery::new(&m).unwrap();
        assert_eq!(
            mont.mod_pow(&BigUint::from_u64(12), &BigUint::zero()),
            BigUint::one()
        );
    }

    #[test]
    fn base_larger_than_modulus() {
        let m = BigUint::from_u64(97);
        let mont = Montgomery::new(&m).unwrap();
        let base = BigUint::from_u64(97 * 5 + 3);
        assert_eq!(
            mont.mod_pow(&base, &BigUint::from_u64(2)),
            BigUint::from_u64(9)
        );
    }
}
