//! Arbitrary-precision unsigned integers.
//!
//! [`BigUint`] stores magnitude as little-endian `u64` limbs with the
//! invariant that the most significant limb is non-zero (zero is the empty
//! limb vector). The implementation covers exactly what RSA needs: ring
//! arithmetic, Knuth Algorithm D division, modular exponentiation (plain and
//! Montgomery), modular inverse, and random generation.

mod arith;
mod div;
mod modular;
mod mont;

pub use mont::Montgomery;

use crate::CryptoError;
use rand::RngCore;
use std::cmp::Ordering;
use std::fmt;

/// An arbitrary-precision unsigned integer.
///
/// # Example
///
/// ```
/// use adlp_crypto::BigUint;
///
/// let a = BigUint::from_u64(1) << 128;
/// let b = BigUint::from_u64(3);
/// let (q, r) = a.div_rem(&b).unwrap();
/// assert_eq!(&q * &b + &r, a);
/// ```
#[derive(Clone, PartialEq, Eq, Hash, Default)]
pub struct BigUint {
    /// Little-endian limbs; the last limb, if any, is non-zero.
    pub(crate) limbs: Vec<u64>,
}

impl BigUint {
    /// The value zero.
    pub fn zero() -> Self {
        BigUint { limbs: Vec::new() }
    }

    /// The value one.
    pub fn one() -> Self {
        BigUint { limbs: vec![1] }
    }

    /// Builds a value from a single `u64`.
    pub fn from_u64(v: u64) -> Self {
        if v == 0 {
            Self::zero()
        } else {
            BigUint { limbs: vec![v] }
        }
    }

    /// Builds a value from a `u128`.
    pub fn from_u128(v: u128) -> Self {
        let lo = v as u64;
        let hi = (v >> 64) as u64;
        if hi == 0 {
            Self::from_u64(lo)
        } else {
            BigUint { limbs: vec![lo, hi] }
        }
    }

    /// Constructs from little-endian limbs, normalizing trailing zeros.
    pub(crate) fn from_limbs(mut limbs: Vec<u64>) -> Self {
        while limbs.last() == Some(&0) {
            limbs.pop();
        }
        BigUint { limbs }
    }

    /// Parses a big-endian byte string (leading zeros permitted).
    ///
    /// ```
    /// use adlp_crypto::BigUint;
    /// assert_eq!(BigUint::from_bytes_be(&[1, 0]), BigUint::from_u64(256));
    /// ```
    pub fn from_bytes_be(bytes: &[u8]) -> Self {
        let mut limbs = Vec::with_capacity(bytes.len() / 8 + 1);
        for chunk in bytes.rchunks(8) {
            let mut limb = 0u64;
            for &b in chunk {
                limb = (limb << 8) | u64::from(b);
            }
            limbs.push(limb);
        }
        Self::from_limbs(limbs)
    }

    /// Serializes to big-endian bytes with no leading zeros (empty for zero).
    pub fn to_bytes_be(&self) -> Vec<u8> {
        if self.is_zero() {
            return Vec::new();
        }
        let mut out = Vec::with_capacity(self.limbs.len() * 8);
        for (i, &limb) in self.limbs.iter().enumerate().rev() {
            let bytes = limb.to_be_bytes();
            if i == self.limbs.len() - 1 {
                let skip = (limb.leading_zeros() / 8) as usize;
                out.extend_from_slice(bytes.get(skip..).unwrap_or(&[]));
            } else {
                out.extend_from_slice(&bytes);
            }
        }
        out
    }

    /// Serializes to big-endian bytes left-padded with zeros to `len` bytes.
    ///
    /// # Errors
    ///
    /// Returns [`CryptoError::MessageTooLarge`] if the value does not fit.
    pub fn to_bytes_be_padded(&self, len: usize) -> Result<Vec<u8>, CryptoError> {
        let raw = self.to_bytes_be();
        if raw.len() > len {
            return Err(CryptoError::MessageTooLarge);
        }
        let mut out = vec![0u8; len - raw.len()];
        out.extend_from_slice(&raw);
        Ok(out)
    }

    /// Parses a hexadecimal string (no prefix, case-insensitive).
    ///
    /// # Errors
    ///
    /// Returns [`CryptoError::Malformed`] on non-hex characters.
    pub fn from_hex(s: &str) -> Result<Self, CryptoError> {
        let mut bytes = Vec::with_capacity(s.len() / 2 + 1);
        let mut s = s.as_bytes();
        // Odd-length strings have an implicit leading nibble.
        if s.len() % 2 == 1 {
            if let Some((&first, rest)) = s.split_first() {
                bytes.push(hex_val(first)?);
                s = rest;
            }
        }
        for pair in s.chunks_exact(2) {
            if let [hi, lo] = pair {
                bytes.push(hex_val(*hi)? << 4 | hex_val(*lo)?);
            }
        }
        Ok(Self::from_bytes_be(&bytes))
    }

    /// Parses a base-10 string.
    ///
    /// # Errors
    ///
    /// Returns [`CryptoError::Malformed`] for empty input or non-digit
    /// characters.
    ///
    /// ```
    /// use adlp_crypto::BigUint;
    /// let v = BigUint::from_decimal("340282366920938463463374607431768211456").unwrap();
    /// assert_eq!(v, BigUint::one() << 128);
    /// ```
    pub fn from_decimal(s: &str) -> Result<Self, CryptoError> {
        if s.is_empty() {
            return Err(CryptoError::Malformed("decimal string (empty)"));
        }
        let mut v = BigUint::zero();
        for c in s.bytes() {
            if !c.is_ascii_digit() {
                return Err(CryptoError::Malformed("decimal string"));
            }
            v = &v.mul_u64(10) + &BigUint::from_u64(u64::from(c - b'0'));
        }
        Ok(v)
    }

    /// Renders as a base-10 string.
    pub fn to_decimal(&self) -> String {
        if self.is_zero() {
            return "0".to_owned();
        }
        // Peel 19 digits at a time (largest power of ten in u64).
        const CHUNK: u64 = 10_000_000_000_000_000_000;
        let mut digits_rev = Vec::new();
        let mut v = self.clone();
        while !v.is_zero() {
            let (q, r) = v.div_rem_u64(CHUNK);
            v = q;
            if v.is_zero() {
                let mut r = r;
                while r > 0 {
                    digits_rev.push(b'0' + (r % 10) as u8);
                    r /= 10;
                }
            } else {
                let mut r = r;
                for _ in 0..19 {
                    digits_rev.push(b'0' + (r % 10) as u8);
                    r /= 10;
                }
            }
        }
        digits_rev.reverse();
        digits_rev.iter().map(|&d| char::from(d)).collect()
    }

    /// Renders as lowercase hexadecimal ("0" for zero).
    pub fn to_hex(&self) -> String {
        if self.is_zero() {
            return "0".to_owned();
        }
        let mut s = String::with_capacity(self.limbs.len() * 16);
        for (i, &limb) in self.limbs.iter().enumerate().rev() {
            if i == self.limbs.len() - 1 {
                s.push_str(&format!("{limb:x}"));
            } else {
                s.push_str(&format!("{limb:016x}"));
            }
        }
        s
    }

    /// Whether this value is zero.
    pub fn is_zero(&self) -> bool {
        self.limbs.is_empty()
    }

    /// Whether this value is one.
    pub fn is_one(&self) -> bool {
        self.limbs == [1]
    }

    /// Whether the lowest bit is clear.
    pub fn is_even(&self) -> bool {
        self.limbs.first().is_none_or(|l| l & 1 == 0)
    }

    /// Number of significant bits (0 for zero).
    pub fn bits(&self) -> usize {
        match self.limbs.last() {
            None => 0,
            Some(&top) => self.limbs.len() * 64 - top.leading_zeros() as usize,
        }
    }

    /// Value of bit `i` (little-endian bit order).
    pub fn bit(&self, i: usize) -> bool {
        let (limb, off) = (i / 64, i % 64);
        self.limbs.get(limb).is_some_and(|&l| (l >> off) & 1 == 1)
    }

    /// Sets bit `i` to one, growing as needed.
    pub fn set_bit(&mut self, i: usize) {
        let (limb, off) = (i / 64, i % 64);
        if limb >= self.limbs.len() {
            self.limbs.resize(limb + 1, 0);
        }
        if let Some(l) = self.limbs.get_mut(limb) {
            *l |= 1 << off;
        }
    }

    /// Low 64 bits of the value.
    pub fn low_u64(&self) -> u64 {
        self.limbs.first().copied().unwrap_or(0)
    }

    /// Uniformly random value with exactly `bits` bits (top bit set).
    ///
    /// # Panics
    ///
    /// Panics if `bits == 0`.
    pub fn random_bits<R: RngCore + ?Sized>(bits: usize, rng: &mut R) -> Self {
        assert!(bits > 0, "cannot generate a 0-bit integer");
        let mut v = Self::random_below_bits(bits, rng);
        v.set_bit(bits - 1);
        v
    }

    /// Uniformly random value in `[0, 2^bits)`.
    pub fn random_below_bits<R: RngCore + ?Sized>(bits: usize, rng: &mut R) -> Self {
        let limbs = bits.div_ceil(64);
        let mut v: Vec<u64> = (0..limbs).map(|_| rng.next_u64()).collect();
        let excess = limbs * 64 - bits;
        if let Some(top) = v.last_mut() {
            *top >>= excess;
        }
        Self::from_limbs(v)
    }

    /// Uniformly random value in `[0, bound)` by rejection sampling.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn random_below<R: RngCore + ?Sized>(bound: &BigUint, rng: &mut R) -> Self {
        assert!(!bound.is_zero(), "bound must be positive");
        let bits = bound.bits();
        loop {
            let candidate = Self::random_below_bits(bits, rng);
            if &candidate < bound {
                return candidate;
            }
        }
    }
}

fn hex_val(c: u8) -> Result<u8, CryptoError> {
    match c {
        b'0'..=b'9' => Ok(c - b'0'),
        b'a'..=b'f' => Ok(c - b'a' + 10),
        b'A'..=b'F' => Ok(c - b'A' + 10),
        _ => Err(CryptoError::Malformed("hex string")),
    }
}

impl Ord for BigUint {
    fn cmp(&self, other: &Self) -> Ordering {
        match self.limbs.len().cmp(&other.limbs.len()) {
            Ordering::Equal => {
                for (a, b) in self.limbs.iter().rev().zip(other.limbs.iter().rev()) {
                    match a.cmp(b) {
                        Ordering::Equal => continue,
                        non_eq => return non_eq,
                    }
                }
                Ordering::Equal
            }
            non_eq => non_eq,
        }
    }
}

impl PartialOrd for BigUint {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl fmt::Debug for BigUint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BigUint(0x{})", self.to_hex())
    }
}

impl fmt::Display for BigUint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "0x{}", self.to_hex())
    }
}

impl std::str::FromStr for BigUint {
    type Err = CryptoError;

    /// Parses decimal by default; `0x`-prefixed strings parse as hex.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.strip_prefix("0x") {
            Some(hex) => Self::from_hex(hex),
            None => Self::from_decimal(s),
        }
    }
}

impl From<u64> for BigUint {
    fn from(v: u64) -> Self {
        Self::from_u64(v)
    }
}

impl From<u128> for BigUint {
    fn from(v: u128) -> Self {
        Self::from_u128(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_is_empty_and_even() {
        let z = BigUint::zero();
        assert!(z.is_zero());
        assert!(z.is_even());
        assert_eq!(z.bits(), 0);
        assert_eq!(z.to_bytes_be(), Vec::<u8>::new());
        assert_eq!(z.to_hex(), "0");
    }

    #[test]
    fn roundtrip_bytes_be() {
        let v = BigUint::from_bytes_be(&[0, 0, 0x12, 0x34, 0x56, 0x78, 0x9a, 0xbc, 0xde, 0xf0]);
        assert_eq!(v.to_bytes_be(), vec![0x12, 0x34, 0x56, 0x78, 0x9a, 0xbc, 0xde, 0xf0]);
        assert_eq!(v.to_hex(), "123456789abcdef0");
    }

    #[test]
    fn roundtrip_hex() {
        let v = BigUint::from_hex("deadbeefcafebabe112233445566778899").unwrap();
        assert_eq!(v.to_hex(), "deadbeefcafebabe112233445566778899");
        assert!(BigUint::from_hex("xyz").is_err());
    }

    #[test]
    fn padded_bytes() {
        let v = BigUint::from_u64(0x0102);
        assert_eq!(v.to_bytes_be_padded(4).unwrap(), vec![0, 0, 1, 2]);
        assert_eq!(
            v.to_bytes_be_padded(1),
            Err(CryptoError::MessageTooLarge)
        );
    }

    #[test]
    fn bit_access() {
        let mut v = BigUint::zero();
        v.set_bit(100);
        assert!(v.bit(100));
        assert!(!v.bit(99));
        assert_eq!(v.bits(), 101);
        assert_eq!(v.limbs.len(), 2);
    }

    #[test]
    fn ordering() {
        let a = BigUint::from_u64(5);
        let b = BigUint::from_u128(1 << 100);
        assert!(a < b);
        assert!(b > a);
        assert_eq!(a.cmp(&a), Ordering::Equal);
    }

    #[test]
    fn random_below_respects_bound() {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let bound = BigUint::from_u64(1000);
        for _ in 0..200 {
            assert!(BigUint::random_below(&bound, &mut rng) < bound);
        }
    }

    #[test]
    fn decimal_roundtrip() {
        for s in ["0", "1", "9", "10", "12345678901234567890123456789012345"] {
            assert_eq!(BigUint::from_decimal(s).unwrap().to_decimal(), s);
        }
        assert_eq!(BigUint::from_u64(u64::MAX).to_decimal(), u64::MAX.to_string());
        assert!(BigUint::from_decimal("").is_err());
        assert!(BigUint::from_decimal("12a").is_err());
        assert!(BigUint::from_decimal("-5").is_err());
    }

    #[test]
    fn from_str_dispatches_on_prefix() {
        use std::str::FromStr;
        assert_eq!(BigUint::from_str("255").unwrap(), BigUint::from_u64(255));
        assert_eq!(BigUint::from_str("0xff").unwrap(), BigUint::from_u64(255));
        assert!(BigUint::from_str("0xzz").is_err());
    }

    #[test]
    fn decimal_matches_hex_for_random_values() {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        for _ in 0..20 {
            let v = BigUint::random_bits(200, &mut rng);
            let dec = v.to_decimal();
            assert_eq!(BigUint::from_decimal(&dec).unwrap(), v);
        }
    }

    #[test]
    fn random_bits_has_exact_width() {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        for bits in [1, 63, 64, 65, 512] {
            let v = BigUint::random_bits(bits, &mut rng);
            assert_eq!(v.bits(), bits);
        }
    }
}
