//! Modular arithmetic: gcd, modular inverse, and modular exponentiation.

use super::{BigUint, Montgomery};
use crate::CryptoError;

impl BigUint {
    /// Greatest common divisor (binary GCD).
    ///
    /// ```
    /// use adlp_crypto::BigUint;
    /// let a = BigUint::from_u64(48);
    /// let b = BigUint::from_u64(36);
    /// assert_eq!(a.gcd(&b), BigUint::from_u64(12));
    /// ```
    pub fn gcd(&self, other: &BigUint) -> BigUint {
        let mut a = self.clone();
        let mut b = other.clone();
        if a.is_zero() {
            return b;
        }
        if b.is_zero() {
            return a;
        }
        // Factor out common powers of two.
        let a_tz = a.trailing_zeros();
        let b_tz = b.trailing_zeros();
        let common = a_tz.min(b_tz);
        a = a >> a_tz;
        b = b >> b_tz;
        loop {
            if a > b {
                std::mem::swap(&mut a, &mut b);
            }
            b = &b - &a;
            if b.is_zero() {
                return a << common;
            }
            b = &b >> b.trailing_zeros();
        }
    }

    /// Number of trailing zero bits (0 for zero).
    pub fn trailing_zeros(&self) -> usize {
        for (i, &l) in self.limbs.iter().enumerate() {
            if l != 0 {
                return i * 64 + l.trailing_zeros() as usize;
            }
        }
        0
    }

    /// Modular inverse of `self` modulo `m` via the extended Euclidean
    /// algorithm.
    ///
    /// # Errors
    ///
    /// Returns [`CryptoError::NotInvertible`] when `gcd(self, m) != 1`, and
    /// [`CryptoError::DivisionByZero`] for a zero modulus.
    pub fn mod_inverse(&self, m: &BigUint) -> Result<BigUint, CryptoError> {
        if m.is_zero() {
            return Err(CryptoError::DivisionByZero);
        }
        if m.is_one() {
            return Err(CryptoError::NotInvertible);
        }
        // Track coefficients with explicit signs: t is the coefficient of the
        // original `self` in the current remainder.
        let mut r0 = m.clone();
        let mut r1 = self.rem_internal(m);
        let mut t0 = (BigUint::zero(), false); // (magnitude, negative?)
        let mut t1 = (BigUint::one(), false);
        while !r1.is_zero() {
            // The loop guard keeps `r1` non-zero, so division cannot fail;
            // surface the typed error anyway rather than panicking.
            let Ok((q, r2)) = r0.div_rem(&r1) else {
                return Err(CryptoError::DivisionByZero);
            };
            // t2 = t0 - q * t1 over signed values.
            let qt1 = &q * &t1.0;
            let t2 = signed_sub(&t0, &(qt1, t1.1));
            r0 = r1;
            r1 = r2;
            t0 = t1;
            t1 = t2;
        }
        if !r0.is_one() {
            return Err(CryptoError::NotInvertible);
        }
        let (mag, neg) = t0;
        let mag = mag.rem_internal(m);
        Ok(if neg && !mag.is_zero() { m - &mag } else { mag })
    }

    /// Modular exponentiation `self^exp mod m`.
    ///
    /// Uses Montgomery multiplication for odd moduli and plain
    /// square-and-multiply with Knuth-D reduction otherwise.
    ///
    /// # Errors
    ///
    /// Returns [`CryptoError::DivisionByZero`] for a zero modulus.
    ///
    /// ```
    /// use adlp_crypto::BigUint;
    /// let base = BigUint::from_u64(4);
    /// let exp = BigUint::from_u64(13);
    /// let m = BigUint::from_u64(497);
    /// assert_eq!(base.mod_pow(&exp, &m).unwrap(), BigUint::from_u64(445));
    /// ```
    pub fn mod_pow(&self, exp: &BigUint, m: &BigUint) -> Result<BigUint, CryptoError> {
        if m.is_zero() {
            return Err(CryptoError::DivisionByZero);
        }
        if m.is_one() {
            return Ok(BigUint::zero());
        }
        if !m.is_even() {
            // `Montgomery::new` only fails for a zero modulus, ruled out
            // above; fall through to the plain path rather than panicking.
            if let Ok(mont) = Montgomery::new(m) {
                return Ok(mont.mod_pow(self, exp));
            }
        }
        Ok(self.mod_pow_plain(exp, m))
    }

    /// Square-and-multiply with full reduction after every step. Exposed for
    /// cross-checking the Montgomery path (and benchmarking the difference).
    pub fn mod_pow_plain(&self, exp: &BigUint, m: &BigUint) -> BigUint {
        let mut result = BigUint::one().rem_internal(m);
        let mut base = self.rem_internal(m);
        for i in 0..exp.bits() {
            if exp.bit(i) {
                result = (&result * &base).rem_internal(m);
            }
            base = base.square().rem_internal(m);
        }
        result
    }

    /// `(self + other) mod m`, assuming both operands are already reduced.
    pub fn mod_add(&self, other: &BigUint, m: &BigUint) -> BigUint {
        let s = self + other;
        if &s >= m {
            &s - m
        } else {
            s
        }
    }

    /// `(self - other) mod m`, assuming both operands are already reduced.
    pub fn mod_sub(&self, other: &BigUint, m: &BigUint) -> BigUint {
        if self >= other {
            self - other
        } else {
            &(m - other) + self
        }
    }
}

/// Signed subtraction over (magnitude, negative?) pairs.
fn signed_sub(a: &(BigUint, bool), b: &(BigUint, bool)) -> (BigUint, bool) {
    match (a.1, b.1) {
        // a - b with equal signs: compare magnitudes.
        (an, bn) if an == bn => {
            if a.0 >= b.0 {
                (&a.0 - &b.0, an)
            } else {
                (&b.0 - &a.0, !an)
            }
        }
        // Signs differ: magnitudes add, sign follows `a`.
        (an, _) => (&a.0 + &b.0, an),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn gcd_basics() {
        assert_eq!(
            BigUint::zero().gcd(&BigUint::from_u64(7)),
            BigUint::from_u64(7)
        );
        assert_eq!(
            BigUint::from_u64(7).gcd(&BigUint::zero()),
            BigUint::from_u64(7)
        );
        let a = BigUint::from_u64(2 * 3 * 5 * 7 * 11);
        let b = BigUint::from_u64(3 * 7 * 13);
        assert_eq!(a.gcd(&b), BigUint::from_u64(21));
    }

    #[test]
    fn mod_inverse_small() {
        let inv = BigUint::from_u64(3)
            .mod_inverse(&BigUint::from_u64(11))
            .unwrap();
        assert_eq!(inv, BigUint::from_u64(4)); // 3*4 = 12 ≡ 1 (mod 11)
    }

    #[test]
    fn mod_inverse_not_coprime() {
        assert_eq!(
            BigUint::from_u64(6).mod_inverse(&BigUint::from_u64(9)),
            Err(CryptoError::NotInvertible)
        );
    }

    #[test]
    fn mod_inverse_random() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(11);
        let m = BigUint::from_hex("ffffffffffffffffffffffffffffff61").unwrap(); // prime
        for _ in 0..50 {
            let a = BigUint::random_below(&m, &mut rng);
            if a.is_zero() {
                continue;
            }
            let inv = a.mod_inverse(&m).unwrap();
            assert_eq!((&a * &inv).rem_internal(&m), BigUint::one());
        }
    }

    #[test]
    fn mod_pow_matches_plain() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(12);
        for _ in 0..20 {
            let base = BigUint::random_bits(200, &mut rng);
            let exp = BigUint::random_bits(40, &mut rng);
            let mut m = BigUint::random_bits(190, &mut rng);
            m.set_bit(0); // force odd → Montgomery path
            assert_eq!(
                base.mod_pow(&exp, &m).unwrap(),
                base.mod_pow_plain(&exp, &m)
            );
        }
    }

    #[test]
    fn mod_pow_even_modulus() {
        let base = BigUint::from_u64(7);
        let exp = BigUint::from_u64(5);
        let m = BigUint::from_u64(100);
        assert_eq!(base.mod_pow(&exp, &m).unwrap(), BigUint::from_u64(7)); // 16807 mod 100
    }

    #[test]
    fn mod_pow_edge_cases() {
        let m = BigUint::from_u64(13);
        assert_eq!(
            BigUint::from_u64(5).mod_pow(&BigUint::zero(), &m).unwrap(),
            BigUint::one()
        );
        assert_eq!(
            BigUint::from_u64(5).mod_pow(&BigUint::one(), &m).unwrap(),
            BigUint::from_u64(5)
        );
        assert!(BigUint::from_u64(5)
            .mod_pow(&BigUint::one(), &BigUint::one())
            .unwrap()
            .is_zero());
        assert_eq!(
            BigUint::from_u64(5).mod_pow(&BigUint::one(), &BigUint::zero()),
            Err(CryptoError::DivisionByZero)
        );
    }

    #[test]
    fn fermat_little_theorem() {
        // a^(p-1) ≡ 1 mod p for prime p.
        let p = BigUint::from_u64(1_000_000_007);
        let exp = &p - &BigUint::one();
        let mut rng = rand::rngs::StdRng::seed_from_u64(13);
        for _ in 0..10 {
            let a = BigUint::random_below(&p, &mut rng);
            if a.is_zero() {
                continue;
            }
            assert_eq!(a.mod_pow(&exp, &p).unwrap(), BigUint::one());
        }
    }

    #[test]
    fn mod_add_sub() {
        let m = BigUint::from_u64(10);
        let a = BigUint::from_u64(7);
        let b = BigUint::from_u64(8);
        assert_eq!(a.mod_add(&b, &m), BigUint::from_u64(5));
        assert_eq!(a.mod_sub(&b, &m), BigUint::from_u64(9));
        assert_eq!(b.mod_sub(&a, &m), BigUint::one());
    }
}
