//! Minimal hex encoding helpers used across the workspace.

use crate::CryptoError;

const ALPHABET: &[u8; 16] = b"0123456789abcdef";

/// Encodes bytes as lowercase hex.
///
/// ```
/// assert_eq!(adlp_crypto::hex::encode(&[0xde, 0xad]), "dead");
/// ```
pub fn encode(bytes: &[u8]) -> String {
    let digit = |nibble: u8| char::from(ALPHABET.get(nibble as usize & 0xf).copied().unwrap_or(b'0'));
    let mut s = String::with_capacity(bytes.len() * 2);
    for &b in bytes {
        s.push(digit(b >> 4));
        s.push(digit(b & 0xf));
    }
    s
}

/// Decodes a hex string (even length, case-insensitive).
///
/// # Errors
///
/// Returns [`CryptoError::Malformed`] for odd length or non-hex characters.
pub fn decode(s: &str) -> Result<Vec<u8>, CryptoError> {
    let s = s.as_bytes();
    if !s.len().is_multiple_of(2) {
        return Err(CryptoError::Malformed("hex string (odd length)"));
    }
    let mut out = Vec::with_capacity(s.len() / 2);
    for pair in s.chunks_exact(2) {
        if let [hi, lo] = *pair {
            out.push(val(hi)? << 4 | val(lo)?);
        }
    }
    Ok(out)
}

fn val(c: u8) -> Result<u8, CryptoError> {
    match c {
        b'0'..=b'9' => Ok(c - b'0'),
        b'a'..=b'f' => Ok(c - b'a' + 10),
        b'A'..=b'F' => Ok(c - b'A' + 10),
        _ => Err(CryptoError::Malformed("hex string")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let data: Vec<u8> = (0..=255).collect();
        assert_eq!(decode(&encode(&data)).unwrap(), data);
    }

    #[test]
    fn empty() {
        assert_eq!(encode(&[]), "");
        assert_eq!(decode("").unwrap(), Vec::<u8>::new());
    }

    #[test]
    fn case_insensitive() {
        assert_eq!(decode("DEADbeef").unwrap(), vec![0xde, 0xad, 0xbe, 0xef]);
    }

    #[test]
    fn rejects_bad_input() {
        assert!(decode("abc").is_err());
        assert!(decode("zz").is_err());
    }
}
