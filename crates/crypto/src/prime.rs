//! Probabilistic primality testing (Miller-Rabin) and random prime
//! generation for RSA key material.

use crate::bignum::{BigUint, Montgomery};
use rand::RngCore;

/// Small primes used for cheap trial division before Miller-Rabin.
const SMALL_PRIMES: [u64; 60] = [
    3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47, 53, 59, 61, 67, 71, 73, 79, 83, 89, 97,
    101, 103, 107, 109, 113, 127, 131, 137, 139, 149, 151, 157, 163, 167, 173, 179, 181, 191, 193,
    197, 199, 211, 223, 227, 229, 233, 239, 241, 251, 257, 263, 269, 271, 277, 281, 283,
];

/// Number of Miller-Rabin rounds. 40 rounds give a false-positive
/// probability below 2^-80, ample for the simulation's key material.
const MR_ROUNDS: usize = 40;

/// Tests `n` for primality with trial division + Miller-Rabin.
///
/// ```
/// use adlp_crypto::{prime::is_probable_prime, BigUint};
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(0);
/// assert!(is_probable_prime(&BigUint::from_u64(1_000_000_007), &mut rng));
/// assert!(!is_probable_prime(&BigUint::from_u64(1_000_000_008), &mut rng));
/// ```
pub fn is_probable_prime<R: RngCore + ?Sized>(n: &BigUint, rng: &mut R) -> bool {
    if n.is_zero() || n.is_one() {
        return false;
    }
    if n == &BigUint::from_u64(2) {
        return true;
    }
    if n.is_even() {
        return false;
    }
    for &p in &SMALL_PRIMES {
        let pb = BigUint::from_u64(p);
        if n == &pb {
            return true;
        }
        if n.div_rem_u64(p).1 == 0 {
            return false;
        }
    }
    miller_rabin(n, MR_ROUNDS, rng)
}

/// Miller-Rabin with `rounds` random bases. `n` must be odd and > 2.
fn miller_rabin<R: RngCore + ?Sized>(n: &BigUint, rounds: usize, rng: &mut R) -> bool {
    let one = BigUint::one();
    let n_minus_1 = n - &one;
    let s = n_minus_1.trailing_zeros();
    let d = &n_minus_1 >> s;
    // Callers guarantee n odd and > 3 (after the small-prime sieve); treat
    // any contract violation as "not prime" rather than panicking.
    let Ok(mont) = Montgomery::new(n) else {
        return false;
    };

    let two = BigUint::from_u64(2);
    let Some(span) = n_minus_1.checked_sub(&two) else {
        return false;
    };
    'witness: for _ in 0..rounds {
        // a ∈ [2, n-2]
        let a = &BigUint::random_below(&span, rng) + &two;
        let mut x = mont.mod_pow(&a, &d);
        if x.is_one() || x == n_minus_1 {
            continue;
        }
        for _ in 0..s - 1 {
            x = mont.mod_pow(&x, &two);
            if x == n_minus_1 {
                continue 'witness;
            }
        }
        return false;
    }
    true
}

/// Generates a random probable prime with exactly `bits` bits.
///
/// The two top bits are set (standard RSA practice, ensuring the product of
/// two such primes has the full target width).
///
/// # Panics
///
/// Panics if `bits < 8`.
pub fn random_prime<R: RngCore + ?Sized>(bits: usize, rng: &mut R) -> BigUint {
    assert!(bits >= 8, "prime width too small");
    loop {
        let mut candidate = BigUint::random_bits(bits, rng);
        candidate.set_bit(0); // odd
        candidate.set_bit(bits - 2); // top two bits set
        if is_probable_prime(&candidate, rng) {
            return candidate;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(1234)
    }

    #[test]
    fn small_primes_and_composites() {
        let mut r = rng();
        for p in [2u64, 3, 5, 7, 11, 13, 101, 257, 65537] {
            assert!(is_probable_prime(&BigUint::from_u64(p), &mut r), "{p}");
        }
        for c in [0u64, 1, 4, 9, 15, 21, 100, 65535, 1_000_000_000] {
            assert!(!is_probable_prime(&BigUint::from_u64(c), &mut r), "{c}");
        }
    }

    #[test]
    fn known_large_prime() {
        // 2^127 - 1 is a Mersenne prime.
        let mut r = rng();
        let m127 = (BigUint::one() << 127) - BigUint::one();
        assert!(is_probable_prime(&m127, &mut r));
        // 2^128 - 1 is composite.
        let m128 = (BigUint::one() << 128) - BigUint::one();
        assert!(!is_probable_prime(&m128, &mut r));
    }

    #[test]
    fn carmichael_numbers_rejected() {
        // Carmichael numbers fool Fermat but not Miller-Rabin.
        let mut r = rng();
        for c in [561u64, 1105, 1729, 2465, 2821, 6601, 8911, 41041, 825265] {
            assert!(!is_probable_prime(&BigUint::from_u64(c), &mut r), "{c}");
        }
    }

    #[test]
    fn generated_prime_has_width_and_parity() {
        let mut r = rng();
        for bits in [64usize, 128, 256] {
            let p = random_prime(bits, &mut r);
            assert_eq!(p.bits(), bits);
            assert!(!p.is_even());
            assert!(p.bit(bits - 2), "top two bits set");
        }
    }
}
