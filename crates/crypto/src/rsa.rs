//! RSA key generation and raw RSA operations (RFC 8017 §5), with CRT
//! acceleration for private-key operations.
//!
//! The ADLP prototype uses RSA-1024, producing the 128-byte signatures whose
//! size shows up throughout the paper's Tables III-IV. Key generation here
//! follows standard practice: two random primes with top-two bits set,
//! `e = 65537`, and `d = e^{-1} mod λ(n)` (Carmichael).

use crate::bignum::{BigUint, Montgomery};
use crate::CryptoError;
use rand::RngCore;
use std::fmt;
use std::sync::Arc;

/// The conventional public exponent.
pub const PUBLIC_EXPONENT: u64 = 65537;

/// An RSA public key `(n, e)`.
#[derive(Clone)]
pub struct RsaPublicKey {
    n: BigUint,
    e: BigUint,
    mont_n: Arc<Montgomery>,
}

impl PartialEq for RsaPublicKey {
    fn eq(&self, other: &Self) -> bool {
        self.n == other.n && self.e == other.e
    }
}

impl Eq for RsaPublicKey {}

impl RsaPublicKey {
    /// Builds a public key from modulus and exponent.
    ///
    /// # Errors
    ///
    /// Returns [`CryptoError::Malformed`] if `n` is even or trivially small.
    pub fn new(n: BigUint, e: BigUint) -> Result<Self, CryptoError> {
        let mont_n = Montgomery::new(&n).map_err(|_| CryptoError::Malformed("modulus"))?;
        Ok(RsaPublicKey {
            n,
            e,
            mont_n: Arc::new(mont_n),
        })
    }

    /// The modulus `n`.
    pub fn modulus(&self) -> &BigUint {
        &self.n
    }

    /// The public exponent `e`.
    pub fn exponent(&self) -> &BigUint {
        &self.e
    }

    /// Modulus length in whole bytes (128 for RSA-1024).
    pub fn modulus_len(&self) -> usize {
        self.n.bits().div_ceil(8)
    }

    /// Raw RSA verification primitive `RSAVP1`: `s^e mod n`.
    ///
    /// # Errors
    ///
    /// Returns [`CryptoError::MessageTooLarge`] if `s >= n`.
    pub fn raw_verify(&self, s: &BigUint) -> Result<BigUint, CryptoError> {
        if s >= &self.n {
            return Err(CryptoError::MessageTooLarge);
        }
        Ok(self.mont_n.mod_pow(s, &self.e))
    }

    /// Raw RSA encryption primitive `RSAEP` (same math as verification).
    ///
    /// # Errors
    ///
    /// Returns [`CryptoError::MessageTooLarge`] if `m >= n`.
    pub fn raw_encrypt(&self, m: &BigUint) -> Result<BigUint, CryptoError> {
        self.raw_verify(m)
    }

    /// Serializes as `len(n) ‖ n ‖ len(e) ‖ e` (big-endian, u32 lengths).
    pub fn to_bytes(&self) -> Vec<u8> {
        let n = self.n.to_bytes_be();
        let e = self.e.to_bytes_be();
        let mut out = Vec::with_capacity(8 + n.len() + e.len());
        out.extend_from_slice(&(n.len() as u32).to_be_bytes());
        out.extend_from_slice(&n);
        out.extend_from_slice(&(e.len() as u32).to_be_bytes());
        out.extend_from_slice(&e);
        out
    }

    /// Parses the [`Self::to_bytes`] format.
    ///
    /// # Errors
    ///
    /// Returns [`CryptoError::Malformed`] on truncated or invalid input.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, CryptoError> {
        let (n_bytes, rest) = take_field(bytes)?;
        let (e_bytes, rest) = take_field(rest)?;
        if !rest.is_empty() {
            return Err(CryptoError::Malformed("public key (trailing bytes)"));
        }
        Self::new(BigUint::from_bytes_be(n_bytes), BigUint::from_bytes_be(e_bytes))
    }
}

fn take_field(bytes: &[u8]) -> Result<(&[u8], &[u8]), CryptoError> {
    let (len_bytes, rest) = bytes
        .split_at_checked(4)
        .ok_or(CryptoError::Malformed("public key (truncated length)"))?;
    let len = u32::from_be_bytes(
        len_bytes
            .try_into()
            .map_err(|_| CryptoError::Malformed("public key (truncated length)"))?,
    ) as usize;
    rest.split_at_checked(len)
        .ok_or(CryptoError::Malformed("public key (truncated field)"))
}

impl fmt::Debug for RsaPublicKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RsaPublicKey")
            .field("modulus_bits", &self.n.bits())
            .field("e", &self.e)
            .finish()
    }
}

/// An RSA private key with CRT parameters.
pub struct RsaPrivateKey {
    public: RsaPublicKey,
    d: BigUint,
    p: BigUint,
    q: BigUint,
    dp: BigUint,
    dq: BigUint,
    qinv: BigUint,
    mont_p: Montgomery,
    mont_q: Montgomery,
}

impl RsaPrivateKey {
    /// The matching public key.
    pub fn public_key(&self) -> &RsaPublicKey {
        &self.public
    }

    /// The private exponent `d` (exposed for the plain-vs-CRT ablation bench).
    pub fn private_exponent(&self) -> &BigUint {
        &self.d
    }

    /// Raw RSA signature primitive `RSASP1` using the CRT:
    /// `m1 = m^dp mod p`, `m2 = m^dq mod q`,
    /// `h = qinv (m1 - m2) mod p`, `s = m2 + h q`.
    ///
    /// # Errors
    ///
    /// Returns [`CryptoError::MessageTooLarge`] if `m >= n`.
    pub fn raw_sign(&self, m: &BigUint) -> Result<BigUint, CryptoError> {
        if m >= &self.public.n {
            return Err(CryptoError::MessageTooLarge);
        }
        let m1 = self.mont_p.mod_pow(m, &self.dp);
        let m2 = self.mont_q.mod_pow(m, &self.dq);
        let diff = m1.mod_sub(&m2.rem_internal(&self.p), &self.p);
        let h = self.mont_p.mul(&self.qinv, &diff);
        Ok(&m2 + &(&h * &self.q))
    }

    /// Raw signature without CRT (`m^d mod n`); used to cross-check CRT and
    /// to benchmark the CRT speedup.
    ///
    /// # Errors
    ///
    /// Returns [`CryptoError::MessageTooLarge`] if `m >= n`.
    pub fn raw_sign_no_crt(&self, m: &BigUint) -> Result<BigUint, CryptoError> {
        if m >= &self.public.n {
            return Err(CryptoError::MessageTooLarge);
        }
        Ok(self.public.mont_n.mod_pow(m, &self.d))
    }

    /// Raw RSA decryption primitive `RSADP` (same math as signing).
    ///
    /// # Errors
    ///
    /// Returns [`CryptoError::MessageTooLarge`] if `c >= n`.
    pub fn raw_decrypt(&self, c: &BigUint) -> Result<BigUint, CryptoError> {
        self.raw_sign(c)
    }

    /// Serializes the key material (`e ‖ d ‖ p ‖ q`, length-prefixed). The
    /// caller is responsible for protecting the bytes — the paper assumes
    /// "a standard security mechanism is in place to protect the private
    /// key in each component" (§II-A).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        for field in [
            &self.public.e,
            &self.d,
            &self.p,
            &self.q,
        ] {
            let bytes = field.to_bytes_be();
            out.extend_from_slice(&(bytes.len() as u32).to_be_bytes());
            out.extend_from_slice(&bytes);
        }
        out
    }

    /// Reconstructs a key from [`Self::to_bytes`], recomputing the CRT
    /// parameters and Montgomery contexts.
    ///
    /// # Errors
    ///
    /// Returns [`CryptoError::Malformed`] for truncated input or
    /// inconsistent key material.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, CryptoError> {
        let (e_b, rest) = take_field(bytes)?;
        let (d_b, rest) = take_field(rest)?;
        let (p_b, rest) = take_field(rest)?;
        let (q_b, rest) = take_field(rest)?;
        if !rest.is_empty() {
            return Err(CryptoError::Malformed("private key (trailing bytes)"));
        }
        let e = BigUint::from_bytes_be(e_b);
        let d = BigUint::from_bytes_be(d_b);
        let p = BigUint::from_bytes_be(p_b);
        let q = BigUint::from_bytes_be(q_b);
        if p.is_zero() || q.is_zero() || p.is_one() || q.is_one() || p == q {
            return Err(CryptoError::Malformed("private key (factors)"));
        }
        let n = &p * &q;
        let one = BigUint::one();
        let p1 = &p - &one;
        let q1 = &q - &one;
        let dp = d.rem_internal(&p1);
        let dq = d.rem_internal(&q1);
        let qinv = q
            .mod_inverse(&p)
            .map_err(|_| CryptoError::Malformed("private key (qinv)"))?;
        let mont_p =
            Montgomery::new(&p).map_err(|_| CryptoError::Malformed("private key (p)"))?;
        let mont_q =
            Montgomery::new(&q).map_err(|_| CryptoError::Malformed("private key (q)"))?;
        let public =
            RsaPublicKey::new(n, e).map_err(|_| CryptoError::Malformed("private key (n)"))?;
        Ok(RsaPrivateKey {
            public,
            d,
            p,
            q,
            dp,
            dq,
            qinv,
            mont_p,
            mont_q,
        })
    }
}

impl fmt::Debug for RsaPrivateKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Never print private material.
        f.debug_struct("RsaPrivateKey")
            .field("modulus_bits", &self.public.n.bits())
            .finish_non_exhaustive()
    }
}

/// A freshly generated RSA key pair.
///
/// # Example
///
/// ```
/// use adlp_crypto::rsa::RsaKeyPair;
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let keys = RsaKeyPair::generate(512, &mut rng);
/// assert_eq!(keys.public_key().modulus_len(), 64);
/// ```
#[derive(Debug)]
pub struct RsaKeyPair {
    private: RsaPrivateKey,
}

impl RsaKeyPair {
    /// Generates a key pair with a modulus of exactly `bits` bits.
    ///
    /// The paper's configuration is `bits = 1024`; tests use smaller keys for
    /// speed. Primes are regenerated until `gcd(e, λ(n)) = 1` and the modulus
    /// width is exact.
    ///
    /// # Panics
    ///
    /// Panics if `bits < 32` or `bits` is odd.
    pub fn generate<R: RngCore + ?Sized>(bits: usize, rng: &mut R) -> Self {
        assert!(bits >= 32 && bits.is_multiple_of(2), "invalid RSA modulus width");
        let e = BigUint::from_u64(PUBLIC_EXPONENT);
        loop {
            let p = crate::prime::random_prime(bits / 2, rng);
            let mut q = crate::prime::random_prime(bits / 2, rng);
            while q == p {
                q = crate::prime::random_prime(bits / 2, rng);
            }
            let n = &p * &q;
            if n.bits() != bits {
                continue;
            }
            let one = BigUint::one();
            let p1 = &p - &one;
            let q1 = &q - &one;
            // λ(n) = lcm(p-1, q-1)
            let g = p1.gcd(&q1);
            // gcd of positive numbers is non-zero; re-draw primes if any of
            // these structurally-guaranteed steps ever fails.
            let Ok((lambda, _)) = (&p1 * &q1).div_rem(&g) else {
                continue;
            };
            let d = match e.mod_inverse(&lambda) {
                Ok(d) => d,
                Err(_) => continue, // e not coprime with λ(n); rare
            };
            let dp = d.rem_internal(&p1);
            let dq = d.rem_internal(&q1);
            let qinv = match q.mod_inverse(&p) {
                Ok(v) => v,
                Err(_) => continue,
            };
            let Ok(public) = RsaPublicKey::new(n, e.clone()) else {
                continue;
            };
            let Ok(mont_p) = Montgomery::new(&p) else {
                continue;
            };
            let Ok(mont_q) = Montgomery::new(&q) else {
                continue;
            };
            return RsaKeyPair {
                private: RsaPrivateKey {
                    public,
                    d,
                    p,
                    q,
                    dp,
                    dq,
                    qinv,
                    mont_p,
                    mont_q,
                },
            };
        }
    }

    /// The public half.
    pub fn public_key(&self) -> &RsaPublicKey {
        &self.private.public
    }

    /// The private half.
    pub fn private_key(&self) -> &RsaPrivateKey {
        &self.private
    }

    /// Consumes the pair, returning the private key (which owns the public).
    pub fn into_private_key(self) -> RsaPrivateKey {
        self.private
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(77)
    }

    #[test]
    fn generate_roundtrip_sign_verify_raw() {
        let mut r = rng();
        let kp = RsaKeyPair::generate(256, &mut r);
        let m = BigUint::from_u64(0xdead_beef);
        let s = kp.private_key().raw_sign(&m).unwrap();
        assert_eq!(kp.public_key().raw_verify(&s).unwrap(), m);
    }

    #[test]
    fn crt_matches_no_crt() {
        let mut r = rng();
        let kp = RsaKeyPair::generate(256, &mut r);
        for _ in 0..10 {
            let m = BigUint::random_below(kp.public_key().modulus(), &mut r);
            assert_eq!(
                kp.private_key().raw_sign(&m).unwrap(),
                kp.private_key().raw_sign_no_crt(&m).unwrap()
            );
        }
    }

    #[test]
    fn encrypt_decrypt_roundtrip() {
        let mut r = rng();
        let kp = RsaKeyPair::generate(256, &mut r);
        let m = BigUint::from_u64(42);
        let c = kp.public_key().raw_encrypt(&m).unwrap();
        assert_ne!(c, m);
        assert_eq!(kp.private_key().raw_decrypt(&c).unwrap(), m);
    }

    #[test]
    fn message_out_of_range_rejected() {
        let mut r = rng();
        let kp = RsaKeyPair::generate(128, &mut r);
        let too_big = kp.public_key().modulus().clone();
        assert_eq!(
            kp.private_key().raw_sign(&too_big),
            Err(CryptoError::MessageTooLarge)
        );
        assert_eq!(
            kp.public_key().raw_verify(&too_big),
            Err(CryptoError::MessageTooLarge)
        );
    }

    #[test]
    fn modulus_width_is_exact() {
        let mut r = rng();
        for bits in [128usize, 256, 512] {
            let kp = RsaKeyPair::generate(bits, &mut r);
            assert_eq!(kp.public_key().modulus().bits(), bits);
            assert_eq!(kp.public_key().modulus_len(), bits / 8);
        }
    }

    #[test]
    fn public_key_bytes_roundtrip() {
        let mut r = rng();
        let kp = RsaKeyPair::generate(128, &mut r);
        let bytes = kp.public_key().to_bytes();
        let parsed = RsaPublicKey::from_bytes(&bytes).unwrap();
        assert_eq!(&parsed, kp.public_key());
        assert!(RsaPublicKey::from_bytes(&bytes[..bytes.len() - 1]).is_err());
        assert!(RsaPublicKey::from_bytes(&[0, 0]).is_err());
    }

    #[test]
    fn private_key_bytes_roundtrip() {
        let mut r = rng();
        let kp = RsaKeyPair::generate(256, &mut r);
        let bytes = kp.private_key().to_bytes();
        let restored = RsaPrivateKey::from_bytes(&bytes).unwrap();
        assert_eq!(restored.public_key(), kp.public_key());
        // The restored key signs identically (CRT params recomputed).
        let m = BigUint::from_u64(0xfeed);
        assert_eq!(
            restored.raw_sign(&m).unwrap(),
            kp.private_key().raw_sign(&m).unwrap()
        );
        // Truncation and garbage are rejected.
        assert!(RsaPrivateKey::from_bytes(&bytes[..bytes.len() - 3]).is_err());
        assert!(RsaPrivateKey::from_bytes(&[0, 0, 0]).is_err());
    }

    #[test]
    fn distinct_keys_for_distinct_seeds() {
        let mut r1 = rand::rngs::StdRng::seed_from_u64(1);
        let mut r2 = rand::rngs::StdRng::seed_from_u64(2);
        let k1 = RsaKeyPair::generate(128, &mut r1);
        let k2 = RsaKeyPair::generate(128, &mut r2);
        assert_ne!(k1.public_key().modulus(), k2.public_key().modulus());
    }
}
