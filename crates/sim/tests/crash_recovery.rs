//! Crash-chaos acceptance tests: loggers and replicas die and restart
//! mid-stream under storage faults, and the durability contract holds for
//! every seed — no acked entry lost, torn tails truncated and counted
//! (never panicked over), restarted replicas rejoin lagging and catch up,
//! and tamper classification is identical to a crash-free run.

use adlp_audit::ClusterAuditor;
use adlp_cluster::ReplicaDivergence;
use adlp_logger::LogStore;
use adlp_sim::{
    run_cluster_chaos, run_single_logger_chaos, ClusterChaosConfig, ClusterChaosOutcome,
    SingleChaosConfig,
};

/// Fault seeds every scenario must survive. CI runs all of them.
const SEEDS: [u64; 4] = [7, 41, 1009, 65537];

#[test]
fn single_logger_chaos_never_loses_acked_entries() {
    for seed in SEEDS {
        let outcome = run_single_logger_chaos(&SingleChaosConfig::new(seed)).unwrap();
        assert!(
            !outcome.acked.is_empty(),
            "seed {seed}: chaos run acked nothing"
        );
        assert!(outcome.crashes >= 4, "seed {seed}: schedule broke");
        assert!(
            outcome.acked_survived_in_order(),
            "seed {seed}: an acked entry vanished or reordered across {} crashes",
            outcome.crashes
        );
        assert!(
            outcome.store.verify_chain().is_ok(),
            "seed {seed}: recovered chain broken"
        );
        // Torn-tail losses are reported, and every recovery's account flows
        // into the shared durability counters — nothing panics, nothing is
        // silently absorbed.
        assert_eq!(
            outcome.records_truncated(),
            outcome.counters.records_truncated(),
            "seed {seed}: recovery reports disagree with durability counters"
        );
    }
}

#[test]
fn single_logger_faults_actually_fire_across_seeds() {
    // The harness is only credible if the fault injector bites: across the
    // seed set some appends must have torn and some syncs must have failed.
    let mut wal_failures = 0;
    let mut fsync_failures = 0;
    for seed in SEEDS {
        let outcome = run_single_logger_chaos(&SingleChaosConfig::new(seed)).unwrap();
        wal_failures += outcome.counters.wal_append_failures();
        fsync_failures += outcome.counters.fsync_failures();
        assert!(
            outcome.acked.len() < outcome.submitted,
            "seed {seed}: every submission acked — faults never fired"
        );
    }
    assert!(wal_failures > 0, "no torn write ever refused an append");
    assert!(fsync_failures > 0, "no fsync failure ever fired");
}

#[test]
fn single_logger_tamper_verdict_matches_crash_free_control() {
    for seed in &SEEDS[..3] {
        let outcome = run_single_logger_chaos(&SingleChaosConfig::new(*seed)).unwrap();
        // Control: the same acked entries in a store that never crashed.
        let control = LogStore::new();
        for record in &outcome.acked {
            control.append_encoded(record.clone());
        }
        assert!(control.verify_chain().is_ok());

        // Rewrite the same logical record in both logs.
        let victim = outcome.acked.len() / 2;
        let recovered = outcome.store.encoded_records();
        let position = recovered
            .iter()
            .position(|r| r == &outcome.acked[victim])
            .expect("acked entry present in recovered log");
        let forged = vec![0xEE; 40];
        outcome
            .store
            .tamper_with_record(position, forged.clone())
            .unwrap();
        control.tamper_with_record(victim, forged).unwrap();

        // Both chains indict exactly the rewritten record: surviving a
        // crash neither hides tampering nor shifts the blame.
        let chaos_evidence = outcome.store.verify_chain().unwrap_err();
        let control_evidence = control.verify_chain().unwrap_err();
        assert_eq!(
            chaos_evidence.first_bad_index, position,
            "seed {seed}: chaos log blames the wrong record"
        );
        assert_eq!(
            control_evidence.first_bad_index, victim,
            "seed {seed}: control log blames the wrong record"
        );
    }
}

#[test]
fn cluster_replica_rejoins_lagging_and_catches_up() {
    for seed in SEEDS {
        let outcome = run_cluster_chaos(&ClusterChaosConfig::new(seed)).unwrap();
        let recovery = outcome
            .recovery
            .as_ref()
            .expect("durable restart reports a recovery");
        assert!(
            recovery.snapshot_records + recovery.wal_replayed > 0,
            "seed {seed}: victim restarted empty instead of recovering"
        );
        assert!(
            outcome.rejoined_lagging,
            "seed {seed}: restarted replica was not a clean lagging prefix"
        );
        assert!(
            outcome.adopted > 0,
            "seed {seed}: catch-up adopted nothing despite the crash window"
        );
        assert!(
            outcome.acked_in_quorum_logs(),
            "seed {seed}: a quorum-acked entry is missing from the quorum log"
        );
        let view = outcome.view();
        assert!(
            view.divergences().is_empty(),
            "seed {seed}: crash recovery manufactured divergence: {:?}",
            view.divergences()
        );
        assert!(
            view.lagging().is_empty(),
            "seed {seed}: replica still lagging after catch-up: {:?}",
            view.lagging()
        );
        let audit = ClusterAuditor::new(outcome.cluster.keys().clone()).audit_view(&view);
        assert!(
            audit.divergences.is_empty() && audit.undecodable == 0,
            "seed {seed}: auditor flagged a crash-only run"
        );
        assert_eq!(
            outcome.stats.records_truncated,
            outcome.recovery.as_ref().map_or(0, |r| r.records_truncated),
            "seed {seed}: truncation counters out of step with recovery report"
        );
    }
}

#[test]
fn cluster_tamper_attribution_identical_to_crash_free_run() {
    for seed in &SEEDS[..3] {
        let chaos = run_cluster_chaos(&ClusterChaosConfig::new(*seed)).unwrap();
        let control =
            run_cluster_chaos(&ClusterChaosConfig::new(*seed).without_crash()).unwrap();
        assert!(control.recovery.is_none() && control.adopted == 0);

        // Rewrite the same record on the same replica in both clusters.
        let forged = vec![0xEE; 40];
        for run in [&chaos, &control] {
            run.cluster
                .replica(0, 0)
                .unwrap()
                .handle()
                .store()
                .tamper_with_record(0, forged.clone())
                .unwrap();
        }

        let chaos_view = chaos.view();
        let control_view = control.view();
        let expected = ReplicaDivergence {
            shard: 0,
            replica: 0,
            first_divergent_index: 0,
        };
        assert_eq!(
            chaos_view.divergences(),
            vec![expected.clone()],
            "seed {seed}: chaos run misattributed the tamper"
        );
        assert_eq!(
            chaos_view.divergences(),
            control_view.divergences(),
            "seed {seed}: crash history changed divergence attribution"
        );

        let audit_of = |run: &ClusterChaosOutcome, view| {
            ClusterAuditor::new(run.cluster.keys().clone()).audit_view(view)
        };
        let chaos_audit = audit_of(&chaos, &chaos_view);
        let control_audit = audit_of(&control, &control_view);
        assert_eq!(chaos_audit.divergences, control_audit.divergences);
        assert_eq!(chaos_audit.undecodable, control_audit.undecodable);
        assert!(
            !chaos_audit.all_clear(),
            "seed {seed}: tampered cluster audited clean"
        );
    }
}
