//! Fault-injection scenarios for the sharded, replicated logger cluster.
//!
//! These are the acceptance proofs for the cluster subsystem:
//!
//! * **quorum liveness** — R=3/W=2 with one replica killed mid-run loses
//!   nothing, and the auditor verifies every shard root against the epoch
//!   super-root;
//! * **counted loss** — with two replicas of a shard down, sub-quorum
//!   deposits are counted in `ClusterStats`, never silently dropped;
//! * **divergence detection** — a replica whose history is rewritten via
//!   the existing tamper path is identified by shard and replica;
//! * **shard partition** — an unreachable shard degrades only its own
//!   keyspace slice;
//! * **rolling restart** — replicas cycled one at a time under transport
//!   fault injection lose nothing and audit clean.

use adlp_audit::{ClusterAuditor, SealCheck};
use adlp_cluster::{ClusterConfig, ClusterLogClient, LoggerCluster, ReplicaStatus};
use adlp_core::{AdlpNodeBuilder, DepositTarget, FaultConfig, ResilienceConfig, Scheme};
use adlp_pubsub::{Master, NodeId, Topic};
use adlp_sim::{fanout_app, PayloadKind, Scenario};
use std::sync::Arc;
use std::time::Duration;

#[test]
fn one_replica_down_keeps_quorum_and_seals_clean() {
    let report = Scenario::new(fanout_app(PayloadKind::Custom(64), 2, 100.0))
        .key_bits(512)
        .seed(101)
        .duration(Duration::from_millis(600))
        .cluster(ClusterConfig::replicated(2))
        .kill_replica_after(0, 1, Duration::from_millis(200))
        .run();

    let cluster = report.cluster.as_ref().expect("cluster run");
    assert!(cluster.stats.submitted > 0, "traffic must have flowed");
    assert_eq!(
        cluster.stats.entries_lost, 0,
        "2 of 3 replicas satisfy W=2: zero loss, stats {:?}",
        cluster.stats
    );
    assert!(cluster.stats.balanced());
    assert!(
        cluster.stats.failovers > 0,
        "deposits after the kill must record the dead replica as a failover"
    );

    // Every shard's live root verifies against the signed super-root.
    let audit = report.cluster_audit().expect("cluster audit");
    assert_eq!(audit.seal, SealCheck::Verified);
    for shard in &cluster.view.shards {
        assert!(
            cluster
                .seal
                .verify_shard(shard.shard, &shard.root, shard.records.len()),
            "shard {} root must verify against the epoch seal",
            shard.shard
        );
    }
    assert!(audit.divergences.is_empty());
    assert!(
        audit.report.all_clear(),
        "faithful cluster run must audit clean: {:?}",
        audit.report.verdicts
    );
}

#[test]
fn quorum_loss_is_counted_never_silent() {
    let report = Scenario::new(fanout_app(PayloadKind::Custom(64), 1, 100.0))
        .key_bits(512)
        .seed(102)
        .duration(Duration::from_millis(600))
        .cluster(ClusterConfig::replicated(1))
        .kill_replica_after(0, 0, Duration::from_millis(150))
        .kill_replica_after(0, 1, Duration::from_millis(150))
        .run();

    let cluster = report.cluster.as_ref().expect("cluster run");
    assert!(
        cluster.stats.entries_lost > 0,
        "1 of 3 replicas cannot satisfy W=2: loss must be counted, stats {:?}",
        cluster.stats
    );
    assert!(
        cluster.stats.balanced(),
        "every submission is acked or counted lost: {:?}",
        cluster.stats
    );
    // The survivor kept the full history, so the quorum log is intact and
    // the loss shows up only where it belongs: the stats.
    let audit = report.cluster_audit().expect("cluster audit");
    assert!(audit.divergences.is_empty());
}

#[test]
fn tampered_replica_is_identified_by_shard_and_replica() {
    // Direct wiring (no Scenario): two ADLP nodes deposit into a cluster,
    // then one replica's history is rewritten via the store's tamper path.
    let master = Master::new();
    let cluster = LoggerCluster::spawn(ClusterConfig::replicated(1)).unwrap();
    let client = Arc::new(ClusterLogClient::in_proc(&cluster));
    let mut rng = rand::rngs::StdRng::seed_from_u64(103);
    use rand::SeedableRng;

    let cam = AdlpNodeBuilder::new("cam")
        .scheme(Scheme::adlp())
        .key_bits(512)
        .build_with_target(&master, DepositTarget::Cluster(Arc::clone(&client)), &mut rng)
        .unwrap();
    let det = AdlpNodeBuilder::new("det")
        .scheme(Scheme::adlp())
        .key_bits(512)
        .build_with_target(&master, DepositTarget::Cluster(Arc::clone(&client)), &mut rng)
        .unwrap();
    let publisher = cam.advertise("image").unwrap();
    let _sub = det.subscribe("image", |_| {}).unwrap();
    for i in 0..5u8 {
        publisher.publish(&[i; 32]).unwrap();
        std::thread::sleep(Duration::from_millis(20));
    }
    std::thread::sleep(Duration::from_millis(100));
    cam.flush().unwrap();
    det.flush().unwrap();

    // Rewrite record 1 on replica 2 of shard 0.
    let victim = cluster.replica(0, 2).unwrap().handle();
    let store = victim.store();
    let original = store.entries().remove(1).unwrap();
    let mut forged = original.clone();
    forged.timestamp_ns ^= 0xdead_beef;
    store.tamper_with_record(1, forged.encode()).unwrap();

    let auditor = ClusterAuditor::new(cluster.keys().clone())
        .with_topology([(Topic::new("image"), NodeId::new("cam"))]);
    let audit = auditor.audit_view(&cluster.view());
    assert!(!audit.all_clear());
    assert_eq!(audit.divergences.len(), 1, "exactly one diverged replica");
    let d = &audit.divergences[0];
    assert_eq!((d.shard, d.replica), (0, 2), "divergence names the culprit");
    assert_eq!(d.first_divergent_index, 1);
    // The honest majority outvotes the tampered replica, so the merged
    // quorum log still audits clean at the entry level.
    assert!(audit.report.all_clear());
}

#[test]
fn shard_partition_degrades_only_its_own_slice() {
    // Three unreplicated shards; shard death severs one slice of the
    // keyspace. Eight publishers spread links across the ring.
    let report = Scenario::new(fanout_app(PayloadKind::Custom(64), 8, 60.0))
        .key_bits(512)
        .seed(104)
        .duration(Duration::from_millis(600))
        .cluster(ClusterConfig::new(3))
        .kill_replica_after(0, 0, Duration::from_millis(200))
        .kill_replica_after(1, 0, Duration::from_millis(200))
        .run();

    let cluster = report.cluster.as_ref().expect("cluster run");
    assert!(
        cluster.stats.entries_lost > 0,
        "deposits routed to the dead shards must be counted lost: {:?}",
        cluster.stats
    );
    assert!(cluster.stats.balanced());
    // The surviving shard kept taking deposits after the partition: its
    // quorum log exceeds what the dead shards froze at.
    let lens: Vec<usize> = cluster
        .view
        .shards
        .iter()
        .map(|s| s.records.len())
        .collect();
    assert!(
        lens[2] > 0,
        "surviving shard must hold records, got depths {lens:?}"
    );
}

#[test]
fn rolling_restart_under_faults_loses_nothing() {
    // One shard, R=3/W=2; replicas are cycled one at a time while the
    // publisher's links run under the PR-1 fault injector. At most one
    // replica is down at any instant, so the quorum never breaks.
    let report = Scenario::new(fanout_app(PayloadKind::Custom(64), 1, 100.0))
        .key_bits(512)
        .seed(105)
        .duration(Duration::from_millis(800))
        .resilience(
            ResilienceConfig::new()
                .with_ack_timeout(Duration::from_millis(20))
                .with_max_retries(1000)
                .with_retry_backoff(Duration::from_millis(5)),
        )
        .faults_for(
            "feeder",
            FaultConfig::seeded(9)
                .with_drop_rate(0.2)
                .with_delay(0.1, Duration::from_millis(5)),
        )
        .cluster(ClusterConfig::replicated(1))
        .kill_replica_after(0, 0, Duration::from_millis(150))
        .restart_replica_after(0, 0, Duration::from_millis(300))
        .kill_replica_after(0, 1, Duration::from_millis(450))
        .restart_replica_after(0, 1, Duration::from_millis(600))
        .run();

    let cluster = report.cluster.as_ref().expect("cluster run");
    assert!(cluster.stats.submitted > 0);
    assert_eq!(
        cluster.stats.entries_lost, 0,
        "rolling restart must never break the quorum: {:?}",
        cluster.stats
    );
    assert!(cluster.stats.balanced());

    // Restarted replicas re-enter as lagging followers — never diverged.
    let audit = report.cluster_audit().expect("cluster audit");
    assert!(
        audit.divergences.is_empty(),
        "restarts are fail-stop, not tamper evidence: {:?}",
        audit.divergences
    );
    assert!(!audit.lagging.is_empty(), "cycled replicas lag the quorum");
    let statuses = &cluster.view.shards[0].statuses;
    assert!(statuses
        .iter()
        .any(|s| matches!(s, ReplicaStatus::Lagging { .. })));
    assert_eq!(audit.seal, SealCheck::Verified);
    assert!(
        audit.report.all_clear(),
        "honest nodes must audit clean through a rolling restart: {:?}",
        audit.report.verdicts
    );
}
