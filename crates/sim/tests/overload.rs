//! Overload acceptance scenarios: the deposit pipeline drowning by
//! construction.
//!
//! A paced logger admits one deposit per 20 ms (50 entries/s) while the
//! fan-out app generates ~800 entries/s (feeder `out` + sink `in` at
//! 400 Hz) — a 16× overload factor set by construction, not by luck.
//! These are the acceptance proofs for the overload-resilient pipeline:
//!
//! * **bounded memory** — no deposit queue ever exceeds its configured
//!   capacity, no matter how hard the arrival side pushes;
//! * **backpressure** — pressure-aware drivers skip ticks while their
//!   node's queue sits above the high watermark (counted, never silent);
//! * **accountable shedding** — every shed entry is covered by a signed
//!   gap receipt that survives the full audit: the auditor classifies the
//!   losses as `Shed`, with zero false `Hidden` convictions and zero
//!   rejected entries;
//! * **breaker recovery** — the per-target circuit breaker trips under
//!   saturation and closes again once probes succeed: overload is a state
//!   the pipeline passes through, not a terminal condition.
//!
//! Each seed is its own `#[test]` so the ≥4-seed acceptance matrix runs in
//! parallel under the standard harness.

use adlp_audit::AuditReport;
use adlp_cluster::ClusterConfig;
use adlp_core::{OverloadConfig, ShedPolicy};
use adlp_pubsub::BreakerConfig;
use adlp_sim::{fanout_app, PayloadKind, Scenario, ScenarioReport};
use std::time::Duration;

/// One deposit per 20 ms: 50 entries/s of service for ~800 entries/s of
/// arrival — 16× overload by construction.
const PACE: Duration = Duration::from_millis(20);
const HZ: f64 = 400.0;
const CAPACITY: usize = 16;

fn overload_config(seed: u64) -> OverloadConfig {
    // Watermarks hug the capacity so the pressure-aware driver still gets
    // throttled, but bursts that land while the worker is blocked inside a
    // paced deposit overshoot the queue and must be shed.
    OverloadConfig::with_capacity(CAPACITY)
        .with_watermarks(12, 15)
        .with_breaker(
            BreakerConfig::default()
                .with_trip(4, 8)
                .with_cooldown(Duration::from_millis(25))
                .with_seed(seed),
        )
}

fn run_overloaded(seed: u64, policy: ShedPolicy) -> ScenarioReport {
    Scenario::new(fanout_app(PayloadKind::Custom(64), 1, HZ))
        .key_bits(512)
        .seed(seed)
        .warmup(Duration::from_millis(100))
        .duration(Duration::from_millis(700))
        .overload(overload_config(seed).with_policy(policy))
        .paced_logger(PACE)
        .run()
}

/// The full acceptance-criteria bundle for one deterministic 16× run.
fn assert_overload_invariants(report: &ScenarioReport) {
    // Bounded memory: the queue never exceeded its capacity.
    for (node, p) in &report.pressure {
        assert!(
            p.high_water() <= CAPACITY as u64,
            "{node}: queue grew past its bound ({} > {CAPACITY})",
            p.high_water()
        );
    }

    // Backpressure engaged: the driver skipped ticks under high water.
    assert!(
        report.publishes_throttled > 0,
        "16x overload must throttle the pressure-aware driver"
    );

    // The pipeline kept depositing (throughput under overload) and drained
    // completely at teardown (recovery once the load stopped).
    let deposited: u64 = report.pressure.values().map(|p| p.deposited()).sum();
    assert!(deposited > 0, "overload must degrade, not halt, deposits");
    assert!(report.store_len > 0);
    for (node, p) in &report.pressure {
        assert_eq!(p.depth(), 0, "{node}: queue must drain once load drops");
    }

    // Accountable shedding: losses happened, and every one of them is
    // admitted by a receipt that was actually delivered.
    let shed_total: u64 = report.pressure.values().map(|p| p.entries_shed()).sum();
    assert!(shed_total > 0, "16x overload must shed: {:?}", report.pressure);
    for (node, p) in &report.pressure {
        assert_eq!(
            p.receipts_undeliverable(),
            0,
            "{node}: every gap receipt must reach the logger"
        );
    }

    // Breaker lifecycle: saturation tripped it, recovery closed it.
    let trips: u64 = report.pressure.values().map(|p| p.breaker_trips()).sum();
    let closes: u64 = report.pressure.values().map(|p| p.breaker_closes()).sum();
    assert!(trips >= 1, "sustained saturation must trip a breaker");
    assert!(closes >= 1, "successful probes must re-close the breaker");

    // The audit: zero false convictions. Shed ranges verify, absences they
    // cover classify as `Shed` (not `Hidden`), and no deposited entry —
    // receipt or data — is rejected.
    let audit = report.audit();
    assert!(
        audit.rejected_entries.is_empty(),
        "overload must not produce invalid entries: {:?}",
        audit.rejected_entries
    );
    assert!(
        audit.hidden.is_empty(),
        "receipted sheds must not convict as hiding: {:?}",
        audit.hidden
    );
    assert!(audit.all_clear(), "verdicts: {:?}", audit.verdicts);

    // Exact accounting: the verified receipts admit precisely the number
    // of entries the pipelines shed — no loss is unaccounted, no receipt
    // overclaims.
    let receipted: u64 = audit.shed.iter().map(|r| r.count).sum();
    assert_eq!(
        receipted, shed_total,
        "verified receipts must cover exactly the shed entries (receipts: {:?})",
        audit.shed
    );
    assert!(!audit.shed.is_empty());
}

#[test]
fn overload_16x_seed_11_sheds_accountably_and_recovers() {
    assert_overload_invariants(&run_overloaded(11, ShedPolicy::OldestFirst));
}

#[test]
fn overload_16x_seed_22_sheds_accountably_and_recovers() {
    assert_overload_invariants(&run_overloaded(22, ShedPolicy::OldestFirst));
}

#[test]
fn overload_16x_seed_33_sheds_accountably_and_recovers() {
    assert_overload_invariants(&run_overloaded(33, ShedPolicy::OldestFirst));
}

#[test]
fn overload_16x_seed_44_sheds_accountably_and_recovers() {
    assert_overload_invariants(&run_overloaded(44, ShedPolicy::OldestFirst));
}

#[test]
fn overload_16x_newest_first_policy_holds_same_invariants() {
    // The deadline-aware policy sheds the newest (already-stale-by-arrival)
    // entries instead of the oldest queued ones; accountability must not
    // depend on which end of the queue pays.
    assert_overload_invariants(&run_overloaded(55, ShedPolicy::NewestFirst));
}

/// Deposited entries under faults are all genuine: convictions may only be
/// evidence-loss (`Hid*`) artifacts of in-flight loss at the crash point,
/// never falsification/fabrication/replay, and never rejected entries.
fn only_evidence_loss_violations(audit: &AuditReport) -> bool {
    use adlp_audit::ViolationKind;
    audit.rejected_entries.is_empty()
        && audit
            .verdicts
            .values()
            .flat_map(|v| v.violations.iter())
            .all(|v| {
                matches!(
                    v.kind,
                    ViolationKind::HidPublication | ViolationKind::HidReceipt
                )
            })
}

#[test]
fn overload_with_replica_crash_chaos_stays_accountable() {
    // Breaker flap meets crash chaos: a 16x-overloaded pipeline deposits
    // into a replicated cluster shard while one replica is killed mid-run
    // and restarted (lagging) later. Quorum absorbs the crash, the queue
    // bound holds, receipts still verify, and the auditor never converts
    // overload + crash into a falsification conviction.
    let report = Scenario::new(fanout_app(PayloadKind::Custom(64), 1, HZ))
        .key_bits(512)
        .seed(77)
        .warmup(Duration::from_millis(100))
        .duration(Duration::from_millis(700))
        .overload(overload_config(77))
        .paced_logger(Duration::from_millis(10))
        .cluster(ClusterConfig::replicated(1))
        .kill_replica_after(0, 1, Duration::from_millis(150))
        .restart_replica_after(0, 1, Duration::from_millis(400))
        .run();

    for (node, p) in &report.pressure {
        assert!(
            p.high_water() <= CAPACITY as u64,
            "{node}: queue bound must hold under crash chaos"
        );
    }
    assert!(report.publishes_throttled > 0);
    let shed_total: u64 = report.pressure.values().map(|p| p.entries_shed()).sum();
    assert!(shed_total > 0, "pressure: {:?}", report.pressure);
    assert!(report.store_len > 0, "quorum must keep accepting deposits");

    let audit = report.audit();
    assert!(
        only_evidence_loss_violations(&audit),
        "chaos must not manufacture falsification evidence: {:?} / {:?}",
        audit.verdicts,
        audit.rejected_entries
    );
    // Receipts that made it to quorum verify; none may be rejected as
    // invalid (rejected_entries is empty above), and they never overclaim.
    let receipted: u64 = audit.shed.iter().map(|r| r.count).sum();
    assert!(
        receipted <= shed_total,
        "receipts may only admit real sheds ({receipted} > {shed_total})"
    );
}
