//! Byzantine chaos suite: the acceptance proofs for the BFT cluster mode.
//!
//! Every scripted traitor behavior, across multiple seeds, must end in
//! continued liveness (the honest `2f+1` quorum keeps acking) or a
//! verified equivocation conviction naming the exact (shard, replica) —
//! never silent acceptance of a lie.

use adlp_cluster::{AttestationScope, ReplicaStatus};
use adlp_sim::{run_byzantine_chaos, ByzantineChaosConfig, ByzantineMode};

const SEEDS: [u64; 4] = [11, 23, 37, 49];

#[test]
fn honest_control_runs_conviction_free() {
    for seed in SEEDS {
        let out = run_byzantine_chaos(&ByzantineChaosConfig::new(seed, ByzantineMode::Honest))
            .expect("chaos run");
        assert_eq!(out.lost, 0, "seed {seed}: honest 3f+1 must ack everything");
        assert_eq!(out.acked, 24);
        let audit = out.audit();
        assert!(
            audit.all_clear(),
            "seed {seed}: honest run must audit clean: {audit:?}"
        );
        assert!(audit.convicted_replicas().is_empty());
        let stats = out.cluster.stats().snapshot();
        assert_eq!(stats.equivocations_detected, 0, "seed {seed}");
        assert!(
            stats.attestations_verified > 0,
            "seed {seed}: acks must have flowed through signed attestations"
        );
        assert_eq!(stats.attestations_rejected, 0, "seed {seed}");
    }
}

#[test]
fn equivocating_replica_is_convicted_not_believed() {
    for seed in SEEDS {
        let out = run_byzantine_chaos(&ByzantineChaosConfig::new(seed, ByzantineMode::Equivocate))
            .expect("chaos run");
        // Liveness: the forged heads never match the honest group, so the
        // 2f+1 honest replicas carry every ack.
        assert_eq!(out.lost, 0, "seed {seed}: 3 honest of 4 is a 2f+1 quorum");

        // Conviction: the traitor's deposit-time lie and its store's
        // view-time truth are two valid signatures over conflicting heads
        // at one scope — independently re-verified by the auditor.
        let audit = out.audit();
        assert!(!audit.all_clear(), "seed {seed}");
        assert_eq!(
            audit.convicted_replicas(),
            vec![(0, 2)],
            "seed {seed}: conviction must name the exact traitor"
        );
        assert_eq!(audit.invalid_convictions, 0, "seed {seed}");
        assert!(audit
            .convictions
            .iter()
            .all(|p| matches!(p.scope(), AttestationScope::Head { .. })));

        // The traitor stored honestly, so content comparison sees nothing:
        // only the attestation layer catches it.
        assert!(
            audit.divergences.is_empty(),
            "seed {seed}: an equivocator with an honest store must not show as diverged"
        );
        let view = out.cluster.view();
        assert!(
            view.shards[0]
                .statuses
                .iter()
                .enumerate()
                .all(|(i, s)| (i == 2) == matches!(s, ReplicaStatus::Equivocated { .. })),
            "seed {seed}: exactly the traitor carries the Equivocated verdict: {:?}",
            view.shards[0].statuses
        );
        assert!(
            out.stats.equivocations_detected >= 1,
            "seed {seed}: {:?}",
            out.stats
        );
    }
}

#[test]
fn stale_attestation_replay_supports_nothing() {
    for seed in SEEDS {
        let out = run_byzantine_chaos(&ByzantineChaosConfig::new(seed, ByzantineMode::StaleReplay))
            .expect("chaos run");
        // Liveness: a year-old sworn statement cannot ack today's entry —
        // its scope never matches the honest group — but the honest 2f+1
        // still carry every deposit.
        assert_eq!(out.lost, 0, "seed {seed}");
        // Replaying one's own consistent statement is not equivocation:
        // no conviction, and the run audits clean.
        let audit = out.audit();
        assert!(audit.convicted_replicas().is_empty(), "seed {seed}");
        assert!(audit.all_clear(), "seed {seed}: {audit:?}");
        // The replay was counted as a refusal on all but the first
        // deposit (its vote supported nothing).
        assert!(
            out.stats.failovers >= 23,
            "seed {seed}: stale replays must be counted as non-supporting: {:?}",
            out.stats
        );
    }
}

#[test]
fn conflicting_epoch_seal_convicts_the_signer() {
    for seed in SEEDS {
        let out =
            run_byzantine_chaos(&ByzantineChaosConfig::new(seed, ByzantineMode::ConflictingSeal))
                .expect("chaos run");
        assert_eq!(out.lost, 0, "seed {seed}: deposits were honest all run");
        let audit = out.audit();
        assert!(!audit.all_clear(), "seed {seed}");
        assert_eq!(audit.convicted_replicas(), vec![(0, 2)], "seed {seed}");
        assert!(
            audit
                .convictions
                .iter()
                .any(|p| matches!(p.scope(), AttestationScope::Epoch { .. })),
            "seed {seed}: the conviction must be at epoch-seal scope"
        );
        // The honest seal itself still verifies — the traitor's second
        // signature convicts it without un-sealing the epoch.
        assert_eq!(audit.seal, adlp_audit::SealCheck::Verified, "seed {seed}");
        assert!(out.stats.equivocations_detected >= 1, "seed {seed}");
    }
}

#[test]
fn silent_replica_costs_redundancy_not_liveness() {
    for seed in SEEDS {
        let out = run_byzantine_chaos(&ByzantineChaosConfig::new(seed, ByzantineMode::Silent))
            .expect("chaos run");
        assert_eq!(out.lost, 0, "seed {seed}: 2f+1 honest voices suffice");
        assert_eq!(out.acked, 24, "seed {seed}");
        // Withholding is indistinguishable from death: counted as
        // failover redundancy loss, convicting nobody.
        assert!(out.stats.failovers >= 24, "seed {seed}: {:?}", out.stats);
        let audit = out.audit();
        assert!(audit.convicted_replicas().is_empty(), "seed {seed}");
        assert!(audit.all_clear(), "seed {seed}: {audit:?}");
    }
}
