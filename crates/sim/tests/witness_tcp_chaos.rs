//! TCP witness chaos suite: the acceptance proofs for DESIGN.md §3.13.
//!
//! Every scenario of the in-process suite (`witness_chaos.rs`) re-run
//! over real localhost sockets behind seeded chaos proxies — resets,
//! splits, delays, reorders, stalls, refused dials — plus the drill the
//! lab mesh cannot stage: a witness killed mid-run and restarted from
//! nothing but its key and its storage device.
//!
//! The restart-under-chaos invariant, across every seed:
//!
//! * the restarted witness never re-TOFUs onto a different anchor,
//! * its cosign high-water mark never regresses,
//! * the federation reconverges to the `f + 1` cosign quorum after every
//!   partition heals,
//! * zero false convictions, and every genuine split view convicted.

use adlp_pubsub::NodeId;
use adlp_sim::{run_tcp_witness_chaos, TcpWitnessChaosConfig, TcpWitnessMode};

const SEEDS: [u64; 4] = [11, 23, 37, 49];

#[test]
fn honest_federation_converges_over_chaotic_sockets() {
    for seed in SEEDS {
        let out = run_tcp_witness_chaos(&TcpWitnessChaosConfig::new(seed, TcpWitnessMode::Honest))
            .expect("chaos run");
        assert!(
            out.converged_after.is_some(),
            "seed {seed}: gossip must converge through socket chaos"
        );
        let witnessed = out.witnessed.as_ref().expect("quorum-cosigned head");
        assert_eq!(
            witnessed.sth.size, 10,
            "seed {seed}: the true head (8 seeded + 2 grown) is witnessed"
        );
        assert!(out.proofs.is_empty(), "seed {seed}: no convictions in an honest run");
        assert_eq!(out.rejected, 0, "seed {seed}");
        assert_eq!(
            out.sth_verify_failures, 0,
            "seed {seed}: honest acks must verify cleanly"
        );
        assert!(out.light_verified >= 1, "seed {seed}");
        assert_eq!(
            out.cosign_quorum_unavailable, 0,
            "seed {seed}: the quorum never went away"
        );
        assert!(out.report.all_clear(), "seed {seed}: {:?}", out.report);
    }
}

#[test]
fn split_view_logger_is_convicted_over_tcp() {
    for seed in SEEDS {
        let out = run_tcp_witness_chaos(&TcpWitnessChaosConfig::new(
            seed,
            TcpWitnessMode::SplitViewLogger,
        ))
        .expect("chaos run");
        assert!(
            !out.proofs.is_empty(),
            "seed {seed}: the fork must be detected through chaotic gossip"
        );
        assert!(!out.report.all_clear(), "seed {seed}");
        assert_eq!(
            out.convicted_logs(),
            vec![NodeId::new("logger")],
            "seed {seed}: the conviction names exactly the split-view logger"
        );
        assert_eq!(
            out.report.invalid_split_views, 0,
            "seed {seed}: every folded proof is genuine"
        );
        assert!(
            out.sth_verify_failures >= 1,
            "seed {seed}: the forked ack must fail light-client verification"
        );
        assert!(
            out.light_verified >= 1,
            "seed {seed}: detection, not outage — honest audits still pass"
        );
    }
}

#[test]
fn forged_gossip_is_rejected_not_believed_over_tcp() {
    for seed in SEEDS {
        let out = run_tcp_witness_chaos(&TcpWitnessChaosConfig::new(
            seed,
            TcpWitnessMode::EquivocatingWitness,
        ))
        .expect("chaos run");
        assert!(
            out.rejected >= 1,
            "seed {seed}: forged heads must be counted as rejected"
        );
        assert!(
            out.undecodable >= 1,
            "seed {seed}: mangled frames must be counted as undecodable"
        );
        assert!(
            out.proofs.is_empty(),
            "seed {seed}: forged gossip must never assemble a conviction"
        );
        assert!(out.report.all_clear(), "seed {seed}: {:?}", out.report);
        assert!(out.converged_after.is_some(), "seed {seed}");
        assert_eq!(
            out.witnessed.as_ref().expect("quorum head").sth.size,
            10,
            "seed {seed}"
        );
        assert_eq!(out.sth_verify_failures, 0, "seed {seed}");
    }
}

#[test]
fn partition_degrades_light_clients_counted_and_heals_to_quorum() {
    for seed in SEEDS {
        let out = run_tcp_witness_chaos(&TcpWitnessChaosConfig::new(
            seed,
            TcpWitnessMode::PartitionedWitnesses,
        ))
        .expect("chaos run");
        // Liveness through the f-partition, reconvergence after heal.
        assert!(
            out.converged_after.is_some(),
            "seed {seed}: the healed federation must re-converge"
        );
        assert!(out.fed.converged(), "seed {seed}");
        let witnessed = out.witnessed.as_ref().expect("post-heal quorum head");
        assert_eq!(witnessed.sth.size, 10, "seed {seed}");
        // Degradation was COUNTED while the quorum was gone — never
        // silent trust — and recovery fired exactly once on heal.
        assert!(
            out.cosign_quorum_unavailable >= 2,
            "seed {seed}: quorum loss must be counted"
        );
        assert_eq!(
            out.quorum_recoveries, 1,
            "seed {seed}: the client recovers once when the quorum returns"
        );
        assert!(
            out.light_verified >= 3,
            "seed {seed}: direct audits kept verifying during degradation — evidence retention, not outage"
        );
        assert!(out.proofs.is_empty(), "seed {seed}");
        assert!(out.report.all_clear(), "seed {seed}: {:?}", out.report);
        assert_eq!(out.sth_verify_failures, 0, "seed {seed}");
    }
}

#[test]
fn restarted_witness_keeps_its_promises_under_chaos() {
    for seed in SEEDS {
        let out = run_tcp_witness_chaos(&TcpWitnessChaosConfig::new(
            seed,
            TcpWitnessMode::RestartingWitness,
        ))
        .expect("chaos run");
        let drill = out.restart.as_ref().expect("restart drill ran");
        // The restart invariant: same TOFU anchor byte-for-byte, and a
        // high-water mark that never regressed across the power cut.
        assert!(
            drill.invariant_holds(),
            "seed {seed}: restart invariant violated: {drill:?}"
        );
        assert_eq!(
            out.fed.restarts(drill.witness),
            1,
            "seed {seed}: exactly one restart was drilled"
        );
        // The federation reconverged around the resumed witness, on heads
        // grown while it was dark.
        assert!(
            out.converged_after.is_some(),
            "seed {seed}: the federation must reconverge after the restart"
        );
        assert_eq!(
            out.fed.live().len(),
            out.fed.config().witnesses,
            "seed {seed}: every witness is back"
        );
        // Liveness never lapsed: the survivors held the cosign quorum, so
        // the light client never had to degrade.
        assert_eq!(
            out.cosign_quorum_unavailable, 0,
            "seed {seed}: f+1 survivors keep the quorum alive"
        );
        // The post-restart temptation — the logger's own fork at a size
        // the witness durably remembers — was CONVICTED, not re-anchored.
        assert!(
            !out.proofs.is_empty(),
            "seed {seed}: the temptation fork must be convicted"
        );
        assert_eq!(
            out.convicted_logs(),
            vec![NodeId::new("logger")],
            "seed {seed}"
        );
        assert_eq!(
            out.report.invalid_split_views, 0,
            "seed {seed}: zero false convictions"
        );
        // The restarted witness ITSELF holds the conviction — it remembered
        // the honest head and refused to re-anchor onto the fork.
        assert!(
            !out
                .fed
                .witness(drill.witness)
                .expect("victim present")
                .proofs()
                .is_empty(),
            "seed {seed}: the restarted witness must convict the temptation fork"
        );
        // And the anchor map across the whole federation still agrees on
        // one anchor per log.
        let anchors = out.fed.anchors();
        let victim_anchor = anchors[&drill.witness]
            .get(&NodeId::new("logger"))
            .expect("anchor survived");
        assert_eq!(
            Some(victim_anchor),
            drill.anchor_after.as_ref(),
            "seed {seed}: the durable anchor is the federation-visible one"
        );
    }
}

/// Chaos must actually be engaging the wire — otherwise the suite proves
/// nothing about robustness. One seed suffices; the counter is summed
/// over every proxy in the run.
#[test]
fn chaos_proxies_actually_injected_faults() {
    let out = run_tcp_witness_chaos(&TcpWitnessChaosConfig::new(11, TcpWitnessMode::Honest))
        .expect("chaos run");
    assert!(
        out.chaos_faults > 0,
        "the chaos menu injected no socket faults — the suite is toothless"
    );
}
