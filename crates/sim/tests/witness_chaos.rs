//! Witness chaos suite: the acceptance proofs for the witness subsystem
//! (DESIGN.md §3.12).
//!
//! Across multiple seeds, every scripted attack must end in continued
//! liveness (the `f + 1`-of-`2f + 1` live quorum keeps cosigning the
//! honest head) or an auditor-re-verified split-view conviction naming
//! the exact log — never silent acceptance of a fork, and never a false
//! conviction from forged gossip.

use adlp_pubsub::NodeId;
use adlp_sim::{run_witness_chaos, WitnessChaosConfig, WitnessMode};

const SEEDS: [u64; 4] = [11, 23, 37, 49];

#[test]
fn honest_runs_converge_conviction_free_with_zero_verify_failures() {
    for seed in SEEDS {
        let out = run_witness_chaos(&WitnessChaosConfig::new(seed, WitnessMode::Honest))
            .expect("chaos run");
        assert!(
            out.converged_after.is_some(),
            "seed {seed}: gossip must converge under link faults"
        );
        let witnessed = out.witnessed.as_ref().expect("quorum-cosigned head");
        assert_eq!(witnessed.sth.size, 12, "seed {seed}: the true head is witnessed");
        assert!(out.proofs.is_empty(), "seed {seed}: no convictions in an honest run");
        assert_eq!(out.rejected, 0, "seed {seed}");
        assert_eq!(
            out.sth_verify_failures, 0,
            "seed {seed}: honest acks must verify cleanly"
        );
        assert_eq!(out.light_verified, 3, "seed {seed}");
        assert!(
            out.report.all_clear(),
            "seed {seed}: honest run must audit clean: {:?}",
            out.report
        );
    }
}

#[test]
fn split_view_logger_is_convicted_by_its_own_signatures() {
    for seed in SEEDS {
        let out = run_witness_chaos(&WitnessChaosConfig::new(seed, WitnessMode::SplitViewLogger))
            .expect("chaos run");
        // Gossip assembled a transferable conviction.
        assert!(
            !out.proofs.is_empty(),
            "seed {seed}: the fork must be detected by gossip"
        );
        // The auditor RE-VERIFIED the proof itself and names exactly the
        // lying logger — nothing else.
        assert!(!out.report.all_clear(), "seed {seed}");
        assert_eq!(
            out.convicted_logs(),
            vec![NodeId::new("logger")],
            "seed {seed}: the conviction must name exactly the split-view logger"
        );
        assert_eq!(
            out.report.invalid_split_views, 0,
            "seed {seed}: every folded proof is genuine"
        );
        // The light client shown the fork after trusting the truth also
        // caught it on the ack path.
        assert!(
            out.sth_verify_failures >= 1,
            "seed {seed}: the forked ack must fail light-client verification"
        );
        // The honest-view audits still verified — detection, not outage.
        assert_eq!(out.light_verified, 3, "seed {seed}");
    }
}

#[test]
fn forged_witness_gossip_is_rejected_not_believed() {
    for seed in SEEDS {
        let out =
            run_witness_chaos(&WitnessChaosConfig::new(seed, WitnessMode::EquivocatingWitness))
                .expect("chaos run");
        // The forged heads died at the signature check, the mangled frames
        // at the framing check.
        assert!(
            out.rejected >= 1,
            "seed {seed}: forged heads must be counted as rejected"
        );
        assert!(
            out.undecodable >= 1,
            "seed {seed}: mangled frames must be counted as undecodable"
        );
        // No false conviction: a forgery carries no logger signature, so
        // it can convict nobody.
        assert!(
            out.proofs.is_empty(),
            "seed {seed}: forged gossip must never assemble a conviction"
        );
        assert!(out.report.all_clear(), "seed {seed}: {:?}", out.report);
        // Liveness: the honest quorum still witnessed the true head.
        assert!(out.converged_after.is_some(), "seed {seed}");
        assert_eq!(
            out.witnessed.as_ref().expect("quorum head").sth.size,
            12,
            "seed {seed}"
        );
        assert_eq!(out.sth_verify_failures, 0, "seed {seed}");
    }
}

#[test]
fn partitioned_witness_set_retains_liveness_with_f_unreachable() {
    for seed in SEEDS {
        let out =
            run_witness_chaos(&WitnessChaosConfig::new(seed, WitnessMode::PartitionedWitnesses))
                .expect("chaos run");
        // With f of 2f+1 severed the remaining f+1 converged and reached
        // the cosign quorum — and after healing the full set agrees.
        assert!(
            out.converged_after.is_some(),
            "seed {seed}: the live majority must converge during the partition"
        );
        assert!(out.net.converged(), "seed {seed}: the healed set must re-converge");
        assert_eq!(out.net.live().len(), 3, "seed {seed}: all witnesses healed");
        let witnessed = out.witnessed.as_ref().expect("liveness under f missing");
        assert_eq!(witnessed.sth.size, 12, "seed {seed}");
        assert!(out.proofs.is_empty(), "seed {seed}");
        assert!(out.report.all_clear(), "seed {seed}: {:?}", out.report);
        assert_eq!(out.sth_verify_failures, 0, "seed {seed}");
    }
}
