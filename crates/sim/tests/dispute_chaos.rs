//! Dispute-chaos suite (DESIGN.md §3.14), each scenario across 4 seeds
//! against the real protocol stack:
//!
//! * an honestly-evidenced dispute always resolves against the guilty
//!   party (wrongful conviction overturned, correct conviction upheld);
//! * forged evidence never overturns a correct verdict;
//! * a bribed minority resolver only delays resolution — escalation
//!   doubles stakes and the supermajority settles it correctly;
//! * an evidence-withholding claimant fails toward the standing verdict;
//! * a crash mid-escalation resumes from durable dispute state and
//!   finishes to a verified, transferable resolution.

use adlp_sim::dispute::{
    bribed_resolver, crash_mid_escalation, forged_evidence, withholding_claimant,
    wrongful_conviction,
};
use adlp_dispute::Outcome;

const SEEDS: [u64; 4] = [5, 19, 101, 977];

#[test]
fn wrongful_conviction_is_overturned_on_recorded_evidence() {
    for seed in SEEDS {
        let report = wrongful_conviction(seed);
        assert_eq!(
            report.outcome,
            Outcome::Overturned,
            "seed {seed}: a sound exonerating replay must overturn"
        );
        assert_eq!(report.rounds, 1, "seed {seed}: unanimous panel, one round");
        assert!(report.proof_verifies, "seed {seed}: resolution transferable");
        assert!(report.replay_deterministic, "seed {seed}: replay determinism");
        assert_eq!(report.counters.evidence_rejected, 0, "seed {seed}");
        assert_eq!(report.counters.votes_rejected, 0, "seed {seed}");
    }
}

#[test]
fn forged_evidence_never_overturns_a_correct_verdict() {
    for seed in SEEDS {
        let report = forged_evidence(seed);
        assert_eq!(
            report.outcome,
            Outcome::Upheld,
            "seed {seed}: tampered, fabricated, and curated evidence is non-probative"
        );
        assert_eq!(report.rounds, 1, "seed {seed}");
        assert!(report.proof_verifies, "seed {seed}");
        assert!(
            report.replay_deterministic,
            "seed {seed}: even adversarial windows replay deterministically"
        );
    }
}

#[test]
fn bribed_minority_resolver_is_outvoted_through_escalation() {
    for seed in SEEDS {
        let report = bribed_resolver(seed);
        assert_eq!(report.outcome, Outcome::Upheld, "seed {seed}");
        assert_eq!(report.rounds, 2, "seed {seed}: one escalation settles it");
        // Round 0 stake plus the doubled round 1 stake.
        assert_eq!(report.total_staked, 16 + 32, "seed {seed}");
        assert_eq!(report.counters.escalations, 1, "seed {seed}");
        assert!(report.proof_verifies, "seed {seed}");
    }
}

#[test]
fn withholding_claimant_fails_toward_the_standing_verdict() {
    for seed in SEEDS {
        let report = withholding_claimant(seed);
        assert_eq!(report.outcome, Outcome::Upheld, "seed {seed}");
        assert_eq!(report.rounds, 1, "seed {seed}");
        assert!(report.proof_verifies, "seed {seed}");
        assert!(
            report.replay_deterministic,
            "seed {seed}: vacuously deterministic with no evidence"
        );
    }
}

#[test]
fn crash_mid_escalation_resumes_to_a_verified_resolution() {
    for seed in SEEDS {
        let report = crash_mid_escalation(seed);
        assert_eq!(report.outcome, Outcome::Upheld, "seed {seed}");
        assert_eq!(report.rounds, 2, "seed {seed}");
        assert_eq!(report.total_staked, 16 + 32, "seed {seed}: stakes durable");
        assert!(report.proof_verifies, "seed {seed}");
    }
}
