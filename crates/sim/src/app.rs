//! Application graphs, including the paper's self-driving car (Fig. 11(b)).

use crate::data::PayloadKind;

/// How a published topic is driven.
#[derive(Debug, Clone, PartialEq)]
pub enum DriveSpec {
    /// Published from a dedicated driver thread at a fixed rate (sensors).
    Periodic {
        /// Publications per second.
        hz: f64,
    },
    /// Published once per message received on another topic (processing
    /// nodes: perception, planning, control).
    OnInput {
        /// The triggering input topic.
        topic: String,
    },
}

/// One published topic of a node.
#[derive(Debug, Clone, PartialEq)]
pub struct PubSpec {
    /// Topic name (also the unique data type).
    pub topic: String,
    /// Payload kind/size.
    pub payload: PayloadKind,
    /// Publication driver.
    pub drive: DriveSpec,
}

/// One component of the application.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct NodeSpec {
    /// Component id.
    pub id: String,
    /// Published topics.
    pub publishes: Vec<PubSpec>,
    /// Topics consumed without driving an output (pure sinks). Topics named
    /// by `OnInput` drivers are subscribed automatically.
    pub subscribes: Vec<String>,
}

impl NodeSpec {
    /// Creates an empty component.
    pub fn new(id: impl Into<String>) -> Self {
        NodeSpec {
            id: id.into(),
            ..Default::default()
        }
    }

    /// Adds a periodic (sensor) publication.
    pub fn publishes_periodic(mut self, topic: &str, payload: PayloadKind, hz: f64) -> Self {
        self.publishes.push(PubSpec {
            topic: topic.into(),
            payload,
            drive: DriveSpec::Periodic { hz },
        });
        self
    }

    /// Adds a publication triggered by an input topic.
    pub fn publishes_on(mut self, topic: &str, payload: PayloadKind, input: &str) -> Self {
        self.publishes.push(PubSpec {
            topic: topic.into(),
            payload,
            drive: DriveSpec::OnInput {
                topic: input.into(),
            },
        });
        self
    }

    /// Adds a sink subscription.
    pub fn subscribes_to(mut self, topic: &str) -> Self {
        self.subscribes.push(topic.into());
        self
    }

    /// All topics this node consumes (sinks + trigger inputs), deduplicated.
    pub fn all_inputs(&self) -> Vec<String> {
        let mut v = self.subscribes.clone();
        for p in &self.publishes {
            if let DriveSpec::OnInput { topic } = &p.drive {
                if !v.contains(topic) {
                    v.push(topic.clone());
                }
            }
        }
        v
    }
}

/// A complete application graph.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct AppSpec {
    /// The components.
    pub nodes: Vec<NodeSpec>,
}

impl AppSpec {
    /// Creates an empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a component.
    pub fn with_node(mut self, node: NodeSpec) -> Self {
        self.nodes.push(node);
        self
    }

    /// All (topic, publisher) pairs.
    pub fn topics(&self) -> Vec<(String, String)> {
        self.nodes
            .iter()
            .flat_map(|n| {
                n.publishes
                    .iter()
                    .map(move |p| (p.topic.clone(), n.id.clone()))
            })
            .collect()
    }

    /// Validates the graph: unique node ids, unique publisher per topic,
    /// every consumed topic published by someone.
    pub fn validate(&self) -> Result<(), String> {
        let mut ids = std::collections::HashSet::new();
        for n in &self.nodes {
            if !ids.insert(&n.id) {
                return Err(format!("duplicate node id {}", n.id));
            }
        }
        let mut owners = std::collections::HashMap::new();
        for (topic, publisher) in self.topics() {
            if let Some(prev) = owners.insert(topic.clone(), publisher.clone()) {
                return Err(format!(
                    "topic {topic} published by both {prev} and {publisher}"
                ));
            }
        }
        for n in &self.nodes {
            for t in n.all_inputs() {
                if !owners.contains_key(&t) {
                    return Err(format!("node {} consumes unpublished topic {t}", n.id));
                }
            }
        }
        Ok(())
    }
}

/// The autonomous-navigation application of Figure 11(b): camera and LIDAR
/// feeders, lane detection, traffic-sign recognition, obstacle detection, a
/// planner producing steering/throttle, a controller, and the actuation
/// endpoint. Rates follow the paper where stated (camera at 20 Hz).
pub fn self_driving_app() -> AppSpec {
    AppSpec::new()
        .with_node(NodeSpec::new("imgfeed").publishes_periodic(
            "image",
            PayloadKind::Image,
            20.0,
        ))
        .with_node(NodeSpec::new("scanfeed").publishes_periodic("scan", PayloadKind::Scan, 10.0))
        .with_node(NodeSpec::new("lanedet").publishes_on(
            "lane_pos",
            PayloadKind::Custom(24),
            "image",
        ))
        .with_node(NodeSpec::new("signrec").publishes_on(
            "sign_class",
            PayloadKind::Custom(20),
            "image",
        ))
        .with_node(NodeSpec::new("obsdet").publishes_on(
            "obstacle",
            PayloadKind::Custom(32),
            "scan",
        ))
        .with_node(
            NodeSpec::new("planner")
                .publishes_on("steering", PayloadKind::Steering, "lane_pos")
                .publishes_on("throttle", PayloadKind::Custom(20), "obstacle")
                .subscribes_to("sign_class"),
        )
        .with_node(NodeSpec::new("ctrl").publishes_on(
            "actuation",
            PayloadKind::Custom(24),
            "steering",
        ).subscribes_to("throttle"))
        .with_node(NodeSpec::new("actuator").subscribes_to("actuation"))
}

/// A single publisher fanning `payload` out to `n_subs` sink subscribers at
/// `hz` — the workload of Figure 14 (Image publisher, 1–4 subscribers).
pub fn fanout_app(payload: PayloadKind, n_subs: usize, hz: f64) -> AppSpec {
    let mut app = AppSpec::new().with_node(NodeSpec::new("feeder").publishes_periodic(
        "data",
        payload,
        hz,
    ));
    for i in 0..n_subs {
        app = app.with_node(NodeSpec::new(format!("sink{i}")).subscribes_to("data"));
    }
    app
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn self_driving_app_is_valid() {
        let app = self_driving_app();
        assert!(app.validate().is_ok(), "{:?}", app.validate());
        assert_eq!(app.nodes.len(), 8);
        // The paper's end-to-end flow camera → steering exists.
        let topics = app.topics();
        assert!(topics.iter().any(|(t, p)| t == "image" && p == "imgfeed"));
        assert!(topics.iter().any(|(t, p)| t == "steering" && p == "planner"));
    }

    #[test]
    fn fanout_app_shape() {
        let app = fanout_app(PayloadKind::Image, 4, 20.0);
        assert!(app.validate().is_ok());
        assert_eq!(app.nodes.len(), 5);
    }

    #[test]
    fn validation_catches_duplicate_publisher() {
        let app = AppSpec::new()
            .with_node(NodeSpec::new("a").publishes_periodic("t", PayloadKind::Steering, 1.0))
            .with_node(NodeSpec::new("b").publishes_periodic("t", PayloadKind::Steering, 1.0));
        assert!(app.validate().is_err());
    }

    #[test]
    fn validation_catches_unpublished_input() {
        let app = AppSpec::new().with_node(NodeSpec::new("a").subscribes_to("ghost"));
        assert!(app.validate().is_err());
    }

    #[test]
    fn validation_catches_duplicate_ids() {
        let app = AppSpec::new()
            .with_node(NodeSpec::new("a"))
            .with_node(NodeSpec::new("a"));
        assert!(app.validate().is_err());
    }

    #[test]
    fn all_inputs_includes_triggers_and_sinks() {
        let n = NodeSpec::new("planner")
            .publishes_on("steering", PayloadKind::Steering, "lane_pos")
            .subscribes_to("sign_class");
        let inputs = n.all_inputs();
        assert!(inputs.contains(&"lane_pos".to_string()));
        assert!(inputs.contains(&"sign_class".to_string()));
        assert_eq!(inputs.len(), 2);
    }
}
