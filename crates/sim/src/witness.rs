//! Witness-subsystem chaos harness: a logger that lies to *some* of its
//! observers, a witness that forges, a partition that silences.
//!
//! The byzantine harness ([`crate::byzantine`]) attacks the replica layer;
//! this one attacks the *accountability* layer introduced in DESIGN.md
//! §3.12: signed tree heads, the gossiping witness set, and light-client
//! ack audits. Every scripted attack must end in one of exactly two
//! outcomes:
//!
//! * **continued liveness** — the live `f + 1`-of-`2f + 1` witness quorum
//!   keeps cosigning the honest head, forged gossip costing nothing but a
//!   rejection counter; or
//! * **a transferable conviction** — the lying logger's own two signatures
//!   at one size form a [`SplitViewProof`] that the [`ClusterAuditor`]
//!   independently re-verifies, naming the exact log.
//!
//! Never silent acceptance, and never a false conviction: a forged head
//! (signed by anyone but the log's key) is discarded at the signature
//! check, so it can convict nobody.
//!
//! Like every chaos harness here the run is entry-driven and seeded — two
//! runs with the same config produce the same gossip decisions, the same
//! convictions, and the same counters.

use adlp_audit::{ClusterAuditReport, ClusterAuditor};
use adlp_cluster::{ClusterConfig, LoggerCluster};
use adlp_crypto::rsa::RsaPrivateKey;
use adlp_crypto::RsaKeyPair;
use adlp_logger::sth::{SthPublisher, TreeHeadSigner};
use adlp_logger::{LogError, LogStore};
use adlp_pubsub::{FaultConfig, NodeId, Topic};
use adlp_witness::{
    CosignedHead, LightClient, SplitViewProof, SthKeyring, TreeHeadSource, WitnessNet,
    WitnessNetConfig,
};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::fmt;
use std::sync::Arc;

/// What the scripted adversary does.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WitnessMode {
    /// Control: one honest logger, every witness served the same view,
    /// gossip links under seeded drop/delay faults. Must converge,
    /// cosign-quorum the true head, and run conviction-free with zero
    /// light-client verification failures.
    Honest,
    /// The logger maintains a *forked* store — same length, one record
    /// rewritten — and serves the fork to a minority of witnesses (and to
    /// one of the two light clients) while showing the rest the truth.
    /// Both views are signed by the logger's own key, so gossip assembles
    /// a transferable split-view conviction naming the logger.
    SplitViewLogger,
    /// One witness turns traitor: every round it gossips heads for the
    /// logger's identity signed with its *own* key, plus mangled frames.
    /// Honest witnesses discard the forgeries at the signature check —
    /// liveness holds, nobody is convicted.
    EquivocatingWitness,
    /// `f` witnesses are partitioned away mid-run. The remaining
    /// `f + 1`-of-`2f + 1` still converge and cosign-quorum the head;
    /// healing the partition re-converges the full set.
    PartitionedWitnesses,
}

impl fmt::Display for WitnessMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            WitnessMode::Honest => "honest",
            WitnessMode::SplitViewLogger => "split-view-logger",
            WitnessMode::EquivocatingWitness => "equivocating-witness",
            WitnessMode::PartitionedWitnesses => "partitioned-witnesses",
        };
        f.write_str(name)
    }
}

/// Deterministic witness chaos plan.
#[derive(Debug, Clone)]
pub struct WitnessChaosConfig {
    /// Seed for logger/witness key generation and link-fault injection.
    pub seed: u64,
    /// Records in the logger's store at the start of the run.
    pub entries: usize,
    /// The adversary's script.
    pub mode: WitnessMode,
    /// Witness-set fault tolerance: `2f + 1` witnesses, quorum `f + 1`.
    pub f: usize,
    /// Gossip rounds to run (the harness never waits on wall-clock
    /// convergence in attack modes, where convergence is impossible by
    /// design).
    pub rounds: usize,
}

impl WitnessChaosConfig {
    /// A plan with `f = 1` (three witnesses) over a 12-record log.
    pub fn new(seed: u64, mode: WitnessMode) -> Self {
        WitnessChaosConfig {
            seed,
            entries: 12,
            mode,
            f: 1,
            rounds: 6,
        }
    }
}

/// What a witness chaos run produced.
#[derive(Debug)]
pub struct WitnessChaosOutcome {
    /// Rounds gossip took to converge (`None` when the mode makes
    /// convergence impossible — a split view never reconciles).
    pub converged_after: Option<usize>,
    /// The highest head that gathered an `f + 1` cosign quorum among the
    /// live witnesses.
    pub witnessed: Option<CosignedHead>,
    /// Split-view convictions assembled anywhere (witness set + light
    /// clients), deduplicated per (log, size).
    pub proofs: Vec<SplitViewProof>,
    /// Gossip frames discarded for bad signatures, summed over the set.
    pub rejected: u64,
    /// Gossip frames that failed wire framing (magic/checksum).
    pub undecodable: u64,
    /// Ack-path verifications the light clients performed successfully.
    pub light_verified: u64,
    /// Ack-path verifications that failed (the interceptor-visible
    /// `sth_verify_failures` counter).
    pub sth_verify_failures: u64,
    /// The cluster-auditor verdict with the run's evidence folded in.
    pub report: ClusterAuditReport,
    /// The witness set, alive, for further interrogation.
    pub net: WitnessNet,
}

impl WitnessChaosOutcome {
    /// Logs named by an auditor-verified split-view conviction.
    pub fn convicted_logs(&self) -> Vec<NodeId> {
        self.report.convicted_logs()
    }
}

/// The log identity every scenario runs under.
fn logger_id() -> NodeId {
    NodeId::new("logger")
}

fn filled_store(entries: usize, fork_at: Option<usize>) -> LogStore {
    let store = LogStore::new();
    for i in 0..entries {
        let body = match fork_at {
            Some(at) if at == i => vec![0xF0, i as u8, 0xF0, i as u8],
            _ => vec![i as u8; 16],
        };
        store.append_encoded(body);
    }
    store
}

fn sth_private(kp: &RsaKeyPair) -> Result<RsaPrivateKey, LogError> {
    RsaPrivateKey::from_bytes(&kp.private_key().to_bytes())
        .map_err(|_| LogError::Malformed("witness chaos (sth key)"))
}

fn publisher_for(kp: &RsaKeyPair, store: LogStore) -> Result<Arc<SthPublisher>, LogError> {
    Ok(Arc::new(SthPublisher::new(
        TreeHeadSigner::new(logger_id(), sth_private(kp)?),
        store,
    )))
}

/// Runs the witness chaos scenario.
///
/// # Errors
///
/// Returns [`LogError`] only for harness-level failures (key derivation,
/// cluster spawn). Adversarial behavior is the point of the exercise and
/// never errors out of the run.
pub fn run_witness_chaos(config: &WitnessChaosConfig) -> Result<WitnessChaosOutcome, LogError> {
    let mut rng = StdRng::seed_from_u64(config.seed ^ 0x717E55);
    let logger_kp = RsaKeyPair::generate(512, &mut rng);
    let sth_keys = SthKeyring::new().with_log(logger_id(), logger_kp.public_key().clone());

    let honest: Arc<SthPublisher> = publisher_for(&logger_kp, filled_store(config.entries, None))?;
    // The forked view: same length, one record rewritten, signed by the
    // SAME logger key — the lie only split-view detection can catch.
    let forked: Arc<SthPublisher> =
        publisher_for(&logger_kp, filled_store(config.entries, Some(config.entries / 2)))?;

    let net_config = WitnessNetConfig::new(config.f).with_seed(config.seed).with_fault(
        // Seeded link chaos on every gossip link: drops and delays, which
        // round-based re-broadcast must ride out.
        FaultConfig::seeded(config.seed)
            .with_drop_rate(0.15)
            .with_delay(0.2, std::time::Duration::from_millis(5)),
    );
    let n = net_config.witnesses;
    let sources: Vec<Vec<Arc<dyn TreeHeadSource>>> = (0..n)
        .map(|w| {
            let source = match config.mode {
                // The minority (the last f witnesses) is shown the fork.
                WitnessMode::SplitViewLogger if w >= n - config.f => Arc::clone(&forked),
                _ => Arc::clone(&honest),
            };
            vec![source as Arc<dyn TreeHeadSource>]
        })
        .collect();
    let mut net = WitnessNet::new(net_config, sth_keys.clone(), sources);

    if config.mode == WitnessMode::PartitionedWitnesses {
        for w in 0..config.f {
            net.sever(w);
        }
    }

    // The traitor's imposter key: NOT the logger's, so its forged heads
    // must die at the receivers' signature check.
    let traitor_signer = {
        let mut traitor_rng = StdRng::seed_from_u64(config.seed ^ 0x7124);
        let traitor_kp = RsaKeyPair::generate(512, &mut traitor_rng);
        TreeHeadSigner::new(logger_id(), sth_private(&traitor_kp)?)
    };

    let mut converged_after = None;
    for round in 1..=config.rounds {
        if config.mode == WitnessMode::EquivocatingWitness {
            // The traitor (last witness) gossips a head for the LOGGER's
            // identity signed with its OWN witness key, plus a mangled
            // frame. Receivers must discard both.
            let forged = traitor_signer.sign(
                round as u64,
                config.entries as u64,
                adlp_crypto::sha256(b"history the logger never had"),
            )?;
            net.inject(n - 1, &forged.encode());
            let mut mangled = forged.encode();
            if let Some(byte) = mangled.last_mut() {
                *byte ^= 0x55;
            }
            net.inject(n - 1, &mangled);
        }
        net.round();
        if converged_after.is_none() && net.converged() {
            converged_after = Some(round);
        }
    }
    if config.mode == WitnessMode::PartitionedWitnesses {
        // Heal and re-converge: the returning minority catches up from
        // gossip alone.
        for w in 0..config.f {
            net.heal(w);
        }
        net.run_until_converged(config.rounds);
    }

    // Light clients: one audits the honest view; under a split-view
    // logger a second client is shown the fork AFTER trusting the honest
    // head — the ack-path detection publishers get for free.
    let light = Arc::new(LightClient::new(sth_keys.clone()));
    for _ in 0..3 {
        let _ = light.audit_ack(honest.as_ref(), config.entries as u64 - 1);
    }
    if config.mode == WitnessMode::SplitViewLogger {
        let _ = light.audit_ack(forked.as_ref(), config.entries as u64 - 1);
    }

    // Fold every conviction — gossip-assembled and light-client-assembled
    // — into the cluster auditor, which re-verifies each proof itself.
    let mut proofs = net.proofs();
    for proof in light.evidence() {
        if !proofs
            .iter()
            .any(|p| p.log() == proof.log() && p.size() == proof.size())
        {
            proofs.push(proof);
        }
    }
    let cluster = LoggerCluster::spawn(ClusterConfig::new(1))?;
    let auditor = ClusterAuditor::new(cluster.keys().clone())
        .with_topology([(Topic::new("image"), logger_id())])
        .with_sth_keys(sth_keys);
    let report = auditor.audit_view_with_evidence(&cluster.view(), &proofs);

    Ok(WitnessChaosOutcome {
        converged_after,
        witnessed: net.witnessed(&logger_id()),
        proofs,
        rejected: net.rejected(),
        undecodable: net.undecodable(),
        light_verified: light.verified_acks(),
        sth_verify_failures: light.sth_verify_failures(),
        report,
        net,
    })
}
