//! Dispute-chaos scenarios (DESIGN.md §3.14): contested audit verdicts
//! fought with recorded traffic, under adversarial evidence and resolver
//! behavior, against the real protocol stack.
//!
//! Every scenario runs genuine pub-sub traffic (middleware + ADLP
//! interceptors + trusted logger) with a forensic [`Recorder`] tapped into
//! the logger, derives a real audit conviction, and then litigates it
//! through the [`DisputeLedger`]:
//!
//! * [`wrongful_conviction`] — the accuser audited a partial view; the
//!   convicted party's recording evidence replays to a sound exoneration
//!   and the verdict is overturned;
//! * [`forged_evidence`] — a genuinely guilty party forges evidence
//!   (tampered bytes, fabricated receipts, curated windows); none of it is
//!   probative and the verdict stands;
//! * [`bribed_resolver`] — a minority resolver votes against its own
//!   evaluation; the deadlocked panel escalates with doubled stakes and
//!   the supermajority settles the dispute correctly;
//! * [`withholding_claimant`] — a claimant who posts no evidence fails
//!   toward the standing verdict;
//! * [`crash_mid_escalation`] — the ledger's storage crashes between
//!   escalation and the deciding votes; a fresh ledger resumes from
//!   durable state and finishes to a verified resolution.

use adlp_audit::{contestable_verdicts, AuditReport, Auditor, ContestedVerdict};
use adlp_core::{AdlpNodeBuilder, BehaviorProfile, LinkRole, LogBehavior, Scheme};
use adlp_crypto::rsa::RsaPrivateKey;
use adlp_crypto::RsaKeyPair;
use adlp_dispute::{
    replay_window, DisputeConfig, DisputeCounters, DisputeLedger, Evidence, Outcome, Phase,
    ReplayContext, ResolutionProof, Resolver, ResolverContext, ResolverKeyring, SignedEvidence,
    Vote,
};
use adlp_logger::recording::{encode_frame, Recorder};
use adlp_logger::storage::MemStorage;
use adlp_logger::{Direction, KeyRegistry, LogEntry, LogServer, RecordingWindow, Storage};
use adlp_pubsub::{Master, NodeId, Topic};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::BTreeSet;
use std::sync::Arc;
use std::time::Duration;

const KEY_BITS: usize = 512;
const MESSAGES: usize = 3;

/// What one dispute scenario run leaves behind for assertions.
#[derive(Debug)]
pub struct DisputeRunReport {
    /// The settled outcome.
    pub outcome: Outcome,
    /// Rounds fought (1 = initial panel settled it).
    pub rounds: u32,
    /// Total stake posted across all rounds.
    pub total_staked: u64,
    /// Whether the transferable [`ResolutionProof`] verified under the
    /// resolver keyring.
    pub proof_verifies: bool,
    /// Whether replaying the recording evidence twice produced
    /// byte-identical canonical reports (`true` when no window was in
    /// evidence — nothing to diverge).
    pub replay_deterministic: bool,
    /// Ledger counters at the end of the run.
    pub counters: DisputeCounters,
    /// The resolution proof itself, for transfer to other scenarios.
    pub proof: ResolutionProof,
}

/// A real traffic run with a forensic recording tap on the logger.
struct RecordedRun {
    master: Master,
    server: LogServer,
    recorder: Arc<Recorder>,
}

impl RecordedRun {
    /// Runs camera→detector traffic with the given detector behavior,
    /// recording every deposited entry.
    fn build(seed: u64, detector: BehaviorProfile) -> Self {
        let master = Master::new();
        let server = LogServer::spawn();
        let storage: Arc<dyn Storage> = Arc::new(MemStorage::new());
        let recorder = Arc::new(Recorder::new(storage, "dispute-recording"));
        server.handle().attach_recorder(Arc::clone(&recorder));

        let mut rng = StdRng::seed_from_u64(seed);
        let cam = AdlpNodeBuilder::new("camera")
            .scheme(Scheme::adlp())
            .key_bits(KEY_BITS)
            .behavior(BehaviorProfile::faithful())
            .build(&master, &server.handle(), &mut rng)
            .expect("camera node");
        let det = AdlpNodeBuilder::new("detector")
            .scheme(Scheme::adlp())
            .key_bits(KEY_BITS)
            .behavior(detector)
            .build(&master, &server.handle(), &mut rng)
            .expect("detector node");

        let publisher = cam.advertise("image").expect("advertise");
        let _sub = det.subscribe("image", |_| {}).expect("subscribe");
        // adlp-lint: allow(sim-determinism) — the ack-wait deadline is a liveness guard measuring physical time; traffic content stays seed-driven
        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        for i in 0..MESSAGES {
            while cam.pending_acks() != 0 {
                // adlp-lint: allow(sim-determinism) — liveness timeout check, never a protocol decision
                assert!(std::time::Instant::now() < deadline, "ack wait timed out");
                std::thread::sleep(Duration::from_millis(2));
            }
            let r = publisher.publish(&[i as u8; 32]).expect("publish");
            assert_eq!(r.sent, 1, "publish {i} must reach the subscriber");
        }
        while cam.pending_acks() != 0 {
            // adlp-lint: allow(sim-determinism) — liveness timeout check, never a protocol decision
            assert!(std::time::Instant::now() < deadline, "final ack timed out");
            std::thread::sleep(Duration::from_millis(2));
        }
        std::thread::sleep(Duration::from_millis(30));
        cam.flush().expect("camera flush");
        det.flush().expect("detector flush");

        RecordedRun {
            master,
            server,
            recorder,
        }
    }

    fn faithful(seed: u64) -> Self {
        Self::build(seed, BehaviorProfile::faithful())
    }

    /// Detector hides its receipts from the logger — the Lemma 2 guilty
    /// party.
    fn hiding(seed: u64) -> Self {
        Self::build(
            seed,
            BehaviorProfile::faithful().with_link(
                LinkRole::Subscriber,
                Topic::new("image"),
                LogBehavior::Hide,
            ),
        )
    }

    fn keys(&self) -> KeyRegistry {
        self.server.handle().keys().clone()
    }

    fn replay_ctx(&self) -> ReplayContext {
        ReplayContext::new(self.keys()).with_topology(self.master.topology())
    }

    fn auditor(&self) -> Auditor {
        Auditor::new(self.keys()).with_topology(self.master.topology())
    }

    /// Audits everything the logger actually holds.
    fn full_report(&self) -> AuditReport {
        self.auditor().audit_store(self.server.handle().store())
    }

    /// Audits the view an accuser with an incomplete snapshot would see:
    /// every entry except the detector's receipts.
    fn partial_report_without_receipts(&self) -> AuditReport {
        let entries: Vec<LogEntry> = self
            .server
            .handle()
            .store()
            .entries()
            .into_iter()
            .filter_map(Result::ok)
            .filter(|e| {
                !(e.component == NodeId::new("detector") && e.direction == Direction::In)
            })
            .collect();
        self.auditor().audit(&entries)
    }

    /// The full recorded window, as transferable evidence.
    fn window(&self) -> RecordingWindow {
        self.recorder
            .extract_window(0, self.recorder.epoch())
            .expect("recording window")
    }
}

/// The Hidden conviction against the detector carried by `report`.
fn detector_hidden_claim(report: &AuditReport) -> ContestedVerdict {
    contestable_verdicts(report)
        .into_iter()
        .find(|c| c.convicted() == NodeId::new("detector"))
        .expect("the audit must convict the detector")
}

/// The dispute court: a resolver pool, a claimant with a registered
/// dispute key, and a storage-bound ledger.
struct Court {
    ledger: DisputeLedger,
    resolvers: Vec<Resolver>,
    keyring: ResolverKeyring,
    ctx: ResolverContext,
    claimant: NodeId,
    claimant_key: RsaPrivateKey,
    storage: Arc<MemStorage>,
    parties: KeyRegistry,
    config: DisputeConfig,
}

impl Court {
    fn new(seed: u64, pool: usize, claimant: NodeId, replay: ReplayContext) -> Self {
        let mut rng = StdRng::seed_from_u64(seed ^ 0xD15B);
        let claimant_pair = RsaKeyPair::generate(KEY_BITS, &mut rng);
        let parties = KeyRegistry::new();
        parties
            .register(&claimant, claimant_pair.public_key().clone())
            .expect("register claimant");

        let mut resolvers = Vec::with_capacity(pool);
        let mut keyring = ResolverKeyring::new();
        for i in 0..pool {
            let id = NodeId::new(format!("resolver-{i}"));
            let pair = RsaKeyPair::generate(KEY_BITS, &mut rng);
            keyring.insert(id.clone(), pair.public_key().clone());
            resolvers.push(Resolver::new(id, pair.into_private_key()));
        }

        let config = DisputeConfig::default();
        let storage = Arc::new(MemStorage::new());
        let mut ledger = DisputeLedger::new(config)
            .with_parties(parties.clone())
            .with_resolvers(keyring.clone());
        let resumed = ledger
            .bind_storage(Arc::clone(&storage) as Arc<dyn Storage>)
            .expect("bind dispute storage");
        assert!(!resumed, "fresh storage must not resume");

        Court {
            ledger,
            resolvers,
            keyring,
            ctx: ResolverContext::new(replay),
            claimant,
            claimant_key: claimant_pair.into_private_key(),
            storage,
            parties,
            config,
        }
    }

    /// Opens a dispute and posts each piece of evidence under the
    /// claimant's key.
    fn contest(&mut self, claim: ContestedVerdict, evidence: Vec<Evidence>) -> u64 {
        let id = self
            .ledger
            .open(self.claimant.clone(), claim)
            .expect("open dispute");
        for ev in evidence {
            let signed = SignedEvidence::sign(self.claimant.clone(), id, 0, ev, &self.claimant_key)
                .expect("sign evidence");
            self.ledger.submit_evidence(id, signed).expect("evidence");
        }
        id
    }

    fn resolver(&self, id: &NodeId) -> &Resolver {
        self.resolvers
            .iter()
            .find(|r| r.id() == id)
            .expect("panel member must come from the pool")
    }

    /// Casts the current round's outstanding votes. Honest members judge
    /// the evidence; `bribed` members sign the opposite of their own
    /// evaluation. Returns the dispute phase after the last vote.
    fn vote_round(&mut self, id: u64, bribed: &BTreeSet<NodeId>) -> Phase {
        let dispute = self.ledger.dispute(id).expect("dispute").clone();
        let voted: BTreeSet<NodeId> = dispute.votes.iter().map(|v| v.resolver.clone()).collect();
        let mut phase = dispute.phase;
        for (round, member) in &dispute.panel {
            if *round != dispute.round || voted.contains(member) {
                continue;
            }
            let resolver = self.resolver(member);
            let instance = self.config.instance;
            let vote = if bribed.contains(member) {
                let honest =
                    Resolver::evaluate(&dispute.claim, &dispute.evidence, &self.ctx);
                let flipped = match honest {
                    Vote::Uphold => Vote::Overturn,
                    Vote::Overturn => Vote::Uphold,
                };
                resolver
                    .cast(instance, id, *round, flipped, &dispute.claim, &dispute.evidence)
                    .expect("bribed vote")
            } else {
                resolver
                    .judge(instance, id, *round, &dispute.claim, &dispute.evidence, &self.ctx)
                    .expect("honest vote")
            };
            phase = self.ledger.submit_vote(id, vote).expect("vote accepted");
        }
        phase
    }

    /// Convene → vote → (escalate with the claimant's stake → vote)* →
    /// finalize, with `bribed` members misvoting every round they sit in.
    fn litigate(&mut self, id: u64, bribed: &BTreeSet<NodeId>) -> DisputeRunReport {
        self.ledger.convene(id).expect("convene panel");
        let mut phase = self.vote_round(id, bribed);
        while phase != Phase::Finalizing {
            self.ledger
                .escalate(id, self.claimant.clone())
                .expect("escalate deadlocked dispute");
            phase = self.vote_round(id, bribed);
        }
        let proof = self.ledger.finalize(id).expect("finalize");
        self.report(id, proof)
    }

    fn report(&self, id: u64, proof: ResolutionProof) -> DisputeRunReport {
        let dispute = self.ledger.dispute(id).expect("dispute");
        let replay_deterministic = dispute
            .evidence
            .iter()
            .filter_map(|ev| match &ev.evidence {
                Evidence::Recording(w) if w.verify() => Some(w),
                _ => None,
            })
            .all(|w| {
                let once = replay_window(w, &self.ctx.replay);
                let twice = replay_window(w, &self.ctx.replay);
                match (once, twice) {
                    (Ok(a), Ok(b)) => a.canonical_bytes() == b.canonical_bytes(),
                    _ => false,
                }
            });
        DisputeRunReport {
            outcome: proof.outcome,
            rounds: proof.rounds,
            total_staked: dispute.total_staked(),
            proof_verifies: proof.verify(&self.keyring),
            replay_deterministic,
            counters: self.ledger.counters(),
            proof,
        }
    }
}

/// An accuser audited a partial snapshot and convicted an innocent
/// subscriber of hiding its receipt. The subscriber contests with the full
/// recorded window; its sound replay exonerates and the panel overturns
/// unanimously.
pub fn wrongful_conviction(seed: u64) -> DisputeRunReport {
    let run = RecordedRun::faithful(seed);
    let partial = run.partial_report_without_receipts();
    let claim = detector_hidden_claim(&partial);
    // Sanity: the full view never carried this conviction.
    assert!(!claim.supported_by(&run.full_report()));

    let mut court = Court::new(seed, 7, NodeId::new("detector"), run.replay_ctx());
    let id = court.contest(claim, vec![Evidence::Recording(run.window())]);
    court.litigate(id, &BTreeSet::new())
}

/// A genuinely guilty subscriber contests its (correct) conviction with
/// forged evidence: a byte-tampered window, a window padded with a
/// fabricated unsigned receipt, and the true (non-exonerating) recording.
/// Nothing probative exonerates, so the verdict stands.
pub fn forged_evidence(seed: u64) -> DisputeRunReport {
    let run = RecordedRun::hiding(seed);
    let claim = detector_hidden_claim(&run.full_report());
    let truth = run.window();

    // Forgery 1: flip a byte mid-recording — the checksummed framing makes
    // the window fail verification outright.
    let mut tampered = truth.clone();
    let mid = tampered.bytes.len() / 2;
    tampered.bytes[mid] ^= 0x40;

    // Forgery 2: append a fabricated, unsigned "receipt" for the hidden
    // entry. The window verifies, but the replayed auditor rejects the
    // entry (authenticity failure), so it exonerates nothing.
    let ContestedVerdict::Hidden { topic, seq, .. } = &claim else {
        panic!("expected a Hidden conviction");
    };
    let fabricated = LogEntry::naive(
        NodeId::new("detector"),
        topic.clone(),
        Direction::In,
        *seq,
        0,
        vec![0xAB; 32],
    );
    let mut padded = truth.clone();
    padded
        .bytes
        .extend_from_slice(&encode_frame(0, &fabricated.encode()));

    let mut court = Court::new(seed, 7, NodeId::new("detector"), run.replay_ctx());
    let id = court.contest(
        claim,
        vec![
            Evidence::Recording(tampered),
            Evidence::Recording(padded),
            Evidence::Recording(truth),
        ],
    );
    court.litigate(id, &BTreeSet::new())
}

/// A guilty subscriber's dispute where one initial panelist is bribed to
/// vote against its own evaluation: 2–1 deadlock, escalation with a
/// doubled stake, and a 4–1 supermajority upholding the conviction.
pub fn bribed_resolver(seed: u64) -> DisputeRunReport {
    let run = RecordedRun::hiding(seed);
    let claim = detector_hidden_claim(&run.full_report());

    let mut court = Court::new(seed, 7, NodeId::new("detector"), run.replay_ctx());
    let id = court.contest(claim, vec![Evidence::Recording(run.window())]);
    let panel = court.ledger.convene(id).expect("convene panel");
    let bribed: BTreeSet<NodeId> = [panel[0].clone()].into();

    let mut phase = court.vote_round(id, &bribed);
    assert_eq!(phase, Phase::Evaluating, "2–1 must not settle");
    assert_eq!(court.ledger.dispute(id).unwrap().tally(), (2, 1));
    while phase != Phase::Finalizing {
        court
            .ledger
            .escalate(id, NodeId::new("detector"))
            .expect("escalate");
        phase = court.vote_round(id, &bribed);
    }
    let proof = court.ledger.finalize(id).expect("finalize");
    court.report(id, proof)
}

/// A claimant who contests a correct conviction and then withholds all
/// evidence. With nothing probative before it, the panel upholds
/// unanimously in one round.
pub fn withholding_claimant(seed: u64) -> DisputeRunReport {
    let run = RecordedRun::hiding(seed);
    let claim = detector_hidden_claim(&run.full_report());

    let mut court = Court::new(seed, 7, NodeId::new("detector"), run.replay_ctx());
    let id = court.contest(claim, Vec::new());
    court.litigate(id, &BTreeSet::new())
}

/// The bribed-resolver dispute, crashed between escalation and the
/// deciding votes. A fresh ledger bound to the same (crashed) storage must
/// resume the exact durable state — panel, round, stakes — and finish to a
/// verified resolution.
pub fn crash_mid_escalation(seed: u64) -> DisputeRunReport {
    let run = RecordedRun::hiding(seed);
    let claim = detector_hidden_claim(&run.full_report());

    let mut court = Court::new(seed, 7, NodeId::new("detector"), run.replay_ctx());
    let id = court.contest(claim, vec![Evidence::Recording(run.window())]);
    let panel = court.ledger.convene(id).expect("convene panel");
    let bribed: BTreeSet<NodeId> = [panel[0].clone()].into();
    let phase = court.vote_round(id, &bribed);
    assert_eq!(phase, Phase::Evaluating, "2–1 must not settle");
    court
        .ledger
        .escalate(id, NodeId::new("detector"))
        .expect("escalate");
    let before = court.ledger.dispute(id).expect("dispute").clone();

    // Crash: everything un-synced is lost; every acknowledged ledger
    // mutation was write_replace'd, so the escalated state survives.
    court.storage.crash();
    let mut resumed = DisputeLedger::new(court.config)
        .with_parties(court.parties.clone())
        .with_resolvers(court.keyring.clone());
    assert!(
        resumed
            .bind_storage(Arc::clone(&court.storage) as Arc<dyn Storage>)
            .expect("rebind"),
        "the ledger must resume existing durable state"
    );
    let after = resumed.dispute(id).expect("dispute survived").clone();
    assert_eq!(after.round, before.round, "round survives the crash");
    assert_eq!(after.panel, before.panel, "panel survives the crash");
    assert_eq!(after.stakes, before.stakes, "stakes survive the crash");
    assert_eq!(after.votes, before.votes, "votes survive the crash");
    court.ledger = resumed;

    let mut phase = court.vote_round(id, &bribed);
    while phase != Phase::Finalizing {
        court
            .ledger
            .escalate(id, NodeId::new("detector"))
            .expect("escalate");
        phase = court.vote_round(id, &bribed);
    }
    let proof = court.ledger.finalize(id).expect("finalize");
    court.report(id, proof)
}
