//! Byzantine-fault chaos harness: a replica that *lies* rather than dies.
//!
//! The crash harness ([`crate::crash`]) proves the cluster survives
//! replicas that stop; this one proves it survives replicas that keep
//! talking and misbehave. One replica of a `3f+1` BFT shard is replaced by
//! a scripted traitor while the other `3f` stay honest, and the run is
//! driven entry-by-entry (no wall clock, no scheduling in the accounting).
//! Every scripted behavior must end in one of exactly two outcomes:
//!
//! * **continued liveness** — the `2f+1` honest attest-quorum acks every
//!   deposit, the traitor's noise costing nothing but redundancy; or
//! * **a verified conviction** — the traitor's own conflicting signatures
//!   form a transferable [`adlp_cluster::EquivocationProof`] naming the
//!   exact (shard, replica), re-verified independently by the auditor.
//!
//! Never silent acceptance: a lie either fails to gather a quorum or
//! convicts its signer.
//!
//! The traitor *stores* honestly in every mode — its store matches the
//! quorum log byte for byte, so comparison-based divergence detection sees
//! nothing. Only the signed-attestation layer catches it, which is the
//! point of the exercise.

use adlp_audit::{ClusterAuditReport, ClusterAuditor};
use adlp_cluster::cluster::ReplicaSlot;
use adlp_cluster::{
    slot_sink, AttestationScope, ClusterConfig, ClusterLogClient, ClusterStatsSnapshot, EpochSeal,
    HeadAttestation, LoggerCluster, ReplicaSink,
};
use adlp_crypto::{sha256, RsaKeyPair, RsaPublicKey};
use adlp_logger::{Direction, LogEntry, LogError};
use adlp_pubsub::{NodeId, Topic};
use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::fmt;
use std::sync::Arc;

/// What the scripted traitor does with its voice.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ByzantineMode {
    /// Control: every replica honest. Must run conviction-free.
    Honest,
    /// Stores each entry honestly but signs a *forged* chain head to the
    /// client at every deposit, while its honest store answers view-time
    /// interrogation — two valid signatures over conflicting heads at one
    /// scope. Liveness holds (the honest `2f+1` agree) and the conflict is
    /// a self-incriminating equivocation proof.
    Equivocate,
    /// Captures its first genuine attestation and replays it for every
    /// later deposit — an attempt to ack new entries with an old sworn
    /// statement. The stale scope never matches the honest group, so the
    /// replay supports nothing; replaying one's own consistent statement
    /// is not equivocation, so the outcome is pure liveness.
    StaleReplay,
    /// Honest all run long, then countersigns a *second, conflicting*
    /// epoch root after sealing — a split-brain seal offered to some
    /// external party. Epoch scopes are never pruned, so the conflict
    /// convicts no matter how late it surfaces.
    ConflictingSeal,
    /// Stores honestly but never attests — pure withholding. Silence is
    /// indistinguishable from death, costs one vote of redundancy, and
    /// convicts nobody.
    Silent,
}

impl fmt::Display for ByzantineMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            ByzantineMode::Honest => "honest",
            ByzantineMode::Equivocate => "equivocate",
            ByzantineMode::StaleReplay => "stale-replay",
            ByzantineMode::ConflictingSeal => "conflicting-seal",
            ByzantineMode::Silent => "silent",
        };
        f.write_str(name)
    }
}

/// Deterministic Byzantine chaos plan. Two runs with the same config
/// produce the same ack set, the same ledger, and the same convictions.
#[derive(Debug, Clone)]
pub struct ByzantineChaosConfig {
    /// Seed for the epoch sealing key (replica attestation keys derive
    /// from the cluster's own [`adlp_cluster::BftConfig`] seed).
    pub seed: u64,
    /// Entries to stream through the signed-quorum deposit path.
    pub entries: usize,
    /// The traitor's script.
    pub mode: ByzantineMode,
    /// Replica index (within the single shard) played by the traitor.
    pub traitor: usize,
    /// Fault tolerance: the shard runs `3f+1` replicas, acks at `2f+1`.
    pub f: usize,
}

impl ByzantineChaosConfig {
    /// A plan with one traitor (replica 2) in a `f = 1` shard of four.
    pub fn new(seed: u64, mode: ByzantineMode) -> Self {
        ByzantineChaosConfig {
            seed,
            entries: 24,
            mode,
            traitor: 2,
            f: 1,
        }
    }
}

/// What a Byzantine chaos run produced. Holds the cluster alive so tests
/// can interrogate the view and re-audit.
#[derive(Debug)]
pub struct ByzantineChaosOutcome {
    /// Deposits the signed quorum acknowledged.
    pub acked: usize,
    /// Deposits that missed the attest quorum (counted, never silent).
    pub lost: usize,
    /// Final cluster counters (attestation verdicts included).
    pub stats: ClusterStatsSnapshot,
    /// The epoch seal cut at end of run (countersigned by every replica).
    pub seal: EpochSeal,
    /// Public half of the sealing key, for seal verification.
    pub sealing_key: RsaPublicKey,
    /// The cluster, alive, for view gathering and auditing.
    pub cluster: LoggerCluster,
}

impl ByzantineChaosOutcome {
    /// Audits the final state: seal verification, cross-replica
    /// comparison, and independent re-verification of every equivocation
    /// proof against the replica attestation keyring.
    pub fn audit(&self) -> ClusterAuditReport {
        let mut auditor = ClusterAuditor::new(self.cluster.keys().clone())
            .with_topology([(Topic::new("image"), NodeId::new("cam"))]);
        if let Some(ledger) = self.cluster.attestations() {
            auditor = auditor.with_attestation_keys(ledger.keyring().clone());
        }
        auditor.audit_sealed_view(&self.cluster.view(), &self.seal, &self.sealing_key)
    }

    /// (shard, replica) pairs convicted by a verified equivocation proof.
    pub fn convicted(&self) -> Vec<(usize, usize)> {
        self.audit().convicted_replicas()
    }
}

/// Deterministic entry `i` of the chaos stream (single publisher/topic so
/// the whole stream exercises one shard's signed quorum).
fn chaos_entry(i: usize) -> LogEntry {
    LogEntry::naive(
        NodeId::new("cam"),
        Topic::new("image"),
        Direction::Out,
        i as u64,
        1_000 + i as u64,
        vec![i as u8; 48],
    )
}

/// The scripted traitor lane: stores honestly, lies (or stays silent) in
/// what it *signs*.
struct TraitorSink {
    slot: Arc<ReplicaSlot>,
    mode: ByzantineMode,
    /// `StaleReplay`: the first genuine attestation, replayed forever.
    replay: Mutex<Option<HeadAttestation>>,
}

impl fmt::Debug for TraitorSink {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("TraitorSink").field("mode", &self.mode).finish()
    }
}

impl ReplicaSink for TraitorSink {
    fn deposit(&self, entry: &LogEntry) -> bool {
        self.slot.handle().try_submit(entry.clone()).is_ok()
    }

    fn deposit_durable(&self, entry: &LogEntry) -> bool {
        self.slot.handle().submit_durable(entry.clone()).is_ok()
    }

    fn flush_replica(&self) -> bool {
        self.slot.handle().flush().is_ok()
    }

    fn deposit_attested(&self, entry: &LogEntry, durable: bool) -> Option<HeadAttestation> {
        let took = if durable {
            self.deposit_durable(entry)
        } else {
            self.deposit(entry)
        };
        if !took || !self.flush_replica() {
            return None;
        }
        match self.mode {
            ByzantineMode::Honest | ByzantineMode::ConflictingSeal => {
                self.slot.attest_head().ok().flatten()
            }
            ByzantineMode::Silent => None,
            ByzantineMode::Equivocate => {
                // Sign the *true* length with a *forged* head: the claim
                // stays scope-compatible with the honest group (so the
                // conflict is attributable, not just noise) while the
                // content is a lie.
                let attestor = Arc::clone(self.slot.attestor()?);
                let handle = self.slot.handle();
                let length = handle.store().len() as u64;
                let mut preimage = Vec::with_capacity(24);
                preimage.extend_from_slice(b"equivocated head #");
                preimage.extend_from_slice(&length.to_le_bytes());
                attestor
                    .attest(AttestationScope::Head { length }, sha256(&preimage))
                    .ok()
            }
            ByzantineMode::StaleReplay => {
                let mut replay = self.replay.lock();
                if replay.is_none() {
                    *replay = self.slot.attest_head().ok().flatten();
                }
                replay.clone()
            }
        }
    }
}

/// Runs the Byzantine chaos scenario.
///
/// # Errors
///
/// Returns [`LogError`] only for harness-level failures (spawn, seal, or a
/// BFT cluster missing its attestation ledger). The traitor's misbehavior
/// is the point of the exercise and never errors out of the run.
pub fn run_byzantine_chaos(
    config: &ByzantineChaosConfig,
) -> Result<ByzantineChaosOutcome, LogError> {
    let cluster = LoggerCluster::spawn(ClusterConfig::byzantine(1, config.f))?;
    let ledger = cluster
        .attestations()
        .cloned()
        .ok_or(LogError::Malformed("byzantine chaos (no attestation ledger)"))?;

    let mut lanes: Vec<Box<dyn ReplicaSink>> = Vec::new();
    for (i, slot) in cluster.shard_replicas(0).iter().enumerate() {
        if i == config.traitor && config.mode != ByzantineMode::Honest {
            lanes.push(Box::new(TraitorSink {
                slot: Arc::clone(slot),
                mode: config.mode,
                replay: Mutex::new(None),
            }));
        } else {
            lanes.push(slot_sink(Arc::clone(slot)));
        }
    }
    let client = ClusterLogClient::from_sinks_with_stats(
        cluster.config().clone(),
        cluster.keys().clone(),
        vec![lanes],
        cluster.stats().clone(),
    )
    .with_attestations(ledger);

    let mut acked = 0usize;
    let mut lost = 0usize;
    for i in 0..config.entries {
        if client.submit(chaos_entry(i)).is_accepted() {
            acked += 1;
        } else {
            lost += 1;
        }
    }
    client.flush()?;

    // Seal the epoch: every replica countersigns, and in BFT mode the
    // seal's own view gathering interrogates every replica's signed head —
    // the moment an equivocating traitor's deposit-time lies meet its
    // store's sworn truth.
    let mut rng = StdRng::seed_from_u64(config.seed);
    let sealing = RsaKeyPair::generate(512, &mut rng);
    let seal = cluster.seal_epoch(sealing.private_key())?;

    if config.mode == ByzantineMode::ConflictingSeal {
        // The traitor countersigned the honest seal above; now it signs a
        // *different* root for the same epoch to some other audience.
        // Feeding that statement back through the shared ledger models the
        // audience forwarding the evidence.
        if let Some(attestor) = cluster
            .shard_replicas(0)
            .get(config.traitor)
            .and_then(|slot| slot.attestor())
        {
            let forged = attestor.attest(
                AttestationScope::Epoch { epoch: seal.epoch },
                sha256(b"split-brain epoch root"),
            )?;
            if let Some(shared) = cluster.attestations() {
                let observation = shared.observe(forged);
                cluster.stats().note_observation(&observation);
            }
        }
    }

    let stats = cluster.stats().snapshot();
    Ok(ByzantineChaosOutcome {
        acked,
        lost,
        stats,
        seal,
        sealing_key: sealing.public_key().clone(),
        cluster,
    })
}
