//! CPU accounting.
//!
//! The paper measures per-node CPU utilization with `top` (each ROS node is
//! a Linux process). Our components are threads of one process, so we
//! attribute CPU by *thread name*: every thread working for node `X` is
//! named with a `X`-bearing prefix (`dr-X` driver, `sr-X` subscriber reader,
//! `pr-X` ack reader, `pa-X` accept loop, `lg-X` logging thread), and
//! [`ThreadCpuProbe`] sums `utime+stime` from `/proc/self/task/*/stat` over
//! matching threads. Process-wide utilization (Table II) comes from
//! `/proc/self/stat`.

use std::fs;
use std::time::Instant;

/// Clock ticks per second (`sysconf(_SC_CLK_TCK)` is 100 on stock Linux).
const CLK_TCK: f64 = 100.0;

/// Reads `utime + stime` (in clock ticks) from a `stat`-format line.
/// Returns `None` on parse failure.
fn ticks_from_stat(content: &str) -> Option<u64> {
    // Fields after the comm field, which is parenthesized and may contain
    // spaces: split at the last ')'.
    let rest = &content[content.rfind(')')? + 1..];
    let fields: Vec<&str> = rest.split_whitespace().collect();
    // Field 14 (utime) and 15 (stime) are index 11 and 12 after the comm.
    let utime: u64 = fields.get(11)?.parse().ok()?;
    let stime: u64 = fields.get(12)?.parse().ok()?;
    Some(utime + stime)
}

/// CPU seconds consumed so far by this whole process.
pub fn process_cpu_seconds() -> f64 {
    fs::read_to_string("/proc/self/stat")
        .ok()
        .and_then(|s| ticks_from_stat(&s))
        .map_or(0.0, |t| t as f64 / CLK_TCK)
}

/// CPU seconds consumed so far by threads whose name starts with any of the
/// given prefixes. Thread names come from `/proc/self/task/<tid>/comm`
/// (truncated to 15 characters by the kernel — prefixes are truncated to
/// match).
pub fn thread_cpu_seconds(prefixes: &[String]) -> f64 {
    let mut total_ticks = 0u64;
    let Ok(tasks) = fs::read_dir("/proc/self/task") else {
        return 0.0;
    };
    for task in tasks.flatten() {
        let path = task.path();
        let Ok(comm) = fs::read_to_string(path.join("comm")) else {
            continue;
        };
        let comm = comm.trim_end();
        let matched = prefixes.iter().any(|p| {
            let p15 = &p[..p.len().min(15)];
            comm.starts_with(p15)
        });
        if !matched {
            continue;
        }
        if let Ok(stat) = fs::read_to_string(path.join("stat")) {
            if let Some(t) = ticks_from_stat(&stat) {
                total_ticks += t;
            }
        }
    }
    total_ticks as f64 / CLK_TCK
}

/// Number of logical CPUs.
pub fn cpu_count() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// Measures process-wide CPU utilization over a window (Table II's
/// quantity: percent of one core; divide by [`cpu_count`] for
/// percent-of-machine).
#[derive(Debug)]
pub struct CpuProbe {
    start_cpu: f64,
    start_wall: Instant,
}

impl Default for CpuProbe {
    fn default() -> Self {
        Self::start()
    }
}

impl CpuProbe {
    /// Begins a measurement window.
    pub fn start() -> Self {
        CpuProbe {
            start_cpu: process_cpu_seconds(),
            // adlp-lint: allow(sim-determinism) — a CPU-utilization probe measures physical time; it feeds reports, never protocol decisions
            start_wall: Instant::now(),
        }
    }

    /// CPU utilization since start, in percent of one core (can exceed 100
    /// on multicore).
    pub fn utilization_percent(&self) -> f64 {
        let wall = self.start_wall.elapsed().as_secs_f64();
        if wall <= 0.0 {
            return 0.0;
        }
        (process_cpu_seconds() - self.start_cpu) / wall * 100.0
    }

    /// Utilization as percent of the whole machine (all cores = 100%).
    pub fn utilization_percent_of_machine(&self) -> f64 {
        self.utilization_percent() / cpu_count() as f64
    }
}

/// Measures CPU attributed to one node's threads over a window.
#[derive(Debug)]
pub struct ThreadCpuProbe {
    prefixes: Vec<String>,
    start_cpu: f64,
    start_wall: Instant,
}

impl ThreadCpuProbe {
    /// Begins a window over threads named with any of the standard
    /// per-node prefixes for `node_id`.
    pub fn for_node(node_id: &str) -> Self {
        let prefixes = ["dr-", "sr-", "pr-", "pa-", "lg-"]
            .iter()
            .map(|p| format!("{p}{node_id}"))
            .collect();
        Self::with_prefixes(prefixes)
    }

    /// Begins a window over threads with explicit name prefixes.
    pub fn with_prefixes(prefixes: Vec<String>) -> Self {
        let start_cpu = thread_cpu_seconds(&prefixes);
        ThreadCpuProbe {
            prefixes,
            start_cpu,
            // adlp-lint: allow(sim-determinism) — a CPU-utilization probe measures physical time; it feeds reports, never protocol decisions
            start_wall: Instant::now(),
        }
    }

    /// CPU utilization of the matched threads, percent of one core.
    ///
    /// Note: threads that exited during the window stop contributing (their
    /// accumulated time vanishes from `/proc`); keep nodes alive across the
    /// measurement window.
    pub fn utilization_percent(&self) -> f64 {
        let wall = self.start_wall.elapsed().as_secs_f64();
        if wall <= 0.0 {
            return 0.0;
        }
        let now = thread_cpu_seconds(&self.prefixes);
        ((now - self.start_cpu).max(0.0)) / wall * 100.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn burn(ms: u64) {
        let end = Instant::now() + Duration::from_millis(ms);
        let mut x = 0u64;
        while Instant::now() < end {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
        }
        std::hint::black_box(x);
    }

    #[test]
    fn stat_parsing_handles_spaces_in_comm() {
        let line = "1234 (weird name) R 1 1 1 0 -1 4194560 1 0 0 0 250 50 0 0 20 0 1 0 100 0 0";
        assert_eq!(ticks_from_stat(line), Some(300));
        assert_eq!(ticks_from_stat("garbage"), None);
    }

    #[test]
    fn process_probe_sees_cpu_burn() {
        let probe = CpuProbe::start();
        burn(300);
        let pct = probe.utilization_percent();
        assert!(pct > 20.0, "expected busy process, got {pct}%");
    }

    #[test]
    fn thread_probe_attributes_by_name() {
        let probe = ThreadCpuProbe::with_prefixes(vec!["dr-testnode".into()]);
        let busy = std::thread::Builder::new()
            .name("dr-testnode".into())
            .spawn(|| burn(400))
            .unwrap();
        // An unrelated thread that must NOT be attributed.
        let other = std::thread::Builder::new()
            .name("dr-othernode".into())
            .spawn(|| burn(400))
            .unwrap();
        std::thread::sleep(Duration::from_millis(350));
        let pct = probe.utilization_percent();
        busy.join().unwrap();
        other.join().unwrap();
        assert!(pct > 20.0, "attributed thread busy, got {pct}%");
        assert!(pct < 190.0, "only one thread should be attributed, got {pct}%");
    }

    #[test]
    fn cpu_count_positive() {
        assert!(cpu_count() >= 1);
    }
}
