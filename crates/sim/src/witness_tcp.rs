//! Witness chaos over real TCP (DESIGN.md §3.13): the in-process
//! scenarios of [`crate::witness`], re-run across actual sockets with the
//! network itself misbehaving — plus the one failure mode an in-process
//! mesh cannot stage: a witness killed mid-run and restarted from nothing
//! but its key and its storage device.
//!
//! Every link in the federation crosses a seeded
//! [`ChaosProxy`](adlp_pubsub::transport::chaos::ChaosProxy): connection
//! resets mid-frame, byte-boundary splits, delays, reorders, slow-loris
//! stalls, refused dials. The acceptance bar is unchanged from the lab
//! mesh — continued liveness or a transferable conviction, never silent
//! acceptance, never a false conviction — with one addition, the
//! **restart-under-chaos invariant**: a witness restarted from durable
//! state never re-anchors trust-on-first-use onto a different head, never
//! cosigns below its durable high-water mark, and the healed federation
//! reconverges to the `f + 1` cosign quorum.
//!
//! Light clients ride along in every scenario through
//! [`LightClient::audit_ack_witnessed`]: while the federation can produce
//! a quorum-cosigned head they audit against it; while it cannot
//! (partition) they degrade to *counted* direct-STH evidence-retention
//! mode — `cosign_quorum_unavailable` moves, trust never silently widens
//! — and recover on heal.

use adlp_audit::{ClusterAuditReport, ClusterAuditor};
use adlp_cluster::{ClusterConfig, LoggerCluster};
use adlp_crypto::rsa::RsaPrivateKey;
use adlp_crypto::RsaKeyPair;
use adlp_logger::sth::{SignedTreeHead, SthPublisher, TreeHeadSigner};
use adlp_logger::{LogError, LogStore};
use adlp_pubsub::transport::chaos::ChaosConfig;
use adlp_pubsub::{NodeId, Topic};
use adlp_witness::{
    CosignedHead, LightClient, SplitViewProof, SthKeyring, TcpGossipConfig, TcpWitnessFed,
    TreeHeadSource, WitnessNetConfig,
};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::fmt;
use std::sync::Arc;
use std::time::Duration;

/// What the scripted adversary — or the scripted crash — does.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TcpWitnessMode {
    /// Control: honest logger, every socket under the full chaos menu.
    /// Must converge, cosign-quorum the true head, zero convictions.
    Honest,
    /// The logger serves a forked view to a minority of witnesses. The
    /// fork must be convicted by the logger's own two signatures, over
    /// sockets that reset and reorder.
    SplitViewLogger,
    /// One witness gossips forged heads (its own key over the logger's
    /// identity) and mangled frames through the same chaotic links.
    /// Receivers must reject both; nobody is convicted.
    EquivocatingWitness,
    /// First `f` witnesses are severed (liveness must hold), then one
    /// more (the cosign quorum is gone — light clients must *degrade*,
    /// counted). Healing must re-converge the full set and recover the
    /// clients.
    PartitionedWitnesses,
    /// A witness is killed mid-run (power cut: sockets reset, storage
    /// truncated to what was synced), the log grows during the outage,
    /// and the witness restarts from its durable state. The restart
    /// invariant must hold: same TOFU anchor, high-water mark never
    /// regresses, federation reconverges — and a post-restart split-view
    /// temptation at the remembered size is *convicted*, not re-anchored.
    RestartingWitness,
}

impl fmt::Display for TcpWitnessMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            TcpWitnessMode::Honest => "honest",
            TcpWitnessMode::SplitViewLogger => "split-view-logger",
            TcpWitnessMode::EquivocatingWitness => "equivocating-witness",
            TcpWitnessMode::PartitionedWitnesses => "partitioned-witnesses",
            TcpWitnessMode::RestartingWitness => "restarting-witness",
        };
        f.write_str(name)
    }
}

/// Deterministic plan for one TCP witness chaos run.
#[derive(Debug, Clone)]
pub struct TcpWitnessChaosConfig {
    /// Seed for key generation, socket chaos, and gossip jitter.
    pub seed: u64,
    /// Records in the logger's store at the start of the run.
    pub entries: usize,
    /// The adversary's script.
    pub mode: TcpWitnessMode,
    /// Witness-set fault tolerance: `2f + 1` witnesses, quorum `f + 1`.
    pub f: usize,
    /// Gossip rounds per phase (storm, outage, recovery).
    pub rounds: usize,
}

impl TcpWitnessChaosConfig {
    /// A plan with `f = 1` (three witnesses) over an 8-record log.
    pub fn new(seed: u64, mode: TcpWitnessMode) -> Self {
        TcpWitnessChaosConfig {
            seed,
            entries: 8,
            mode,
            f: 1,
            rounds: 6,
        }
    }
}

/// Before/after snapshot of the restarted witness's durable promises.
#[derive(Debug, Clone)]
pub struct RestartDrill {
    /// Which witness was killed and restarted.
    pub witness: usize,
    /// Its TOFU anchor before the power cut.
    pub anchor_before: Option<SignedTreeHead>,
    /// Its TOFU anchor after resuming from storage.
    pub anchor_after: Option<SignedTreeHead>,
    /// Its cosignature high-water mark before the power cut.
    pub high_water_before: u64,
    /// Its cosignature high-water mark after resuming.
    pub high_water_after: u64,
}

impl RestartDrill {
    /// The restart invariant: the resumed witness kept its anchor and its
    /// high-water mark never regressed.
    pub fn invariant_holds(&self) -> bool {
        self.anchor_before.is_some()
            && self.anchor_before == self.anchor_after
            && self.high_water_after >= self.high_water_before
    }
}

/// What a TCP witness chaos run produced.
#[derive(Debug)]
pub struct TcpWitnessChaosOutcome {
    /// Rounds until every live witness agreed on the latest head (`None`
    /// when the mode makes convergence impossible by design).
    pub converged_after: Option<usize>,
    /// The highest head with an `f + 1` cosign quorum at the end.
    pub witnessed: Option<CosignedHead>,
    /// Convictions assembled anywhere (federation + light client),
    /// deduplicated per (log, size).
    pub proofs: Vec<SplitViewProof>,
    /// Gossip frames discarded for bad signatures.
    pub rejected: u64,
    /// Gossip frames that failed framing or decoding.
    pub undecodable: u64,
    /// Reconnects across the federation's peer links.
    pub reconnects: u64,
    /// Socket faults the chaos proxies actually injected.
    pub chaos_faults: u64,
    /// Ack audits the light client completed successfully.
    pub light_verified: u64,
    /// Ack audits that failed (interceptor-visible counter).
    pub sth_verify_failures: u64,
    /// Audits spent in counted degraded mode (quorum unreachable).
    pub cosign_quorum_unavailable: u64,
    /// Degraded→quorate transitions after heals.
    pub quorum_recoveries: u64,
    /// The restart drill's before/after snapshot (restarting mode only).
    pub restart: Option<RestartDrill>,
    /// The cluster-auditor verdict with the run's evidence folded in.
    pub report: ClusterAuditReport,
    /// The federation, alive, for further interrogation.
    pub fed: TcpWitnessFed,
}

impl TcpWitnessChaosOutcome {
    /// Logs named by an auditor-verified split-view conviction.
    pub fn convicted_logs(&self) -> Vec<NodeId> {
        self.report.convicted_logs()
    }
}

fn logger_id() -> NodeId {
    NodeId::new("logger")
}

fn filled_store(entries: usize, fork_at: Option<usize>) -> LogStore {
    let store = LogStore::new();
    for i in 0..entries {
        let body = match fork_at {
            Some(at) if at == i => vec![0xF0, i as u8, 0xF0, i as u8],
            _ => vec![i as u8; 16],
        };
        store.append_encoded(body);
    }
    store
}

fn sth_private(kp: &RsaKeyPair) -> Result<RsaPrivateKey, LogError> {
    RsaPrivateKey::from_bytes(&kp.private_key().to_bytes())
        .map_err(|_| LogError::Malformed("tcp witness chaos (sth key)"))
}

/// The full socket-chaos menu, rates chosen so every fault class fires
/// across a run while round-based re-broadcast still converges.
fn chaos_menu(seed: u64) -> ChaosConfig {
    ChaosConfig {
        seed,
        ..ChaosConfig::default()
    }
    .with_reset_rate(0.03)
    .with_split_rate(0.35)
    .with_delay(0.10, Duration::from_millis(3))
    .with_reorder_rate(0.05)
    .with_stall(0.02, Duration::from_millis(8))
    .with_connect_reset_rate(0.05)
}

/// Runs one TCP witness chaos scenario.
///
/// # Errors
///
/// Returns [`LogError`] only for harness-level failures (key derivation,
/// socket setup, cluster spawn). Adversarial behavior and injected chaos
/// are the point of the exercise and never error out of the run.
pub fn run_tcp_witness_chaos(
    config: &TcpWitnessChaosConfig,
) -> Result<TcpWitnessChaosOutcome, LogError> {
    let mut rng = StdRng::seed_from_u64(config.seed ^ 0x7C9_717E);
    let logger_kp = RsaKeyPair::generate(512, &mut rng);
    let sth_keys = SthKeyring::new().with_log(logger_id(), logger_kp.public_key().clone());

    let honest_store = filled_store(config.entries, None);
    let forked_store = filled_store(config.entries, Some(config.entries / 2));
    let honest = Arc::new(SthPublisher::new(
        TreeHeadSigner::new(logger_id(), sth_private(&logger_kp)?),
        honest_store.clone(),
    ));
    let forked = Arc::new(SthPublisher::new(
        TreeHeadSigner::new(logger_id(), sth_private(&logger_kp)?),
        forked_store.clone(),
    ));

    let net_config = WitnessNetConfig::new(config.f).with_seed(config.seed);
    let n = net_config.witnesses;
    let quorum = net_config.witness_quorum();
    let sources: Vec<Vec<Arc<dyn TreeHeadSource>>> = (0..n)
        .map(|w| {
            let source = match config.mode {
                // The minority (the last f witnesses) is shown the fork.
                TcpWitnessMode::SplitViewLogger if w >= n - config.f => Arc::clone(&forked),
                _ => Arc::clone(&honest),
            };
            vec![source as Arc<dyn TreeHeadSource>]
        })
        .collect();
    let mut fed = TcpWitnessFed::spawn(
        net_config,
        TcpGossipConfig::default(),
        chaos_menu(config.seed ^ 0xC_4A05),
        sth_keys.clone(),
        sources,
    )?;

    // The traitor's imposter key: NOT the logger's, so its forged heads
    // must die at the receivers' signature check.
    let traitor_signer = {
        let mut traitor_rng = StdRng::seed_from_u64(config.seed ^ 0x7124);
        let traitor_kp = RsaKeyPair::generate(512, &mut traitor_rng);
        TreeHeadSigner::new(logger_id(), sth_private(&traitor_kp)?)
    };

    // The mutable federation handle (kill/restart) must stay free, so the
    // audit helper borrows it per call rather than capturing it.
    let light = Arc::new(LightClient::new(sth_keys.clone()));
    let audit = |fed: &TcpWitnessFed, witnessed: Option<CosignedHead>| {
        // adlp-lint: allow(discarded-fallible) — audit verdicts land in
        // the client's counters, which the assertions read directly
        let _ = light.audit_ack_witnessed(
            honest.as_ref(),
            honest_store.len() as u64 - 1,
            witnessed.as_ref(),
            fed.keyring(),
            quorum,
        );
    };

    // Phase 1: the storm. Gossip under the full chaos menu; the log grows
    // a record per round so consistency proofs are exercised live.
    let mut converged_after = None;
    for round in 1..=config.rounds {
        if config.mode == TcpWitnessMode::EquivocatingWitness {
            let forged = traitor_signer.sign(
                round as u64,
                honest_store.len() as u64,
                adlp_crypto::sha256(b"history the logger never had"),
            )?;
            fed.inject(n - 1, &forged.encode());
            let mut mangled = forged.encode();
            if let Some(byte) = mangled.last_mut() {
                *byte ^= 0x55;
            }
            fed.inject(n - 1, &mangled);
        }
        fed.round();
        if converged_after.is_none() && fed.converged() {
            converged_after = Some(round);
        }
        if round <= 2 {
            honest_store.append_encoded(vec![0xA0, round as u8]);
            forked_store.append_encoded(vec![0xA0, round as u8]);
        }
    }
    // Ride out any growth still in flight (pointless under a split view,
    // which never reconciles by design).
    if config.mode != TcpWitnessMode::SplitViewLogger {
        if let Some(extra) = fed.run_until_converged(config.rounds) {
            converged_after.get_or_insert(config.rounds + extra);
        }
    }

    // Phase 2: the mode's signature move.
    let mut restart = None;
    match config.mode {
        TcpWitnessMode::PartitionedWitnesses => {
            // f severed: the remaining f+1 must stay live AND quorate.
            for w in 0..config.f {
                fed.sever_witness(w);
            }
            fed.run_until_converged(config.rounds);
            audit(&fed, fed.witnessed(&logger_id()));
            // One more severed: the cosign quorum is gone. The client must
            // DEGRADE — counted, still collecting direct evidence — not
            // silently trust the bare logger head.
            fed.sever_witness(config.f);
            for _ in 0..2 {
                audit(&fed, None);
            }
            // Heal everything: full set re-converges, client recovers.
            for w in 0..=config.f {
                fed.heal_witness(w);
            }
            let healed = fed.run_until_converged(config.rounds * 2);
            converged_after = converged_after.or(healed);
            audit(&fed, fed.witnessed(&logger_id()));
        }
        TcpWitnessMode::RestartingWitness => {
            let victim = n - 1;
            let before = fed
                .witness(victim)
                .map(|w| (w.anchor(&logger_id()), w.cosign_high_water(&logger_id())));
            let (anchor_before, high_water_before) = before.unwrap_or((None, 0));
            // Power cut: sockets reset, storage truncated to synced.
            fed.kill(victim);
            // The log grows while the witness is dark; the survivors keep
            // the quorum alive (f+1 of 2f+1 still standing).
            honest_store.append_encoded(vec![0xB0; 8]);
            honest_store.append_encoded(vec![0xB1; 8]);
            fed.run_until_converged(config.rounds);
            audit(&fed, fed.witnessed(&logger_id()));
            // Restart from key + storage alone; proxies re-target the
            // fresh port, gossip catches the witness up.
            fed.restart(victim)?;
            let after = fed
                .witness(victim)
                .map(|w| (w.anchor(&logger_id()), w.cosign_high_water(&logger_id())));
            let (anchor_after, high_water_after) = after.unwrap_or((None, 0));
            restart = Some(RestartDrill {
                witness: victim,
                anchor_before,
                anchor_after,
                high_water_before,
                high_water_after,
            });
            converged_after = fed.run_until_converged(config.rounds * 2);
            // The temptation: a fork at a size the restarted witness has
            // durably seen, signed by the logger's real key. An amnesiac
            // witness would re-anchor; a durable one convicts.
            let tempt_size = honest_store.len() as u64;
            while forked_store.len() < tempt_size as usize {
                forked_store.append_encoded(vec![0xB0; 8]);
            }
            // Injected from witness 0's network position so the restarted
            // witness itself receives the fork; sent twice so socket chaos
            // cannot eat the only copy, and convictions spread via the
            // conviction-head gossip anyway.
            let fork_head = forked.emit()?;
            fed.inject(0, &fork_head.encode());
            fed.round();
            fed.inject(0, &fork_head.encode());
            for _ in 0..3 {
                fed.round();
            }
        }
        _ => {}
    }

    // Every mode ends with witnessed audits; under an honest federation
    // they are quorum-backed and clean.
    audit(&fed, fed.witnessed(&logger_id()));
    if config.mode == TcpWitnessMode::SplitViewLogger {
        // A client shown the fork AFTER trusting the honest head catches
        // the lie on the ack path.
        // adlp-lint: allow(discarded-fallible) — the refusal is the point; it lands in the counters
        let _ = light.audit_ack(forked.as_ref(), forked_store.len() as u64 - 1);
    }

    // Fold every conviction into the cluster auditor, which re-verifies
    // each proof itself before convicting anyone.
    let mut proofs = fed.proofs();
    for proof in light.evidence() {
        if !proofs
            .iter()
            .any(|p| p.log() == proof.log() && p.size() == proof.size())
        {
            proofs.push(proof);
        }
    }
    let cluster = LoggerCluster::spawn(ClusterConfig::new(1))?;
    let auditor = ClusterAuditor::new(cluster.keys().clone())
        .with_topology([(Topic::new("image"), logger_id())])
        .with_sth_keys(sth_keys);
    let report = auditor.audit_view_with_evidence(&cluster.view(), &proofs);

    let chaos_faults = {
        let mut total = 0;
        for i in 0..n {
            for j in 0..n {
                if let Some(proxy) = fed.proxy(i, j) {
                    total += proxy.stats().total_faults();
                }
            }
        }
        total
    };

    Ok(TcpWitnessChaosOutcome {
        converged_after,
        witnessed: fed.witnessed(&logger_id()),
        proofs,
        rejected: fed.rejected(),
        undecodable: fed.undecodable(),
        reconnects: fed.reconnects(),
        chaos_faults,
        light_verified: light.verified_acks(),
        sth_verify_failures: light.sth_verify_failures(),
        cosign_quorum_unavailable: light.cosign_quorum_unavailable(),
        quorum_recoveries: light.quorum_recoveries(),
        restart,
        report,
        fed,
    })
}
