//! Synthetic sensor payloads matching the paper's data types.
//!
//! Table I/III use three representative types; `|D|` below is the
//! serialized message size *including* the 16-byte header:
//!
//! | Type     | \|D\| (bytes) | payload bytes |
//! |----------|---------------|---------------|
//! | Steering | 20            | 4             |
//! | Scan     | 8 705         | 8 689         |
//! | Image    | 921 641       | 921 625       |

use adlp_pubsub::HEADER_LEN;

/// The paper's serialized size for a Steering message.
pub const STEERING_BODY_LEN: usize = 20;
/// The paper's serialized size for a LIDAR Scan message.
pub const SCAN_BODY_LEN: usize = 8_705;
/// The paper's serialized size for a camera Image message.
pub const IMAGE_BODY_LEN: usize = 921_641;

/// A data type published in the self-driving application.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PayloadKind {
    /// 4-byte steering angle (total body 20 B).
    Steering,
    /// LIDAR scan (total body 8 705 B).
    Scan,
    /// Camera image (total body 921 641 B).
    Image,
    /// Arbitrary body size (≥ 16) for sweeps.
    Custom(usize),
}

impl PayloadKind {
    /// Total serialized body size `|D|` (header + payload).
    pub fn body_len(self) -> usize {
        match self {
            PayloadKind::Steering => STEERING_BODY_LEN,
            PayloadKind::Scan => SCAN_BODY_LEN,
            PayloadKind::Image => IMAGE_BODY_LEN,
            PayloadKind::Custom(n) => n.max(HEADER_LEN),
        }
    }

    /// Application payload size (body minus the 16-byte header).
    pub fn payload_len(self) -> usize {
        self.body_len() - HEADER_LEN
    }

    /// Human-readable label (matching the paper's tables).
    pub fn label(self) -> String {
        match self {
            PayloadKind::Steering => "Steering".into(),
            PayloadKind::Scan => "Scan".into(),
            PayloadKind::Image => "Image".into(),
            PayloadKind::Custom(n) => format!("Custom({n})"),
        }
    }

    /// Generates a deterministic payload for the `tick`-th publication: a
    /// cheap xorshift fill so contents differ per tick (real sensor frames
    /// never repeat) without measurable generation cost.
    pub fn generate(self, tick: u64) -> Vec<u8> {
        let n = self.payload_len();
        let mut out = vec![0u8; n];
        let mut state = tick.wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1;
        // Fill 8 bytes at a time; the tail is handled by the same word.
        let mut i = 0;
        while i < n {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            let bytes = state.to_le_bytes();
            let take = (n - i).min(8);
            out[i..i + take].copy_from_slice(&bytes[..take]);
            i += take;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_sizes_are_exact() {
        assert_eq!(PayloadKind::Steering.body_len(), 20);
        assert_eq!(PayloadKind::Scan.body_len(), 8705);
        assert_eq!(PayloadKind::Image.body_len(), 921_641);
        assert_eq!(PayloadKind::Steering.payload_len(), 4);
    }

    #[test]
    fn custom_sizes_clamped_to_header() {
        assert_eq!(PayloadKind::Custom(10).body_len(), 16);
        assert_eq!(PayloadKind::Custom(1000).body_len(), 1000);
        assert_eq!(PayloadKind::Custom(1000).payload_len(), 984);
    }

    #[test]
    fn generation_is_deterministic_and_tick_dependent() {
        let a1 = PayloadKind::Scan.generate(1);
        let a2 = PayloadKind::Scan.generate(1);
        let b = PayloadKind::Scan.generate(2);
        assert_eq!(a1, a2);
        assert_ne!(a1, b);
        assert_eq!(a1.len(), PayloadKind::Scan.payload_len());
    }

    #[test]
    fn generated_image_has_full_size() {
        assert_eq!(
            PayloadKind::Image.generate(7).len(),
            IMAGE_BODY_LEN - HEADER_LEN
        );
    }
}
