//! Simulation of the paper's prototype platform.
//!
//! The paper evaluates ADLP on a 1/10-scale self-driving car (Intel NUC,
//! camera + LIDAR, ROS Kinetic). This crate substitutes that hardware with
//! a faithful software model:
//!
//! * [`data`] — synthetic sensor payloads with the paper's exact serialized
//!   sizes (Steering 20 B, Scan 8 705 B, Image 921 641 B) and rates
//!   (camera at 20 Hz);
//! * [`app`] — the autonomous-navigation component graph of Figure 11(b):
//!   sensor feeders, perception nodes, planner, controller, actuator;
//! * [`scenario`] — a harness that builds the graph under any scheme /
//!   behavior assignment, runs it for a wall-clock window, and hands back
//!   logs, statistics and an audit;
//! * [`metrics`] — CPU accounting from `/proc/self/task` (per-node thread
//!   attribution) and `/proc/self/stat` (process-wide), standing in for the
//!   paper's per-process `top` measurements;
//! * [`crash`] — deterministic crash-chaos runners that kill and restart
//!   durable loggers and cluster replicas mid-stream under storage faults,
//!   proving no acked entry is ever lost and auditor verdicts are unchanged
//!   across crashes;
//! * [`byzantine`] — scripted-traitor runners for the BFT cluster mode: a
//!   replica that equivocates, replays stale attestations, splits the
//!   epoch seal, or goes silent must end in continued liveness or a
//!   verified equivocation conviction — never silent acceptance;
//! * [`witness`] — chaos runners for the witness subsystem (DESIGN.md
//!   §3.12): a split-view logger, a forging witness, and a partitioned
//!   witness set must end in continued liveness or an auditor-re-verified
//!   split-view conviction naming the exact log;
//! * [`witness_tcp`] — the same scenarios over real TCP sockets under a
//!   seeded chaos proxy (DESIGN.md §3.13), plus the restart drill: a
//!   witness killed mid-run must resume from durable state with its TOFU
//!   anchor and cosign high-water mark intact;
//! * [`dispute`] — dispute-chaos scenarios (DESIGN.md §3.14): contested
//!   audit verdicts litigated through the dispute ledger with recorded
//!   traffic as evidence, under forged evidence, bribed resolvers,
//!   evidence-withholding claimants, and crashes mid-escalation.

pub mod app;
pub mod byzantine;
pub mod crash;
pub mod data;
pub mod dispute;
pub mod metrics;
pub mod scenario;
pub mod witness;
pub mod witness_tcp;

pub use app::{fanout_app, self_driving_app, AppSpec, DriveSpec, NodeSpec, PubSpec};
pub use byzantine::{
    run_byzantine_chaos, ByzantineChaosConfig, ByzantineChaosOutcome, ByzantineMode,
};
pub use crash::{
    run_cluster_chaos, run_single_logger_chaos, ClusterChaosConfig, ClusterChaosOutcome,
    SingleChaosConfig, SingleChaosOutcome,
};
pub use data::PayloadKind;
pub use metrics::{CpuProbe, ThreadCpuProbe};
pub use scenario::{ClusterRun, Scenario, ScenarioReport};
pub use witness::{run_witness_chaos, WitnessChaosConfig, WitnessChaosOutcome, WitnessMode};
pub use witness_tcp::{
    run_tcp_witness_chaos, RestartDrill, TcpWitnessChaosConfig, TcpWitnessChaosOutcome,
    TcpWitnessMode,
};
