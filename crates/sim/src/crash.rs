//! Crash-chaos harness: kill loggers and replicas mid-stream, power-cut
//! their storage, recover, and prove the durability contract held.
//!
//! Two deterministic scenarios, both driven entry-by-entry (no wall-clock,
//! no OS scheduling in the loss accounting):
//!
//! * [`run_single_logger_chaos`] — one durable [`LogServer`] over a
//!   fault-injecting storage device (torn writes, fsync failures). The
//!   driver streams deposits through the durable-ack path, crashes the
//!   server *and* the device on a fixed cadence, and recovers. The
//!   invariant under test: **every entry acked durable is present, in
//!   order, after every recovery** — and torn tails are truncated and
//!   counted, never panicked over.
//! * [`run_cluster_chaos`] — a durable replicated cluster; one replica is
//!   killed and power-cut mid-stream, restarted later (recovering its
//!   acked prefix from its own device), and caught back up to the quorum
//!   log. The invariant: quorum-acked entries survive, the restarted
//!   replica rejoins as *lagging* (never diverged), and divergence
//!   attribution for genuine tampering is identical to a crash-free run.
//!
//! The cluster scenario injects fsync failures but not torn writes: a torn
//! append refuses an entry on one replica only, which leaves a *hole* in
//! that replica's order relative to its peers — real order divergence,
//! correctly reported as such by the view, but noise for a harness whose
//! job is to prove crash recovery clean. The single-logger scenario, which
//! has no cross-replica order to preserve, injects the full fault menu.

use adlp_cluster::{
    ClusterConfig, ClusterLogClient, ClusterStatsSnapshot, ClusterView, LoggerCluster,
};
use adlp_logger::{
    Direction, DurabilityConfig, DurabilityStats, FaultyStorage, KeyRegistry, LogEntry, LogError,
    LogServer, LogStore, MemStorage, Recovery, Storage, StorageFaultConfig, SyncPolicy,
};
use adlp_pubsub::{NodeId, Topic};
use std::sync::Arc;

/// Single-logger chaos plan. All fields deterministic; two runs with the
/// same config produce the same ack set and the same recovered log.
#[derive(Debug, Clone)]
pub struct SingleChaosConfig {
    /// Seed for the storage device's fault stream.
    pub seed: u64,
    /// Entries to stream through the durable-ack path.
    pub entries: usize,
    /// Crash (kill + power cut + recover) after every this-many entries.
    pub crash_every: usize,
    /// Probability an append persists a prefix and reports failure.
    pub torn_write_rate: f64,
    /// Probability a sync fails without making bytes durable.
    pub fsync_failure_rate: f64,
    /// Snapshot+WAL rotation threshold (small, to exercise rotation under
    /// crashes).
    pub rotate_every: usize,
}

impl SingleChaosConfig {
    /// A plan exercising torn writes, fsync failures, and rotation.
    pub fn new(seed: u64) -> Self {
        SingleChaosConfig {
            seed,
            entries: 60,
            crash_every: 13,
            torn_write_rate: 0.06,
            fsync_failure_rate: 0.08,
            rotate_every: 16,
        }
    }
}

/// What a single-logger chaos run produced.
#[derive(Debug)]
pub struct SingleChaosOutcome {
    /// Encoded entries the logger acked as durable, in submission order.
    pub acked: Vec<Vec<u8>>,
    /// Entries submitted (acked + refused).
    pub submitted: usize,
    /// Crash/recover cycles performed (including the final one).
    pub crashes: usize,
    /// What each recovery found, in order.
    pub recoveries: Vec<Recovery>,
    /// The store as recovered after the final crash.
    pub store: LogStore,
    /// Shared durability counters (fsync failures, truncated records).
    pub counters: DurabilityStats,
}

impl SingleChaosOutcome {
    /// The durability contract: every acked entry appears in the recovered
    /// log, in submission order (unacked entries may interleave — an entry
    /// whose sync failed may still have survived, which is allowed).
    pub fn acked_survived_in_order(&self) -> bool {
        let recovered = self.store.encoded_records();
        let mut cursor = recovered.iter();
        self.acked.iter().all(|a| cursor.any(|r| r == a))
    }

    /// Records reported truncated across all recoveries.
    pub fn records_truncated(&self) -> u64 {
        self.recoveries.iter().map(|r| r.records_truncated).sum()
    }
}

/// Deterministic entry `i` of the chaos stream.
fn chaos_entry(i: usize) -> LogEntry {
    LogEntry::naive(
        NodeId::new(format!("cam{}", i % 3)),
        Topic::new("image"),
        Direction::Out,
        i as u64,
        1_000 + i as u64,
        vec![i as u8; 48],
    )
}

/// Runs the single-logger crash-chaos scenario.
///
/// # Errors
///
/// Returns [`LogError`] only for harness-level failures (a backend thread
/// that cannot spawn). Storage faults and crashes are the point of the
/// exercise and never error out of the run.
pub fn run_single_logger_chaos(config: &SingleChaosConfig) -> Result<SingleChaosOutcome, LogError> {
    let device = Arc::new(MemStorage::new());
    let faulty: Arc<dyn Storage> = Arc::new(FaultyStorage::new(
        Arc::clone(&device) as Arc<dyn Storage>,
        StorageFaultConfig {
            seed: config.seed,
            torn_write_rate: config.torn_write_rate,
            short_write_rate: 0.0,
            fsync_failure_rate: config.fsync_failure_rate,
            die_after_ops: None,
        },
    ));
    let counters = DurabilityStats::default();
    let durability = DurabilityConfig::new(faulty)
        .fsync(SyncPolicy::EveryAppend)
        .rotate_every(config.rotate_every)
        .counters(counters.clone());
    let keys = KeyRegistry::new();

    let mut spawned = LogServer::try_spawn_durable(keys.clone(), &durability)?;
    let mut recoveries = vec![spawned.recovery.clone()];
    let mut acked = Vec::new();
    let mut crashes = 0usize;

    for i in 0..config.entries {
        let entry = chaos_entry(i);
        let encoded = entry.encode();
        if spawned.server.handle().submit_durable(entry).is_ok() {
            acked.push(encoded);
        }
        if (i + 1) % config.crash_every == 0 {
            spawned.server.kill();
            device.crash();
            crashes += 1;
            spawned = LogServer::try_spawn_durable(keys.clone(), &durability)?;
            recoveries.push(spawned.recovery.clone());
        }
    }

    // End-of-run crash: whatever was acked must survive this one too.
    spawned.server.kill();
    device.crash();
    crashes += 1;
    let final_spawn = LogServer::try_spawn_durable(keys, &durability)?;
    recoveries.push(final_spawn.recovery.clone());
    let store = final_spawn.server.handle().store().clone();
    final_spawn.server.kill();

    Ok(SingleChaosOutcome {
        acked,
        submitted: config.entries,
        crashes,
        recoveries,
        store,
        counters,
    })
}

/// Cluster chaos plan: a replica crash (with power cut) mid-stream, a
/// later restart + catch-up, under fsync-failure injection on every
/// replica device.
#[derive(Debug, Clone)]
pub struct ClusterChaosConfig {
    /// Seed for the replica devices' fault streams (each device derives
    /// its own).
    pub seed: u64,
    /// Entries to stream through the durable quorum path.
    pub entries: usize,
    /// Shards (each with 3 replicas, write quorum 2).
    pub shards: usize,
    /// Kill + power-cut the victim after this entry (`None`: no crash —
    /// the control run for classification parity).
    pub kill_at: Option<usize>,
    /// Restart + catch up the victim after this entry.
    pub restart_at: usize,
    /// (shard, replica) of the victim.
    pub victim: (usize, usize),
    /// Probability a sync fails on a replica device.
    pub fsync_failure_rate: f64,
}

impl ClusterChaosConfig {
    /// A plan crashing replica (0, 2) mid-stream. One shard (of three
    /// replicas, write quorum two): the ring routes by (publisher, topic),
    /// so a single shard guarantees the victim replica sees traffic on
    /// both sides of its crash window whatever the seed; multi-shard
    /// routing is exercised by the cluster crate's own tests.
    pub fn new(seed: u64) -> Self {
        ClusterChaosConfig {
            seed,
            entries: 40,
            shards: 1,
            kill_at: Some(12),
            restart_at: 28,
            victim: (0, 2),
            fsync_failure_rate: 0.05,
        }
    }

    /// The same plan with the crash disabled (classification control).
    pub fn without_crash(mut self) -> Self {
        self.kill_at = None;
        self
    }
}

/// What a cluster chaos run produced. Holds the cluster itself so callers
/// can tamper with replicas and re-audit.
#[derive(Debug)]
pub struct ClusterChaosOutcome {
    /// Encoded entries quorum-acked durable, in submission order.
    pub acked: Vec<Vec<u8>>,
    /// What the victim's restart recovery found (`None` in control runs).
    pub recovery: Option<Recovery>,
    /// Records the victim adopted during catch-up (0 in control runs).
    pub adopted: usize,
    /// Whether the victim was strictly lagging (a quorum-log prefix) after
    /// restart, before catch-up (`true` in control runs).
    pub rejoined_lagging: bool,
    /// Final cluster counters.
    pub stats: ClusterStatsSnapshot,
    /// The cluster, alive, for post-run tampering and auditing.
    pub cluster: LoggerCluster,
}

impl ClusterChaosOutcome {
    /// The final cross-replica view.
    pub fn view(&self) -> ClusterView {
        self.cluster.view()
    }

    /// Whether every quorum-acked entry is present in some shard's quorum
    /// log (per-shard order is preserved by the serialized fan-out).
    pub fn acked_in_quorum_logs(&self) -> bool {
        let view = self.view();
        self.acked
            .iter()
            .all(|a| view.shards.iter().any(|s| s.records.contains(a)))
    }
}

/// Catches a restarted replica up to quorum while its device keeps
/// injecting fsync failures. A sync failure during adoption still stores
/// the record (content adoption succeeded; only the durability ack
/// failed), so retrying recomputes the shrinking gap and never duplicates
/// an entry. Returns the total number of records adopted.
fn catch_up_through_faults(
    cluster: &LoggerCluster,
    shard: usize,
    replica: usize,
) -> Result<usize, LogError> {
    let before = cluster
        .replica(shard, replica)
        .ok_or(LogError::NoSuchEntry(replica))?
        .handle()
        .store()
        .len();
    let mut last = Err(LogError::ServerClosed);
    for _ in 0..64 {
        last = cluster.catch_up_replica(shard, replica);
        match &last {
            Ok(_) => break,
            Err(LogError::Io(_)) => continue,
            Err(_) => break,
        }
    }
    last?;
    let after = cluster
        .replica(shard, replica)
        .ok_or(LogError::NoSuchEntry(replica))?
        .handle()
        .store()
        .len();
    Ok(after - before)
}

/// Runs the cluster crash-chaos scenario.
///
/// # Errors
///
/// Returns [`LogError`] for harness-level failures (spawn, restart, or a
/// catch-up the view cannot justify). Storage faults and the planned crash
/// never error out of the run.
pub fn run_cluster_chaos(config: &ClusterChaosConfig) -> Result<ClusterChaosOutcome, LogError> {
    let cluster_config = ClusterConfig::replicated(config.shards);
    let mut devices: Vec<Vec<Arc<MemStorage>>> = Vec::with_capacity(cluster_config.shards);
    let mut storages: Vec<Vec<Arc<dyn Storage>>> = Vec::with_capacity(cluster_config.shards);
    for shard in 0..cluster_config.shards {
        let mut shard_devices = Vec::with_capacity(cluster_config.replicas);
        let mut shard_storages: Vec<Arc<dyn Storage>> = Vec::with_capacity(cluster_config.replicas);
        for replica in 0..cluster_config.replicas {
            let device = Arc::new(MemStorage::new());
            let fault_seed = config
                .seed
                .wrapping_mul(0x9e37_79b9_7f4a_7c15)
                .wrapping_add((shard * 16 + replica) as u64);
            shard_storages.push(Arc::new(FaultyStorage::new(
                Arc::clone(&device) as Arc<dyn Storage>,
                StorageFaultConfig {
                    seed: fault_seed,
                    torn_write_rate: 0.0,
                    short_write_rate: 0.0,
                    fsync_failure_rate: config.fsync_failure_rate,
                    die_after_ops: None,
                },
            )));
            shard_devices.push(device);
        }
        devices.push(shard_devices);
        storages.push(shard_storages);
    }

    let cluster =
        LoggerCluster::spawn_durable(cluster_config, storages, SyncPolicy::EveryAppend, 64)?;
    let client = ClusterLogClient::in_proc(&cluster);
    let (victim_shard, victim_replica) = config.victim;

    let mut acked = Vec::new();
    let mut recovery = None;
    let mut adopted = 0usize;
    let mut rejoined_lagging = config.kill_at.is_none();
    for i in 0..config.entries {
        let entry = chaos_entry(i);
        let encoded = entry.encode();
        if client.submit_durable(entry).is_ok() {
            acked.push(encoded);
        }
        if config.kill_at == Some(i) {
            cluster.kill_replica(victim_shard, victim_replica);
            devices[victim_shard][victim_replica].crash();
        }
        if config.kill_at.is_some() && i == config.restart_at {
            // The stream is synchronous, so this point is quiescent: no
            // deposit is in flight while the victim restarts and catches
            // up.
            recovery = cluster.restart_replica(victim_shard, victim_replica)?;
            let view = cluster.view();
            rejoined_lagging = view
                .lagging()
                .iter()
                .any(|&(s, r, _)| (s, r) == (victim_shard, victim_replica))
                && view.divergences().is_empty();
            adopted = catch_up_through_faults(&cluster, victim_shard, victim_replica)?;
        }
    }
    // A failed flush here means only that some tail sync was refused by the
    // fault injector — content already reached the stores, and the run does
    // not crash again, so durability of that tail is not under test.
    if let Err(e @ (LogError::ServerClosed | LogError::Malformed(_))) = client.flush() {
        return Err(e);
    }

    let stats = cluster.stats().snapshot();
    Ok(ClusterChaosOutcome {
        acked,
        recovery,
        adopted,
        rejoined_lagging,
        stats,
        cluster,
    })
}
