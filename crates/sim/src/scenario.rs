//! The scenario runner: builds an [`AppSpec`] under a scheme/behavior
//! assignment, runs it for a wall-clock window, and collects every metric
//! the paper's evaluation reports.

use crate::app::{AppSpec, DriveSpec};
use crate::metrics::{CpuProbe, ThreadCpuProbe};
use adlp_audit::{AuditReport, Auditor};
use adlp_core::{AdlpNode, AdlpNodeBuilder, BehaviorProfile, Scheme};
use adlp_logger::{LogServer, LoggerHandle};
use adlp_pubsub::stats::StatsSnapshot;
use adlp_pubsub::{Master, Publisher, TransportKind};
use adlp_logger::stats::VolumeSnapshot;
use rand::SeedableRng;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A configured experiment.
#[derive(Debug)]
pub struct Scenario {
    app: AppSpec,
    default_scheme: Scheme,
    schemes: BTreeMap<String, Scheme>,
    behaviors: BTreeMap<String, BehaviorProfile>,
    duration: Duration,
    warmup: Duration,
    key_bits: usize,
    transport: TransportKind,
    seed: u64,
    /// Node whose thread-attributed CPU should be measured.
    cpu_node: Option<String>,
    base_stores_hash: bool,
}

/// Everything measured during a run.
#[derive(Debug)]
pub struct ScenarioReport {
    /// Wall-clock measurement window (after warmup).
    pub elapsed: Duration,
    /// Log volume accounting (per topic/component byte counts).
    pub volume: VolumeSnapshot,
    /// Per-node middleware statistics.
    pub node_stats: BTreeMap<String, StatsSnapshot>,
    /// Number of stored log records.
    pub store_len: usize,
    /// Process CPU utilization over the window, percent of one core.
    pub process_cpu_percent: f64,
    /// Thread-attributed CPU of the `cpu_node`, if one was named.
    pub node_cpu_percent: Option<f64>,
    /// Handle to the logger (store, keys, stats) for further analysis.
    pub logger: LoggerHandle,
    /// Topic → publisher topology of the run.
    pub topology: Vec<(adlp_pubsub::Topic, adlp_pubsub::NodeId)>,
    /// Per-subscription mean latency (topic, subscriber) → mean ns, from
    /// header stamps.
    pub mean_latency_ns: BTreeMap<(String, String), f64>,
    /// Raw per-subscription latency samples (ns), capped at 100k per link;
    /// source data for percentile reporting.
    pub latency_samples_ns: BTreeMap<(String, String), Vec<u64>>,
}

impl ScenarioReport {
    /// Runs the auditor over everything this scenario logged.
    pub fn audit(&self) -> AuditReport {
        Auditor::new(self.logger.keys().clone())
            .with_topology(self.topology.iter().cloned())
            .audit_store(self.logger.store())
    }

    /// System-wide log generation rate in Mb/s (Table IV's quantity).
    pub fn log_rate_mbps(&self) -> f64 {
        self.volume.rate_mbps(self.elapsed)
    }

    /// The q-th latency percentile (0.0–1.0) for a link, in milliseconds.
    pub fn latency_percentile_ms(&self, topic: &str, subscriber: &str, q: f64) -> Option<f64> {
        let samples = self
            .latency_samples_ns
            .get(&(topic.to_string(), subscriber.to_string()))?;
        if samples.is_empty() {
            return None;
        }
        let mut sorted = samples.clone();
        sorted.sort_unstable();
        let idx = ((sorted.len() - 1) as f64 * q.clamp(0.0, 1.0)).round() as usize;
        Some(sorted[idx] as f64 / 1e6)
    }
}

impl Scenario {
    /// Creates a scenario over an application graph.
    ///
    /// # Panics
    ///
    /// Panics if the graph fails validation.
    pub fn new(app: AppSpec) -> Self {
        app.validate().expect("invalid application graph");
        Scenario {
            app,
            default_scheme: Scheme::adlp(),
            schemes: BTreeMap::new(),
            behaviors: BTreeMap::new(),
            duration: Duration::from_secs(2),
            warmup: Duration::from_millis(200),
            key_bits: 1024,
            transport: TransportKind::InProc,
            seed: 42,
            cpu_node: None,
            base_stores_hash: false,
        }
    }

    /// Sets the scheme for every node.
    pub fn scheme(mut self, scheme: Scheme) -> Self {
        self.default_scheme = scheme;
        self
    }

    /// Overrides the scheme for one node.
    pub fn scheme_for(mut self, node: &str, scheme: Scheme) -> Self {
        self.schemes.insert(node.into(), scheme);
        self
    }

    /// Installs a behavior profile for one node.
    pub fn behavior(mut self, node: &str, profile: BehaviorProfile) -> Self {
        self.behaviors.insert(node.into(), profile);
        self
    }

    /// Measurement window (excluding warmup).
    pub fn duration(mut self, d: Duration) -> Self {
        self.duration = d;
        self
    }

    /// Warmup before measurement starts.
    pub fn warmup(mut self, d: Duration) -> Self {
        self.warmup = d;
        self
    }

    /// RSA key width (1024 = paper; tests use 512).
    pub fn key_bits(mut self, bits: usize) -> Self {
        self.key_bits = bits;
        self
    }

    /// Transport selection.
    pub fn transport(mut self, t: TransportKind) -> Self {
        self.transport = t;
        self
    }

    /// RNG seed for key generation.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Names the node whose thread-attributed CPU is measured (Figure 14's
    /// "publisher CPU utilization").
    pub fn measure_cpu_of(mut self, node: &str) -> Self {
        self.cpu_node = Some(node.into());
        self
    }

    /// Base-scheme subscribers store `h(D)` instead of the data (Table IV's
    /// configuration).
    pub fn base_stores_hash(mut self, yes: bool) -> Self {
        self.base_stores_hash = yes;
        self
    }

    /// Builds the graph, runs it, and collects the report.
    pub fn run(&self) -> ScenarioReport {
        let master = Master::new();
        let server = LogServer::spawn();
        let handle = server.handle();
        let mut rng = rand::rngs::StdRng::seed_from_u64(self.seed);

        // Build nodes.
        let mut nodes: BTreeMap<String, Arc<AdlpNode>> = BTreeMap::new();
        for spec in &self.app.nodes {
            let scheme = self
                .schemes
                .get(&spec.id)
                .unwrap_or(&self.default_scheme)
                .clone();
            let behavior = self
                .behaviors
                .get(&spec.id)
                .cloned()
                .unwrap_or_else(BehaviorProfile::faithful);
            let node = AdlpNodeBuilder::new(spec.id.as_str())
                .scheme(scheme)
                .behavior(behavior)
                .key_bits(self.key_bits)
                .transport(self.transport)
                .base_subscriber_stores_hash(self.base_stores_hash)
                .build(&master, &handle, &mut rng)
                .expect("node construction");
            nodes.insert(spec.id.clone(), Arc::new(node));
        }

        // Advertise every topic.
        let mut publishers: BTreeMap<String, Arc<Publisher>> = BTreeMap::new();
        for spec in &self.app.nodes {
            let node = &nodes[&spec.id];
            for p in &spec.publishes {
                publishers.insert(
                    p.topic.clone(),
                    Arc::new(node.advertise(p.topic.as_str()).expect("advertise")),
                );
            }
        }

        // Latency accounting per (topic, subscriber): raw samples, capped.
        type LatCell = Arc<parking_lot::Mutex<Vec<u64>>>;
        const MAX_SAMPLES: usize = 100_000;
        let mut latencies: BTreeMap<(String, String), LatCell> = BTreeMap::new();

        // Wire subscriptions; trigger-driven publications publish from the
        // subscriber callback (the node's `sr-` thread).
        let mut subscriptions = Vec::new();
        for spec in &self.app.nodes {
            let node = &nodes[&spec.id];
            for input in spec.all_inputs() {
                // Outputs triggered by this input.
                let outs: Vec<_> = spec
                    .publishes
                    .iter()
                    .filter(|p| matches!(&p.drive, DriveSpec::OnInput { topic } if *topic == input))
                    .map(|p| {
                        (
                            Arc::clone(&publishers[&p.topic]),
                            p.payload,
                            Arc::new(AtomicU64::new(0)),
                        )
                    })
                    .collect();
                let cell: LatCell = Arc::new(parking_lot::Mutex::new(Vec::new()));
                latencies.insert((input.clone(), spec.id.clone()), Arc::clone(&cell));
                let clock = adlp_pubsub::SystemClock;
                let sub = node
                    .subscribe(input.as_str(), move |msg| {
                        use adlp_pubsub::Clock;
                        let now = clock.now_ns();
                        if now > msg.header.stamp_ns {
                            let mut samples = cell.lock();
                            if samples.len() < MAX_SAMPLES {
                                samples.push(now - msg.header.stamp_ns);
                            }
                        }
                        for (publisher, payload, tick) in &outs {
                            let t = tick.fetch_add(1, Ordering::Relaxed);
                            let _ = publisher.publish(&payload.generate(t));
                        }
                    })
                    .expect("subscribe");
                subscriptions.push(sub);
            }
        }

        // Periodic drivers.
        let stop = Arc::new(AtomicBool::new(false));
        let mut drivers = Vec::new();
        for spec in &self.app.nodes {
            for p in &spec.publishes {
                let DriveSpec::Periodic { hz } = p.drive else {
                    continue;
                };
                let publisher = Arc::clone(&publishers[&p.topic]);
                let payload = p.payload;
                let stop2 = Arc::clone(&stop);
                let period = Duration::from_secs_f64(1.0 / hz);
                drivers.push(
                    std::thread::Builder::new()
                        .name(format!("dr-{}", spec.id))
                        .spawn(move || {
                            let mut tick = 0u64;
                            let mut next = Instant::now();
                            while !stop2.load(Ordering::SeqCst) {
                                let _ = publisher.publish(&payload.generate(tick));
                                tick += 1;
                                next += period;
                                let now = Instant::now();
                                if next > now {
                                    std::thread::sleep(next - now);
                                } else {
                                    next = now; // cannot keep up; don't spiral
                                }
                            }
                        })
                        .expect("spawn driver"),
                );
            }
        }

        // Warmup, then measure.
        std::thread::sleep(self.warmup);
        handle.stats().reset();
        let cpu = CpuProbe::start();
        let node_cpu = self
            .cpu_node
            .as_deref()
            .map(ThreadCpuProbe::for_node);
        let t0 = Instant::now();
        std::thread::sleep(self.duration);
        let elapsed = t0.elapsed();
        let process_cpu_percent = cpu.utilization_percent();
        let node_cpu_percent = node_cpu.map(|p| p.utilization_percent());

        // Tear down: stop drivers, close publishers, flush logging.
        stop.store(true, Ordering::SeqCst);
        for d in drivers {
            let _ = d.join();
        }
        let topology = master.topology();
        for (_, p) in publishers.iter() {
            p.close();
        }
        for sub in &mut subscriptions {
            sub.close();
        }
        for node in nodes.values() {
            let _ = node.flush();
        }

        let mut node_stats = BTreeMap::new();
        for (id, node) in &nodes {
            node_stats.insert(id.clone(), node.stats().snapshot());
        }
        let mut mean_latency_ns = BTreeMap::new();
        let mut latency_samples_ns = BTreeMap::new();
        for (k, cell) in latencies {
            let samples = std::mem::take(&mut *cell.lock());
            if !samples.is_empty() {
                let mean = samples.iter().sum::<u64>() as f64 / samples.len() as f64;
                mean_latency_ns.insert(k.clone(), mean);
            }
            latency_samples_ns.insert(k, samples);
        }

        ScenarioReport {
            elapsed,
            volume: handle.stats().snapshot(),
            node_stats,
            store_len: handle.store().len(),
            process_cpu_percent,
            node_cpu_percent,
            logger: handle,
            topology,
            mean_latency_ns,
            latency_samples_ns,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::app::{fanout_app, self_driving_app};
    use crate::data::PayloadKind;

    #[test]
    fn fanout_scenario_runs_and_logs() {
        let report = Scenario::new(fanout_app(PayloadKind::Custom(100), 2, 50.0))
            .key_bits(512)
            .duration(Duration::from_millis(500))
            .run();
        // The feeder published, both sinks received, entries were logged.
        assert!(report.node_stats["feeder"].published > 5);
        assert!(report.node_stats["sink0"].received > 5);
        assert!(report.store_len > 10);
        assert!(report.volume.bytes > 0);
        let audit = report.audit();
        assert!(audit.all_clear(), "faithful run must audit clean");
    }

    #[test]
    fn self_driving_app_flows_end_to_end() {
        let report = Scenario::new(self_driving_app())
            .key_bits(512)
            .duration(Duration::from_millis(800))
            .run();
        // Data flowed all the way to the actuator.
        assert!(
            report.node_stats["actuator"].received > 0,
            "stats: {:?}",
            report.node_stats
        );
        // Latencies were recorded for the image link.
        assert!(report
            .mean_latency_ns
            .keys()
            .any(|(t, s)| t == "image" && s == "lanedet"));
    }

    #[test]
    fn latency_percentiles_are_ordered() {
        let report = Scenario::new(fanout_app(PayloadKind::Custom(128), 1, 100.0))
            .key_bits(512)
            .duration(Duration::from_millis(500))
            .run();
        let p50 = report.latency_percentile_ms("data", "sink0", 0.5).unwrap();
        let p99 = report.latency_percentile_ms("data", "sink0", 0.99).unwrap();
        assert!(p50 > 0.0);
        assert!(p99 >= p50, "p99 {p99} must dominate p50 {p50}");
        assert!(report.latency_percentile_ms("ghost", "sink0", 0.5).is_none());
        // Mean sits within the sample range.
        let mean = report.mean_latency_ns[&("data".into(), "sink0".into())] / 1e6;
        let p0 = report.latency_percentile_ms("data", "sink0", 0.0).unwrap();
        let p100 = report.latency_percentile_ms("data", "sink0", 1.0).unwrap();
        assert!(mean >= p0 && mean <= p100);
    }

    #[test]
    fn no_logging_scheme_produces_empty_store() {
        let report = Scenario::new(fanout_app(PayloadKind::Custom(64), 1, 50.0))
            .scheme(Scheme::NoLogging)
            .duration(Duration::from_millis(300))
            .run();
        assert_eq!(report.store_len, 0);
        assert!(report.node_stats["sink0"].received > 0);
    }

    #[test]
    fn base_scheme_logs_but_without_signatures() {
        let report = Scenario::new(fanout_app(PayloadKind::Custom(64), 1, 50.0))
            .scheme(Scheme::Base)
            .duration(Duration::from_millis(300))
            .run();
        assert!(report.store_len > 0);
        for e in report.logger.store().entries() {
            assert!(!e.unwrap().is_adlp());
        }
    }

    #[test]
    fn unfaithful_node_detected_in_scenario() {
        use adlp_core::{LinkRole, LogBehavior};
        let report = Scenario::new(fanout_app(PayloadKind::Custom(64), 1, 50.0))
            .key_bits(512)
            .behavior(
                "sink0",
                BehaviorProfile::faithful().with_link(
                    LinkRole::Subscriber,
                    adlp_pubsub::Topic::new("data"),
                    LogBehavior::Hide,
                ),
            )
            .duration(Duration::from_millis(400))
            .run();
        let audit = report.audit();
        assert!(!audit.all_clear());
        let unfaithful = audit.unfaithful_components();
        assert_eq!(unfaithful.len(), 1);
        assert_eq!(unfaithful[0].0.as_str(), "sink0");
    }
}
