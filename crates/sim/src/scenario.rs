//! The scenario runner: builds an [`AppSpec`] under a scheme/behavior
//! assignment, runs it for a wall-clock window, and collects every metric
//! the paper's evaluation reports.

use crate::app::{AppSpec, DriveSpec};
use crate::metrics::{CpuProbe, ThreadCpuProbe};
use adlp_audit::{AuditReport, Auditor, ClusterAuditReport, ClusterAuditor};
use adlp_cluster::{
    ClusterConfig, ClusterLogClient, ClusterStatsSnapshot, ClusterView, EpochSeal, LoggerCluster,
};
use adlp_core::{
    AdlpNode, AdlpNodeBuilder, BehaviorProfile, DepositTarget, FaultConfig, LinkEvent,
    OverloadConfig, QueuePressure, ResilienceConfig, Scheme,
};
use adlp_crypto::{RsaKeyPair, RsaPublicKey};
use adlp_logger::{KeyRegistry, LogServer, LoggerHandle};
use adlp_pubsub::stats::StatsSnapshot;
use adlp_pubsub::{Master, Publisher, SubscribeOptions, TransportKind};
use adlp_logger::stats::VolumeSnapshot;
use rand::SeedableRng;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A configured experiment.
#[derive(Debug)]
pub struct Scenario {
    app: AppSpec,
    default_scheme: Scheme,
    schemes: BTreeMap<String, Scheme>,
    behaviors: BTreeMap<String, BehaviorProfile>,
    duration: Duration,
    warmup: Duration,
    key_bits: usize,
    transport: TransportKind,
    seed: u64,
    /// Node whose thread-attributed CPU should be measured.
    cpu_node: Option<String>,
    base_stores_hash: bool,
    /// Fault-tolerance knobs applied to every node.
    resilience: ResilienceConfig,
    /// Per-publisher injected link faults.
    faults: BTreeMap<String, FaultConfig>,
    /// Per-subscriber bounded queue depths (ROS `queue_size`).
    queue_sizes: BTreeMap<String, usize>,
    /// Per-subscriber artificial callback latency (a "slow subscriber").
    callback_delays: BTreeMap<String, Duration>,
    /// Kill the trusted logger this long into the measurement window.
    logger_outage_after: Option<Duration>,
    /// Deposit into a sharded, replicated cluster instead of one server.
    cluster: Option<ClusterConfig>,
    /// (shard, replica, offset into the window) crash injections.
    replica_kills: Vec<(usize, usize, Duration)>,
    /// (shard, replica, offset into the window) rolling-restart steps.
    replica_restarts: Vec<(usize, usize, Duration)>,
    /// Overload policy installed on every node's deposit pipeline.
    overload: Option<OverloadConfig>,
    /// Minimum spacing between consecutive deposits at the logger — a
    /// slow-consumer logger shared by all nodes.
    logger_pace: Option<Duration>,
}

/// A mid-window disruption, ordered by its offset into the window.
enum MidRunAction {
    KillLogger,
    KillReplica(usize, usize),
    RestartReplica(usize, usize),
}

/// Everything measured during a run.
#[derive(Debug)]
pub struct ScenarioReport {
    /// Wall-clock measurement window (after warmup).
    pub elapsed: Duration,
    /// Log volume accounting (per topic/component byte counts).
    pub volume: VolumeSnapshot,
    /// Per-node middleware statistics.
    pub node_stats: BTreeMap<String, StatsSnapshot>,
    /// Number of stored log records.
    pub store_len: usize,
    /// Process CPU utilization over the window, percent of one core.
    pub process_cpu_percent: f64,
    /// Thread-attributed CPU of the `cpu_node`, if one was named.
    pub node_cpu_percent: Option<f64>,
    /// Handle to the logger (store, keys, stats) for further analysis.
    pub logger: LoggerHandle,
    /// Topic → publisher topology of the run.
    pub topology: Vec<(adlp_pubsub::Topic, adlp_pubsub::NodeId)>,
    /// Per-subscription mean latency (topic, subscriber) → mean ns, from
    /// header stamps.
    pub mean_latency_ns: BTreeMap<(String, String), f64>,
    /// Raw per-subscription latency samples (ns), capped at 100k per link;
    /// source data for percentile reporting.
    pub latency_samples_ns: BTreeMap<(String, String), Vec<u64>>,
    /// Link-health events (ack timeouts, degradations, teardowns) drained
    /// from each node at the end of the run.
    pub link_events: BTreeMap<String, Vec<LinkEvent>>,
    /// Publish calls that returned an error during the run (e.g. a link
    /// torn down mid-measurement). Counted so dropped traffic is visible
    /// in the report instead of silently vanishing.
    pub publish_failures: u64,
    /// Driver ticks skipped because the publishing node's deposit queue
    /// was above its high watermark (the pressure-aware send loop slowed
    /// down instead of buffering unboundedly). Counted, never silent.
    pub publishes_throttled: u64,
    /// Per-node deposit-pipeline overload views (depth, sheds, receipts,
    /// breaker transitions), cumulative over the whole run.
    pub pressure: BTreeMap<String, QueuePressure>,
    /// Cluster-mode artifacts (`None` for single-logger runs).
    pub cluster: Option<ClusterRun>,
}

/// What a cluster-mode run leaves behind for analysis.
#[derive(Debug)]
pub struct ClusterRun {
    /// Quorum/failover/loss accounting over the whole run.
    pub stats: ClusterStatsSnapshot,
    /// The gathered, cross-checked cluster state at teardown.
    pub view: ClusterView,
    /// The epoch seal cut at teardown.
    pub seal: EpochSeal,
    /// Public half of the sealing key (for seal verification).
    pub sealing_key: RsaPublicKey,
    /// The cluster-wide key registry.
    pub keys: KeyRegistry,
}

impl ScenarioReport {
    /// Runs the auditor over everything this scenario logged. In cluster
    /// mode this is the entry-level audit over the merged quorum logs; use
    /// [`ScenarioReport::cluster_audit`] for the full replica/seal layer.
    pub fn audit(&self) -> AuditReport {
        if let Some(c) = &self.cluster {
            return ClusterAuditor::new(c.keys.clone())
                .with_topology(self.topology.iter().cloned())
                .audit_view(&c.view)
                .report;
        }
        Auditor::new(self.logger.keys().clone())
            .with_topology(self.topology.iter().cloned())
            .audit_store(self.logger.store())
    }

    /// The full cluster audit: replica divergence, epoch-seal verification
    /// against the run's seal, and the entry-level report. `None` for
    /// single-logger runs.
    pub fn cluster_audit(&self) -> Option<ClusterAuditReport> {
        let c = self.cluster.as_ref()?;
        Some(
            ClusterAuditor::new(c.keys.clone())
                .with_topology(self.topology.iter().cloned())
                .audit_sealed_view(&c.view, &c.seal, &c.sealing_key),
        )
    }

    /// System-wide log generation rate in Mb/s (Table IV's quantity).
    pub fn log_rate_mbps(&self) -> f64 {
        self.volume.rate_mbps(self.elapsed)
    }

    /// The q-th latency percentile (0.0–1.0) for a link, in milliseconds.
    pub fn latency_percentile_ms(&self, topic: &str, subscriber: &str, q: f64) -> Option<f64> {
        let samples = self
            .latency_samples_ns
            .get(&(topic.to_string(), subscriber.to_string()))?;
        if samples.is_empty() {
            return None;
        }
        let mut sorted = samples.clone();
        sorted.sort_unstable();
        let idx = ((sorted.len() - 1) as f64 * q.clamp(0.0, 1.0)).round() as usize;
        Some(sorted[idx] as f64 / 1e6)
    }
}

impl Scenario {
    /// Creates a scenario over an application graph.
    ///
    /// # Panics
    ///
    /// Panics if the graph fails validation.
    pub fn new(app: AppSpec) -> Self {
        app.validate().expect("invalid application graph");
        Scenario {
            app,
            default_scheme: Scheme::adlp(),
            schemes: BTreeMap::new(),
            behaviors: BTreeMap::new(),
            duration: Duration::from_secs(2),
            warmup: Duration::from_millis(200),
            key_bits: 1024,
            transport: TransportKind::InProc,
            seed: 42,
            cpu_node: None,
            base_stores_hash: false,
            resilience: ResilienceConfig::default(),
            faults: BTreeMap::new(),
            queue_sizes: BTreeMap::new(),
            callback_delays: BTreeMap::new(),
            logger_outage_after: None,
            cluster: None,
            replica_kills: Vec::new(),
            replica_restarts: Vec::new(),
            overload: None,
            logger_pace: None,
        }
    }

    /// Installs an overload policy (bounded deposit queue, shed policy,
    /// watermarks, optional circuit breaker) on every node. Periodic
    /// drivers become pressure-aware: while a publisher's queue sits above
    /// its high watermark they skip ticks (counted in
    /// [`ScenarioReport::publishes_throttled`]) instead of pushing more
    /// load into the pipeline.
    pub fn overload(mut self, config: OverloadConfig) -> Self {
        self.overload = Some(config);
        self
    }

    /// Makes the logger a slow consumer: all deposits (from every node)
    /// share one rate gate admitting at most one entry per `min_interval`.
    /// With the arrival rate known, the overload factor is set by
    /// construction.
    pub fn paced_logger(mut self, min_interval: Duration) -> Self {
        self.logger_pace = Some(min_interval);
        self
    }

    /// Deposits into a sharded, quorum-replicated logger cluster instead of
    /// a single trusted server. The report then carries a [`ClusterRun`].
    pub fn cluster(mut self, config: ClusterConfig) -> Self {
        self.cluster = Some(config);
        self
    }

    /// Crashes one cluster replica this far into the measurement window
    /// (fail-stop; no effect on single-logger runs).
    pub fn kill_replica_after(mut self, shard: usize, replica: usize, after: Duration) -> Self {
        self.replica_kills.push((shard, replica, after));
        self
    }

    /// Restarts one cluster replica (fresh and empty — a lagging follower)
    /// this far into the measurement window. Combined with
    /// [`Scenario::kill_replica_after`] this scripts a rolling restart.
    pub fn restart_replica_after(mut self, shard: usize, replica: usize, after: Duration) -> Self {
        self.replica_restarts.push((shard, replica, after));
        self
    }

    /// Installs fault-tolerance knobs (ack deadlines, retries, socket
    /// timeouts) on every node.
    pub fn resilience(mut self, config: ResilienceConfig) -> Self {
        self.resilience = config;
        self
    }

    /// Injects deterministic link faults on one publisher's outgoing links
    /// (a "flapping link" when drops and delays are enabled).
    pub fn faults_for(mut self, node: &str, config: FaultConfig) -> Self {
        self.faults.insert(node.into(), config);
        self
    }

    /// Bounds one subscriber's per-link queue; a full queue drops new
    /// frames at the publisher (counted, never silent).
    pub fn subscriber_queue(mut self, node: &str, depth: usize) -> Self {
        self.queue_sizes.insert(node.into(), depth);
        self
    }

    /// Adds artificial latency to one subscriber's callback — a slow
    /// consumer that backs up its delivery queue.
    pub fn subscriber_delay(mut self, node: &str, delay: Duration) -> Self {
        self.callback_delays.insert(node.into(), delay);
        self
    }

    /// Crashes the trusted logger this far into the measurement window;
    /// the data plane must keep flowing (§V-B's failure-isolation claim).
    pub fn logger_outage_after(mut self, after: Duration) -> Self {
        self.logger_outage_after = Some(after);
        self
    }

    /// Sets the scheme for every node.
    pub fn scheme(mut self, scheme: Scheme) -> Self {
        self.default_scheme = scheme;
        self
    }

    /// Overrides the scheme for one node.
    pub fn scheme_for(mut self, node: &str, scheme: Scheme) -> Self {
        self.schemes.insert(node.into(), scheme);
        self
    }

    /// Installs a behavior profile for one node.
    pub fn behavior(mut self, node: &str, profile: BehaviorProfile) -> Self {
        self.behaviors.insert(node.into(), profile);
        self
    }

    /// Measurement window (excluding warmup).
    pub fn duration(mut self, d: Duration) -> Self {
        self.duration = d;
        self
    }

    /// Warmup before measurement starts.
    pub fn warmup(mut self, d: Duration) -> Self {
        self.warmup = d;
        self
    }

    /// RSA key width (1024 = paper; tests use 512).
    pub fn key_bits(mut self, bits: usize) -> Self {
        self.key_bits = bits;
        self
    }

    /// Transport selection.
    pub fn transport(mut self, t: TransportKind) -> Self {
        self.transport = t;
        self
    }

    /// RNG seed for key generation.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Names the node whose thread-attributed CPU is measured (Figure 14's
    /// "publisher CPU utilization").
    pub fn measure_cpu_of(mut self, node: &str) -> Self {
        self.cpu_node = Some(node.into());
        self
    }

    /// Base-scheme subscribers store `h(D)` instead of the data (Table IV's
    /// configuration).
    pub fn base_stores_hash(mut self, yes: bool) -> Self {
        self.base_stores_hash = yes;
        self
    }

    /// Builds the graph, runs it, and collects the report.
    pub fn run(&self) -> ScenarioReport {
        let master = Master::new();
        let server = LogServer::spawn();
        let handle = server.handle();
        let mut rng = rand::rngs::StdRng::seed_from_u64(self.seed);

        // Deposit destination: the single server, or a replicated cluster
        // (with a deterministic, seed-derived sealing key).
        let cluster_rt = self.cluster.as_ref().map(|config| {
            let cluster = LoggerCluster::spawn(config.clone()).expect("spawn cluster");
            let client = Arc::new(ClusterLogClient::in_proc(&cluster));
            let sealing = RsaKeyPair::generate(self.key_bits, &mut rng);
            (cluster, client, sealing)
        });
        let target = match &cluster_rt {
            Some((_, client, _)) => DepositTarget::Cluster(Arc::clone(client)),
            None => DepositTarget::Single(handle.clone()),
        };
        // The pace gate is created once and cloned into every node, so all
        // deposits contend for the same slow logger.
        let target = match self.logger_pace {
            Some(interval) => DepositTarget::paced(target, interval),
            None => target,
        };

        // Build nodes.
        let mut nodes: BTreeMap<String, Arc<AdlpNode>> = BTreeMap::new();
        for spec in &self.app.nodes {
            let scheme = self
                .schemes
                .get(&spec.id)
                .unwrap_or(&self.default_scheme)
                .clone();
            let behavior = self
                .behaviors
                .get(&spec.id)
                .cloned()
                .unwrap_or_else(BehaviorProfile::faithful);
            let mut builder = AdlpNodeBuilder::new(spec.id.as_str())
                .scheme(scheme)
                .behavior(behavior)
                .key_bits(self.key_bits)
                .transport(self.transport)
                .base_subscriber_stores_hash(self.base_stores_hash)
                .resilience(self.resilience.clone());
            if let Some(faults) = self.faults.get(&spec.id) {
                builder = builder.faults(faults.clone());
            }
            if let Some(overload) = &self.overload {
                builder = builder.overload(overload.clone());
            }
            let node = builder
                .build_with_target(&master, target.clone(), &mut rng)
                .expect("node construction");
            nodes.insert(spec.id.clone(), Arc::new(node));
        }

        // Advertise every topic.
        let mut publishers: BTreeMap<String, Arc<Publisher>> = BTreeMap::new();
        for spec in &self.app.nodes {
            let node = &nodes[&spec.id];
            for p in &spec.publishes {
                publishers.insert(
                    p.topic.clone(),
                    Arc::new(node.advertise(p.topic.as_str()).expect("advertise")),
                );
            }
        }

        // Latency accounting per (topic, subscriber): raw samples, capped.
        type LatCell = Arc<parking_lot::Mutex<Vec<u64>>>;
        const MAX_SAMPLES: usize = 100_000;
        let mut latencies: BTreeMap<(String, String), LatCell> = BTreeMap::new();
        let publish_failures = Arc::new(AtomicU64::new(0));

        // Wire subscriptions; trigger-driven publications publish from the
        // subscriber callback (the node's `sr-` thread).
        let mut subscriptions = Vec::new();
        for spec in &self.app.nodes {
            let node = &nodes[&spec.id];
            for input in spec.all_inputs() {
                // Outputs triggered by this input.
                let outs: Vec<_> = spec
                    .publishes
                    .iter()
                    .filter(|p| matches!(&p.drive, DriveSpec::OnInput { topic } if *topic == input))
                    .map(|p| {
                        (
                            Arc::clone(&publishers[&p.topic]),
                            p.payload,
                            Arc::new(AtomicU64::new(0)),
                        )
                    })
                    .collect();
                let cell: LatCell = Arc::new(parking_lot::Mutex::new(Vec::new()));
                latencies.insert((input.clone(), spec.id.clone()), Arc::clone(&cell));
                let clock = adlp_pubsub::SystemClock;
                let mut options = SubscribeOptions::new();
                if let Some(&depth) = self.queue_sizes.get(&spec.id) {
                    options = options.with_queue_size(depth);
                }
                let callback_delay = self.callback_delays.get(&spec.id).copied();
                let relay_failures = Arc::clone(&publish_failures);
                let sub = node
                    .subscribe_with(input.as_str(), options, move |msg| {
                        use adlp_pubsub::Clock;
                        if let Some(delay) = callback_delay {
                            std::thread::sleep(delay);
                        }
                        let now = clock.now_ns();
                        if now > msg.header.stamp_ns {
                            let mut samples = cell.lock();
                            if samples.len() < MAX_SAMPLES {
                                samples.push(now - msg.header.stamp_ns);
                            }
                        }
                        for (publisher, payload, tick) in &outs {
                            let t = tick.fetch_add(1, Ordering::Relaxed);
                            if publisher.publish(&payload.generate(t)).is_err() {
                                relay_failures.fetch_add(1, Ordering::Relaxed);
                            }
                        }
                    })
                    .expect("subscribe");
                subscriptions.push(sub);
            }
        }

        // Periodic drivers (pressure-aware: they watch their node's
        // deposit-queue pressure and skip ticks while it is high).
        let stop = Arc::new(AtomicBool::new(false));
        let publishes_throttled = Arc::new(AtomicU64::new(0));
        let mut drivers = Vec::new();
        for spec in &self.app.nodes {
            for p in &spec.publishes {
                let DriveSpec::Periodic { hz } = p.drive else {
                    continue;
                };
                let publisher = Arc::clone(&publishers[&p.topic]);
                let payload = p.payload;
                let stop2 = Arc::clone(&stop);
                let driver_failures = Arc::clone(&publish_failures);
                let throttled = Arc::clone(&publishes_throttled);
                let node_pressure = nodes[&spec.id].queue_pressure();
                let period = Duration::from_secs_f64(1.0 / hz);
                drivers.push(
                    std::thread::Builder::new()
                        .name(format!("dr-{}", spec.id))
                        .spawn(move || {
                            let mut tick = 0u64;
                            // adlp-lint: allow(sim-determinism) — publish pacing is physical time by design; logical state (ticks, payloads) is seed-driven
                            let mut next = Instant::now();
                            while !stop2.load(Ordering::SeqCst) {
                                if node_pressure.is_high() {
                                    // The deposit pipeline is drowning: hold
                                    // this tick back instead of feeding it.
                                    throttled.fetch_add(1, Ordering::Relaxed);
                                } else if publisher.publish(&payload.generate(tick)).is_err() {
                                    driver_failures.fetch_add(1, Ordering::Relaxed);
                                }
                                tick += 1;
                                next += period;
                                // adlp-lint: allow(sim-determinism) — drift correction for the pacing loop; measurement, not decision
                                let now = Instant::now();
                                if next > now {
                                    std::thread::sleep(next - now);
                                } else {
                                    next = now; // cannot keep up; don't spiral
                                }
                            }
                        })
                        .expect("spawn driver"),
                );
            }
        }

        // Warmup, then measure.
        std::thread::sleep(self.warmup);
        handle.stats().reset();
        if let Some((_, client, _)) = &cluster_rt {
            client.volume().reset();
        }
        let cpu = CpuProbe::start();
        let node_cpu = self
            .cpu_node
            .as_deref()
            .map(ThreadCpuProbe::for_node);
        // adlp-lint: allow(sim-determinism) — the measurement window is wall-clock by definition (Table IV reports real rates); protocol state stays seed-driven
        let t0 = Instant::now();
        let mut actions: Vec<(Duration, MidRunAction)> = Vec::new();
        if let Some(after) = self.logger_outage_after {
            actions.push((after, MidRunAction::KillLogger));
        }
        for &(shard, replica, after) in &self.replica_kills {
            actions.push((after, MidRunAction::KillReplica(shard, replica)));
        }
        for &(shard, replica, after) in &self.replica_restarts {
            actions.push((after, MidRunAction::RestartReplica(shard, replica)));
        }
        actions.sort_by_key(|&(at, _)| at);
        let mut waited = Duration::ZERO;
        for (at, action) in actions {
            if at >= self.duration {
                break;
            }
            std::thread::sleep(at.saturating_sub(waited));
            waited = at;
            match action {
                MidRunAction::KillLogger => server.kill(),
                MidRunAction::KillReplica(shard, replica) => {
                    if let Some((cluster, _, _)) = &cluster_rt {
                        cluster.kill_replica(shard, replica);
                    }
                }
                MidRunAction::RestartReplica(shard, replica) => {
                    if let Some((cluster, _, _)) = &cluster_rt {
                        // adlp-lint: allow(discarded-fallible) — a restart that fails mid-scenario shows up as a still-dead replica in the report
                        let _ = cluster.restart_replica(shard, replica);
                    }
                }
            }
        }
        std::thread::sleep(self.duration.saturating_sub(waited));
        let elapsed = t0.elapsed();
        let process_cpu_percent = cpu.utilization_percent();
        let node_cpu_percent = node_cpu.map(|p| p.utilization_percent());

        // Tear down: stop drivers, close publishers, flush logging.
        stop.store(true, Ordering::SeqCst);
        for d in drivers {
            let _ = d.join();
        }
        let topology = master.topology();
        for (_, p) in publishers.iter() {
            p.close();
        }
        for sub in &mut subscriptions {
            sub.close();
        }
        for node in nodes.values() {
            // adlp-lint: allow(discarded-fallible) — after a deliberate logger_outage_after kill, flush reports ServerClosed by design
            let _ = node.flush();
        }

        let mut node_stats = BTreeMap::new();
        let mut link_events = BTreeMap::new();
        let mut pressure = BTreeMap::new();
        for (id, node) in &nodes {
            node_stats.insert(id.clone(), node.stats().snapshot());
            link_events.insert(id.clone(), node.take_link_events());
            pressure.insert(id.clone(), node.queue_pressure());
        }
        let mut mean_latency_ns = BTreeMap::new();
        let mut latency_samples_ns = BTreeMap::new();
        for (k, cell) in latencies {
            let samples = std::mem::take(&mut *cell.lock());
            if !samples.is_empty() {
                let mean = samples.iter().sum::<u64>() as f64 / samples.len() as f64;
                mean_latency_ns.insert(k.clone(), mean);
            }
            latency_samples_ns.insert(k, samples);
        }

        // Cluster teardown: gather the replicas and cut the epoch seal.
        let cluster_volume = cluster_rt
            .as_ref()
            .map(|(_, client, _)| client.volume().snapshot());
        let cluster_run = cluster_rt.map(|(cluster, client, sealing)| {
            let view = cluster.view();
            let seal = cluster
                .seal_epoch(sealing.private_key())
                .expect("seal epoch");
            ClusterRun {
                stats: client.stats().snapshot(),
                view,
                seal,
                sealing_key: sealing.public_key().clone(),
                keys: cluster.keys().clone(),
            }
        });
        // In cluster mode the single server idles; volume and depth come
        // from the cluster's quorum-acked accounting.
        let (volume, store_len) = match (&cluster_run, cluster_volume) {
            (Some(c), Some(v)) => (v, c.view.total_records()),
            _ => (handle.stats().snapshot(), handle.store().len()),
        };

        ScenarioReport {
            elapsed,
            volume,
            node_stats,
            store_len,
            process_cpu_percent,
            node_cpu_percent,
            logger: handle,
            topology,
            mean_latency_ns,
            latency_samples_ns,
            link_events,
            publish_failures: publish_failures.load(Ordering::Relaxed),
            publishes_throttled: publishes_throttled.load(Ordering::Relaxed),
            pressure,
            cluster: cluster_run,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::app::{fanout_app, self_driving_app};
    use crate::data::PayloadKind;

    #[test]
    fn fanout_scenario_runs_and_logs() {
        let report = Scenario::new(fanout_app(PayloadKind::Custom(100), 2, 50.0))
            .key_bits(512)
            .duration(Duration::from_millis(500))
            .run();
        // The feeder published, both sinks received, entries were logged.
        assert!(report.node_stats["feeder"].published > 5);
        assert!(report.node_stats["sink0"].received > 5);
        assert!(report.store_len > 10);
        assert!(report.volume.bytes > 0);
        let audit = report.audit();
        assert!(audit.all_clear(), "faithful run must audit clean");
    }

    #[test]
    fn self_driving_app_flows_end_to_end() {
        let report = Scenario::new(self_driving_app())
            .key_bits(512)
            .duration(Duration::from_millis(800))
            .run();
        // Data flowed all the way to the actuator.
        assert!(
            report.node_stats["actuator"].received > 0,
            "stats: {:?}",
            report.node_stats
        );
        // Latencies were recorded for the image link.
        assert!(report
            .mean_latency_ns
            .keys()
            .any(|(t, s)| t == "image" && s == "lanedet"));
    }

    #[test]
    fn latency_percentiles_are_ordered() {
        let report = Scenario::new(fanout_app(PayloadKind::Custom(128), 1, 100.0))
            .key_bits(512)
            .duration(Duration::from_millis(500))
            .run();
        let p50 = report.latency_percentile_ms("data", "sink0", 0.5).unwrap();
        let p99 = report.latency_percentile_ms("data", "sink0", 0.99).unwrap();
        assert!(p50 > 0.0);
        assert!(p99 >= p50, "p99 {p99} must dominate p50 {p50}");
        assert!(report.latency_percentile_ms("ghost", "sink0", 0.5).is_none());
        // Mean sits within the sample range.
        let mean = report.mean_latency_ns[&("data".into(), "sink0".into())] / 1e6;
        let p0 = report.latency_percentile_ms("data", "sink0", 0.0).unwrap();
        let p100 = report.latency_percentile_ms("data", "sink0", 1.0).unwrap();
        assert!(mean >= p0 && mean <= p100);
    }

    #[test]
    fn no_logging_scheme_produces_empty_store() {
        let report = Scenario::new(fanout_app(PayloadKind::Custom(64), 1, 50.0))
            .scheme(Scheme::NoLogging)
            .duration(Duration::from_millis(300))
            .run();
        assert_eq!(report.store_len, 0);
        assert!(report.node_stats["sink0"].received > 0);
    }

    #[test]
    fn base_scheme_logs_but_without_signatures() {
        let report = Scenario::new(fanout_app(PayloadKind::Custom(64), 1, 50.0))
            .scheme(Scheme::Base)
            .duration(Duration::from_millis(300))
            .run();
        assert!(report.store_len > 0);
        for e in report.logger.store().entries() {
            assert!(!e.unwrap().is_adlp());
        }
    }

    /// Faults may legitimately split a publication/receipt pair across the
    /// logger cut (losing one side's deposit), which the auditor reports as
    /// a hidden record — but deposited entries are all genuine, so none may
    /// be rejected or classified as falsified, fabricated, or replayed.
    fn only_evidence_loss_violations(audit: &AuditReport) -> bool {
        use adlp_audit::ViolationKind;
        audit.rejected_entries.is_empty()
            && audit
                .verdicts
                .values()
                .flat_map(|v| v.violations.iter())
                .all(|v| {
                    matches!(
                        v.kind,
                        ViolationKind::HidPublication | ViolationKind::HidReceipt
                    )
                })
    }

    #[test]
    fn logger_outage_mid_run_keeps_data_plane_flowing() {
        // The trusted logger crashes halfway through the window; messages
        // keep flowing (§V-B failure isolation) and the surviving log
        // prefix still audits without bogus convictions.
        let report = Scenario::new(fanout_app(PayloadKind::Custom(64), 2, 100.0))
            .key_bits(512)
            .duration(Duration::from_millis(600))
            .logger_outage_after(Duration::from_millis(200))
            .run();
        // Traffic continued for the full window, far beyond what the
        // pre-outage window alone could produce.
        assert!(
            report.node_stats["sink0"].received > 20,
            "stats: {:?}",
            report.node_stats
        );
        // A log prefix was deposited before the crash.
        assert!(report.store_len > 0);
        let audit = report.audit();
        assert!(
            only_evidence_loss_violations(&audit),
            "outage must not manufacture falsification evidence: {:?}",
            audit.verdicts
        );
    }

    #[test]
    fn slow_subscriber_degrades_link_but_audits_clean() {
        // One sink acknowledges slowly (its callback sleeps past the ack
        // deadline): the link degrades and recovers, retries stay invisible
        // to the auditor (replay defense drops the duplicates un-logged),
        // and the audit is indistinguishable from a fault-free run.
        let report = Scenario::new(fanout_app(PayloadKind::Custom(64), 2, 50.0))
            .key_bits(512)
            .duration(Duration::from_millis(600))
            .resilience(
                ResilienceConfig::new()
                    .with_ack_timeout(Duration::from_millis(10))
                    .with_max_retries(1000)
                    .with_retry_backoff(Duration::from_millis(5)),
            )
            .subscriber_delay("sink0", Duration::from_millis(40))
            .run();
        assert!(report.node_stats["sink0"].received > 0);
        assert!(report.node_stats["sink1"].received > 0);
        let feeder_events = &report.link_events["feeder"];
        assert!(
            feeder_events
                .iter()
                .any(|e| matches!(e, LinkEvent::AckTimeout { subscriber, .. } if subscriber.as_str() == "sink0")),
            "slow link must trip the ack deadline: {feeder_events:?}"
        );
        let audit = report.audit();
        assert!(
            audit.all_clear(),
            "slow-but-honest subscriber must audit clean: {:?}",
            audit.verdicts
        );
    }

    #[test]
    fn flapping_link_recovers_via_retries_and_audits_clean() {
        // Injected drops and delays on the publisher's links; the ack
        // deadline re-sends lost frames, the replay defense absorbs
        // duplicates, and every deposited entry still classifies correctly.
        let report = Scenario::new(fanout_app(PayloadKind::Custom(64), 1, 100.0))
            .key_bits(512)
            .duration(Duration::from_millis(600))
            .resilience(
                ResilienceConfig::new()
                    .with_ack_timeout(Duration::from_millis(15))
                    .with_max_retries(1000)
                    .with_retry_backoff(Duration::from_millis(5)),
            )
            .faults_for(
                "feeder",
                FaultConfig::seeded(7)
                    .with_drop_rate(0.3)
                    .with_delay(0.2, Duration::from_millis(10)),
            )
            .run();
        assert!(
            report.node_stats["sink0"].received > 5,
            "retries must push data through the flapping link: {:?}",
            report.node_stats
        );
        let audit = report.audit();
        assert!(
            audit.all_clear(),
            "transport faults must not implicate honest nodes: {:?}",
            audit.verdicts
        );
    }

    #[test]
    fn unfaithful_node_detected_in_scenario() {
        use adlp_core::{LinkRole, LogBehavior};
        let report = Scenario::new(fanout_app(PayloadKind::Custom(64), 1, 50.0))
            .key_bits(512)
            .behavior(
                "sink0",
                BehaviorProfile::faithful().with_link(
                    LinkRole::Subscriber,
                    adlp_pubsub::Topic::new("data"),
                    LogBehavior::Hide,
                ),
            )
            .duration(Duration::from_millis(400))
            .run();
        let audit = report.audit();
        assert!(!audit.all_clear());
        let unfaithful = audit.unfaithful_components();
        assert_eq!(unfaithful.len(), 1);
        assert_eq!(unfaithful[0].0.as_str(), "sink0");
    }
}
