//! Property-based tests for wire formats and messages.

use adlp_pubsub::wire::{encode_frame, read_frame, write_frame, Handshake};
use adlp_pubsub::{Header, Message};
use proptest::prelude::*;
use std::io::Cursor;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn message_roundtrip(seq in any::<u64>(), stamp in any::<u64>(), payload in proptest::collection::vec(any::<u8>(), 0..4096)) {
        let msg = Message::new(Header { seq, stamp_ns: stamp }, payload);
        let decoded = Message::decode(&msg.encode()).unwrap();
        prop_assert_eq!(decoded, msg);
    }

    #[test]
    fn frame_roundtrip_sequences(bodies in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 0..512), 0..10)) {
        let mut buf = Vec::new();
        for b in &bodies {
            write_frame(&mut buf, b).unwrap();
        }
        let mut cur = Cursor::new(buf);
        for b in &bodies {
            prop_assert_eq!(read_frame(&mut cur).unwrap().unwrap(), b.clone());
        }
        prop_assert_eq!(read_frame(&mut cur).unwrap(), None);
    }

    #[test]
    fn frame_overhead_constant(body in proptest::collection::vec(any::<u8>(), 0..2048)) {
        prop_assert_eq!(encode_frame(&body).len(), body.len() + 4);
    }

    #[test]
    fn handshake_roundtrip(fields in proptest::collection::btree_map("[a-z_]{1,12}", "[ -~]{0,32}", 0..8)) {
        let mut hs = Handshake::new();
        for (k, v) in &fields {
            hs = hs.with(k.clone(), v.clone());
        }
        let decoded = Handshake::decode(&hs.encode()).unwrap();
        for (k, v) in &fields {
            prop_assert_eq!(decoded.get(k), Some(v.as_str()));
        }
    }

    #[test]
    fn truncated_message_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..64)) {
        let _ = Message::decode(&bytes);
        let _ = Handshake::decode(&bytes);
        let mut cur = Cursor::new(bytes);
        let _ = read_frame(&mut cur);
    }
}
