//! TCP frame-reassembly properties: the length-prefixed wire discipline
//! must survive any byte-level mistreatment a real socket can inflict.
//!
//! The witness federation (and every other TCP path here) trusts
//! `read_frame` to reassemble frames that arrive split at arbitrary byte
//! boundaries, and to fail *cleanly* — an error or a clean `None`, never
//! a panic, and never a frame that differs from what the sender wrote.
//! These tests pin that contract three ways: an exhaustive split at every
//! byte boundary, property-driven random chunking/truncation/corruption/
//! concatenation, and an end-to-end pass through a [`ChaosProxy`] forced
//! to split every chunk it relays.

use adlp_pubsub::transport::chaos::{ChaosConfig, ChaosProxy};
use adlp_pubsub::wire::{encode_frame, read_frame, write_frame};
use proptest::prelude::*;
use std::io::{Cursor, Read, Write};
use std::net::{TcpListener, TcpStream};

/// A reader that hands out the underlying bytes in caller-chosen chunk
/// sizes — the adversarial `Read` impl a fragmented socket presents.
struct ChunkedReader {
    data: Vec<u8>,
    pos: usize,
    sizes: Vec<usize>,
    next: usize,
}

impl ChunkedReader {
    fn new(data: Vec<u8>, sizes: Vec<usize>) -> Self {
        ChunkedReader {
            data,
            pos: 0,
            sizes,
            next: 0,
        }
    }
}

impl Read for ChunkedReader {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        if self.pos >= self.data.len() {
            return Ok(0);
        }
        // Cycle through the scripted chunk sizes; never return 0 before
        // true EOF (a zero-length read would be a spurious EOF).
        let scripted = self.sizes.get(self.next).copied().unwrap_or(1).max(1);
        self.next = (self.next + 1) % self.sizes.len().max(1);
        let n = scripted
            .min(buf.len())
            .min(self.data.len() - self.pos);
        let Some(src) = self.data.get(self.pos..self.pos + n) else {
            return Ok(0);
        };
        let Some(dst) = buf.get_mut(..n) else {
            return Ok(0);
        };
        dst.copy_from_slice(src);
        self.pos += n;
        Ok(n)
    }
}

fn encode_all(bodies: &[Vec<u8>]) -> Vec<u8> {
    let mut buf = Vec::new();
    for b in bodies {
        write_frame(&mut buf, b).expect("vec write");
    }
    buf
}

fn read_all(reader: &mut impl Read) -> Result<Vec<Vec<u8>>, adlp_pubsub::PubSubError> {
    let mut out = Vec::new();
    while let Some(frame) = read_frame(reader)? {
        out.push(frame);
    }
    Ok(out)
}

/// Exhaustive: a two-chunk split at EVERY byte boundary of a multi-frame
/// stream reassembles byte-exactly.
#[test]
fn split_at_every_byte_boundary_reassembles_exactly() {
    let bodies = vec![vec![7u8; 5], Vec::new(), (0u8..17).collect::<Vec<u8>>()];
    let buf = encode_all(&bodies);
    for cut in 0..=buf.len() {
        let mut reader = ChunkedReader::new(buf.clone(), vec![cut.max(1), buf.len()]);
        let frames = read_all(&mut reader).expect("reassembly");
        assert_eq!(frames, bodies, "split at byte {cut} must be invisible");
    }
    // The pathological peer: one byte per read.
    let mut dribble = ChunkedReader::new(buf, vec![1]);
    assert_eq!(read_all(&mut dribble).expect("dribble"), bodies);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Random frames through random chunkings: never a panic, never a
    /// frame differing from what was sent.
    #[test]
    fn random_chunking_is_invisible(
        bodies in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 0..256), 1..8),
        sizes in proptest::collection::vec(1usize..64, 1..16),
    ) {
        let buf = encode_all(&bodies);
        let mut reader = ChunkedReader::new(buf, sizes);
        prop_assert_eq!(read_all(&mut reader).expect("reassembly"), bodies);
    }

    /// Truncation at any byte: complete frames come back intact, the cut
    /// frame surfaces as an error or a clean end — never a panic, never
    /// an invented frame.
    #[test]
    fn truncation_never_panics_and_never_invents_frames(
        bodies in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 0..128), 1..6),
        frac in 0.0f64..1.0,
    ) {
        let buf = encode_all(&bodies);
        let cut = (buf.len() as f64 * frac) as usize;
        let mut cur = Cursor::new(buf.get(..cut).unwrap_or(&buf).to_vec());
        let mut seen = Vec::new();
        let outcome = loop {
            match read_frame(&mut cur) {
                Ok(Some(frame)) => seen.push(frame),
                Ok(None) => break Ok(()),
                Err(e) => break Err(e),
            }
        };
        // Every frame that came back is a prefix of the sent sequence.
        prop_assert!(seen.len() <= bodies.len());
        for (got, sent) in seen.iter().zip(&bodies) {
            prop_assert!(got == sent, "a truncated stream must never corrupt a completed frame");
        }
        // A cut through a frame body is an I/O error; a cut at a frame
        // boundary (or inside a length prefix read as EOF) ends cleanly.
        if outcome.is_ok() {
            prop_assert!(seen.len() <= bodies.len());
        }
    }

    /// Arbitrary corruption: flipping any byte never panics the reader
    /// (it may misread lengths — the layers above carry checksums).
    #[test]
    fn corruption_never_panics(
        bodies in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 0..64), 1..4),
        at in any::<usize>(),
        mask in any::<u8>(),
    ) {
        let mut buf = encode_all(&bodies);
        if !buf.is_empty() {
            let at = at % buf.len();
            if let Some(byte) = buf.get_mut(at) {
                *byte ^= mask | 1;
            }
        }
        let mut cur = Cursor::new(buf);
        while let Ok(Some(_)) = read_frame(&mut cur) {}
    }

    /// Concatenated streams parse as the concatenation of their frames —
    /// no frame bleeds into its neighbor.
    #[test]
    fn concatenated_streams_do_not_bleed(
        first in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 0..64), 0..4),
        second in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 0..64), 0..4),
    ) {
        let mut buf = encode_all(&first);
        buf.extend_from_slice(&encode_all(&second));
        let mut cur = Cursor::new(buf);
        let mut expect: Vec<Vec<u8>> = first;
        expect.extend(second);
        prop_assert_eq!(read_all(&mut cur).expect("concat"), expect);
    }

    /// Frame overhead stays the fixed 4-byte preamble.
    #[test]
    fn preamble_is_exactly_four_bytes(body in proptest::collection::vec(any::<u8>(), 0..512)) {
        prop_assert_eq!(encode_frame(&body).len(), body.len() + 4);
    }
}

/// End-to-end: a chaos proxy forced to split EVERY chunk it relays (and
/// stall some) still delivers byte-exact frames to a real socket reader.
#[test]
fn chaos_proxy_full_split_preserves_frames_exactly() {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let target = listener.local_addr().expect("addr");
    // Split rate 1.0 and nothing else: every relayed chunk is cut at a
    // seeded byte boundary, so reassembly is exercised on every read.
    let config = ChaosConfig {
        seed: 0xF2A6,
        ..ChaosConfig::default()
    }
    .with_split_rate(1.0);
    let proxy = ChaosProxy::spawn(target, config).expect("proxy");

    let bodies: Vec<Vec<u8>> = (0..24)
        .map(|i| (0..(i * 37) % 300).map(|b| (b % 251) as u8).collect())
        .collect();
    let expected = bodies.clone();

    let server = std::thread::spawn(move || {
        let (stream, _) = listener.accept().expect("accept");
        let mut reader = std::io::BufReader::new(stream);
        let mut frames = Vec::new();
        while let Ok(Some(frame)) = read_frame(&mut reader) {
            frames.push(frame);
        }
        frames
    });

    let mut client = TcpStream::connect(proxy.addr()).expect("dial proxy");
    for body in &bodies {
        write_frame(&mut client, body).expect("send");
    }
    client.flush().expect("flush");
    drop(client);

    let frames = server.join().expect("server thread");
    assert_eq!(
        frames, expected,
        "a fully split relay must be invisible to frame reassembly"
    );
    assert!(
        proxy.stats().splits.load(std::sync::atomic::Ordering::Relaxed) > 0,
        "the proxy must actually have split chunks: {:?}",
        proxy.stats()
    );
}
