//! The master: a registry mapping each topic to its unique publisher,
//! mirroring the ROS master's name service.
//!
//! The paper's system model requires that "there can be no two components
//! who publish the same data type" (§II) — the master enforces this, which
//! is what lets an auditor resolve a data type to the component accountable
//! for producing it.

use crate::transport::inproc::ConnectHandle;
use crate::types::{NodeId, Topic};
use crate::PubSubError;
use parking_lot::Mutex;
use std::collections::{HashMap, HashSet};
use std::net::SocketAddr;
use std::sync::Arc;

/// How a subscriber reaches a publisher.
#[derive(Debug, Clone)]
pub enum Contact {
    /// In-process control channel to the publisher's accept loop.
    InProc(ConnectHandle),
    /// TCP listener address of the publisher.
    Tcp(SocketAddr),
}

#[derive(Debug, Clone)]
struct PublisherEntry {
    node: NodeId,
    contact: Contact,
}

/// Shared name service for a pub/sub graph.
///
/// Cheap to clone; all clones share state.
#[derive(Debug, Clone, Default)]
pub struct Master {
    inner: Arc<MasterInner>,
}

#[derive(Debug, Default)]
struct MasterInner {
    topics: Mutex<HashMap<Topic, PublisherEntry>>,
    nodes: Mutex<HashSet<NodeId>>,
}

impl Master {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a node id.
    ///
    /// # Errors
    ///
    /// Returns [`PubSubError::DuplicateNode`] if the id is taken.
    pub fn register_node(&self, id: &NodeId) -> Result<(), PubSubError> {
        let mut nodes = self.inner.nodes.lock();
        if !nodes.insert(id.clone()) {
            return Err(PubSubError::DuplicateNode(id.clone()));
        }
        Ok(())
    }

    /// Removes a node id (e.g. so a restarted component can re-register).
    pub fn unregister_node(&self, id: &NodeId) {
        self.inner.nodes.lock().remove(id);
    }

    /// Claims a topic for `node`.
    ///
    /// # Errors
    ///
    /// Returns [`PubSubError::TopicAlreadyPublished`] if another publisher
    /// owns the topic.
    pub fn register_publisher(
        &self,
        topic: &Topic,
        node: &NodeId,
        contact: Contact,
    ) -> Result<(), PubSubError> {
        let mut topics = self.inner.topics.lock();
        if topics.contains_key(topic) {
            return Err(PubSubError::TopicAlreadyPublished(topic.clone()));
        }
        topics.insert(
            topic.clone(),
            PublisherEntry {
                node: node.clone(),
                contact,
            },
        );
        Ok(())
    }

    /// Releases a topic if `node` owns it.
    pub fn unregister_publisher(&self, topic: &Topic, node: &NodeId) {
        let mut topics = self.inner.topics.lock();
        if topics.get(topic).is_some_and(|e| &e.node == node) {
            topics.remove(topic);
        }
    }

    /// Resolves a topic to its publisher.
    pub fn lookup(&self, topic: &Topic) -> Option<(NodeId, Contact)> {
        self.inner
            .topics
            .lock()
            .get(topic)
            .map(|e| (e.node.clone(), e.contact.clone()))
    }

    /// The publisher node of a topic, if any (the auditor's `type → producer`
    /// mapping).
    pub fn publisher_of(&self, topic: &Topic) -> Option<NodeId> {
        self.inner.topics.lock().get(topic).map(|e| e.node.clone())
    }

    /// All currently advertised topics with their publishers.
    pub fn topology(&self) -> Vec<(Topic, NodeId)> {
        let mut v: Vec<_> = self
            .inner
            .topics
            .lock()
            .iter()
            .map(|(t, e)| (t.clone(), e.node.clone()))
            .collect();
        v.sort();
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transport::inproc;

    fn inproc_contact() -> Contact {
        let (handle, _queue) = inproc::control_channel();
        Contact::InProc(handle)
    }

    #[test]
    fn node_registration_is_unique() {
        let m = Master::new();
        let id = NodeId::new("camera");
        m.register_node(&id).unwrap();
        assert_eq!(
            m.register_node(&id),
            Err(PubSubError::DuplicateNode(id.clone()))
        );
        m.unregister_node(&id);
        m.register_node(&id).unwrap();
    }

    #[test]
    fn one_publisher_per_topic() {
        let m = Master::new();
        let t = Topic::new("image");
        m.register_publisher(&t, &NodeId::new("cam1"), inproc_contact())
            .unwrap();
        assert_eq!(
            m.register_publisher(&t, &NodeId::new("cam2"), inproc_contact()),
            Err(PubSubError::TopicAlreadyPublished(t.clone()))
        );
        assert_eq!(m.publisher_of(&t), Some(NodeId::new("cam1")));
    }

    #[test]
    fn unregister_requires_owner() {
        let m = Master::new();
        let t = Topic::new("image");
        m.register_publisher(&t, &NodeId::new("cam"), inproc_contact())
            .unwrap();
        m.unregister_publisher(&t, &NodeId::new("intruder"));
        assert!(m.lookup(&t).is_some());
        m.unregister_publisher(&t, &NodeId::new("cam"));
        assert!(m.lookup(&t).is_none());
    }

    #[test]
    fn topology_lists_everything_sorted() {
        let m = Master::new();
        m.register_publisher(&Topic::new("scan"), &NodeId::new("lidar"), inproc_contact())
            .unwrap();
        m.register_publisher(&Topic::new("image"), &NodeId::new("cam"), inproc_contact())
            .unwrap();
        let topo = m.topology();
        assert_eq!(
            topo,
            vec![
                (Topic::new("image"), NodeId::new("cam")),
                (Topic::new("scan"), NodeId::new("lidar")),
            ]
        );
    }

    #[test]
    fn clones_share_state() {
        let m = Master::new();
        let m2 = m.clone();
        m.register_publisher(&Topic::new("t"), &NodeId::new("n"), inproc_contact())
            .unwrap();
        assert!(m2.lookup(&Topic::new("t")).is_some());
    }
}
