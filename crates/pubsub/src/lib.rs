//! A ROS-like publish-subscribe middleware, built from scratch as the
//! substrate the ADLP protocol runs on.
//!
//! The design mirrors the parts of ROS 1 that the ADLP paper relies on:
//!
//! * a **master** ([`Master`]) that maps each topic to its unique publisher
//!   (the paper's "no two components publish the same data type");
//! * **point-to-point connections** — one connection per subscriber, set up
//!   through a key-value handshake (like TCPROS connection headers), carried
//!   either over in-process channels or real TCP sockets;
//! * **framed messages** with a 4-byte length preamble; each body carries a
//!   sequence number and timestamp header followed by the payload
//!   (`|D| = 16 + |payload|` bytes, so the paper's `|D| + 4` message-size
//!   arithmetic holds exactly);
//! * a **reverse channel** per connection, used by ADLP for signed
//!   acknowledgements;
//! * a **transport-layer interceptor** ([`LinkInterceptor`]) — the hook ADLP
//!   uses to sign outgoing bodies, verify/acknowledge incoming ones, and gate
//!   sends on unacknowledged messages, all transparently to the application.
//!
//! # Example
//!
//! ```
//! use adlp_pubsub::{Master, NodeBuilder};
//! use std::sync::Arc;
//! use std::sync::atomic::{AtomicUsize, Ordering};
//!
//! let master = Master::new();
//! let publisher_node = NodeBuilder::new("camera").build(&master)?;
//! let subscriber_node = NodeBuilder::new("detector").build(&master)?;
//!
//! let publisher = publisher_node.advertise("image")?;
//! let seen = Arc::new(AtomicUsize::new(0));
//! let seen2 = Arc::clone(&seen);
//! let _sub = subscriber_node.subscribe("image", move |msg| {
//!     seen2.fetch_add(msg.payload.len(), Ordering::SeqCst);
//! })?;
//! publisher.publish(&[0u8; 64])?;
//! # std::thread::sleep(std::time::Duration::from_millis(100));
//! assert_eq!(seen.load(Ordering::SeqCst), 64);
//! # Ok::<(), adlp_pubsub::PubSubError>(())
//! ```

pub mod breaker;
pub mod clock;
pub mod interceptor;
pub mod master;
pub mod message;
pub mod node;
pub mod resilience;
pub mod stats;
pub mod transport;
pub mod types;
pub mod wire;

pub use breaker::{Admission, BreakerConfig, BreakerSnapshot, BreakerState, CircuitBreaker, Transition};
pub use clock::{Clock, ManualClock, OffsetClock, SystemClock};
pub use interceptor::{ConnectionInfo, LinkInterceptor, NoopInterceptor, RecvOutcome};
pub use master::Master;
pub use message::{Header, Message, HEADER_LEN};
pub use node::{Node, NodeBuilder, PublishReport, Publisher, SubscribeOptions, Subscription, TransportKind};
pub use resilience::{LinkEvent, LinkHealth, ResilienceConfig};
pub use stats::{LinkStats, LinkStatsSnapshot, NodeStats};
pub use transport::faults::{FaultConfig, FaultStats};
pub use types::{NodeId, Topic};

use std::error::Error;
use std::fmt;

/// Errors from the pub/sub layer.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum PubSubError {
    /// A second publisher tried to advertise an already-owned topic.
    TopicAlreadyPublished(Topic),
    /// Subscription to a topic nobody publishes.
    NoSuchTopic(Topic),
    /// A node id was registered twice.
    DuplicateNode(NodeId),
    /// The peer or transport went away.
    Disconnected,
    /// A frame or handshake could not be decoded.
    Malformed(&'static str),
    /// Underlying I/O failure (TCP transport).
    Io(String),
}

impl fmt::Display for PubSubError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PubSubError::TopicAlreadyPublished(t) => {
                write!(f, "topic {t} already has a publisher")
            }
            PubSubError::NoSuchTopic(t) => write!(f, "no publisher for topic {t}"),
            PubSubError::DuplicateNode(n) => write!(f, "node id {n} already registered"),
            PubSubError::Disconnected => write!(f, "connection closed"),
            PubSubError::Malformed(what) => write!(f, "malformed {what}"),
            PubSubError::Io(e) => write!(f, "transport i/o error: {e}"),
        }
    }
}

impl Error for PubSubError {}

impl From<std::io::Error> for PubSubError {
    fn from(e: std::io::Error) -> Self {
        PubSubError::Io(e.to_string())
    }
}
