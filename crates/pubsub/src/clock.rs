//! Time sources.
//!
//! ADLP's temporal-causality analysis (paper §IV-B2) needs timestamps that
//! unfaithful components can *manipulate*, so the clock is pluggable:
//! production code uses [`SystemClock`], tests use [`ManualClock`], and the
//! timing-disruption behavior wraps any clock in an [`OffsetClock`].

use std::fmt;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{SystemTime, UNIX_EPOCH};

/// Nanoseconds since the Unix epoch.
pub type TimestampNs = u64;

/// A source of timestamps for message headers and log entries.
pub trait Clock: Send + Sync + fmt::Debug {
    /// Current time in nanoseconds since the Unix epoch.
    fn now_ns(&self) -> TimestampNs;
}

/// Wall-clock time.
#[derive(Debug, Clone, Copy, Default)]
pub struct SystemClock;

impl Clock for SystemClock {
    fn now_ns(&self) -> TimestampNs {
        SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .map_or(0, |d| d.as_nanos() as u64)
    }
}

/// A manually advanced clock for deterministic tests. Every read also
/// advances by one nanosecond so consecutive events get distinct, ordered
/// timestamps.
#[derive(Debug, Clone, Default)]
pub struct ManualClock {
    now: Arc<AtomicU64>,
}

impl ManualClock {
    /// Creates a clock starting at `start_ns`.
    pub fn new(start_ns: TimestampNs) -> Self {
        ManualClock {
            now: Arc::new(AtomicU64::new(start_ns)),
        }
    }

    /// Advances the clock.
    pub fn advance_ns(&self, delta: u64) {
        self.now.fetch_add(delta, Ordering::SeqCst);
    }

    /// Jumps to an absolute time.
    pub fn set_ns(&self, t: TimestampNs) {
        self.now.store(t, Ordering::SeqCst);
    }
}

impl Clock for ManualClock {
    fn now_ns(&self) -> TimestampNs {
        self.now.fetch_add(1, Ordering::SeqCst)
    }
}

/// A clock with a signed offset from an inner clock — the primitive used to
/// model the paper's *timing disruption* behavior, where an unfaithful
/// component reports skewed timestamps in its log entries.
#[derive(Debug, Clone)]
pub struct OffsetClock<C> {
    inner: C,
    offset_ns: Arc<AtomicI64>,
}

impl<C: Clock> OffsetClock<C> {
    /// Wraps `inner` with an initial offset.
    pub fn new(inner: C, offset_ns: i64) -> Self {
        OffsetClock {
            inner,
            offset_ns: Arc::new(AtomicI64::new(offset_ns)),
        }
    }

    /// Changes the offset at run time.
    pub fn set_offset_ns(&self, offset: i64) {
        self.offset_ns.store(offset, Ordering::SeqCst);
    }
}

impl<C: Clock> Clock for OffsetClock<C> {
    fn now_ns(&self) -> TimestampNs {
        let base = self.inner.now_ns();
        base.saturating_add_signed(self.offset_ns.load(Ordering::SeqCst))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn system_clock_is_monotonic_enough() {
        let c = SystemClock;
        let a = c.now_ns();
        let b = c.now_ns();
        assert!(b >= a);
        assert!(a > 1_500_000_000 * 1_000_000_000, "sane epoch time");
    }

    #[test]
    fn manual_clock_orders_reads() {
        let c = ManualClock::new(100);
        let a = c.now_ns();
        let b = c.now_ns();
        assert!(b > a);
        c.advance_ns(50);
        assert!(c.now_ns() >= 152);
        c.set_ns(10);
        assert_eq!(c.now_ns(), 10);
    }

    #[test]
    fn offset_clock_shifts_time() {
        let base = ManualClock::new(1000);
        let skewed = OffsetClock::new(base.clone(), -200);
        assert_eq!(skewed.now_ns(), 800);
        skewed.set_offset_ns(500);
        assert_eq!(skewed.now_ns(), 1501);
    }

    #[test]
    fn offset_clock_saturates_at_zero() {
        let base = ManualClock::new(10);
        let skewed = OffsetClock::new(base, -1_000_000);
        assert_eq!(skewed.now_ns(), 0);
    }
}
