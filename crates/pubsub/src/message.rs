//! Message bodies: a fixed 16-byte header (sequence number + timestamp)
//! followed by the application payload.
//!
//! The paper's data sizes `|D|` (Table I/III: Steering 20 B, Scan 8 705 B,
//! Image 921 641 B) denote the serialized ROS message *including* its header;
//! here `|D| = HEADER_LEN + payload.len()`. ADLP signs the whole body, so the
//! sequence number is part of the signed digest ("the sequence number is a
//! part of the ROS message digest which is hashed and signed", §V-B).

use crate::clock::TimestampNs;
use crate::PubSubError;
use bytes::Bytes;

/// Encoded size of [`Header`]: 8-byte seq + 8-byte timestamp.
pub const HEADER_LEN: usize = 16;

/// Per-message header, analogous to ROS `std_msgs/Header`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Header {
    /// Monotonically increasing per-topic sequence number, starting at 1.
    pub seq: u64,
    /// Publication timestamp (nanoseconds since the Unix epoch).
    pub stamp_ns: TimestampNs,
}

/// A complete message body as delivered to subscribers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Message {
    /// The header the publisher stamped.
    pub header: Header,
    /// Application payload bytes.
    pub payload: Bytes,
}

impl Message {
    /// Builds a message.
    pub fn new(header: Header, payload: impl Into<Bytes>) -> Self {
        Message {
            header,
            payload: payload.into(),
        }
    }

    /// Serialized body length (`|D|` in the paper's notation).
    pub fn body_len(&self) -> usize {
        HEADER_LEN + self.payload.len()
    }

    /// Encodes to the wire body: `seq ‖ stamp ‖ payload` (little-endian).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.body_len());
        out.extend_from_slice(&self.header.seq.to_le_bytes());
        out.extend_from_slice(&self.header.stamp_ns.to_le_bytes());
        out.extend_from_slice(&self.payload);
        out
    }

    /// Decodes a wire body.
    ///
    /// # Errors
    ///
    /// Returns [`PubSubError::Malformed`] if shorter than [`HEADER_LEN`].
    pub fn decode(body: &[u8]) -> Result<Self, PubSubError> {
        let too_short = || PubSubError::Malformed("message body (too short)");
        let (seq_bytes, rest) = body.split_at_checked(8).ok_or_else(too_short)?;
        let (stamp_bytes, payload) = rest.split_at_checked(8).ok_or_else(too_short)?;
        let seq = u64::from_le_bytes(seq_bytes.try_into().map_err(|_| too_short())?);
        let stamp_ns = u64::from_le_bytes(stamp_bytes.try_into().map_err(|_| too_short())?);
        Ok(Message {
            header: Header { seq, stamp_ns },
            payload: Bytes::copy_from_slice(payload),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_decode_roundtrip() {
        let msg = Message::new(
            Header {
                seq: 42,
                stamp_ns: 123_456_789,
            },
            vec![1u8, 2, 3, 4],
        );
        let body = msg.encode();
        assert_eq!(body.len(), 20); // the paper's Steering |D|
        assert_eq!(Message::decode(&body).unwrap(), msg);
    }

    #[test]
    fn empty_payload_roundtrip() {
        let msg = Message::new(Header::default(), Vec::new());
        assert_eq!(msg.body_len(), HEADER_LEN);
        assert_eq!(Message::decode(&msg.encode()).unwrap(), msg);
    }

    #[test]
    fn short_body_rejected() {
        assert_eq!(
            Message::decode(&[0u8; 15]),
            Err(PubSubError::Malformed("message body (too short)"))
        );
    }

    #[test]
    fn paper_size_arithmetic() {
        // Steering 20 B, Scan 8705 B, Image 921641 B from Tables I/III.
        for total in [20usize, 8705, 921_641] {
            let msg = Message::new(Header::default(), vec![0u8; total - HEADER_LEN]);
            assert_eq!(msg.body_len(), total);
            assert_eq!(msg.encode().len(), total);
        }
    }
}
