//! A deterministic, clock-driven circuit breaker.
//!
//! The deposit pipeline treats an unhealthy logging target as a
//! first-class, state-machine-driven signal instead of an infinite retry
//! loop. The breaker follows the classic three-state machine:
//!
//! ```text
//!            failure window saturated
//!   Closed ───────────────────────────▶ Open
//!     ▲                                  │ cooldown elapsed (clock-driven)
//!     │  reset_after probe successes     ▼
//!     └────────────────────────────── HalfOpen
//!                 any probe failure ──▶ Open (cooldown doubled, capped)
//! ```
//!
//! Determinism: the breaker consults only the injected [`Clock`] and a
//! seeded xorshift generator for cooldown jitter, so a run under
//! [`ManualClock`](crate::ManualClock) with a fixed seed replays exactly.
//! The failure window is a 64-bit ring of recent call outcomes — no
//! wall-clock decay — so the trip point depends only on the outcome
//! sequence.
//!
//! The breaker never acts on its own: callers ask [`CircuitBreaker::admit`]
//! before a call and report the outcome through
//! [`CircuitBreaker::on_success`] / [`CircuitBreaker::on_failure`]. Both
//! report methods return the state [`Transition`] they caused, if any, so
//! every trip/reopen/close is *counted* by the owner — degradation is never
//! silent.

use crate::clock::{Clock, TimestampNs};
use std::sync::Arc;

/// Tunables for one [`CircuitBreaker`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BreakerConfig {
    /// Size of the outcome window (clamped to 64; it is a u64 bit ring).
    pub window: u32,
    /// Trip when at least this many of the last `window` outcomes failed.
    pub trip_failures: u32,
    /// How long the breaker stays open before probing, initially.
    pub cooldown: std::time::Duration,
    /// Cooldown ceiling for the exponential reopen backoff.
    pub max_cooldown: std::time::Duration,
    /// Consecutive half-open probe successes required to close.
    pub reset_after: u32,
    /// Seed for the deterministic cooldown jitter (±12.5% of cooldown).
    pub seed: u64,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        BreakerConfig {
            window: 32,
            trip_failures: 24,
            cooldown: std::time::Duration::from_millis(50),
            max_cooldown: std::time::Duration::from_secs(1),
            reset_after: 2,
            seed: 0x5eed,
        }
    }
}

impl BreakerConfig {
    /// Sets the jitter/probe seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the trip threshold as `failures` out of `window` outcomes.
    pub fn with_trip(mut self, failures: u32, window: u32) -> Self {
        self.trip_failures = failures.max(1);
        self.window = window.clamp(self.trip_failures, 64);
        self
    }

    /// Sets the open-state cooldown before the first half-open probe.
    pub fn with_cooldown(mut self, cooldown: std::time::Duration) -> Self {
        self.cooldown = cooldown;
        self
    }
}

/// The breaker's position in the state machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Calls flow; outcomes feed the failure window.
    Closed,
    /// Calls are rejected fast until the cooldown elapses.
    Open,
    /// Probes trickle through; successes close, a failure reopens.
    HalfOpen,
}

/// A state change caused by a reported outcome. Returned to the caller so
/// transitions can be counted in its own stats ledger.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Transition {
    /// Closed → Open: the failure window saturated.
    Tripped,
    /// HalfOpen → Open: a probe failed; cooldown doubled (capped).
    Reopened,
    /// HalfOpen → Closed: enough probes succeeded.
    Closed,
}

/// Verdict of [`CircuitBreaker::admit`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[must_use = "a rejected call must be counted or shed by the caller"]
pub enum Admission {
    /// Closed: proceed normally.
    Allowed,
    /// HalfOpen: proceed, but this call is a health probe.
    Probe,
    /// Open: do not call; shed or route around.
    Rejected,
}

/// Point-in-time breaker observability.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BreakerSnapshot {
    /// Current state.
    pub state: BreakerState,
    /// Closed→Open transitions so far.
    pub trips: u64,
    /// HalfOpen→Open transitions so far.
    pub reopens: u64,
    /// HalfOpen→Closed transitions so far.
    pub closes: u64,
}

/// The per-target breaker. Not `Sync`-shareable by design: each owner (a
/// logging-thread worker, a replica lane) drives its own breaker from one
/// thread, keeping the state machine free of locks.
#[derive(Debug)]
pub struct CircuitBreaker {
    cfg: BreakerConfig,
    clock: Arc<dyn Clock>,
    state: BreakerState,
    /// Ring of the last `window` outcomes; bit set = failure.
    outcomes: u64,
    filled: u32,
    /// When the current open period ends.
    reopen_at: TimestampNs,
    /// Current cooldown (doubles on reopen, capped).
    cooldown_ns: u64,
    /// Consecutive half-open probe successes.
    probe_successes: u32,
    /// xorshift state for cooldown jitter.
    rng: u64,
    trips: u64,
    reopens: u64,
    closes: u64,
}

impl CircuitBreaker {
    /// Creates a closed breaker over `clock`.
    pub fn new(cfg: BreakerConfig, clock: Arc<dyn Clock>) -> Self {
        let rng = cfg.seed | 1;
        let cooldown_ns = cfg.cooldown.as_nanos() as u64;
        CircuitBreaker {
            cfg,
            clock,
            state: BreakerState::Closed,
            outcomes: 0,
            filled: 0,
            reopen_at: 0,
            cooldown_ns,
            probe_successes: 0,
            rng,
            trips: 0,
            reopens: 0,
            closes: 0,
        }
    }

    /// Current state, advancing Open → HalfOpen when the cooldown elapsed.
    pub fn state(&mut self) -> BreakerState {
        if self.state == BreakerState::Open && self.clock.now_ns() >= self.reopen_at {
            self.state = BreakerState::HalfOpen;
            self.probe_successes = 0;
        }
        self.state
    }

    /// Asks whether a call may proceed right now.
    pub fn admit(&mut self) -> Admission {
        match self.state() {
            BreakerState::Closed => Admission::Allowed,
            BreakerState::HalfOpen => Admission::Probe,
            BreakerState::Open => Admission::Rejected,
        }
    }

    /// Reports a successful call.
    pub fn on_success(&mut self) -> Option<Transition> {
        match self.state() {
            BreakerState::Closed => {
                self.push_outcome(false);
                None
            }
            BreakerState::HalfOpen => {
                self.probe_successes += 1;
                if self.probe_successes >= self.cfg.reset_after {
                    self.state = BreakerState::Closed;
                    self.outcomes = 0;
                    self.filled = 0;
                    self.cooldown_ns = self.cfg.cooldown.as_nanos() as u64;
                    self.closes += 1;
                    Some(Transition::Closed)
                } else {
                    None
                }
            }
            BreakerState::Open => None,
        }
    }

    /// Reports a failed (or shed) call.
    pub fn on_failure(&mut self) -> Option<Transition> {
        match self.state() {
            BreakerState::Closed => {
                self.push_outcome(true);
                let window = self.cfg.window.min(64);
                let mask = if window >= 64 {
                    u64::MAX
                } else {
                    (1u64 << window) - 1
                };
                let failures = (self.outcomes & mask).count_ones();
                if self.filled >= window && failures >= self.cfg.trip_failures {
                    self.open_for_cooldown();
                    self.trips += 1;
                    Some(Transition::Tripped)
                } else {
                    None
                }
            }
            BreakerState::HalfOpen => {
                self.cooldown_ns = (self.cooldown_ns.saturating_mul(2))
                    .min(self.cfg.max_cooldown.as_nanos() as u64);
                self.open_for_cooldown();
                self.reopens += 1;
                Some(Transition::Reopened)
            }
            BreakerState::Open => None,
        }
    }

    /// Counters and current state.
    pub fn snapshot(&mut self) -> BreakerSnapshot {
        BreakerSnapshot {
            state: self.state(),
            trips: self.trips,
            reopens: self.reopens,
            closes: self.closes,
        }
    }

    fn push_outcome(&mut self, failure: bool) {
        self.outcomes = (self.outcomes << 1) | u64::from(failure);
        self.filled = (self.filled + 1).min(self.cfg.window.min(64));
    }

    fn open_for_cooldown(&mut self) {
        // Deterministic ±12.5% jitter so a fleet of breakers tripped by one
        // incident does not probe in lockstep.
        let jitter_span = self.cooldown_ns / 4;
        let jitter = if jitter_span == 0 {
            0
        } else {
            self.next_rand() % jitter_span
        };
        let cooldown = self.cooldown_ns - jitter_span / 2 + jitter;
        self.reopen_at = self.clock.now_ns().saturating_add(cooldown);
        self.state = BreakerState::Open;
    }

    fn next_rand(&mut self) -> u64 {
        // xorshift64*: tiny, seedable, reproducible.
        let mut x = self.rng;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.rng = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::ManualClock;

    fn breaker(cfg: BreakerConfig, clock: &ManualClock) -> CircuitBreaker {
        CircuitBreaker::new(cfg, Arc::new(clock.clone()))
    }

    fn quick_cfg() -> BreakerConfig {
        BreakerConfig::default()
            .with_trip(3, 4)
            .with_cooldown(std::time::Duration::from_micros(100))
    }

    #[test]
    fn trips_after_window_saturates() {
        let clock = ManualClock::new(1_000);
        let mut b = breaker(quick_cfg(), &clock);
        assert_eq!(b.admit(), Admission::Allowed);
        assert_eq!(b.on_failure(), None);
        assert_eq!(b.on_failure(), None);
        assert_eq!(b.on_failure(), None);
        // Window of 4 now full with 1 success slot: the 4th failure trips.
        assert_eq!(b.on_failure(), Some(Transition::Tripped));
        assert_eq!(b.admit(), Admission::Rejected);
    }

    #[test]
    fn successes_keep_it_closed() {
        let clock = ManualClock::new(1_000);
        let mut b = breaker(quick_cfg(), &clock);
        for _ in 0..100 {
            assert_eq!(b.on_success(), None);
            assert_eq!(b.on_failure(), None, "isolated failures never trip");
        }
        assert_eq!(b.admit(), Admission::Allowed);
    }

    #[test]
    fn half_open_probe_closes_after_reset_threshold() {
        let clock = ManualClock::new(1_000);
        let mut b = breaker(quick_cfg(), &clock);
        for _ in 0..4 {
            let _t = b.on_failure();
        }
        assert_eq!(b.admit(), Admission::Rejected);
        clock.advance_ns(200_000); // past cooldown (+ jitter)
        assert_eq!(b.admit(), Admission::Probe);
        assert_eq!(b.on_success(), None);
        assert_eq!(b.on_success(), Some(Transition::Closed));
        assert_eq!(b.admit(), Admission::Allowed);
        let snap = b.snapshot();
        assert_eq!((snap.trips, snap.reopens, snap.closes), (1, 0, 1));
    }

    #[test]
    fn probe_failure_reopens_with_backoff() {
        let clock = ManualClock::new(1_000);
        let mut b = breaker(quick_cfg(), &clock);
        for _ in 0..4 {
            let _t = b.on_failure();
        }
        clock.advance_ns(200_000);
        assert_eq!(b.admit(), Admission::Probe);
        assert_eq!(b.on_failure(), Some(Transition::Reopened));
        assert_eq!(b.admit(), Admission::Rejected);
        // Cooldown doubled: 100µs is not enough any more.
        clock.advance_ns(120_000);
        assert_eq!(b.admit(), Admission::Rejected);
        clock.advance_ns(200_000);
        assert_eq!(b.admit(), Admission::Probe);
    }

    #[test]
    fn same_seed_same_trajectory() {
        let run = |seed: u64| {
            let clock = ManualClock::new(0);
            let mut b = breaker(quick_cfg().with_seed(seed), &clock);
            let mut trace = Vec::new();
            for i in 0..2_000u64 {
                clock.advance_ns(10_000);
                // A deterministic mixed workload: bursts of failures.
                if (i / 7) % 3 == 0 {
                    let _t = b.on_failure();
                } else {
                    let _t = b.on_success();
                }
                trace.push(b.admit());
            }
            let snap = b.snapshot();
            (trace, snap.trips, snap.reopens, snap.closes)
        };
        assert_eq!(run(42), run(42));
        let (_, trips, _, _) = run(42);
        assert!(trips > 0, "workload must exercise the machine");
    }

    #[test]
    fn cooldown_reset_on_close() {
        let clock = ManualClock::new(0);
        let mut b = breaker(quick_cfg(), &clock);
        // Trip, fail a probe (backoff doubles), then recover fully.
        for _ in 0..4 {
            let _t = b.on_failure();
        }
        clock.advance_ns(200_000);
        let _p = b.admit();
        let _t = b.on_failure();
        clock.advance_ns(400_000);
        assert_eq!(b.admit(), Admission::Probe);
        let _t = b.on_success();
        assert_eq!(b.on_success(), Some(Transition::Closed));
        // Trip again: the first cooldown applies again (reset on close).
        for _ in 0..4 {
            let _t = b.on_failure();
        }
        clock.advance_ns(200_000);
        assert_eq!(b.admit(), Admission::Probe);
    }
}
