//! Identifier newtypes: node ids and topic names.

use std::fmt;
use std::sync::Arc;

/// Unique identifier of a software component (a ROS node in the paper).
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(Arc<str>);

impl NodeId {
    /// Creates a node id.
    pub fn new(name: impl Into<String>) -> Self {
        NodeId(Arc::from(name.into().into_boxed_str()))
    }

    /// The id as a string slice.
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "NodeId({})", self.0)
    }
}

impl From<&str> for NodeId {
    fn from(s: &str) -> Self {
        NodeId::new(s)
    }
}

impl From<String> for NodeId {
    fn from(s: String) -> Self {
        NodeId::new(s)
    }
}

impl AsRef<str> for NodeId {
    fn as_ref(&self) -> &str {
        &self.0
    }
}

/// A topic name. Topics double as the paper's unique data *types*: the
/// master enforces that at most one publisher owns each topic, so a correct
/// type label uniquely identifies the producer (§II of the paper).
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Topic(Arc<str>);

impl Topic {
    /// Creates a topic name.
    pub fn new(name: impl Into<String>) -> Self {
        Topic(Arc::from(name.into().into_boxed_str()))
    }

    /// The topic as a string slice.
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl fmt::Display for Topic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl fmt::Debug for Topic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Topic({})", self.0)
    }
}

impl From<&str> for Topic {
    fn from(s: &str) -> Self {
        Topic::new(s)
    }
}

impl From<String> for Topic {
    fn from(s: String) -> Self {
        Topic::new(s)
    }
}

impl AsRef<str> for Topic {
    fn as_ref(&self) -> &str {
        &self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn ids_compare_by_content() {
        assert_eq!(NodeId::new("a"), NodeId::from("a"));
        assert_ne!(NodeId::new("a"), NodeId::new("b"));
        let mut set = HashSet::new();
        set.insert(Topic::new("image"));
        assert!(set.contains(&Topic::from("image")));
    }

    #[test]
    fn display_is_bare_name() {
        assert_eq!(NodeId::new("camera").to_string(), "camera");
        assert_eq!(Topic::new("scan").to_string(), "scan");
        assert_eq!(format!("{:?}", Topic::new("scan")), "Topic(scan)");
    }

    #[test]
    fn clone_is_cheap_and_equal() {
        let t = Topic::new("image");
        let u = t.clone();
        assert_eq!(t, u);
        assert_eq!(t.as_str(), "image");
    }
}
