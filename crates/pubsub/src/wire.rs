//! Wire framing and connection handshakes.
//!
//! Every frame on a connection is a 4-byte little-endian length preamble
//! followed by that many body bytes — exactly the TCPROS convention the
//! paper's size accounting assumes (`message size = |D| + 4 + |signature|`,
//! §VI-C). Connection setup exchanges a key-value *handshake* (like TCPROS
//! connection headers): topic, publisher and subscriber ids, plus extension
//! fields (ADLP advertises its signature length there).

use crate::PubSubError;
use std::collections::BTreeMap;
use std::io::{Read, Write};

/// Bytes of framing overhead per message (the length preamble).
pub const FRAME_PREAMBLE_LEN: usize = 4;

/// Maximum accepted frame body, to bound allocation on malformed input.
pub const MAX_FRAME_LEN: usize = 64 * 1024 * 1024;

/// Encodes a frame: 4-byte LE length + body.
pub fn encode_frame(body: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(FRAME_PREAMBLE_LEN + body.len());
    out.extend_from_slice(&(body.len() as u32).to_le_bytes());
    out.extend_from_slice(body);
    out
}

/// Writes one frame to a byte sink.
///
/// # Errors
///
/// Propagates I/O errors from the writer.
pub fn write_frame<W: Write>(w: &mut W, body: &[u8]) -> Result<(), PubSubError> {
    w.write_all(&(body.len() as u32).to_le_bytes())?;
    w.write_all(body)?;
    Ok(())
}

/// Reads one frame from a byte source. Returns `None` on clean EOF at a
/// frame boundary.
///
/// # Errors
///
/// Returns [`PubSubError::Malformed`] for oversized frames and
/// [`PubSubError::Io`] for mid-frame EOF or I/O failures.
pub fn read_frame<R: Read>(r: &mut R) -> Result<Option<Vec<u8>>, PubSubError> {
    let mut len_buf = [0u8; FRAME_PREAMBLE_LEN];
    match r.read_exact(&mut len_buf) {
        Ok(()) => {}
        Err(e) if e.kind() == std::io::ErrorKind::UnexpectedEof => return Ok(None),
        Err(e) => return Err(e.into()),
    }
    let len = u32::from_le_bytes(len_buf) as usize;
    if len > MAX_FRAME_LEN {
        return Err(PubSubError::Malformed("frame (oversized)"));
    }
    let mut body = vec![0u8; len];
    r.read_exact(&mut body)?;
    Ok(Some(body))
}

/// A key-value connection handshake (ordered for deterministic encoding).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Handshake {
    fields: BTreeMap<String, String>,
}

impl Handshake {
    /// Creates an empty handshake.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets a field, returning `self` for chaining.
    pub fn with(mut self, key: impl Into<String>, value: impl Into<String>) -> Self {
        self.fields.insert(key.into(), value.into());
        self
    }

    /// Looks up a field.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.fields.get(key).map(String::as_str)
    }

    /// Encodes as repeated `len:u16 ‖ "key=value"` records.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        for (k, v) in &self.fields {
            let record = format!("{k}={v}");
            out.extend_from_slice(&(record.len() as u16).to_le_bytes());
            out.extend_from_slice(record.as_bytes());
        }
        out
    }

    /// Decodes the [`Self::encode`] format.
    ///
    /// # Errors
    ///
    /// Returns [`PubSubError::Malformed`] on truncated records, invalid
    /// UTF-8, or records without `=`.
    pub fn decode(mut bytes: &[u8]) -> Result<Self, PubSubError> {
        let mut fields = BTreeMap::new();
        while !bytes.is_empty() {
            let (len_bytes, rest) = bytes
                .split_at_checked(2)
                .ok_or(PubSubError::Malformed("handshake (truncated length)"))?;
            let len = u16::from_le_bytes(
                len_bytes
                    .try_into()
                    .map_err(|_| PubSubError::Malformed("handshake (truncated length)"))?,
            ) as usize;
            let (record_bytes, rest) = rest
                .split_at_checked(len)
                .ok_or(PubSubError::Malformed("handshake (truncated record)"))?;
            let record = std::str::from_utf8(record_bytes)
                .map_err(|_| PubSubError::Malformed("handshake (utf-8)"))?;
            bytes = rest;
            let (k, v) = record
                .split_once('=')
                .ok_or(PubSubError::Malformed("handshake (missing '=')"))?;
            fields.insert(k.to_owned(), v.to_owned());
        }
        Ok(Handshake { fields })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn frame_roundtrip_via_io() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello").unwrap();
        write_frame(&mut buf, b"").unwrap();
        write_frame(&mut buf, &[7u8; 1000]).unwrap();
        let mut cur = Cursor::new(buf);
        assert_eq!(read_frame(&mut cur).unwrap().unwrap(), b"hello");
        assert_eq!(read_frame(&mut cur).unwrap().unwrap(), b"");
        assert_eq!(read_frame(&mut cur).unwrap().unwrap(), vec![7u8; 1000]);
        assert_eq!(read_frame(&mut cur).unwrap(), None);
    }

    #[test]
    fn frame_overhead_is_four_bytes() {
        assert_eq!(encode_frame(b"abc").len(), 3 + FRAME_PREAMBLE_LEN);
    }

    #[test]
    fn truncated_frame_is_io_error() {
        let mut full = Vec::new();
        write_frame(&mut full, b"hello").unwrap();
        let mut cur = Cursor::new(&full[..full.len() - 2]);
        assert!(matches!(read_frame(&mut cur), Err(PubSubError::Io(_))));
    }

    #[test]
    fn oversized_frame_rejected() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&(u32::MAX).to_le_bytes());
        let mut cur = Cursor::new(buf);
        assert_eq!(
            read_frame(&mut cur),
            Err(PubSubError::Malformed("frame (oversized)"))
        );
    }

    #[test]
    fn handshake_roundtrip() {
        let hs = Handshake::new()
            .with("topic", "image")
            .with("publisher", "camera")
            .with("subscriber", "detector")
            .with("adlp_sig_len", "128");
        let decoded = Handshake::decode(&hs.encode()).unwrap();
        assert_eq!(decoded, hs);
        assert_eq!(decoded.get("adlp_sig_len"), Some("128"));
        assert_eq!(decoded.get("missing"), None);
    }

    #[test]
    fn handshake_bad_inputs() {
        assert!(Handshake::decode(&[5]).is_err());
        assert!(Handshake::decode(&[5, 0, b'a', b'b']).is_err());
        let no_eq = {
            let mut v = vec![3, 0];
            v.extend_from_slice(b"abc");
            v
        };
        assert!(Handshake::decode(&no_eq).is_err());
    }

    #[test]
    fn handshake_value_may_contain_equals() {
        let hs = Handshake::new().with("k", "a=b=c");
        assert_eq!(Handshake::decode(&hs.encode()).unwrap().get("k"), Some("a=b=c"));
    }
}
