//! Transport-layer interception — the hook ADLP plugs into.
//!
//! The ADLP prototype modifies the ROS transport layer in `rospy` so that
//! signing, acknowledgement, and logging happen beneath the application
//! (§V-B, Figure 12). [`LinkInterceptor`] is that seam: a node installs one
//! interceptor and every connection consults it
//!
//! * before sending a body ([`LinkInterceptor::on_send`] — ADLP appends the
//!   publisher's signature),
//! * when deciding whether a connection may carry the next message
//!   ([`LinkInterceptor::may_send`] — ADLP's ack gating),
//! * when a body arrives ([`LinkInterceptor::on_recv`] — ADLP strips and
//!   verifies the signature, produces the signed acknowledgement reply, and
//!   emits the subscriber's log entry), and
//! * when a reverse-channel frame arrives at the publisher
//!   ([`LinkInterceptor::on_return`] — ADLP matches the acknowledgement and
//!   emits the publisher's log entry).
//!
//! The default implementations make [`NoopInterceptor`] (and any plain node)
//! behave like stock ROS: bodies pass through untouched and no reverse
//! traffic is generated.

use crate::types::{NodeId, Topic};
use crate::wire::Handshake;
use std::fmt;

/// Immutable facts about one publisher→subscriber connection.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConnectionInfo {
    /// The topic (also the paper's unique data type).
    pub topic: Topic,
    /// The publishing component.
    pub publisher: NodeId,
    /// The subscribing component.
    pub subscriber: NodeId,
    /// Extension fields exchanged in the handshake (the *peer's* fields, as
    /// seen from each side).
    pub peer_fields: Handshake,
}

/// What to do with a received body.
#[derive(Debug, Clone, Default)]
pub struct RecvOutcome {
    /// Body to deliver to the application layer (`None` drops the message).
    pub deliver: Option<Vec<u8>>,
    /// Frame to send back to the publisher on the reverse channel.
    pub reply: Option<Vec<u8>>,
}

impl RecvOutcome {
    /// Delivers the body unchanged, with no reply.
    pub fn deliver(body: Vec<u8>) -> Self {
        RecvOutcome {
            deliver: Some(body),
            reply: None,
        }
    }

    /// Drops the message entirely.
    pub fn drop_message() -> Self {
        RecvOutcome::default()
    }
}

/// Transport-layer hooks invoked on every connection of a node.
///
/// Implementations must be thread-safe: connections invoke hooks
/// concurrently from their I/O threads.
pub trait LinkInterceptor: Send + Sync + fmt::Debug {
    /// Extra handshake fields this side contributes when a connection for
    /// `topic` is set up (`publishing` distinguishes the two roles).
    fn handshake_fields(&self, topic: &Topic, publishing: bool) -> Vec<(String, String)> {
        let _ = (topic, publishing);
        Vec::new()
    }

    /// Whether the publisher may send the next message on this connection.
    /// ADLP returns `false` while the previous message is unacknowledged
    /// ("If the acknowledgement to the previously published message has not
    /// been received ... the new message is not sent", §V-B step 2).
    fn may_send(&self, conn: &ConnectionInfo) -> bool {
        let _ = conn;
        true
    }

    /// Transforms an outgoing body just before framing.
    fn on_send(&self, conn: &ConnectionInfo, body: Vec<u8>) -> Vec<u8> {
        let _ = conn;
        body
    }

    /// Handles an incoming body on the subscriber side.
    fn on_recv(&self, conn: &ConnectionInfo, body: Vec<u8>) -> RecvOutcome {
        let _ = conn;
        RecvOutcome::deliver(body)
    }

    /// Handles a reverse-channel frame on the publisher side.
    fn on_return(&self, conn: &ConnectionInfo, frame: Vec<u8>) {
        let _ = (conn, frame);
    }

    /// Notifies that a connection was established (both sides).
    fn on_connect(&self, conn: &ConnectionInfo, publishing: bool) {
        let _ = (conn, publishing);
    }

    /// Notifies that a publisher-side connection is being torn down (peer
    /// disconnect, or resilience retries exhausted). ADLP flushes the
    /// link's pending acknowledgements as unacked-publication evidence
    /// here, so a dead subscriber leaves an auditable trace instead of a
    /// silently wedged link.
    fn on_disconnect(&self, conn: &ConnectionInfo) {
        let _ = conn;
    }
}

/// The identity interceptor: plain ROS-like behavior.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoopInterceptor;

impl LinkInterceptor for NoopInterceptor {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noop_passes_bodies_through() {
        let conn = ConnectionInfo {
            topic: Topic::new("t"),
            publisher: NodeId::new("p"),
            subscriber: NodeId::new("s"),
            peer_fields: Handshake::new(),
        };
        let i = NoopInterceptor;
        assert!(i.may_send(&conn));
        assert_eq!(i.on_send(&conn, vec![1, 2]), vec![1, 2]);
        let out = i.on_recv(&conn, vec![3, 4]);
        assert_eq!(out.deliver, Some(vec![3, 4]));
        assert!(out.reply.is_none());
        assert!(i.handshake_fields(&conn.topic, true).is_empty());
    }

    #[test]
    fn recv_outcome_constructors() {
        assert!(RecvOutcome::drop_message().deliver.is_none());
        assert_eq!(RecvOutcome::deliver(vec![9]).deliver, Some(vec![9]));
    }
}
