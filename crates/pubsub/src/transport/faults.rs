//! Deterministic fault injection for [`FrameDuplex`] connections.
//!
//! [`FaultyTransport::wrap`] interposes an injector thread on the forward
//! (data) direction of any duplex, applying drop / delay / duplicate /
//! reorder / disconnect faults rolled from a seeded [`rand::rngs::StdRng`].
//! The same seed and frame sequence produce the same fault decisions, so
//! failing runs replay exactly — the property the fault-injection tests and
//! sim scenarios rely on.
//!
//! The reverse (acknowledgement) direction is passed through untouched:
//! publisher-side retry logic then exercises *message* loss, while lost
//! links (disconnect faults) exercise teardown and evidence flushing.
//! Injected faults are counted in [`FaultStats`] so tests can assert the
//! harness actually did something.

use crate::transport::FrameDuplex;
use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

/// Probabilities and limits for injected faults. All-zero (the default) is
/// fully transparent.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultConfig {
    /// Seed for the per-connection fault RNG (combined with a per-link
    /// salt so links fault independently but reproducibly).
    pub seed: u64,
    /// Probability a forward frame is silently dropped.
    pub drop_rate: f64,
    /// Probability a forward frame is delivered twice.
    pub duplicate_rate: f64,
    /// Probability a forward frame is held back and delivered after its
    /// successor (adjacent reorder).
    pub reorder_rate: f64,
    /// Probability a forward frame is delayed by up to [`Self::max_delay`].
    pub delay_rate: f64,
    /// Upper bound for injected delays.
    pub max_delay: Duration,
    /// Sever the connection after this many forwarded frames.
    pub disconnect_after: Option<u64>,
}

impl Default for FaultConfig {
    fn default() -> Self {
        FaultConfig {
            seed: 0,
            drop_rate: 0.0,
            duplicate_rate: 0.0,
            reorder_rate: 0.0,
            delay_rate: 0.0,
            max_delay: Duration::from_millis(20),
            disconnect_after: None,
        }
    }
}

impl FaultConfig {
    /// A transparent config with the given RNG seed.
    pub fn seeded(seed: u64) -> Self {
        FaultConfig {
            seed,
            ..Self::default()
        }
    }

    /// Sets the drop probability.
    pub fn with_drop_rate(mut self, p: f64) -> Self {
        self.drop_rate = p;
        self
    }

    /// Sets the duplicate probability.
    pub fn with_duplicate_rate(mut self, p: f64) -> Self {
        self.duplicate_rate = p;
        self
    }

    /// Sets the adjacent-reorder probability.
    pub fn with_reorder_rate(mut self, p: f64) -> Self {
        self.reorder_rate = p;
        self
    }

    /// Sets the delay probability and bound.
    pub fn with_delay(mut self, p: f64, max: Duration) -> Self {
        self.delay_rate = p;
        self.max_delay = max;
        self
    }

    /// Severs the link after `frames` forwarded frames.
    pub fn with_disconnect_after(mut self, frames: u64) -> Self {
        self.disconnect_after = Some(frames);
        self
    }

    /// Whether this config injects nothing.
    pub fn is_transparent(&self) -> bool {
        self.drop_rate == 0.0
            && self.duplicate_rate == 0.0
            && self.reorder_rate == 0.0
            && self.delay_rate == 0.0
            && self.disconnect_after.is_none()
    }
}

/// Counters for injected faults, shared across a node's connections.
#[derive(Debug, Default)]
pub struct FaultStats {
    /// Frames forwarded to the peer (including duplicates).
    pub forwarded: AtomicU64,
    /// Frames silently dropped by injection.
    pub dropped: AtomicU64,
    /// Frames delivered twice.
    pub duplicated: AtomicU64,
    /// Frames held back past their successor.
    pub reordered: AtomicU64,
    /// Frames delayed.
    pub delayed: AtomicU64,
    /// Connections severed by a disconnect fault.
    pub disconnects: AtomicU64,
}

impl FaultStats {
    /// Total frames affected by any fault.
    pub fn total_faults(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
            + self.duplicated.load(Ordering::Relaxed)
            + self.reordered.load(Ordering::Relaxed)
            + self.delayed.load(Ordering::Relaxed)
            + self.disconnects.load(Ordering::Relaxed)
    }
}

/// Wraps duplex endpoints with fault injection. See the module docs.
pub struct FaultyTransport;

impl FaultyTransport {
    /// Interposes fault injection on `inner`'s forward direction.
    ///
    /// `salt` differentiates links sharing one config (hash of the peer
    /// id); `on_qos_drop` runs when a frame is dropped because the inner
    /// bounded queue was full (the `queue_size` QoS policy — distinct from
    /// injected drops), so the owning node can keep its drop accounting
    /// exact.
    pub fn wrap(
        inner: FrameDuplex,
        config: FaultConfig,
        salt: u64,
        stats: Arc<FaultStats>,
        on_qos_drop: impl Fn() + Send + 'static,
    ) -> FrameDuplex {
        let (outer_tx, outer_rx) = crossbeam::channel::unbounded::<Vec<u8>>();
        let outer = FrameDuplex {
            tx: outer_tx,
            rx: inner.rx.clone(),
            drop_on_full: inner.drop_on_full,
        };
        let mut injector = Injector {
            rng: StdRng::seed_from_u64(config.seed ^ salt),
            config,
            inner_tx: inner,
            stats,
            on_qos_drop: Box::new(on_qos_drop),
            forwarded: 0,
            severed: false,
        };
        thread::Builder::new()
            .name("fault-injector".into())
            .spawn(move || injector.run(outer_rx))
            // adlp-lint: allow(no-panic-paths) — test-harness link setup before any traffic; the injector owns the only copy of the duplex, so there is no caller to hand an error to
            .expect("spawn fault injector");
        outer
    }
}

struct Injector {
    config: FaultConfig,
    rng: StdRng,
    inner_tx: FrameDuplex,
    stats: Arc<FaultStats>,
    on_qos_drop: Box<dyn Fn() + Send>,
    forwarded: u64,
    severed: bool,
}

impl Injector {
    fn roll(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            return false;
        }
        let unit = (self.rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        unit < p
    }

    fn run(&mut self, outer_rx: crossbeam::channel::Receiver<Vec<u8>>) {
        let mut delayed: Vec<(Instant, Vec<u8>)> = Vec::new();
        let mut held: Option<Vec<u8>> = None;
        loop {
            // adlp-lint: allow(sim-determinism) — which frames get delayed (and by how much) is decided by the seeded RNG above; Instant only paces their physical delivery
            let now = Instant::now();
            let (ready, still): (Vec<_>, Vec<_>) = std::mem::take(&mut delayed)
                .into_iter()
                .partition(|(due, _)| *due <= now);
            delayed = still;
            for (_, frame) in ready {
                if !self.emit(frame) {
                    return;
                }
            }
            if self.severed {
                return;
            }
            let tick = delayed
                .iter()
                .map(|(due, _)| due.saturating_duration_since(now))
                .min()
                .unwrap_or(Duration::from_millis(20))
                .min(Duration::from_millis(20));
            let frame = match outer_rx.recv_timeout(tick.max(Duration::from_millis(1))) {
                Ok(f) => f,
                Err(crossbeam::channel::RecvTimeoutError::Timeout) => continue,
                Err(crossbeam::channel::RecvTimeoutError::Disconnected) => {
                    // Publisher gone: flush whatever is still in flight.
                    if let Some(f) = held.take() {
                        if !self.emit(f) {
                            return;
                        }
                    }
                    for (_, f) in std::mem::take(&mut delayed) {
                        if !self.emit(f) {
                            return;
                        }
                    }
                    return;
                }
            };

            if self.roll(self.config.drop_rate) {
                self.stats.dropped.fetch_add(1, Ordering::Relaxed);
                continue;
            }
            if self.roll(self.config.delay_rate) {
                let span = self.config.max_delay.as_millis().max(1) as u64;
                let wait = Duration::from_millis(self.rng.next_u64() % span);
                self.stats.delayed.fetch_add(1, Ordering::Relaxed);
                // adlp-lint: allow(sim-determinism) — the delay amount is seeded; Instant only anchors the wall-clock due time
                delayed.push((Instant::now() + wait, frame));
                continue;
            }
            if self.roll(self.config.reorder_rate) && held.is_none() {
                self.stats.reordered.fetch_add(1, Ordering::Relaxed);
                held = Some(frame);
                continue;
            }
            let duplicate = self.roll(self.config.duplicate_rate);
            if !self.emit(frame.clone()) {
                return;
            }
            if duplicate {
                self.stats.duplicated.fetch_add(1, Ordering::Relaxed);
                if !self.emit(frame) {
                    return;
                }
            }
            // A held (reordered) frame follows its successor.
            if let Some(f) = held.take() {
                if !self.emit(f) {
                    return;
                }
            }
        }
    }

    /// Forwards one frame to the inner duplex; `false` ends the injector.
    fn emit(&mut self, frame: Vec<u8>) -> bool {
        if let Some(limit) = self.config.disconnect_after {
            if self.forwarded >= limit {
                // Sever: drop this and everything after; closing our end of
                // the inner channel disconnects the peer.
                if !self.severed {
                    self.severed = true;
                    self.stats.disconnects.fetch_add(1, Ordering::Relaxed);
                }
                return false;
            }
        }
        match self.inner_tx.try_send(frame) {
            crate::transport::SendOutcome::Sent => {
                self.forwarded += 1;
                self.stats.forwarded.fetch_add(1, Ordering::Relaxed);
                true
            }
            crate::transport::SendOutcome::Dropped => {
                // Bounded-queue QoS drop, not an injected fault.
                (self.on_qos_drop)();
                true
            }
            crate::transport::SendOutcome::Disconnected => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transport::duplex_pair_with;

    fn wrap_pair(config: FaultConfig) -> (FrameDuplex, FrameDuplex, Arc<FaultStats>) {
        let (a, b) = duplex_pair_with(None);
        let stats = Arc::new(FaultStats::default());
        let wrapped = FaultyTransport::wrap(a, config, 1, Arc::clone(&stats), || {});
        (wrapped, b, stats)
    }

    fn drain(rx: &crossbeam::channel::Receiver<Vec<u8>>) -> Vec<Vec<u8>> {
        let mut out = Vec::new();
        while let Ok(f) = rx.recv_timeout(Duration::from_millis(300)) {
            out.push(f);
        }
        out
    }

    #[test]
    fn transparent_config_passes_everything_in_order() {
        let (a, b, stats) = wrap_pair(FaultConfig::seeded(7));
        for i in 0..50u8 {
            assert!(a.send(vec![i]));
        }
        let got = drain(&b.rx);
        assert_eq!(got.len(), 50);
        assert!(got.iter().enumerate().all(|(i, f)| f == &vec![i as u8]));
        assert_eq!(stats.total_faults(), 0);
    }

    #[test]
    fn drop_faults_lose_frames_deterministically() {
        let run = || {
            let (a, b, stats) = wrap_pair(FaultConfig::seeded(99).with_drop_rate(0.3));
            for i in 0..100u8 {
                assert!(a.send(vec![i]));
            }
            let got = drain(&b.rx);
            (got, stats.dropped.load(Ordering::Relaxed))
        };
        let (got1, dropped1) = run();
        let (got2, dropped2) = run();
        assert!(dropped1 > 0, "0.3 drop rate over 100 frames must drop some");
        assert_eq!(got1.len() as u64 + dropped1, 100);
        // Same seed → same decisions.
        assert_eq!(got1, got2);
        assert_eq!(dropped1, dropped2);
    }

    #[test]
    fn duplicates_add_frames() {
        let (a, b, stats) = wrap_pair(FaultConfig::seeded(5).with_duplicate_rate(0.5));
        for i in 0..40u8 {
            assert!(a.send(vec![i]));
        }
        let got = drain(&b.rx);
        let dups = stats.duplicated.load(Ordering::Relaxed);
        assert!(dups > 0);
        assert_eq!(got.len() as u64, 40 + dups);
    }

    #[test]
    fn disconnect_after_severs_link() {
        let (a, b, stats) = wrap_pair(FaultConfig::seeded(3).with_disconnect_after(5));
        for i in 0..20u8 {
            a.send(vec![i]);
        }
        let got = drain(&b.rx);
        assert_eq!(got.len(), 5);
        assert_eq!(stats.disconnects.load(Ordering::Relaxed), 1);
        // The peer eventually observes the disconnect.
        assert!(matches!(
            b.rx.recv_timeout(Duration::from_millis(200)),
            Err(crossbeam::channel::RecvTimeoutError::Disconnected)
        ));
    }

    #[test]
    fn reverse_direction_is_untouched() {
        let (a, b, _stats) = wrap_pair(FaultConfig::seeded(1).with_drop_rate(1.0));
        for i in 0..10u8 {
            assert!(b.send(vec![i]));
        }
        for i in 0..10u8 {
            assert_eq!(a.rx.recv_timeout(Duration::from_millis(200)).unwrap(), vec![i]);
        }
    }

    #[test]
    fn delayed_frames_eventually_arrive() {
        let (a, b, stats) = wrap_pair(
            FaultConfig::seeded(8).with_delay(1.0, Duration::from_millis(30)),
        );
        for i in 0..10u8 {
            assert!(a.send(vec![i]));
        }
        let got = drain(&b.rx);
        assert_eq!(got.len(), 10);
        assert_eq!(stats.delayed.load(Ordering::Relaxed), 10);
    }
}
