//! Connection transports.
//!
//! Both transports present the same abstraction to the node layer: a
//! [`FrameDuplex`] — a pair of crossbeam channels carrying whole frames in
//! each direction. The in-process transport wires channels directly; the TCP
//! transport bridges real sockets to channels with reader/writer threads
//! (point-to-point TCP is what ROS uses, §III-B of the paper).
//!
//! The forward (data) direction may be **bounded** — ROS's `queue_size` —
//! in which case a send to a full queue drops the frame instead of
//! blocking, bounding publisher-side memory under slow subscribers.

pub mod chaos;
pub mod faults;
pub mod inproc;
pub mod tcp;

use crossbeam::channel::{Receiver, Sender, TrySendError};

/// Outcome of pushing a frame toward the peer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SendOutcome {
    /// Queued for delivery.
    Sent,
    /// Dropped: the bounded queue was full (`queue_size` policy).
    Dropped,
    /// The peer is gone.
    Disconnected,
}

/// One endpoint of a bidirectional framed connection.
#[derive(Debug, Clone)]
pub struct FrameDuplex {
    /// Frames to the peer.
    pub tx: Sender<Vec<u8>>,
    /// Frames from the peer.
    pub rx: Receiver<Vec<u8>>,
    /// Whether a full outgoing queue drops frames (bounded QoS) instead of
    /// blocking.
    pub drop_on_full: bool,
}

impl FrameDuplex {
    /// Sends a frame; `false` when the peer is gone. Kept for callers that
    /// do not care about QoS drops.
    pub fn send(&self, frame: Vec<u8>) -> bool {
        !matches!(self.try_send(frame), SendOutcome::Disconnected)
    }

    /// Sends a frame, reporting the QoS outcome.
    pub fn try_send(&self, frame: Vec<u8>) -> SendOutcome {
        match self.tx.try_send(frame) {
            Ok(()) => SendOutcome::Sent,
            Err(TrySendError::Full(f)) => {
                if self.drop_on_full {
                    SendOutcome::Dropped
                } else if self.tx.send(f).is_ok() {
                    SendOutcome::Sent
                } else {
                    SendOutcome::Disconnected
                }
            }
            Err(TrySendError::Disconnected(_)) => SendOutcome::Disconnected,
        }
    }
}

/// Creates a connected pair of duplex endpoints over in-process channels.
/// `forward_cap` bounds the first endpoint's outgoing (data) direction;
/// the reverse (acknowledgement) direction is always unbounded.
pub fn duplex_pair_with(forward_cap: Option<usize>) -> (FrameDuplex, FrameDuplex) {
    let (fwd_tx, fwd_rx) = match forward_cap {
        Some(cap) => crossbeam::channel::bounded(cap.max(1)),
        None => crossbeam::channel::unbounded(),
    };
    let (rev_tx, rev_rx) = crossbeam::channel::unbounded();
    (
        FrameDuplex {
            tx: fwd_tx,
            rx: rev_rx,
            drop_on_full: forward_cap.is_some(),
        },
        FrameDuplex {
            tx: rev_tx,
            rx: fwd_rx,
            drop_on_full: false,
        },
    )
}

/// Creates an unbounded connected pair.
pub fn duplex_pair() -> (FrameDuplex, FrameDuplex) {
    duplex_pair_with(None)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn duplex_pair_is_cross_wired() {
        let (a, b) = duplex_pair();
        assert!(a.send(vec![1]));
        assert!(b.send(vec![2]));
        assert_eq!(b.rx.recv().unwrap(), vec![1]);
        assert_eq!(a.rx.recv().unwrap(), vec![2]);
    }

    #[test]
    fn send_to_dropped_peer_fails() {
        let (a, b) = duplex_pair();
        drop(b);
        assert!(!a.send(vec![1]));
        assert_eq!(a.try_send(vec![2]), SendOutcome::Disconnected);
    }

    #[test]
    fn bounded_forward_drops_when_full() {
        let (a, b) = duplex_pair_with(Some(2));
        assert_eq!(a.try_send(vec![1]), SendOutcome::Sent);
        assert_eq!(a.try_send(vec![2]), SendOutcome::Sent);
        assert_eq!(a.try_send(vec![3]), SendOutcome::Dropped);
        assert_eq!(b.rx.recv().unwrap(), vec![1]);
        assert_eq!(a.try_send(vec![4]), SendOutcome::Sent);
        // Reverse direction stays unbounded.
        for i in 0..100u8 {
            assert_eq!(b.try_send(vec![i]), SendOutcome::Sent);
        }
    }

    #[test]
    fn zero_capacity_clamped_to_one() {
        let (a, _b) = duplex_pair_with(Some(0));
        assert_eq!(a.try_send(vec![1]), SendOutcome::Sent);
        assert_eq!(a.try_send(vec![2]), SendOutcome::Dropped);
    }
}
