//! Seeded socket-level chaos: a TCP proxy that mistreats real byte
//! streams.
//!
//! [`crate::transport::faults::FaultyTransport`] injects faults on
//! in-process *frame* channels; everything that makes real sockets hard —
//! byte-boundary splits, half-written frames, connection resets mid-stream,
//! stalls that look exactly like a dead peer — never crosses it. The
//! [`ChaosProxy`] closes that gap: it listens on a local port, forwards
//! every accepted connection to a (re-targetable) upstream address, and
//! mistreats the byte stream according to a seeded [`ChaosConfig`]:
//!
//! * **resets** — both sides of the connection are torn down mid-stream;
//! * **splits** — a chunk is cut at a random byte boundary and the halves
//!   are flushed separately, so length-prefixed frame reassembly is
//!   exercised at every offset;
//! * **delays** — a chunk is held for a bounded, seeded duration;
//! * **slow-loris stalls** — one byte is written, then the stream goes
//!   silent for a configured stall, then the rest follows (or the
//!   receiver's read deadline fires first — also a correct outcome);
//! * **partitions** — [`ChaosProxy::sever`] refuses new connections and
//!   resets live ones until [`ChaosProxy::heal`].
//!
//! Fault *decisions* are deterministic per (seed, connection index, chunk
//! index) — the same seed replays the same mistreatment plan. Chunk
//! boundaries come from real socket reads, so byte-exact replay is
//! best-effort; every protocol above this proxy must tolerate arbitrary
//! re-chunking anyway, which is precisely what the splits enforce.
//!
//! Like every chaos tool here, the proxy counts what it does
//! ([`ChaosStats`]) so tests can assert the harness actually bit.

use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};
use std::io::{Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::Duration;

use crate::PubSubError;
use parking_lot::Mutex;

/// Probabilities and limits for socket-level chaos. All-zero (the default)
/// forwards transparently.
#[derive(Debug, Clone, PartialEq)]
pub struct ChaosConfig {
    /// Seed for the per-connection chaos RNG (combined with the connection
    /// index so connections misbehave independently but reproducibly).
    pub seed: u64,
    /// Probability a chunk triggers a connection reset (both directions
    /// torn down mid-stream).
    pub reset_rate: f64,
    /// Probability a chunk is split at a seeded byte boundary and flushed
    /// in two writes with a short gap between them.
    pub split_rate: f64,
    /// Probability a chunk is delayed by up to [`ChaosConfig::max_delay`].
    pub delay_rate: f64,
    /// Upper bound for injected delays.
    pub max_delay: Duration,
    /// Probability a chunk is held back and delivered after its successor.
    pub reorder_rate: f64,
    /// Probability of a slow-loris stall: one byte is written, the stream
    /// goes silent for [`ChaosConfig::stall`], then the rest follows.
    pub stall_rate: f64,
    /// Duration of a slow-loris stall.
    pub stall: Duration,
    /// Probability an inbound connection is refused outright (accepted,
    /// then immediately closed — a dial-time reset).
    pub connect_reset_rate: f64,
}

impl Default for ChaosConfig {
    fn default() -> Self {
        ChaosConfig {
            seed: 0,
            reset_rate: 0.0,
            split_rate: 0.0,
            delay_rate: 0.0,
            max_delay: Duration::from_millis(20),
            reorder_rate: 0.0,
            stall_rate: 0.0,
            stall: Duration::from_millis(100),
            connect_reset_rate: 0.0,
        }
    }
}

impl ChaosConfig {
    /// A transparent config with the given RNG seed.
    pub fn seeded(seed: u64) -> Self {
        ChaosConfig {
            seed,
            ..Self::default()
        }
    }

    /// Sets the mid-stream reset probability.
    pub fn with_reset_rate(mut self, p: f64) -> Self {
        self.reset_rate = p;
        self
    }

    /// Sets the byte-boundary split probability.
    pub fn with_split_rate(mut self, p: f64) -> Self {
        self.split_rate = p;
        self
    }

    /// Sets the delay probability and bound.
    pub fn with_delay(mut self, p: f64, max: Duration) -> Self {
        self.delay_rate = p;
        self.max_delay = max;
        self
    }

    /// Sets the adjacent-reorder probability.
    pub fn with_reorder_rate(mut self, p: f64) -> Self {
        self.reorder_rate = p;
        self
    }

    /// Sets the slow-loris stall probability and duration.
    pub fn with_stall(mut self, p: f64, stall: Duration) -> Self {
        self.stall_rate = p;
        self.stall = stall;
        self
    }

    /// Sets the dial-time reset probability.
    pub fn with_connect_reset_rate(mut self, p: f64) -> Self {
        self.connect_reset_rate = p;
        self
    }

    /// Whether this config injects nothing.
    pub fn is_transparent(&self) -> bool {
        self.reset_rate == 0.0
            && self.split_rate == 0.0
            && self.delay_rate == 0.0
            && self.reorder_rate == 0.0
            && self.stall_rate == 0.0
            && self.connect_reset_rate == 0.0
    }
}

/// Counters for injected socket chaos.
#[derive(Debug, Default)]
pub struct ChaosStats {
    /// Connections accepted and bridged to the target.
    pub connections: AtomicU64,
    /// Connections refused at accept time (dial-time resets).
    pub refused: AtomicU64,
    /// Connections refused because the proxy was severed.
    pub partitioned: AtomicU64,
    /// Mid-stream connection resets.
    pub resets: AtomicU64,
    /// Chunks split at a byte boundary.
    pub splits: AtomicU64,
    /// Chunks delayed.
    pub delayed: AtomicU64,
    /// Chunks held back past their successor.
    pub reordered: AtomicU64,
    /// Slow-loris stalls injected.
    pub stalls: AtomicU64,
    /// Bytes forwarded (both directions, after chaos).
    pub bytes_forwarded: AtomicU64,
}

impl ChaosStats {
    /// Total chunks affected by any injected fault.
    pub fn total_faults(&self) -> u64 {
        self.refused.load(Ordering::Relaxed)
            + self.partitioned.load(Ordering::Relaxed)
            + self.resets.load(Ordering::Relaxed)
            + self.splits.load(Ordering::Relaxed)
            + self.delayed.load(Ordering::Relaxed)
            + self.reordered.load(Ordering::Relaxed)
            + self.stalls.load(Ordering::Relaxed)
    }
}

struct ProxyShared {
    target: Mutex<SocketAddr>,
    severed: AtomicBool,
    shutdown: AtomicBool,
    stats: ChaosStats,
    /// Live bridged sockets, for severing mid-stream. Each entry is one
    /// side of a bridged pair; shutting it down unblocks its pump thread.
    conns: Mutex<Vec<TcpStream>>,
}

impl ProxyShared {
    /// The current upstream address (copied out; the guard never outlives
    /// this call).
    fn current_target(&self) -> SocketAddr {
        *self.target.lock()
    }

    /// Tears down every live bridged socket (reset-style).
    fn reset_conns(&self) {
        let mut conns = self.conns.lock();
        for stream in conns.drain(..) {
            // adlp-lint: allow(discarded-fallible) — severing an already-dead socket is the desired end state
            let _ = stream.shutdown(Shutdown::Both);
        }
    }
}

/// A chaos-injecting TCP proxy in front of one upstream listener.
///
/// Dial [`ChaosProxy::addr`] instead of the target; the proxy forwards
/// (and mistreats) the byte stream. The target is re-targetable at
/// runtime ([`ChaosProxy::set_target`]) so a restarted upstream with a
/// fresh ephemeral port keeps its place in the topology.
pub struct ChaosProxy {
    addr: SocketAddr,
    shared: Arc<ProxyShared>,
}

impl std::fmt::Debug for ChaosProxy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ChaosProxy")
            .field("addr", &self.addr)
            .field("severed", &self.shared.severed.load(Ordering::Relaxed))
            .finish_non_exhaustive()
    }
}

impl ChaosProxy {
    /// Binds a proxy on an ephemeral localhost port forwarding to
    /// `target` under `config`.
    ///
    /// # Errors
    ///
    /// Propagates socket errors from the bind.
    pub fn spawn(target: SocketAddr, config: ChaosConfig) -> Result<Self, PubSubError> {
        let listener = TcpListener::bind(("127.0.0.1", 0))?;
        let addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let shared = Arc::new(ProxyShared {
            target: Mutex::new(target),
            severed: AtomicBool::new(false),
            shutdown: AtomicBool::new(false),
            stats: ChaosStats::default(),
            conns: Mutex::new(Vec::new()),
        });
        let accept_shared = Arc::clone(&shared);
        thread::Builder::new()
            .name("chaos-proxy-accept".into())
            .spawn(move || accept_loop(listener, accept_shared, config))
            .map_err(|e| PubSubError::Io(format!("spawn chaos proxy: {e}")))?;
        Ok(ChaosProxy { addr, shared })
    }

    /// The address to dial instead of the target.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Repoints the proxy at a new upstream address (e.g. a restarted
    /// listener on a fresh ephemeral port). Existing connections keep
    /// their old upstream until they die.
    pub fn set_target(&self, target: SocketAddr) {
        *self.shared.target.lock() = target;
    }

    /// Partitions the link: live connections are reset and new ones are
    /// refused until [`ChaosProxy::heal`].
    pub fn sever(&self) {
        self.shared.severed.store(true, Ordering::SeqCst);
        self.shared.reset_conns();
    }

    /// Heals the partition.
    pub fn heal(&self) {
        self.shared.severed.store(false, Ordering::SeqCst);
    }

    /// Whether the link is currently partitioned.
    pub fn is_severed(&self) -> bool {
        self.shared.severed.load(Ordering::SeqCst)
    }

    /// Chaos counters.
    pub fn stats(&self) -> &ChaosStats {
        &self.shared.stats
    }
}

impl Drop for ChaosProxy {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        self.shared.reset_conns();
    }
}

fn accept_loop(listener: TcpListener, shared: Arc<ProxyShared>, config: ChaosConfig) {
    let mut dial_rng = StdRng::seed_from_u64(config.seed ^ 0xC4A0_5000);
    let mut conn_seq = 0u64;
    loop {
        if shared.shutdown.load(Ordering::SeqCst) {
            return;
        }
        let client = match listener.accept() {
            Ok((stream, _)) => stream,
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                thread::sleep(Duration::from_millis(2));
                continue;
            }
            Err(_) => return,
        };
        conn_seq += 1;
        if shared.severed.load(Ordering::SeqCst) {
            shared.stats.partitioned.fetch_add(1, Ordering::Relaxed);
            // adlp-lint: allow(discarded-fallible) — the refusal IS the behavior; the peer sees a reset either way
            let _ = client.shutdown(Shutdown::Both);
            continue;
        }
        if roll(&mut dial_rng, config.connect_reset_rate) {
            shared.stats.refused.fetch_add(1, Ordering::Relaxed);
            let _ = client.shutdown(Shutdown::Both);
            continue;
        }
        let target = shared.current_target();
        let upstream = match TcpStream::connect_timeout(&target, Duration::from_millis(500)) {
            Ok(s) => s,
            Err(_) => {
                // Upstream unreachable: the client sees a reset, exactly
                // like a dead peer.
                let _ = client.shutdown(Shutdown::Both);
                continue;
            }
        };
        // adlp-lint: allow(discarded-fallible) — nodelay is best-effort; chaos timing does not depend on it
        let _ = client.set_nodelay(true);
        let _ = upstream.set_nodelay(true);
        shared.stats.connections.fetch_add(1, Ordering::Relaxed);
        bridge(&shared, &config, conn_seq, client, upstream);
    }
}

/// Registers both sockets and spawns the two pump threads for one bridged
/// connection.
fn bridge(
    shared: &Arc<ProxyShared>,
    config: &ChaosConfig,
    conn: u64,
    client: TcpStream,
    upstream: TcpStream,
) {
    let pairs = [
        (client.try_clone(), upstream.try_clone(), 0u64),
        (upstream.try_clone(), client.try_clone(), 1u64),
    ];
    {
        let mut conns = shared.conns.lock();
        conns.push(client);
        conns.push(upstream);
        // Bound the registry: drop entries whose sockets are long dead.
        if conns.len() > 512 {
            conns.retain(|s| s.peer_addr().is_ok());
        }
    }
    for (src, dst, dir) in pairs {
        let (Ok(src), Ok(dst)) = (src, dst) else {
            shared.reset_conns();
            return;
        };
        let shared = Arc::clone(shared);
        let config = config.clone();
        // adlp-lint: allow(discarded-fallible) — a pump that cannot spawn leaves a half-dead bridge, which the peers observe as a reset and redial through
        let _ = thread::Builder::new()
            .name(format!("chaos-pump-{conn}-{dir}"))
            .spawn(move || pump(shared, config, conn, dir, src, dst));
    }
}

fn roll(rng: &mut StdRng, p: f64) -> bool {
    if p <= 0.0 {
        return false;
    }
    let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
    unit < p
}

/// One direction of a bridged connection: read chunks from `src`, apply
/// seeded chaos, write to `dst`. Exits (and resets both sides) on any
/// error, injected reset, or severed partition.
fn pump(
    shared: Arc<ProxyShared>,
    config: ChaosConfig,
    conn: u64,
    dir: u64,
    mut src: TcpStream,
    mut dst: TcpStream,
) {
    let mut rng = StdRng::seed_from_u64(config.seed ^ (conn << 8) ^ dir ^ 0xC4A0_5A17);
    let mut buf = [0u8; 4096];
    let mut held: Option<Vec<u8>> = None;
    // A short read timeout keeps the pump responsive to sever/shutdown even
    // when the stream is idle.
    // adlp-lint: allow(discarded-fallible) — a refused timeout only costs sever responsiveness
    let _ = src.set_read_timeout(Some(Duration::from_millis(50)));
    let teardown = |src: &TcpStream, dst: &TcpStream| {
        let _ = src.shutdown(Shutdown::Both);
        let _ = dst.shutdown(Shutdown::Both);
    };
    loop {
        if shared.shutdown.load(Ordering::SeqCst) || shared.severed.load(Ordering::SeqCst) {
            teardown(&src, &dst);
            return;
        }
        let n = match src.read(&mut buf) {
            Ok(0) => {
                // Clean EOF: flush anything held, half-close downstream.
                if let Some(h) = held.take() {
                    if write_chunk(&shared, &mut dst, &h).is_err() {
                        teardown(&src, &dst);
                        return;
                    }
                }
                let _ = dst.shutdown(Shutdown::Write);
                return;
            }
            Ok(n) => n,
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                continue;
            }
            Err(_) => {
                teardown(&src, &dst);
                return;
            }
        };
        // `read` contract: n <= buf.len(), so the slice always exists.
        let Some(chunk) = buf.get(..n) else {
            teardown(&src, &dst);
            return;
        };
        if roll(&mut rng, config.reset_rate) {
            shared.stats.resets.fetch_add(1, Ordering::Relaxed);
            teardown(&src, &dst);
            return;
        }
        if roll(&mut rng, config.delay_rate) {
            let span = config.max_delay.as_millis().max(1) as u64;
            shared.stats.delayed.fetch_add(1, Ordering::Relaxed);
            thread::sleep(Duration::from_millis(rng.next_u64() % span));
        }
        if roll(&mut rng, config.reorder_rate) && held.is_none() && n > 0 {
            shared.stats.reordered.fetch_add(1, Ordering::Relaxed);
            held = Some(chunk.to_vec());
            continue;
        }
        let stalled = (roll(&mut rng, config.stall_rate) && n > 1)
            .then(|| chunk.split_at_checked(1))
            .flatten();
        let split = (roll(&mut rng, config.split_rate) && n > 1)
            .then(|| chunk.split_at_checked(1 + (rng.next_u64() as usize) % (n - 1)))
            .flatten();
        let outcome = if let Some((first, rest)) = stalled {
            // Slow-loris: one byte, silence, then the rest. The receiver's
            // read deadline may fire first — also a correct outcome.
            shared.stats.stalls.fetch_add(1, Ordering::Relaxed);
            write_chunk(&shared, &mut dst, first).and_then(|()| {
                sleep_unless_severed(&shared, config.stall);
                if shared.severed.load(Ordering::SeqCst) {
                    return Err(std::io::Error::other("severed mid-stall"));
                }
                write_chunk(&shared, &mut dst, rest)
            })
        } else if let Some((first, rest)) = split {
            // Split at a seeded byte boundary, flushing each half, so the
            // receiver reassembles across reads.
            shared.stats.splits.fetch_add(1, Ordering::Relaxed);
            write_chunk(&shared, &mut dst, first).and_then(|()| {
                thread::sleep(Duration::from_millis(1));
                write_chunk(&shared, &mut dst, rest)
            })
        } else {
            write_chunk(&shared, &mut dst, chunk)
        };
        if outcome.is_err() {
            teardown(&src, &dst);
            return;
        }
        if let Some(h) = held.take() {
            if write_chunk(&shared, &mut dst, &h).is_err() {
                teardown(&src, &dst);
                return;
            }
        }
    }
}

fn write_chunk(
    shared: &ProxyShared,
    dst: &mut TcpStream,
    bytes: &[u8],
) -> std::io::Result<()> {
    dst.write_all(bytes)?;
    dst.flush()?;
    shared
        .stats
        .bytes_forwarded
        .fetch_add(bytes.len() as u64, Ordering::Relaxed);
    Ok(())
}

/// Sleeps `total` in short slices, returning early once severed or shut
/// down so a partition is not held hostage by an in-flight stall.
fn sleep_unless_severed(shared: &ProxyShared, total: Duration) {
    let mut left = total;
    while !left.is_zero() {
        if shared.severed.load(Ordering::SeqCst) || shared.shutdown.load(Ordering::SeqCst) {
            return;
        }
        let slice = left.min(Duration::from_millis(10));
        thread::sleep(slice);
        left = left.saturating_sub(slice);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::{read_frame, write_frame};
    use std::io::BufReader;

    /// An upstream echo listener: accepts one connection, reads frames,
    /// echoes each back.
    fn echo_listener() -> (SocketAddr, thread::JoinHandle<usize>) {
        let listener = TcpListener::bind(("127.0.0.1", 0)).unwrap();
        let addr = listener.local_addr().unwrap();
        let handle = thread::spawn(move || {
            let (stream, _) = listener.accept().unwrap();
            let mut writer = stream.try_clone().unwrap();
            let mut reader = BufReader::new(stream);
            let mut echoed = 0;
            while let Ok(Some(frame)) = read_frame(&mut reader) {
                if write_frame(&mut writer, &frame).is_err() {
                    break;
                }
                echoed += 1;
            }
            echoed
        });
        (addr, handle)
    }

    #[test]
    fn transparent_proxy_forwards_frames_exactly() {
        let (target, handle) = echo_listener();
        let proxy = ChaosProxy::spawn(target, ChaosConfig::seeded(1)).unwrap();
        let mut stream = TcpStream::connect(proxy.addr()).unwrap();
        for i in 0..20u8 {
            write_frame(&mut stream, &vec![i; 64]).unwrap();
        }
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        for i in 0..20u8 {
            assert_eq!(read_frame(&mut reader).unwrap().unwrap(), vec![i; 64]);
        }
        stream.shutdown(Shutdown::Write).unwrap();
        assert_eq!(handle.join().unwrap(), 20);
        assert_eq!(proxy.stats().total_faults(), 0);
        assert_eq!(proxy.stats().connections.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn splits_reassemble_into_identical_frames() {
        let (target, handle) = echo_listener();
        let proxy = ChaosProxy::spawn(
            target,
            ChaosConfig::seeded(7).with_split_rate(1.0),
        )
        .unwrap();
        let mut stream = TcpStream::connect(proxy.addr()).unwrap();
        let frames: Vec<Vec<u8>> = (0..10u8).map(|i| vec![i; 200 + i as usize]).collect();
        for f in &frames {
            write_frame(&mut stream, f).unwrap();
        }
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        for f in &frames {
            assert_eq!(&read_frame(&mut reader).unwrap().unwrap(), f);
        }
        stream.shutdown(Shutdown::Write).unwrap();
        assert_eq!(handle.join().unwrap(), 10);
        assert!(
            proxy.stats().splits.load(Ordering::Relaxed) > 0,
            "a 1.0 split rate must split chunks"
        );
    }

    #[test]
    fn severed_proxy_refuses_and_heals() {
        let listener = TcpListener::bind(("127.0.0.1", 0)).unwrap();
        let target = listener.local_addr().unwrap();
        listener.set_nonblocking(true).unwrap();
        let proxy = ChaosProxy::spawn(target, ChaosConfig::seeded(3)).unwrap();

        proxy.sever();
        assert!(proxy.is_severed());
        // A dial may connect (the accept queue) but the bridge is refused:
        // the first read observes the reset.
        let refused = TcpStream::connect(proxy.addr()).unwrap();
        refused
            .set_read_timeout(Some(Duration::from_millis(500)))
            .unwrap();
        let mut one = [0u8; 1];
        let outcome = (&refused).read(&mut one);
        assert!(
            matches!(outcome, Ok(0) | Err(_)),
            "a severed proxy must never deliver bytes: {outcome:?}"
        );

        proxy.heal();
        let mut healed = TcpStream::connect(proxy.addr()).unwrap();
        // The upstream accepts after healing.
        let accepted = {
            let mut tries = 0;
            loop {
                match listener.accept() {
                    Ok((s, _)) => break Some(s),
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock && tries < 200 => {
                        tries += 1;
                        thread::sleep(Duration::from_millis(5));
                    }
                    Err(_) => break None,
                }
            }
        };
        let upstream = accepted.expect("healed proxy bridges to the upstream");
        write_frame(&mut healed, b"after-heal").unwrap();
        let mut reader = BufReader::new(upstream);
        assert_eq!(read_frame(&mut reader).unwrap().unwrap(), b"after-heal");
        assert!(proxy.stats().partitioned.load(Ordering::Relaxed) >= 1);
    }

    #[test]
    fn retargeting_moves_new_connections() {
        let (old_target, _old) = echo_listener();
        let proxy = ChaosProxy::spawn(old_target, ChaosConfig::seeded(5)).unwrap();
        let (new_target, new_handle) = echo_listener();
        proxy.set_target(new_target);

        let mut stream = TcpStream::connect(proxy.addr()).unwrap();
        write_frame(&mut stream, b"routed").unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        assert_eq!(read_frame(&mut reader).unwrap().unwrap(), b"routed");
        stream.shutdown(Shutdown::Write).unwrap();
        assert_eq!(new_handle.join().unwrap(), 1);
    }

    #[test]
    fn resets_tear_down_mid_stream() {
        let (target, _handle) = echo_listener();
        let proxy = ChaosProxy::spawn(
            target,
            ChaosConfig::seeded(11).with_reset_rate(1.0),
        )
        .unwrap();
        let mut stream = TcpStream::connect(proxy.addr()).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(2)))
            .unwrap();
        // Writes may succeed into the socket buffer, but the echo must die.
        for i in 0..10u8 {
            if write_frame(&mut stream, &vec![i; 32]).is_err() {
                break;
            }
            thread::sleep(Duration::from_millis(5));
        }
        let mut reader = BufReader::new(stream);
        let mut echoes = 0;
        while let Ok(Some(_)) = read_frame(&mut reader) {
            echoes += 1;
        }
        assert!(echoes < 10, "a 1.0 reset rate must kill the stream");
        assert!(proxy.stats().resets.load(Ordering::Relaxed) >= 1);
    }
}
