//! TCP transport: real sockets on localhost, bridged to [`FrameDuplex`]
//! channels by reader/writer threads. This mirrors TCPROS: the subscriber
//! connects to the publisher, sends a handshake frame, receives the
//! publisher's handshake frame, then both sides exchange length-prefixed
//! message frames over the same socket (data forward, acknowledgements in
//! reverse).

use super::FrameDuplex;
use crate::wire::{read_frame, write_frame, Handshake};
use crate::PubSubError;
use std::io::BufWriter;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::thread;
use std::time::Duration;

/// Socket-level deadlines for one bridged stream. `None` fields block
/// forever (the default, matching stock TCPROS).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SocketTimeouts {
    /// Applied to the reader thread's socket: a link silent for this long
    /// is treated as dead and the duplex disconnects.
    pub read: Option<Duration>,
    /// Applied to the writer thread's socket: a send stalled for this long
    /// (peer not draining, send buffer full) disconnects the duplex.
    pub write: Option<Duration>,
}

impl SocketTimeouts {
    /// No deadlines (block forever).
    pub fn none() -> Self {
        Self::default()
    }
}

/// Wraps an established, handshake-complete stream into a [`FrameDuplex`]
/// by spawning a reader and a writer thread.
pub fn bridge_stream(stream: TcpStream) -> Result<FrameDuplex, PubSubError> {
    bridge_stream_tuned(stream, None, SocketTimeouts::none())
}

/// Like [`bridge_stream`], bounding the *outgoing* direction to `out_cap`
/// frames (ROS `queue_size`; a full queue drops frames at the sender).
///
/// # Errors
///
/// Propagates socket errors.
pub fn bridge_stream_with(
    stream: TcpStream,
    out_cap: Option<usize>,
) -> Result<FrameDuplex, PubSubError> {
    bridge_stream_tuned(stream, out_cap, SocketTimeouts::none())
}

/// Full-control variant: queue bound plus socket read/write deadlines.
///
/// A timeout firing is indistinguishable from a dead peer by design — the
/// reader (or writer) thread exits and the duplex reports disconnection,
/// which the owning node converts into teardown + evidence flushing rather
/// than an indefinitely wedged thread.
///
/// # Errors
///
/// Propagates socket errors (including failures to apply the timeouts).
pub fn bridge_stream_tuned(
    stream: TcpStream,
    out_cap: Option<usize>,
    timeouts: SocketTimeouts,
) -> Result<FrameDuplex, PubSubError> {
    stream.set_nodelay(true)?;
    let read_half = stream.try_clone()?;
    let write_half = stream;
    read_half.set_read_timeout(timeouts.read)?;
    write_half.set_write_timeout(timeouts.write)?;

    let (in_tx, in_rx) = crossbeam::channel::unbounded::<Vec<u8>>();
    let (out_tx, out_rx) = match out_cap {
        Some(cap) => crossbeam::channel::bounded::<Vec<u8>>(cap.max(1)),
        None => crossbeam::channel::unbounded::<Vec<u8>>(),
    };

    thread::Builder::new()
        .name("tcp-frame-reader".into())
        .spawn(move || {
            let mut r = std::io::BufReader::new(read_half);
            while let Ok(Some(frame)) = read_frame(&mut r) {
                if in_tx.send(frame).is_err() {
                    break;
                }
            }
            // EOF, error, or read timeout: dropping in_tx closes the
            // receiving side.
        })
        .map_err(|e| PubSubError::Io(format!("spawn tcp reader: {e}")))?;

    thread::Builder::new()
        .name("tcp-frame-writer".into())
        .spawn(move || {
            let mut w = BufWriter::new(write_half);
            while let Ok(frame) = out_rx.recv() {
                if write_frame(&mut w, &frame).is_err() {
                    break;
                }
                // Flush per frame: latency matters more than syscall count
                // for the protocol's request/ack pattern.
                if std::io::Write::flush(&mut w).is_err() {
                    break;
                }
            }
            if let Ok(s) = w.into_inner() {
                let _ = s.shutdown(std::net::Shutdown::Write);
            }
        })
        .map_err(|e| PubSubError::Io(format!("spawn tcp writer: {e}")))?;

    Ok(FrameDuplex {
        tx: out_tx,
        rx: in_rx,
        drop_on_full: out_cap.is_some(),
    })
}

/// Binds a listener for a TCP publisher on an ephemeral localhost port.
///
/// # Errors
///
/// Propagates socket errors.
pub fn bind() -> Result<TcpListener, PubSubError> {
    Ok(TcpListener::bind(("127.0.0.1", 0))?)
}

/// Subscriber side: connects, sends `handshake`, reads the publisher's
/// handshake, and returns the duplex plus the peer's handshake.
///
/// # Errors
///
/// Returns transport errors, or [`PubSubError::Disconnected`] if the
/// publisher closes during the handshake.
pub fn dial(addr: SocketAddr, handshake: &Handshake) -> Result<(FrameDuplex, Handshake), PubSubError> {
    dial_tuned(addr, handshake, SocketTimeouts::none())
}

/// Like [`dial`], applying socket deadlines to the bridged stream. The
/// handshake runs under the same deadlines, so a publisher that accepts
/// but never answers cannot wedge the subscriber forever.
///
/// # Errors
///
/// Same as [`dial`].
pub fn dial_tuned(
    addr: SocketAddr,
    handshake: &Handshake,
    timeouts: SocketTimeouts,
) -> Result<(FrameDuplex, Handshake), PubSubError> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_nodelay(true)?;
    stream.set_read_timeout(timeouts.read)?;
    stream.set_write_timeout(timeouts.write)?;
    write_frame(&mut stream, &handshake.encode())?;
    let peer_frame = read_frame(&mut stream)?.ok_or(PubSubError::Disconnected)?;
    let peer = Handshake::decode(&peer_frame)?;
    Ok((bridge_stream_tuned(stream, None, timeouts)?, peer))
}

/// Publisher side of the handshake on a freshly accepted stream: reads the
/// subscriber's handshake and sends back `reply`.
///
/// # Errors
///
/// Returns transport or decode errors.
pub fn accept_handshake(
    stream: &mut TcpStream,
    reply: &Handshake,
) -> Result<Handshake, PubSubError> {
    let frame = read_frame(stream)?.ok_or(PubSubError::Disconnected)?;
    let peer = Handshake::decode(&frame)?;
    write_frame(stream, &reply.encode())?;
    Ok(peer)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn handshake_and_frames_roundtrip() {
        let listener = bind().unwrap();
        let addr = listener.local_addr().unwrap();

        let server = thread::spawn(move || {
            let (mut stream, _) = listener.accept().unwrap();
            let peer =
                accept_handshake(&mut stream, &Handshake::new().with("publisher", "cam")).unwrap();
            assert_eq!(peer.get("subscriber"), Some("det"));
            let duplex = bridge_stream(stream).unwrap();
            // Forward a data frame, then expect an ack frame back.
            duplex.send(b"frame-1".to_vec());
            let ack = duplex.rx.recv().unwrap();
            assert_eq!(ack, b"ack-1");
        });

        let (duplex, peer) = dial(addr, &Handshake::new().with("subscriber", "det")).unwrap();
        assert_eq!(peer.get("publisher"), Some("cam"));
        assert_eq!(duplex.rx.recv().unwrap(), b"frame-1");
        duplex.send(b"ack-1".to_vec());
        server.join().unwrap();
    }

    #[test]
    fn large_frames_cross_the_socket() {
        let listener = bind().unwrap();
        let addr = listener.local_addr().unwrap();
        let payload = vec![0xa5u8; 1_000_000];
        let expected = payload.clone();

        let server = thread::spawn(move || {
            let (mut stream, _) = listener.accept().unwrap();
            accept_handshake(&mut stream, &Handshake::new()).unwrap();
            let duplex = bridge_stream(stream).unwrap();
            duplex.send(payload);
            // Keep the connection alive until the client has read.
            let _ = duplex.rx.recv();
        });

        let (duplex, _) = dial(addr, &Handshake::new()).unwrap();
        assert_eq!(duplex.rx.recv().unwrap(), expected);
        duplex.send(vec![1]);
        server.join().unwrap();
    }

    #[test]
    fn dial_refused_port_errors() {
        // Bind and immediately drop to get a (very likely) dead port.
        let addr = {
            let l = bind().unwrap();
            l.local_addr().unwrap()
        };
        assert!(matches!(
            dial(addr, &Handshake::new()),
            Err(PubSubError::Io(_))
        ));
    }
}
