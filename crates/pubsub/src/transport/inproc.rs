//! In-process transport: connection requests travel over a control channel
//! to the publisher's accept loop; data flows over [`FrameDuplex`] channels.

use super::{duplex_pair_with, FrameDuplex};
use crate::wire::Handshake;
use crate::PubSubError;
use crossbeam::channel::{Receiver, Sender};

/// A pending connection request from a subscriber.
#[derive(Debug)]
pub struct ConnectRequest {
    /// The subscriber's handshake (topic, ids, extension fields).
    pub handshake: Handshake,
    /// The publisher-side endpoint of the new connection.
    pub duplex: FrameDuplex,
    /// Channel on which the publisher returns its own handshake (or an
    /// error, e.g. when it is shutting down).
    pub reply: Sender<Result<Handshake, PubSubError>>,
}

/// The accept side held by a publisher.
pub type AcceptQueue = Receiver<ConnectRequest>;

/// The connect side stored at the master.
pub type ConnectHandle = Sender<ConnectRequest>;

/// Creates the control channel for a new in-process publisher.
pub fn control_channel() -> (ConnectHandle, AcceptQueue) {
    crossbeam::channel::unbounded()
}

/// Dials an in-process publisher: sends a connect request and waits for the
/// publisher's handshake.
///
/// # Errors
///
/// Returns [`PubSubError::Disconnected`] when the publisher is gone, or the
/// error the publisher chose to reply with.
pub fn dial(
    handle: &ConnectHandle,
    handshake: Handshake,
) -> Result<(FrameDuplex, Handshake), PubSubError> {
    dial_with(handle, handshake, None)
}

/// Like [`dial`], bounding the publisher→subscriber direction to
/// `forward_cap` frames (ROS `queue_size`; full queue drops).
///
/// # Errors
///
/// Same as [`dial`].
pub fn dial_with(
    handle: &ConnectHandle,
    handshake: Handshake,
    forward_cap: Option<usize>,
) -> Result<(FrameDuplex, Handshake), PubSubError> {
    // The pair's first endpoint owns the bounded forward direction; hand
    // that one to the publisher.
    let (theirs, mine) = duplex_pair_with(forward_cap);
    let (reply_tx, reply_rx) = crossbeam::channel::bounded(1);
    handle
        .send(ConnectRequest {
            handshake,
            duplex: theirs,
            reply: reply_tx,
        })
        .map_err(|_| PubSubError::Disconnected)?;
    let peer_handshake = reply_rx.recv().map_err(|_| PubSubError::Disconnected)??;
    Ok((mine, peer_handshake))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dial_and_accept() {
        let (handle, queue) = control_channel();
        let t = std::thread::spawn(move || {
            let req = queue.recv().unwrap();
            assert_eq!(req.handshake.get("subscriber"), Some("s1"));
            req.reply
                .send(Ok(Handshake::new().with("publisher", "p1")))
                .unwrap();
            // Echo one frame back.
            let frame = req.duplex.rx.recv().unwrap();
            req.duplex.send(frame);
        });
        let (duplex, peer) = dial(&handle, Handshake::new().with("subscriber", "s1")).unwrap();
        assert_eq!(peer.get("publisher"), Some("p1"));
        duplex.send(vec![42]);
        assert_eq!(duplex.rx.recv().unwrap(), vec![42]);
        t.join().unwrap();
    }

    #[test]
    fn dial_dead_publisher_errors() {
        let (handle, queue) = control_channel();
        drop(queue);
        assert_eq!(
            dial(&handle, Handshake::new()).unwrap_err(),
            PubSubError::Disconnected
        );
    }

    #[test]
    fn publisher_may_reject() {
        let (handle, queue) = control_channel();
        std::thread::spawn(move || {
            let req = queue.recv().unwrap();
            req.reply
                .send(Err(PubSubError::Malformed("handshake (rejected)")))
                .unwrap();
        });
        assert!(matches!(
            dial(&handle, Handshake::new()),
            Err(PubSubError::Malformed(_))
        ));
    }
}
