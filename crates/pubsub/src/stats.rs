//! Per-node traffic counters, used by the evaluation harnesses (message
//! counts for Figure 13/14, byte counts feeding the log-rate experiments).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Thread-safe counters shared by all connections of a node.
#[derive(Debug, Default, Clone)]
pub struct NodeStats {
    inner: Arc<Counters>,
}

#[derive(Debug, Default)]
struct Counters {
    published: AtomicU64,
    sent: AtomicU64,
    send_skipped: AtomicU64,
    send_dropped: AtomicU64,
    bytes_sent: AtomicU64,
    received: AtomicU64,
    recv_dropped: AtomicU64,
    bytes_received: AtomicU64,
    replies_sent: AtomicU64,
    returns_received: AtomicU64,
}

/// A point-in-time copy of the counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StatsSnapshot {
    /// Publications initiated by the application.
    pub published: u64,
    /// Per-connection message transmissions.
    pub sent: u64,
    /// Transmissions suppressed by `may_send` gating.
    pub send_skipped: u64,
    /// Transmissions dropped by a full bounded queue (`queue_size` QoS).
    pub send_dropped: u64,
    /// Body bytes sent (after interception, before framing).
    pub bytes_sent: u64,
    /// Messages delivered to application callbacks.
    pub received: u64,
    /// Messages dropped by the interceptor.
    pub recv_dropped: u64,
    /// Body bytes received (before interception).
    pub bytes_received: u64,
    /// Reverse-channel frames sent (ADLP acknowledgements).
    pub replies_sent: u64,
    /// Reverse-channel frames received.
    pub returns_received: u64,
}

/// Per-connection counters for one publisher→subscriber link, so QoS
/// drops and retries are attributable to a specific slow or faulty peer
/// (the node-wide [`NodeStats`] only aggregates).
#[derive(Debug, Default)]
pub struct LinkStats {
    sent: AtomicU64,
    send_dropped: AtomicU64,
    retries: AtomicU64,
}

/// A point-in-time copy of one link's counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LinkStatsSnapshot {
    /// Frames sent on this link.
    pub sent: u64,
    /// Frames dropped on this link by the bounded-queue QoS policy.
    pub send_dropped: u64,
    /// Frames retransmitted after an ack deadline expired.
    pub retries: u64,
}

impl LinkStats {
    /// Creates fresh counters.
    pub fn new() -> Self {
        Self::default()
    }

    pub(crate) fn record_send(&self) {
        self.sent.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_send_dropped(&self) {
        self.send_dropped.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_retry(&self) {
        self.retries.fetch_add(1, Ordering::Relaxed);
    }

    /// Copies the current counter values.
    pub fn snapshot(&self) -> LinkStatsSnapshot {
        LinkStatsSnapshot {
            sent: self.sent.load(Ordering::Relaxed),
            send_dropped: self.send_dropped.load(Ordering::Relaxed),
            retries: self.retries.load(Ordering::Relaxed),
        }
    }
}

impl NodeStats {
    /// Creates fresh counters.
    pub fn new() -> Self {
        Self::default()
    }

    pub(crate) fn record_publish(&self) {
        self.inner.published.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_send(&self, bytes: usize) {
        self.inner.sent.fetch_add(1, Ordering::Relaxed);
        self.inner.bytes_sent.fetch_add(bytes as u64, Ordering::Relaxed);
    }

    pub(crate) fn record_send_skipped(&self) {
        self.inner.send_skipped.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_send_dropped(&self) {
        self.inner.send_dropped.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_receive(&self, bytes: usize) {
        self.inner.received.fetch_add(1, Ordering::Relaxed);
        self.inner
            .bytes_received
            .fetch_add(bytes as u64, Ordering::Relaxed);
    }

    pub(crate) fn record_recv_dropped(&self) {
        self.inner.recv_dropped.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_reply(&self) {
        self.inner.replies_sent.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_return(&self) {
        self.inner.returns_received.fetch_add(1, Ordering::Relaxed);
    }

    /// Copies the current counter values.
    pub fn snapshot(&self) -> StatsSnapshot {
        let c = &*self.inner;
        StatsSnapshot {
            published: c.published.load(Ordering::Relaxed),
            sent: c.sent.load(Ordering::Relaxed),
            send_skipped: c.send_skipped.load(Ordering::Relaxed),
            send_dropped: c.send_dropped.load(Ordering::Relaxed),
            bytes_sent: c.bytes_sent.load(Ordering::Relaxed),
            received: c.received.load(Ordering::Relaxed),
            recv_dropped: c.recv_dropped.load(Ordering::Relaxed),
            bytes_received: c.bytes_received.load(Ordering::Relaxed),
            replies_sent: c.replies_sent.load(Ordering::Relaxed),
            returns_received: c.returns_received.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let s = NodeStats::new();
        s.record_publish();
        s.record_send(100);
        s.record_send(50);
        s.record_send_skipped();
        s.record_receive(10);
        s.record_recv_dropped();
        s.record_reply();
        s.record_return();
        let snap = s.snapshot();
        assert_eq!(snap.published, 1);
        assert_eq!(snap.sent, 2);
        assert_eq!(snap.bytes_sent, 150);
        assert_eq!(snap.send_skipped, 1);
        assert_eq!(snap.received, 1);
        assert_eq!(snap.bytes_received, 10);
        assert_eq!(snap.recv_dropped, 1);
        assert_eq!(snap.replies_sent, 1);
        assert_eq!(snap.returns_received, 1);
    }

    #[test]
    fn clones_share_state() {
        let s = NodeStats::new();
        let t = s.clone();
        s.record_publish();
        assert_eq!(t.snapshot().published, 1);
    }
}
