//! Nodes, publishers and subscriptions.
//!
//! A [`Node`] is a software component (`c_i` in the paper). It advertises
//! topics (outputs `O_i`) and subscribes to topics (inputs `I_i`). All
//! transport-layer behavior — signing, acknowledgement, gating — is injected
//! via the node's [`LinkInterceptor`], so applications written against this
//! API are unaware of whether ADLP is active (the paper's "transparent to
//! the application layer" property).

use crate::clock::{Clock, SystemClock};
use crate::interceptor::{ConnectionInfo, LinkInterceptor, NoopInterceptor};
use crate::master::{Contact, Master};
use crate::message::{Header, Message};
use crate::stats::NodeStats;
use crate::transport::{inproc, tcp, FrameDuplex};
use crate::types::{NodeId, Topic};
use crate::wire::Handshake;
use crate::PubSubError;
use parking_lot::Mutex;
use std::net::SocketAddr;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::Duration;

/// Which transport a node's publishers use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TransportKind {
    /// Crossbeam channels within the process (fast, default).
    #[default]
    InProc,
    /// Real TCP sockets on localhost (like TCPROS).
    Tcp,
}

/// Per-subscription quality-of-service options.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SubscribeOptions {
    /// Bounds the publisher→subscriber queue to this many frames (ROS
    /// `queue_size`); a full queue drops new frames at the publisher.
    /// `None` = unbounded.
    pub queue_size: Option<usize>,
}

impl SubscribeOptions {
    /// Unbounded subscription (the default).
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the queue bound.
    pub fn with_queue_size(mut self, n: usize) -> Self {
        self.queue_size = Some(n);
        self
    }
}

/// Configures and registers a [`Node`].
///
/// # Example
///
/// ```
/// use adlp_pubsub::{Master, NodeBuilder, SystemClock};
/// use std::sync::Arc;
///
/// let master = Master::new();
/// let node = NodeBuilder::new("planner")
///     .clock(Arc::new(SystemClock))
///     .build(&master)?;
/// assert_eq!(node.id().as_str(), "planner");
/// # Ok::<(), adlp_pubsub::PubSubError>(())
/// ```
#[derive(Debug)]
pub struct NodeBuilder {
    id: NodeId,
    clock: Arc<dyn Clock>,
    interceptor: Arc<dyn LinkInterceptor>,
    transport: TransportKind,
}

impl NodeBuilder {
    /// Starts building a node with the given id.
    pub fn new(id: impl Into<NodeId>) -> Self {
        NodeBuilder {
            id: id.into(),
            clock: Arc::new(SystemClock),
            interceptor: Arc::new(NoopInterceptor),
            transport: TransportKind::InProc,
        }
    }

    /// Sets the timestamp source.
    pub fn clock(mut self, clock: Arc<dyn Clock>) -> Self {
        self.clock = clock;
        self
    }

    /// Installs a transport-layer interceptor (e.g. ADLP).
    pub fn interceptor(mut self, interceptor: Arc<dyn LinkInterceptor>) -> Self {
        self.interceptor = interceptor;
        self
    }

    /// Selects the transport for topics this node publishes.
    pub fn transport(mut self, transport: TransportKind) -> Self {
        self.transport = transport;
        self
    }

    /// Registers the node with the master.
    ///
    /// # Errors
    ///
    /// Returns [`PubSubError::DuplicateNode`] for a taken id.
    pub fn build(self, master: &Master) -> Result<Node, PubSubError> {
        master.register_node(&self.id)?;
        Ok(Node {
            shared: Arc::new(NodeShared {
                id: self.id,
                master: master.clone(),
                clock: self.clock,
                interceptor: self.interceptor,
                stats: NodeStats::new(),
                transport: self.transport,
            }),
        })
    }
}

#[derive(Debug)]
struct NodeShared {
    id: NodeId,
    master: Master,
    clock: Arc<dyn Clock>,
    interceptor: Arc<dyn LinkInterceptor>,
    stats: NodeStats,
    transport: TransportKind,
}

/// A registered software component.
#[derive(Debug, Clone)]
pub struct Node {
    shared: Arc<NodeShared>,
}

impl Node {
    /// This node's id.
    pub fn id(&self) -> &NodeId {
        &self.shared.id
    }

    /// Traffic counters for this node.
    pub fn stats(&self) -> &NodeStats {
        &self.shared.stats
    }

    /// The node's clock.
    pub fn clock(&self) -> &Arc<dyn Clock> {
        &self.shared.clock
    }

    /// Claims `topic` and starts accepting subscribers.
    ///
    /// # Errors
    ///
    /// Returns [`PubSubError::TopicAlreadyPublished`] if the topic is owned,
    /// or transport errors when binding a TCP listener.
    pub fn advertise(&self, topic: impl Into<Topic>) -> Result<Publisher, PubSubError> {
        let topic = topic.into();
        let shared = Arc::new(PubShared {
            topic: topic.clone(),
            node: Arc::clone(&self.shared),
            conns: Mutex::new(Vec::new()),
            seq: AtomicU64::new(0),
            closed: AtomicBool::new(false),
            tcp_addr: Mutex::new(None),
        });
        match self.shared.transport {
            TransportKind::InProc => {
                let (handle, queue) = inproc::control_channel();
                self.shared
                    .master
                    .register_publisher(&topic, &self.shared.id, Contact::InProc(handle))?;
                let accept_shared = Arc::clone(&shared);
                thread::Builder::new()
                    .name(format!("pa-{}", self.shared.id))
                    .spawn(move || {
                        while let Ok(req) = queue.recv() {
                            if accept_shared.closed.load(Ordering::SeqCst) {
                                let _ = req.reply.send(Err(PubSubError::Disconnected));
                                continue;
                            }
                            let reply_hs = accept_shared.local_handshake();
                            match accept_shared.admit(req.handshake, req.duplex) {
                                Ok(()) => {
                                    let _ = req.reply.send(Ok(reply_hs));
                                }
                                Err(e) => {
                                    let _ = req.reply.send(Err(e));
                                }
                            }
                        }
                    })
                    .expect("spawn accept thread");
            }
            TransportKind::Tcp => {
                let listener = tcp::bind()?;
                let addr = listener.local_addr()?;
                *shared.tcp_addr.lock() = Some(addr);
                self.shared
                    .master
                    .register_publisher(&topic, &self.shared.id, Contact::Tcp(addr))?;
                let accept_shared = Arc::clone(&shared);
                thread::Builder::new()
                    .name(format!("pa-{}", self.shared.id))
                    .spawn(move || {
                        for stream in listener.incoming() {
                            if accept_shared.closed.load(Ordering::SeqCst) {
                                break;
                            }
                            let Ok(mut stream) = stream else { continue };
                            let reply_hs = accept_shared.local_handshake();
                            let Ok(peer_hs) = tcp::accept_handshake(&mut stream, &reply_hs) else {
                                continue;
                            };
                            let queue_size = peer_hs
                                .get("queue_size")
                                .and_then(|v| v.parse().ok());
                            let Ok(duplex) = tcp::bridge_stream_with(stream, queue_size) else {
                                continue;
                            };
                            let _ = accept_shared.admit(peer_hs, duplex);
                        }
                    })
                    .expect("spawn accept thread");
            }
        }
        Ok(Publisher { shared })
    }

    /// Connects to `topic`'s publisher; `callback` runs on the connection's
    /// reader thread for every delivered message.
    ///
    /// # Errors
    ///
    /// Returns [`PubSubError::NoSuchTopic`] when nothing publishes `topic`,
    /// or connection errors.
    pub fn subscribe<F>(
        &self,
        topic: impl Into<Topic>,
        callback: F,
    ) -> Result<Subscription, PubSubError>
    where
        F: Fn(Message) + Send + 'static,
    {
        self.subscribe_with(topic, SubscribeOptions::default(), callback)
    }

    /// Like [`Node::subscribe`], with explicit QoS options.
    ///
    /// # Errors
    ///
    /// Same as [`Node::subscribe`].
    pub fn subscribe_with<F>(
        &self,
        topic: impl Into<Topic>,
        options: SubscribeOptions,
        callback: F,
    ) -> Result<Subscription, PubSubError>
    where
        F: Fn(Message) + Send + 'static,
    {
        let topic = topic.into();
        let (pub_node, contact) = self
            .shared
            .master
            .lookup(&topic)
            .ok_or_else(|| PubSubError::NoSuchTopic(topic.clone()))?;

        let mut hs = Handshake::new()
            .with("topic", topic.as_str())
            .with("subscriber", self.shared.id.as_str());
        if let Some(q) = options.queue_size {
            hs = hs.with("queue_size", q.to_string());
        }
        for (k, v) in self.shared.interceptor.handshake_fields(&topic, false) {
            hs = hs.with(k, v);
        }

        let (duplex, peer_hs) = match contact {
            Contact::InProc(handle) => inproc::dial_with(&handle, hs, options.queue_size)?,
            Contact::Tcp(addr) => tcp::dial(addr, &hs)?,
        };

        let info = ConnectionInfo {
            topic,
            publisher: pub_node,
            subscriber: self.shared.id.clone(),
            peer_fields: peer_hs,
        };
        self.shared.interceptor.on_connect(&info, false);

        let closed = Arc::new(AtomicBool::new(false));
        let reader_closed = Arc::clone(&closed);
        let node_shared = Arc::clone(&self.shared);
        let reader_info = info.clone();
        let handle = thread::Builder::new()
            .name(format!("sr-{}", reader_info.subscriber))
            .spawn(move || {
                loop {
                    let body = match duplex.rx.recv_timeout(Duration::from_millis(50)) {
                        Ok(b) => b,
                        Err(crossbeam::channel::RecvTimeoutError::Timeout) => {
                            if reader_closed.load(Ordering::SeqCst) {
                                return;
                            }
                            continue;
                        }
                        Err(crossbeam::channel::RecvTimeoutError::Disconnected) => return,
                    };
                    if reader_closed.load(Ordering::SeqCst) {
                        return;
                    }
                    node_shared.stats.record_receive(body.len());
                    let outcome = node_shared.interceptor.on_recv(&reader_info, body);
                    if let Some(reply) = outcome.reply {
                        if duplex.send(reply) {
                            node_shared.stats.record_reply();
                        }
                    }
                    match outcome.deliver {
                        Some(body) => match Message::decode(&body) {
                            Ok(msg) => callback(msg),
                            Err(_) => node_shared.stats.record_recv_dropped(),
                        },
                        None => node_shared.stats.record_recv_dropped(),
                    }
                }
            })
            .expect("spawn subscriber thread");

        Ok(Subscription {
            info,
            closed,
            handle: Some(handle),
        })
    }

    /// Subscribes and returns a bounded message queue instead of running a
    /// callback — for applications that prefer polling (e.g. a control
    /// loop draining the latest sensor frame).
    ///
    /// The returned [`Subscription`] must be kept alive; dropping it stops
    /// delivery.
    ///
    /// # Errors
    ///
    /// Same as [`Node::subscribe`].
    pub fn subscribe_queue(
        &self,
        topic: impl Into<Topic>,
        options: SubscribeOptions,
    ) -> Result<(Subscription, crossbeam::channel::Receiver<Message>), PubSubError> {
        let (tx, rx) = match options.queue_size {
            Some(cap) => crossbeam::channel::bounded(cap.max(1)),
            None => crossbeam::channel::unbounded(),
        };
        let sub = self.subscribe_with(topic, options, move |msg| {
            // Bounded + full → drop the message (queue_size semantics).
            let _ = tx.try_send(msg);
        })?;
        Ok((sub, rx))
    }

    /// Deregisters the node id from the master (publishers must be closed
    /// separately).
    pub fn shutdown(&self) {
        self.shared.master.unregister_node(&self.shared.id);
    }
}

#[derive(Debug)]
struct PubShared {
    topic: Topic,
    node: Arc<NodeShared>,
    conns: Mutex<Vec<Arc<PubConn>>>,
    seq: AtomicU64,
    closed: AtomicBool,
    tcp_addr: Mutex<Option<SocketAddr>>,
}

#[derive(Debug)]
struct PubConn {
    info: ConnectionInfo,
    duplex: FrameDuplex,
    alive: AtomicBool,
}

impl PubShared {
    fn local_handshake(&self) -> Handshake {
        let mut hs = Handshake::new()
            .with("topic", self.topic.as_str())
            .with("publisher", self.node.id.as_str());
        for (k, v) in self.node.interceptor.handshake_fields(&self.topic, true) {
            hs = hs.with(k, v);
        }
        hs
    }

    /// Validates a subscriber handshake and installs the connection.
    fn admit(self: &Arc<Self>, peer_hs: Handshake, duplex: FrameDuplex) -> Result<(), PubSubError> {
        if peer_hs.get("topic") != Some(self.topic.as_str()) {
            return Err(PubSubError::Malformed("handshake (topic mismatch)"));
        }
        let subscriber = peer_hs
            .get("subscriber")
            .ok_or(PubSubError::Malformed("handshake (missing subscriber)"))?;
        let info = ConnectionInfo {
            topic: self.topic.clone(),
            publisher: self.node.id.clone(),
            subscriber: NodeId::new(subscriber),
            peer_fields: peer_hs,
        };
        self.node.interceptor.on_connect(&info, true);
        let conn = Arc::new(PubConn {
            info,
            duplex,
            alive: AtomicBool::new(true),
        });

        // Reverse-channel reader: acknowledgement frames → interceptor.
        let ret_conn = Arc::clone(&conn);
        let node = Arc::clone(&self.node);
        let closed = Arc::clone(self);
        thread::Builder::new()
            .name(format!("pr-{}", node.id))
            .spawn(move || {
                loop {
                    let frame = match ret_conn
                        .duplex
                        .rx
                        .recv_timeout(Duration::from_millis(50))
                    {
                        Ok(f) => f,
                        Err(crossbeam::channel::RecvTimeoutError::Timeout) => {
                            if closed.closed.load(Ordering::SeqCst)
                                || !ret_conn.alive.load(Ordering::SeqCst)
                            {
                                return;
                            }
                            continue;
                        }
                        Err(crossbeam::channel::RecvTimeoutError::Disconnected) => {
                            ret_conn.alive.store(false, Ordering::SeqCst);
                            return;
                        }
                    };
                    node.stats.record_return();
                    node.interceptor.on_return(&ret_conn.info, frame);
                }
            })
            .expect("spawn return reader");

        self.conns.lock().push(conn);
        Ok(())
    }
}

/// Outcome of one [`Publisher::publish`] call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PublishReport {
    /// Sequence number assigned to this publication.
    pub seq: u64,
    /// Timestamp stamped into the header.
    pub stamp_ns: u64,
    /// Connections the message was sent on.
    pub sent: usize,
    /// Connections skipped by `may_send` gating (ADLP's unacknowledged-
    /// message penalty).
    pub skipped: usize,
}

/// The sending half of a topic.
#[derive(Debug)]
pub struct Publisher {
    shared: Arc<PubShared>,
}

impl Publisher {
    /// The topic this publisher owns.
    pub fn topic(&self) -> &Topic {
        &self.shared.topic
    }

    /// Number of live subscriber connections.
    pub fn connection_count(&self) -> usize {
        self.shared
            .conns
            .lock()
            .iter()
            .filter(|c| c.alive.load(Ordering::SeqCst))
            .count()
    }

    /// Blocks until at least `n` subscribers are connected or `timeout`
    /// elapses; returns whether the target was reached.
    pub fn wait_for_subscribers(&self, n: usize, timeout: Duration) -> bool {
        let deadline = std::time::Instant::now() + timeout;
        while self.connection_count() < n {
            if std::time::Instant::now() > deadline {
                return false;
            }
            thread::sleep(Duration::from_millis(1));
        }
        true
    }

    /// Publishes `payload` to all connected subscribers.
    ///
    /// The header (sequence number + timestamp) is stamped here; the node's
    /// interceptor may transform the body per connection (ADLP appends the
    /// signature — computed once per publication, not per subscriber) and may
    /// gate individual connections.
    ///
    /// # Errors
    ///
    /// Returns [`PubSubError::Disconnected`] after [`Publisher::close`].
    pub fn publish(&self, payload: &[u8]) -> Result<PublishReport, PubSubError> {
        let s = &self.shared;
        if s.closed.load(Ordering::SeqCst) {
            return Err(PubSubError::Disconnected);
        }
        let seq = s.seq.fetch_add(1, Ordering::SeqCst) + 1;
        let stamp_ns = s.node.clock.now_ns();
        let msg = Message::new(Header { seq, stamp_ns }, payload.to_vec());
        let body = msg.encode();
        s.node.stats.record_publish();

        let conns: Vec<Arc<PubConn>> = s.conns.lock().clone();
        let mut sent = 0;
        let mut skipped = 0;
        for conn in &conns {
            if !conn.alive.load(Ordering::SeqCst) {
                continue;
            }
            if !s.node.interceptor.may_send(&conn.info) {
                s.node.stats.record_send_skipped();
                skipped += 1;
                continue;
            }
            let out_body = s.node.interceptor.on_send(&conn.info, body.clone());
            let len = out_body.len();
            match conn.duplex.try_send(out_body) {
                crate::transport::SendOutcome::Sent => {
                    s.node.stats.record_send(len);
                    sent += 1;
                }
                crate::transport::SendOutcome::Dropped => {
                    s.node.stats.record_send_dropped();
                }
                crate::transport::SendOutcome::Disconnected => {
                    conn.alive.store(false, Ordering::SeqCst);
                }
            }
        }
        // Drop dead connections.
        if conns.iter().any(|c| !c.alive.load(Ordering::SeqCst)) {
            s.conns.lock().retain(|c| c.alive.load(Ordering::SeqCst));
        }
        Ok(PublishReport {
            seq,
            stamp_ns,
            sent,
            skipped,
        })
    }

    /// Stops accepting subscribers, releases the topic, and severs all
    /// connections.
    pub fn close(&self) {
        let s = &self.shared;
        if s.closed.swap(true, Ordering::SeqCst) {
            return;
        }
        s.node.master.unregister_publisher(&s.topic, &s.node.id);
        // Wake a blocked TCP accept loop so it can observe `closed`.
        if let Some(addr) = *s.tcp_addr.lock() {
            let _ = std::net::TcpStream::connect_timeout(&addr, Duration::from_millis(100));
        }
        s.conns.lock().clear();
    }
}

impl Drop for Publisher {
    fn drop(&mut self) {
        self.close();
    }
}

/// A live subscription; dropping it (or calling [`Subscription::close`])
/// stops the reader thread.
#[derive(Debug)]
pub struct Subscription {
    info: ConnectionInfo,
    closed: Arc<AtomicBool>,
    handle: Option<thread::JoinHandle<()>>,
}

impl Subscription {
    /// Connection facts (topic, publisher, peer handshake fields).
    pub fn info(&self) -> &ConnectionInfo {
        &self.info
    }

    /// Stops the reader thread and waits for it to exit.
    pub fn close(&mut self) {
        self.closed.store(true, Ordering::SeqCst);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

impl Drop for Subscription {
    fn drop(&mut self) {
        self.close();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::ManualClock;
    use std::sync::atomic::AtomicUsize;

    fn wait_until(pred: impl Fn() -> bool) {
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while !pred() {
            assert!(std::time::Instant::now() < deadline, "timed out");
            thread::sleep(Duration::from_millis(2));
        }
    }

    #[test]
    fn single_pub_single_sub_inproc() {
        let master = Master::new();
        let p = NodeBuilder::new("cam").build(&master).unwrap();
        let s = NodeBuilder::new("det").build(&master).unwrap();
        let publisher = p.advertise("image").unwrap();

        let got = Arc::new(Mutex::new(Vec::new()));
        let got2 = Arc::clone(&got);
        let _sub = s
            .subscribe("image", move |m| got2.lock().push((m.header.seq, m.payload.to_vec())))
            .unwrap();

        publisher.publish(b"frame-a").unwrap();
        publisher.publish(b"frame-b").unwrap();
        wait_until(|| got.lock().len() == 2);
        let msgs = got.lock();
        assert_eq!(msgs[0], (1, b"frame-a".to_vec()));
        assert_eq!(msgs[1], (2, b"frame-b".to_vec()));
    }

    #[test]
    fn multiple_subscribers_each_get_a_copy() {
        let master = Master::new();
        let p = NodeBuilder::new("lidar").build(&master).unwrap();
        let publisher = p.advertise("scan").unwrap();
        let count = Arc::new(AtomicUsize::new(0));
        let mut subs = Vec::new();
        for i in 0..4 {
            let s = NodeBuilder::new(format!("sub{i}")).build(&master).unwrap();
            let c = Arc::clone(&count);
            subs.push((
                s.clone(),
                s.subscribe("scan", move |_| {
                    c.fetch_add(1, Ordering::SeqCst);
                })
                .unwrap(),
            ));
        }
        assert!(publisher.wait_for_subscribers(4, Duration::from_secs(2)));
        let report = publisher.publish(&[0u8; 100]).unwrap();
        assert_eq!(report.sent, 4);
        wait_until(|| count.load(Ordering::SeqCst) == 4);
    }

    #[test]
    fn subscribe_unknown_topic_fails() {
        let master = Master::new();
        let n = NodeBuilder::new("n").build(&master).unwrap();
        assert!(matches!(
            n.subscribe("nope", |_| {}),
            Err(PubSubError::NoSuchTopic(_))
        ));
    }

    #[test]
    fn duplicate_topic_rejected_across_nodes() {
        let master = Master::new();
        let a = NodeBuilder::new("a").build(&master).unwrap();
        let b = NodeBuilder::new("b").build(&master).unwrap();
        let _pa = a.advertise("t").unwrap();
        assert!(matches!(
            b.advertise("t"),
            Err(PubSubError::TopicAlreadyPublished(_))
        ));
    }

    #[test]
    fn close_releases_topic_for_readvertise() {
        let master = Master::new();
        let a = NodeBuilder::new("a").build(&master).unwrap();
        let pa = a.advertise("t").unwrap();
        pa.close();
        assert!(pa.publish(b"x").is_err());
        let b = NodeBuilder::new("b").build(&master).unwrap();
        let _pb = b.advertise("t").unwrap();
    }

    #[test]
    fn manual_clock_stamps_headers() {
        let master = Master::new();
        let clock = ManualClock::new(7_000);
        let p = NodeBuilder::new("p")
            .clock(Arc::new(clock))
            .build(&master)
            .unwrap();
        let publisher = p.advertise("t").unwrap();
        let s = NodeBuilder::new("s").build(&master).unwrap();
        let stamps = Arc::new(Mutex::new(Vec::new()));
        let st = Arc::clone(&stamps);
        let _sub = s.subscribe("t", move |m| st.lock().push(m.header.stamp_ns)).unwrap();
        publisher.publish(b"x").unwrap();
        wait_until(|| !stamps.lock().is_empty());
        assert!(stamps.lock()[0] >= 7_000);
    }

    #[test]
    fn tcp_transport_end_to_end() {
        let master = Master::new();
        let p = NodeBuilder::new("cam")
            .transport(TransportKind::Tcp)
            .build(&master)
            .unwrap();
        let publisher = p.advertise("image").unwrap();
        let s = NodeBuilder::new("det").build(&master).unwrap();
        let got = Arc::new(Mutex::new(Vec::new()));
        let got2 = Arc::clone(&got);
        let _sub = s
            .subscribe("image", move |m| got2.lock().push(m.payload.len()))
            .unwrap();
        publisher.publish(&vec![9u8; 50_000]).unwrap();
        wait_until(|| !got.lock().is_empty());
        assert_eq!(got.lock()[0], 50_000);
    }

    #[test]
    fn bounded_queue_drops_when_subscriber_stalls() {
        let master = Master::new();
        let p = NodeBuilder::new("p").build(&master).unwrap();
        let s = NodeBuilder::new("s").build(&master).unwrap();
        let publisher = p.advertise("t").unwrap();
        // The callback blocks until released, so the bounded queue fills
        // and further sends drop at the publisher.
        let gate = Arc::new((Mutex::new(false), parking_lot::Condvar::new()));
        let gate2 = Arc::clone(&gate);
        let _sub = s
            .subscribe_with(
                "t",
                SubscribeOptions::new().with_queue_size(2),
                move |_| {
                    let (lock, cvar) = &*gate2;
                    let mut released = lock.lock();
                    while !*released {
                        cvar.wait(&mut released);
                    }
                },
            )
            .unwrap();
        // 1 in-callback + 2 queued; everything beyond drops.
        for _ in 0..10 {
            publisher.publish(&[0u8; 8]).unwrap();
        }
        wait_until(|| p.stats().snapshot().send_dropped > 0);
        let snap = p.stats().snapshot();
        assert!(snap.sent <= 4, "sent {} exceeds queue bound", snap.sent);
        assert!(snap.send_dropped >= 6);
        // Release the subscriber so teardown is clean.
        let (lock, cvar) = &*gate;
        *lock.lock() = true;
        cvar.notify_all();
    }

    #[test]
    fn polled_subscription_delivers_messages() {
        let master = Master::new();
        let p = NodeBuilder::new("p").build(&master).unwrap();
        let s = NodeBuilder::new("s").build(&master).unwrap();
        let publisher = p.advertise("t").unwrap();
        let (_sub, rx) = s
            .subscribe_queue("t", SubscribeOptions::new().with_queue_size(8))
            .unwrap();
        publisher.publish(b"a").unwrap();
        publisher.publish(b"b").unwrap();
        let m1 = rx.recv_timeout(Duration::from_secs(5)).unwrap();
        let m2 = rx.recv_timeout(Duration::from_secs(5)).unwrap();
        assert_eq!(m1.payload.as_ref(), b"a");
        assert_eq!(m2.payload.as_ref(), b"b");
        assert_eq!(m2.header.seq, 2);
    }

    #[test]
    fn stats_count_traffic() {
        let master = Master::new();
        let p = NodeBuilder::new("p").build(&master).unwrap();
        let s = NodeBuilder::new("s").build(&master).unwrap();
        let publisher = p.advertise("t").unwrap();
        let _sub = s.subscribe("t", |_| {}).unwrap();
        publisher.publish(&[0u8; 10]).unwrap();
        wait_until(|| s.stats().snapshot().received == 1);
        let ps = p.stats().snapshot();
        assert_eq!(ps.published, 1);
        assert_eq!(ps.sent, 1);
        assert_eq!(ps.bytes_sent, 26); // 16-byte header + 10-byte payload
        assert_eq!(s.stats().snapshot().bytes_received, 26);
    }
}
