//! Nodes, publishers and subscriptions.
//!
//! A [`Node`] is a software component (`c_i` in the paper). It advertises
//! topics (outputs `O_i`) and subscribes to topics (inputs `I_i`). All
//! transport-layer behavior — signing, acknowledgement, gating — is injected
//! via the node's [`LinkInterceptor`], so applications written against this
//! API are unaware of whether ADLP is active (the paper's "transparent to
//! the application layer" property).

use crate::clock::{Clock, SystemClock};
use crate::interceptor::{ConnectionInfo, LinkInterceptor, NoopInterceptor};
use crate::master::{Contact, Master};
use crate::message::{Header, Message};
use crate::resilience::{LinkEvent, LinkHealth, ResilienceConfig};
use crate::stats::{LinkStats, LinkStatsSnapshot, NodeStats};
use crate::transport::faults::{FaultConfig, FaultStats, FaultyTransport};
use crate::transport::{inproc, tcp, FrameDuplex};
use crate::types::{NodeId, Topic};
use crate::wire::Handshake;
use crate::PubSubError;
use parking_lot::Mutex;
use std::net::SocketAddr;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

/// Which transport a node's publishers use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TransportKind {
    /// Crossbeam channels within the process (fast, default).
    #[default]
    InProc,
    /// Real TCP sockets on localhost (like TCPROS).
    Tcp,
}

/// Per-subscription quality-of-service options.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SubscribeOptions {
    /// Bounds the publisher→subscriber queue to this many frames (ROS
    /// `queue_size`); a full queue drops new frames at the publisher.
    /// `None` = unbounded.
    pub queue_size: Option<usize>,
}

impl SubscribeOptions {
    /// Unbounded subscription (the default).
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the queue bound.
    pub fn with_queue_size(mut self, n: usize) -> Self {
        self.queue_size = Some(n);
        self
    }
}

/// Configures and registers a [`Node`].
///
/// # Example
///
/// ```
/// use adlp_pubsub::{Master, NodeBuilder, SystemClock};
/// use std::sync::Arc;
///
/// let master = Master::new();
/// let node = NodeBuilder::new("planner")
///     .clock(Arc::new(SystemClock))
///     .build(&master)?;
/// assert_eq!(node.id().as_str(), "planner");
/// # Ok::<(), adlp_pubsub::PubSubError>(())
/// ```
#[derive(Debug)]
pub struct NodeBuilder {
    id: NodeId,
    clock: Arc<dyn Clock>,
    interceptor: Arc<dyn LinkInterceptor>,
    transport: TransportKind,
    resilience: ResilienceConfig,
    faults: Option<FaultConfig>,
}

impl NodeBuilder {
    /// Starts building a node with the given id.
    pub fn new(id: impl Into<NodeId>) -> Self {
        NodeBuilder {
            id: id.into(),
            clock: Arc::new(SystemClock),
            interceptor: Arc::new(NoopInterceptor),
            transport: TransportKind::InProc,
            resilience: ResilienceConfig::default(),
            faults: None,
        }
    }

    /// Sets the timestamp source.
    pub fn clock(mut self, clock: Arc<dyn Clock>) -> Self {
        self.clock = clock;
        self
    }

    /// Installs a transport-layer interceptor (e.g. ADLP).
    pub fn interceptor(mut self, interceptor: Arc<dyn LinkInterceptor>) -> Self {
        self.interceptor = interceptor;
        self
    }

    /// Selects the transport for topics this node publishes.
    pub fn transport(mut self, transport: TransportKind) -> Self {
        self.transport = transport;
        self
    }

    /// Configures ack deadlines, retries and I/O timeouts for links this
    /// node publishes on. The default config is inert, preserving the
    /// paper's withhold-until-acked semantics.
    pub fn resilience(mut self, resilience: ResilienceConfig) -> Self {
        self.resilience = resilience;
        self
    }

    /// Installs deterministic fault injection on every outgoing link this
    /// node publishes on (testing/simulation only).
    pub fn faults(mut self, faults: FaultConfig) -> Self {
        self.faults = Some(faults);
        self
    }

    /// Registers the node with the master.
    ///
    /// # Errors
    ///
    /// Returns [`PubSubError::DuplicateNode`] for a taken id.
    pub fn build(self, master: &Master) -> Result<Node, PubSubError> {
        master.register_node(&self.id)?;
        Ok(Node {
            shared: Arc::new(NodeShared {
                id: self.id,
                master: master.clone(),
                clock: self.clock,
                interceptor: self.interceptor,
                stats: NodeStats::new(),
                transport: self.transport,
                resilience: self.resilience,
                faults: self.faults,
                fault_stats: Arc::new(FaultStats::default()),
                events: Mutex::new(Vec::new()),
            }),
        })
    }
}

#[derive(Debug)]
struct NodeShared {
    id: NodeId,
    master: Master,
    clock: Arc<dyn Clock>,
    interceptor: Arc<dyn LinkInterceptor>,
    stats: NodeStats,
    transport: TransportKind,
    resilience: ResilienceConfig,
    faults: Option<FaultConfig>,
    fault_stats: Arc<FaultStats>,
    events: Mutex<Vec<LinkEvent>>,
}

impl NodeShared {
    fn push_event(&self, event: LinkEvent) {
        self.events.lock().push(event);
    }
}

/// FNV-1a over a node/topic pair — a stable per-link salt for fault
/// injection and backoff jitter, so each link gets an independent but
/// reproducible random stream.
fn link_salt(topic: &Topic, subscriber: &NodeId) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in topic.as_str().bytes().chain([0u8]).chain(subscriber.as_str().bytes()) {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// A registered software component.
#[derive(Debug, Clone)]
pub struct Node {
    shared: Arc<NodeShared>,
}

impl Node {
    /// This node's id.
    pub fn id(&self) -> &NodeId {
        &self.shared.id
    }

    /// Traffic counters for this node.
    pub fn stats(&self) -> &NodeStats {
        &self.shared.stats
    }

    /// The node's clock.
    pub fn clock(&self) -> &Arc<dyn Clock> {
        &self.shared.clock
    }

    /// Drains the link-health events (ack timeouts, degradations,
    /// recoveries, teardowns) recorded since the last call.
    pub fn take_events(&self) -> Vec<LinkEvent> {
        std::mem::take(&mut *self.shared.events.lock())
    }

    /// Counters for injected faults across all of this node's links
    /// (all zero unless [`NodeBuilder::faults`] was configured).
    pub fn fault_stats(&self) -> &Arc<FaultStats> {
        &self.shared.fault_stats
    }

    /// Claims `topic` and starts accepting subscribers.
    ///
    /// # Errors
    ///
    /// Returns [`PubSubError::TopicAlreadyPublished`] if the topic is owned,
    /// or transport errors when binding a TCP listener.
    pub fn advertise(&self, topic: impl Into<Topic>) -> Result<Publisher, PubSubError> {
        let topic = topic.into();
        let shared = Arc::new(PubShared {
            topic: topic.clone(),
            node: Arc::clone(&self.shared),
            conns: Mutex::new(Vec::new()),
            seq: AtomicU64::new(0),
            closed: AtomicBool::new(false),
            tcp_addr: Mutex::new(None),
        });
        match self.shared.transport {
            TransportKind::InProc => {
                let (handle, queue) = inproc::control_channel();
                self.shared
                    .master
                    .register_publisher(&topic, &self.shared.id, Contact::InProc(handle))?;
                let accept_shared = Arc::clone(&shared);
                thread::Builder::new()
                    .name(format!("pa-{}", self.shared.id))
                    .spawn(move || {
                        while let Ok(req) = queue.recv() {
                            if accept_shared.closed.load(Ordering::SeqCst) {
                                // adlp-lint: allow(discarded-fallible) — the connecting peer may already have given up waiting
                                let _ = req.reply.send(Err(PubSubError::Disconnected));
                                continue;
                            }
                            let reply_hs = accept_shared.local_handshake();
                            match accept_shared.admit(req.handshake, req.duplex) {
                                Ok(()) => {
                                    // adlp-lint: allow(discarded-fallible) — the connecting peer may already have given up waiting
                                    let _ = req.reply.send(Ok(reply_hs));
                                }
                                Err(e) => {
                                    // adlp-lint: allow(discarded-fallible) — the connecting peer may already have given up waiting
                                    let _ = req.reply.send(Err(e));
                                }
                            }
                        }
                    })
                    .map_err(|e| PubSubError::Io(format!("spawn accept thread: {e}")))?;
            }
            TransportKind::Tcp => {
                let listener = tcp::bind()?;
                let addr = listener.local_addr()?;
                *shared.tcp_addr.lock() = Some(addr);
                self.shared
                    .master
                    .register_publisher(&topic, &self.shared.id, Contact::Tcp(addr))?;
                let accept_shared = Arc::clone(&shared);
                thread::Builder::new()
                    .name(format!("pa-{}", self.shared.id))
                    .spawn(move || {
                        for stream in listener.incoming() {
                            if accept_shared.closed.load(Ordering::SeqCst) {
                                break;
                            }
                            let Ok(mut stream) = stream else { continue };
                            let reply_hs = accept_shared.local_handshake();
                            let Ok(peer_hs) = tcp::accept_handshake(&mut stream, &reply_hs) else {
                                continue;
                            };
                            let queue_size = peer_hs
                                .get("queue_size")
                                .and_then(|v| v.parse().ok());
                            let timeouts = tcp::SocketTimeouts {
                                read: accept_shared.node.resilience.io_read_timeout,
                                write: accept_shared.node.resilience.io_write_timeout,
                            };
                            let Ok(duplex) =
                                tcp::bridge_stream_tuned(stream, queue_size, timeouts)
                            else {
                                continue;
                            };
                            // adlp-lint: allow(discarded-fallible) — a peer rejected for a malformed handshake simply isn't admitted; there is no caller to report to on the accept thread
                            let _ = accept_shared.admit(peer_hs, duplex);
                        }
                    })
                    .map_err(|e| PubSubError::Io(format!("spawn accept thread: {e}")))?;
            }
        }
        Ok(Publisher { shared })
    }

    /// Connects to `topic`'s publisher; `callback` runs on the connection's
    /// reader thread for every delivered message.
    ///
    /// # Errors
    ///
    /// Returns [`PubSubError::NoSuchTopic`] when nothing publishes `topic`,
    /// or connection errors.
    pub fn subscribe<F>(
        &self,
        topic: impl Into<Topic>,
        callback: F,
    ) -> Result<Subscription, PubSubError>
    where
        F: Fn(Message) + Send + 'static,
    {
        self.subscribe_with(topic, SubscribeOptions::default(), callback)
    }

    /// Like [`Node::subscribe`], with explicit QoS options.
    ///
    /// # Errors
    ///
    /// Same as [`Node::subscribe`].
    pub fn subscribe_with<F>(
        &self,
        topic: impl Into<Topic>,
        options: SubscribeOptions,
        callback: F,
    ) -> Result<Subscription, PubSubError>
    where
        F: Fn(Message) + Send + 'static,
    {
        let topic = topic.into();
        let (pub_node, contact) = self
            .shared
            .master
            .lookup(&topic)
            .ok_or_else(|| PubSubError::NoSuchTopic(topic.clone()))?;

        let mut hs = Handshake::new()
            .with("topic", topic.as_str())
            .with("subscriber", self.shared.id.as_str());
        if let Some(q) = options.queue_size {
            hs = hs.with("queue_size", q.to_string());
        }
        for (k, v) in self.shared.interceptor.handshake_fields(&topic, false) {
            hs = hs.with(k, v);
        }

        let (duplex, peer_hs) = match contact {
            Contact::InProc(handle) => inproc::dial_with(&handle, hs, options.queue_size)?,
            Contact::Tcp(addr) => tcp::dial_tuned(
                addr,
                &hs,
                tcp::SocketTimeouts {
                    read: self.shared.resilience.io_read_timeout,
                    write: self.shared.resilience.io_write_timeout,
                },
            )?,
        };

        let info = ConnectionInfo {
            topic,
            publisher: pub_node,
            subscriber: self.shared.id.clone(),
            peer_fields: peer_hs,
        };
        self.shared.interceptor.on_connect(&info, false);

        let closed = Arc::new(AtomicBool::new(false));
        let reader_closed = Arc::clone(&closed);
        let node_shared = Arc::clone(&self.shared);
        let reader_info = info.clone();
        let handle = thread::Builder::new()
            .name(format!("sr-{}", reader_info.subscriber))
            .spawn(move || {
                loop {
                    let body = match duplex.rx.recv_timeout(Duration::from_millis(50)) {
                        Ok(b) => b,
                        Err(crossbeam::channel::RecvTimeoutError::Timeout) => {
                            if reader_closed.load(Ordering::SeqCst) {
                                return;
                            }
                            continue;
                        }
                        Err(crossbeam::channel::RecvTimeoutError::Disconnected) => return,
                    };
                    if reader_closed.load(Ordering::SeqCst) {
                        return;
                    }
                    node_shared.stats.record_receive(body.len());
                    let outcome = node_shared.interceptor.on_recv(&reader_info, body);
                    if let Some(reply) = outcome.reply {
                        if duplex.send(reply) {
                            node_shared.stats.record_reply();
                        }
                    }
                    match outcome.deliver {
                        Some(body) => match Message::decode(&body) {
                            Ok(msg) => callback(msg),
                            Err(_) => node_shared.stats.record_recv_dropped(),
                        },
                        None => node_shared.stats.record_recv_dropped(),
                    }
                }
            })
            .map_err(|e| PubSubError::Io(format!("spawn subscriber thread: {e}")))?;

        Ok(Subscription {
            info,
            closed,
            handle: Some(handle),
        })
    }

    /// Subscribes and returns a bounded message queue instead of running a
    /// callback — for applications that prefer polling (e.g. a control
    /// loop draining the latest sensor frame).
    ///
    /// The returned [`Subscription`] must be kept alive; dropping it stops
    /// delivery.
    ///
    /// # Errors
    ///
    /// Same as [`Node::subscribe`].
    pub fn subscribe_queue(
        &self,
        topic: impl Into<Topic>,
        options: SubscribeOptions,
    ) -> Result<(Subscription, crossbeam::channel::Receiver<Message>), PubSubError> {
        let (tx, rx) = match options.queue_size {
            Some(cap) => crossbeam::channel::bounded(cap.max(1)),
            None => crossbeam::channel::unbounded(),
        };
        let sub = self.subscribe_with(topic, options, move |msg| {
            // adlp-lint: allow(discarded-fallible) — bounded + full → drop the message; that is exactly queue_size backpressure semantics
            let _ = tx.try_send(msg);
        })?;
        Ok((sub, rx))
    }

    /// Deregisters the node id from the master (publishers must be closed
    /// separately).
    pub fn shutdown(&self) {
        self.shared.master.unregister_node(&self.shared.id);
    }
}

#[derive(Debug)]
struct PubShared {
    topic: Topic,
    node: Arc<NodeShared>,
    conns: Mutex<Vec<Arc<PubConn>>>,
    seq: AtomicU64,
    closed: AtomicBool,
    tcp_addr: Mutex<Option<SocketAddr>>,
}

const HEALTH_HEALTHY: u8 = 0;
const HEALTH_DEGRADED: u8 = 1;
const HEALTH_TORN_DOWN: u8 = 2;

/// The frame whose acknowledgement the publisher is currently waiting on
/// (only populated when `ResilienceConfig::ack_timeout` is set).
#[derive(Debug)]
struct AwaitState {
    seq: u64,
    frame: Vec<u8>,
    deadline: Instant,
    retries: u32,
}

#[derive(Debug)]
struct PubConn {
    info: ConnectionInfo,
    duplex: FrameDuplex,
    alive: AtomicBool,
    health: AtomicU8,
    salt: u64,
    link_stats: Arc<LinkStats>,
    awaiting: Mutex<Option<AwaitState>>,
}

impl PubConn {
    fn health(&self) -> LinkHealth {
        match self.health.load(Ordering::SeqCst) {
            HEALTH_HEALTHY => LinkHealth::Healthy,
            HEALTH_DEGRADED => LinkHealth::Degraded,
            _ => LinkHealth::TornDown,
        }
    }

    /// Closes the link exactly once: flags it dead, records the event, and
    /// lets the interceptor flush pending acks as evidence.
    fn tear_down(&self, node: &NodeShared) {
        self.alive.store(false, Ordering::SeqCst);
        if self.health.swap(HEALTH_TORN_DOWN, Ordering::SeqCst) != HEALTH_TORN_DOWN {
            node.push_event(LinkEvent::TornDown {
                topic: self.info.topic.clone(),
                subscriber: self.info.subscriber.clone(),
            });
            node.interceptor.on_disconnect(&self.info);
        }
    }

    /// A reverse frame arrived: the in-flight deadline is cancelled and a
    /// degraded link recovers. The interceptor still decides ack validity;
    /// liveness and accountability are separate concerns.
    fn note_return_progress(&self, node: &NodeShared) {
        *self.awaiting.lock() = None;
        if self
            .health
            .compare_exchange(
                HEALTH_DEGRADED,
                HEALTH_HEALTHY,
                Ordering::SeqCst,
                Ordering::SeqCst,
            )
            .is_ok()
        {
            node.push_event(LinkEvent::Recovered {
                topic: self.info.topic.clone(),
                subscriber: self.info.subscriber.clone(),
            });
        }
    }

    /// How long the reverse reader may block before the armed ack deadline
    /// (if any) needs attention. The idle tick is capped at the configured
    /// ack timeout: a publish can arm a deadline *while the reader is
    /// already blocked*, so sleeping longer than one timeout period would
    /// let that deadline slip unobserved past the ack's arrival.
    fn tick_wait(&self, node: &NodeShared) -> Duration {
        const IDLE_TICK: Duration = Duration::from_millis(50);
        let idle = node
            .resilience
            .ack_timeout
            .map_or(IDLE_TICK, |t| t.min(IDLE_TICK));
        match self.awaiting.lock().as_ref() {
            Some(state) => state
                .deadline
                .saturating_duration_since(Instant::now())
                .min(idle),
            None => idle,
        }
    }

    /// Called from the reverse-reader tick: if the in-flight ack is overdue,
    /// degrade the link and retry the frame, or tear the link down once
    /// retries are exhausted.
    fn check_ack_deadline(&self, node: &NodeShared) {
        let Some(timeout) = node.resilience.ack_timeout else {
            return;
        };
        let mut guard = self.awaiting.lock();
        let Some(state) = guard.as_mut() else { return };
        if Instant::now() < state.deadline {
            return;
        }
        let attempt = state.retries + 1;
        node.push_event(LinkEvent::AckTimeout {
            topic: self.info.topic.clone(),
            subscriber: self.info.subscriber.clone(),
            seq: state.seq,
            attempt,
        });
        if self
            .health
            .compare_exchange(
                HEALTH_HEALTHY,
                HEALTH_DEGRADED,
                Ordering::SeqCst,
                Ordering::SeqCst,
            )
            .is_ok()
        {
            node.push_event(LinkEvent::Degraded {
                topic: self.info.topic.clone(),
                subscriber: self.info.subscriber.clone(),
            });
        }
        if state.retries >= node.resilience.max_retries {
            *guard = None;
            drop(guard);
            self.tear_down(node);
            return;
        }
        state.retries = attempt;
        let frame = state.frame.clone();
        state.deadline = Instant::now() + timeout + node.resilience.backoff_for(attempt, self.salt);
        drop(guard);
        self.link_stats.record_retry();
        match self.duplex.try_send(frame) {
            crate::transport::SendOutcome::Sent => {}
            crate::transport::SendOutcome::Dropped => {
                self.link_stats.record_send_dropped();
                node.stats.record_send_dropped();
            }
            crate::transport::SendOutcome::Disconnected => self.tear_down(node),
        }
    }
}

impl PubShared {
    fn local_handshake(&self) -> Handshake {
        let mut hs = Handshake::new()
            .with("topic", self.topic.as_str())
            .with("publisher", self.node.id.as_str());
        for (k, v) in self.node.interceptor.handshake_fields(&self.topic, true) {
            hs = hs.with(k, v);
        }
        hs
    }

    /// Validates a subscriber handshake and installs the connection.
    fn admit(self: &Arc<Self>, peer_hs: Handshake, duplex: FrameDuplex) -> Result<(), PubSubError> {
        if peer_hs.get("topic") != Some(self.topic.as_str()) {
            return Err(PubSubError::Malformed("handshake (topic mismatch)"));
        }
        let subscriber = peer_hs
            .get("subscriber")
            .ok_or(PubSubError::Malformed("handshake (missing subscriber)"))?;
        let info = ConnectionInfo {
            topic: self.topic.clone(),
            publisher: self.node.id.clone(),
            subscriber: NodeId::new(subscriber),
            peer_fields: peer_hs,
        };
        self.node.interceptor.on_connect(&info, true);
        let salt = link_salt(&info.topic, &info.subscriber);
        let link_stats = Arc::new(LinkStats::new());

        // Interpose fault injection on the forward direction when asked to.
        let duplex = match &self.node.faults {
            Some(cfg) if !cfg.is_transparent() => {
                let qos_link = Arc::clone(&link_stats);
                let qos_node = self.node.stats.clone();
                FaultyTransport::wrap(
                    duplex,
                    cfg.clone(),
                    salt,
                    Arc::clone(&self.node.fault_stats),
                    move || {
                        qos_link.record_send_dropped();
                        qos_node.record_send_dropped();
                    },
                )
            }
            _ => duplex,
        };

        let conn = Arc::new(PubConn {
            info,
            duplex,
            alive: AtomicBool::new(true),
            health: AtomicU8::new(HEALTH_HEALTHY),
            salt,
            link_stats,
            awaiting: Mutex::new(None),
        });

        // Reverse-channel reader: acknowledgement frames → interceptor.
        // Its idle tick doubles as the ack-deadline clock when resilience
        // is active.
        let ret_conn = Arc::clone(&conn);
        let node = Arc::clone(&self.node);
        let closed = Arc::clone(self);
        thread::Builder::new()
            .name(format!("pr-{}", node.id))
            .spawn(move || {
                let resilient = node.resilience.is_active();
                loop {
                    let wait = if resilient {
                        ret_conn.tick_wait(&node)
                    } else {
                        Duration::from_millis(50)
                    };
                    let frame = match ret_conn.duplex.rx.recv_timeout(wait) {
                        Ok(f) => f,
                        Err(crossbeam::channel::RecvTimeoutError::Timeout) => {
                            if closed.closed.load(Ordering::SeqCst)
                                || !ret_conn.alive.load(Ordering::SeqCst)
                            {
                                return;
                            }
                            if resilient {
                                ret_conn.check_ack_deadline(&node);
                                if !ret_conn.alive.load(Ordering::SeqCst) {
                                    return;
                                }
                            }
                            continue;
                        }
                        Err(crossbeam::channel::RecvTimeoutError::Disconnected) => {
                            ret_conn.tear_down(&node);
                            return;
                        }
                    };
                    node.stats.record_return();
                    if resilient {
                        ret_conn.note_return_progress(&node);
                    }
                    node.interceptor.on_return(&ret_conn.info, frame);
                }
            })
            .map_err(|e| PubSubError::Io(format!("spawn return reader: {e}")))?;

        self.conns.lock().push(conn);
        Ok(())
    }
}

/// Outcome of one [`Publisher::publish`] call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PublishReport {
    /// Sequence number assigned to this publication.
    pub seq: u64,
    /// Timestamp stamped into the header.
    pub stamp_ns: u64,
    /// Connections the message was sent on.
    pub sent: usize,
    /// Connections skipped by `may_send` gating (ADLP's unacknowledged-
    /// message penalty).
    pub skipped: usize,
}

/// The sending half of a topic.
#[derive(Debug)]
pub struct Publisher {
    shared: Arc<PubShared>,
}

impl Publisher {
    /// The topic this publisher owns.
    pub fn topic(&self) -> &Topic {
        &self.shared.topic
    }

    /// Number of live subscriber connections.
    pub fn connection_count(&self) -> usize {
        self.shared
            .conns
            .lock()
            .iter()
            .filter(|c| c.alive.load(Ordering::SeqCst))
            .count()
    }

    /// Health of the link to `subscriber`, or `None` for an unknown peer
    /// (including links already pruned after teardown — the teardown is
    /// still visible as a [`LinkEvent::TornDown`] in [`Node::take_events`]).
    pub fn link_health(&self, subscriber: &NodeId) -> Option<LinkHealth> {
        self.shared
            .conns
            .lock()
            .iter()
            .find(|c| &c.info.subscriber == subscriber)
            .map(|c| c.health())
    }

    /// Per-link traffic snapshots (subscriber id, counters).
    pub fn link_stats(&self) -> Vec<(NodeId, LinkStatsSnapshot)> {
        self.shared
            .conns
            .lock()
            .iter()
            .map(|c| (c.info.subscriber.clone(), c.link_stats.snapshot()))
            .collect()
    }

    /// Subscribers whose links are currently degraded.
    pub fn degraded_links(&self) -> Vec<NodeId> {
        self.shared
            .conns
            .lock()
            .iter()
            .filter(|c| c.health() == LinkHealth::Degraded)
            .map(|c| c.info.subscriber.clone())
            .collect()
    }

    /// Blocks until at least `n` subscribers are connected or `timeout`
    /// elapses; returns whether the target was reached.
    pub fn wait_for_subscribers(&self, n: usize, timeout: Duration) -> bool {
        let deadline = std::time::Instant::now() + timeout;
        while self.connection_count() < n {
            if std::time::Instant::now() > deadline {
                return false;
            }
            thread::sleep(Duration::from_millis(1));
        }
        true
    }

    /// Publishes `payload` to all connected subscribers.
    ///
    /// The header (sequence number + timestamp) is stamped here; the node's
    /// interceptor may transform the body per connection (ADLP appends the
    /// signature — computed once per publication, not per subscriber) and may
    /// gate individual connections.
    ///
    /// # Errors
    ///
    /// Returns [`PubSubError::Disconnected`] after [`Publisher::close`].
    pub fn publish(&self, payload: &[u8]) -> Result<PublishReport, PubSubError> {
        let s = &self.shared;
        if s.closed.load(Ordering::SeqCst) {
            return Err(PubSubError::Disconnected);
        }
        let seq = s.seq.fetch_add(1, Ordering::SeqCst) + 1;
        let stamp_ns = s.node.clock.now_ns();
        let msg = Message::new(Header { seq, stamp_ns }, payload.to_vec());
        let body = msg.encode();
        s.node.stats.record_publish();

        let conns: Vec<Arc<PubConn>> = s.conns.lock().clone();
        let resilient = s.node.resilience.is_active();
        let mut sent = 0;
        let mut skipped = 0;
        for conn in &conns {
            if !conn.alive.load(Ordering::SeqCst) {
                continue;
            }
            if !s.node.interceptor.may_send(&conn.info) {
                s.node.stats.record_send_skipped();
                skipped += 1;
                continue;
            }
            let out_body = s.node.interceptor.on_send(&conn.info, body.clone());
            let len = out_body.len();
            // Arm the ack deadline before handing the frame to the duplex,
            // so a fast ack can never race an unarmed timer.
            if resilient {
                if let Some(timeout) = s.node.resilience.ack_timeout {
                    *conn.awaiting.lock() = Some(AwaitState {
                        seq,
                        frame: out_body.clone(),
                        deadline: Instant::now() + timeout,
                        retries: 0,
                    });
                }
            }
            match conn.duplex.try_send(out_body) {
                crate::transport::SendOutcome::Sent => {
                    s.node.stats.record_send(len);
                    conn.link_stats.record_send();
                    sent += 1;
                }
                crate::transport::SendOutcome::Dropped => {
                    s.node.stats.record_send_dropped();
                    conn.link_stats.record_send_dropped();
                    if resilient {
                        // Nothing in flight after a QoS drop.
                        *conn.awaiting.lock() = None;
                    }
                }
                crate::transport::SendOutcome::Disconnected => {
                    conn.tear_down(&s.node);
                }
            }
        }
        // Drop dead connections.
        if conns.iter().any(|c| !c.alive.load(Ordering::SeqCst)) {
            s.conns.lock().retain(|c| c.alive.load(Ordering::SeqCst));
        }
        Ok(PublishReport {
            seq,
            stamp_ns,
            sent,
            skipped,
        })
    }

    /// Stops accepting subscribers, releases the topic, and severs all
    /// connections.
    pub fn close(&self) {
        let s = &self.shared;
        if s.closed.swap(true, Ordering::SeqCst) {
            return;
        }
        s.node.master.unregister_publisher(&s.topic, &s.node.id);
        // Wake a blocked TCP accept loop so it can observe `closed`.
        if let Some(addr) = *s.tcp_addr.lock() {
            let _ = std::net::TcpStream::connect_timeout(&addr, Duration::from_millis(100));
        }
        s.conns.lock().clear();
    }
}

impl Drop for Publisher {
    fn drop(&mut self) {
        self.close();
    }
}

/// A live subscription; dropping it (or calling [`Subscription::close`])
/// stops the reader thread.
#[derive(Debug)]
pub struct Subscription {
    info: ConnectionInfo,
    closed: Arc<AtomicBool>,
    handle: Option<thread::JoinHandle<()>>,
}

impl Subscription {
    /// Connection facts (topic, publisher, peer handshake fields).
    pub fn info(&self) -> &ConnectionInfo {
        &self.info
    }

    /// Stops the reader thread and waits for it to exit.
    pub fn close(&mut self) {
        self.closed.store(true, Ordering::SeqCst);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

impl Drop for Subscription {
    fn drop(&mut self) {
        self.close();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::ManualClock;
    use std::sync::atomic::AtomicUsize;

    fn wait_until(pred: impl Fn() -> bool) {
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while !pred() {
            assert!(std::time::Instant::now() < deadline, "timed out");
            thread::sleep(Duration::from_millis(2));
        }
    }

    #[test]
    fn single_pub_single_sub_inproc() {
        let master = Master::new();
        let p = NodeBuilder::new("cam").build(&master).unwrap();
        let s = NodeBuilder::new("det").build(&master).unwrap();
        let publisher = p.advertise("image").unwrap();

        let got = Arc::new(Mutex::new(Vec::new()));
        let got2 = Arc::clone(&got);
        let _sub = s
            .subscribe("image", move |m| got2.lock().push((m.header.seq, m.payload.to_vec())))
            .unwrap();

        publisher.publish(b"frame-a").unwrap();
        publisher.publish(b"frame-b").unwrap();
        wait_until(|| got.lock().len() == 2);
        let msgs = got.lock();
        assert_eq!(msgs[0], (1, b"frame-a".to_vec()));
        assert_eq!(msgs[1], (2, b"frame-b".to_vec()));
    }

    #[test]
    fn multiple_subscribers_each_get_a_copy() {
        let master = Master::new();
        let p = NodeBuilder::new("lidar").build(&master).unwrap();
        let publisher = p.advertise("scan").unwrap();
        let count = Arc::new(AtomicUsize::new(0));
        let mut subs = Vec::new();
        for i in 0..4 {
            let s = NodeBuilder::new(format!("sub{i}")).build(&master).unwrap();
            let c = Arc::clone(&count);
            subs.push((
                s.clone(),
                s.subscribe("scan", move |_| {
                    c.fetch_add(1, Ordering::SeqCst);
                })
                .unwrap(),
            ));
        }
        assert!(publisher.wait_for_subscribers(4, Duration::from_secs(2)));
        let report = publisher.publish(&[0u8; 100]).unwrap();
        assert_eq!(report.sent, 4);
        wait_until(|| count.load(Ordering::SeqCst) == 4);
    }

    #[test]
    fn subscribe_unknown_topic_fails() {
        let master = Master::new();
        let n = NodeBuilder::new("n").build(&master).unwrap();
        assert!(matches!(
            n.subscribe("nope", |_| {}),
            Err(PubSubError::NoSuchTopic(_))
        ));
    }

    #[test]
    fn duplicate_topic_rejected_across_nodes() {
        let master = Master::new();
        let a = NodeBuilder::new("a").build(&master).unwrap();
        let b = NodeBuilder::new("b").build(&master).unwrap();
        let _pa = a.advertise("t").unwrap();
        assert!(matches!(
            b.advertise("t"),
            Err(PubSubError::TopicAlreadyPublished(_))
        ));
    }

    #[test]
    fn close_releases_topic_for_readvertise() {
        let master = Master::new();
        let a = NodeBuilder::new("a").build(&master).unwrap();
        let pa = a.advertise("t").unwrap();
        pa.close();
        assert!(pa.publish(b"x").is_err());
        let b = NodeBuilder::new("b").build(&master).unwrap();
        let _pb = b.advertise("t").unwrap();
    }

    #[test]
    fn manual_clock_stamps_headers() {
        let master = Master::new();
        let clock = ManualClock::new(7_000);
        let p = NodeBuilder::new("p")
            .clock(Arc::new(clock))
            .build(&master)
            .unwrap();
        let publisher = p.advertise("t").unwrap();
        let s = NodeBuilder::new("s").build(&master).unwrap();
        let stamps = Arc::new(Mutex::new(Vec::new()));
        let st = Arc::clone(&stamps);
        let _sub = s.subscribe("t", move |m| st.lock().push(m.header.stamp_ns)).unwrap();
        publisher.publish(b"x").unwrap();
        wait_until(|| !stamps.lock().is_empty());
        assert!(stamps.lock()[0] >= 7_000);
    }

    #[test]
    fn tcp_transport_end_to_end() {
        let master = Master::new();
        let p = NodeBuilder::new("cam")
            .transport(TransportKind::Tcp)
            .build(&master)
            .unwrap();
        let publisher = p.advertise("image").unwrap();
        let s = NodeBuilder::new("det").build(&master).unwrap();
        let got = Arc::new(Mutex::new(Vec::new()));
        let got2 = Arc::clone(&got);
        let _sub = s
            .subscribe("image", move |m| got2.lock().push(m.payload.len()))
            .unwrap();
        publisher.publish(&vec![9u8; 50_000]).unwrap();
        wait_until(|| !got.lock().is_empty());
        assert_eq!(got.lock()[0], 50_000);
    }

    #[test]
    fn bounded_queue_drops_when_subscriber_stalls() {
        let master = Master::new();
        let p = NodeBuilder::new("p").build(&master).unwrap();
        let s = NodeBuilder::new("s").build(&master).unwrap();
        let publisher = p.advertise("t").unwrap();
        // The callback blocks until released, so the bounded queue fills
        // and further sends drop at the publisher.
        let gate = Arc::new((Mutex::new(false), parking_lot::Condvar::new()));
        let gate2 = Arc::clone(&gate);
        let _sub = s
            .subscribe_with(
                "t",
                SubscribeOptions::new().with_queue_size(2),
                move |_| {
                    let (lock, cvar) = &*gate2;
                    let mut released = lock.lock();
                    while !*released {
                        cvar.wait(&mut released);
                    }
                },
            )
            .unwrap();
        // 1 in-callback + 2 queued; everything beyond drops.
        for _ in 0..10 {
            publisher.publish(&[0u8; 8]).unwrap();
        }
        wait_until(|| p.stats().snapshot().send_dropped > 0);
        let snap = p.stats().snapshot();
        assert!(snap.sent <= 4, "sent {} exceeds queue bound", snap.sent);
        assert!(snap.send_dropped >= 6);
        // Release the subscriber so teardown is clean.
        let (lock, cvar) = &*gate;
        *lock.lock() = true;
        cvar.notify_all();
    }

    #[test]
    fn polled_subscription_delivers_messages() {
        let master = Master::new();
        let p = NodeBuilder::new("p").build(&master).unwrap();
        let s = NodeBuilder::new("s").build(&master).unwrap();
        let publisher = p.advertise("t").unwrap();
        let (_sub, rx) = s
            .subscribe_queue("t", SubscribeOptions::new().with_queue_size(8))
            .unwrap();
        publisher.publish(b"a").unwrap();
        publisher.publish(b"b").unwrap();
        let m1 = rx.recv_timeout(Duration::from_secs(5)).unwrap();
        let m2 = rx.recv_timeout(Duration::from_secs(5)).unwrap();
        assert_eq!(m1.payload.as_ref(), b"a");
        assert_eq!(m2.payload.as_ref(), b"b");
        assert_eq!(m2.header.seq, 2);
    }

    /// Acks every message immediately; used to exercise deadline recovery.
    #[derive(Debug)]
    struct EchoAck {
        /// Delay applied before acking, simulating a slow subscriber.
        delay: Duration,
    }

    impl LinkInterceptor for EchoAck {
        fn on_recv(&self, _conn: &ConnectionInfo, body: Vec<u8>) -> crate::RecvOutcome {
            if !self.delay.is_zero() {
                thread::sleep(self.delay);
            }
            crate::RecvOutcome {
                deliver: Some(body),
                reply: Some(b"ack".to_vec()),
            }
        }
    }

    /// Records disconnect notifications.
    #[derive(Debug, Default)]
    struct DisconnectSpy {
        disconnected: Arc<AtomicUsize>,
    }

    impl LinkInterceptor for DisconnectSpy {
        fn on_disconnect(&self, _conn: &ConnectionInfo) {
            self.disconnected.fetch_add(1, Ordering::SeqCst);
        }
    }

    #[test]
    fn ack_deadline_degrades_then_tears_down_mute_subscriber() {
        let master = Master::new();
        let disconnected = Arc::new(AtomicUsize::new(0));
        let p = NodeBuilder::new("p")
            .interceptor(Arc::new(DisconnectSpy {
                disconnected: Arc::clone(&disconnected),
            }))
            .resilience(
                ResilienceConfig::new()
                    .with_ack_timeout(Duration::from_millis(30))
                    .with_max_retries(2)
                    .with_retry_backoff(Duration::from_millis(5)),
            )
            .build(&master)
            .unwrap();
        let s = NodeBuilder::new("s").build(&master).unwrap();
        let publisher = p.advertise("t").unwrap();
        // NoopInterceptor on the subscriber never acks.
        let _sub = s.subscribe("t", |_| {}).unwrap();
        assert!(publisher.wait_for_subscribers(1, Duration::from_secs(2)));
        publisher.publish(b"x").unwrap();

        // Degraded within the deadline window, torn down after retries.
        wait_until(|| disconnected.load(Ordering::SeqCst) == 1);
        let events = p.take_events();
        assert!(events
            .iter()
            .any(|e| matches!(e, LinkEvent::AckTimeout { seq: 1, .. })));
        assert!(events
            .iter()
            .any(|e| matches!(e, LinkEvent::Degraded { .. })));
        assert!(matches!(events.last(), Some(LinkEvent::TornDown { .. })));
        // Retries were attempted and counted per link.
        let links = publisher.link_stats();
        assert_eq!(links.len(), 1);
        assert_eq!(links[0].1.retries, 2);
        assert_eq!(
            publisher.link_health(&NodeId::new("s")),
            Some(LinkHealth::TornDown)
        );
    }

    #[test]
    fn slow_ack_degrades_then_recovers() {
        let master = Master::new();
        let p = NodeBuilder::new("p")
            .resilience(
                ResilienceConfig::new()
                    .with_ack_timeout(Duration::from_millis(20))
                    .with_max_retries(20)
                    .with_retry_backoff(Duration::from_millis(5)),
            )
            .build(&master)
            .unwrap();
        let s = NodeBuilder::new("s")
            .interceptor(Arc::new(EchoAck {
                delay: Duration::from_millis(120),
            }))
            .build(&master)
            .unwrap();
        let publisher = p.advertise("t").unwrap();
        let _sub = s.subscribe("t", |_| {}).unwrap();
        assert!(publisher.wait_for_subscribers(1, Duration::from_secs(2)));
        publisher.publish(b"x").unwrap();

        wait_until(|| {
            p.take_events()
                .iter()
                .any(|e| matches!(e, LinkEvent::Recovered { .. }))
        });
        assert_eq!(
            publisher.link_health(&NodeId::new("s")),
            Some(LinkHealth::Healthy)
        );
    }

    #[test]
    fn inert_resilience_keeps_links_healthy_without_acks() {
        let master = Master::new();
        let p = NodeBuilder::new("p").build(&master).unwrap();
        let s = NodeBuilder::new("s").build(&master).unwrap();
        let publisher = p.advertise("t").unwrap();
        let _sub = s.subscribe("t", |_| {}).unwrap();
        assert!(publisher.wait_for_subscribers(1, Duration::from_secs(2)));
        publisher.publish(b"x").unwrap();
        thread::sleep(Duration::from_millis(120));
        assert!(p.take_events().is_empty());
        assert_eq!(
            publisher.link_health(&NodeId::new("s")),
            Some(LinkHealth::Healthy)
        );
    }

    #[test]
    fn link_stats_attribute_qos_drops_to_the_slow_link() {
        let master = Master::new();
        let p = NodeBuilder::new("p").build(&master).unwrap();
        let slow = NodeBuilder::new("slow").build(&master).unwrap();
        let fast = NodeBuilder::new("fast").build(&master).unwrap();
        let publisher = p.advertise("t").unwrap();
        let gate = Arc::new((Mutex::new(false), parking_lot::Condvar::new()));
        let gate2 = Arc::clone(&gate);
        let _slow_sub = slow
            .subscribe_with(
                "t",
                SubscribeOptions::new().with_queue_size(1),
                move |_| {
                    let (lock, cvar) = &*gate2;
                    let mut released = lock.lock();
                    while !*released {
                        cvar.wait(&mut released);
                    }
                },
            )
            .unwrap();
        let _fast_sub = fast.subscribe("t", |_| {}).unwrap();
        assert!(publisher.wait_for_subscribers(2, Duration::from_secs(2)));
        for _ in 0..8 {
            publisher.publish(&[0u8; 4]).unwrap();
        }
        wait_until(|| p.stats().snapshot().send_dropped > 0);
        let links = publisher.link_stats();
        let slow_snap = links
            .iter()
            .find(|(id, _)| id.as_str() == "slow")
            .map(|(_, s)| *s)
            .unwrap();
        let fast_snap = links
            .iter()
            .find(|(id, _)| id.as_str() == "fast")
            .map(|(_, s)| *s)
            .unwrap();
        assert!(slow_snap.send_dropped > 0);
        assert_eq!(fast_snap.send_dropped, 0);
        assert_eq!(fast_snap.sent, 8);
        // Node-wide aggregate matches the per-link attribution.
        assert_eq!(
            p.stats().snapshot().send_dropped,
            slow_snap.send_dropped + fast_snap.send_dropped
        );
        let (lock, cvar) = &*gate;
        *lock.lock() = true;
        cvar.notify_all();
    }

    #[test]
    fn injected_faults_are_counted_and_deterministic() {
        let run = || {
            let master = Master::new();
            let p = NodeBuilder::new("p")
                .faults(FaultConfig::seeded(42).with_drop_rate(0.4))
                .build(&master)
                .unwrap();
            let s = NodeBuilder::new("s").build(&master).unwrap();
            let publisher = p.advertise("t").unwrap();
            let seen = Arc::new(AtomicUsize::new(0));
            let seen2 = Arc::clone(&seen);
            let _sub = s
                .subscribe("t", move |_| {
                    seen2.fetch_add(1, Ordering::SeqCst);
                })
                .unwrap();
            assert!(publisher.wait_for_subscribers(1, Duration::from_secs(2)));
            for _ in 0..50 {
                publisher.publish(b"x").unwrap();
            }
            let stats = Arc::clone(p.fault_stats());
            wait_until(|| {
                stats.forwarded.load(Ordering::Relaxed)
                    + stats.dropped.load(Ordering::Relaxed)
                    == 50
            });
            wait_until(|| {
                seen.load(Ordering::SeqCst) as u64 == stats.forwarded.load(Ordering::Relaxed)
            });
            (
                seen.load(Ordering::SeqCst),
                stats.dropped.load(Ordering::Relaxed),
            )
        };
        let (seen1, dropped1) = run();
        assert!(dropped1 > 0, "40% drop rate must drop something");
        assert_eq!(seen1 as u64 + dropped1, 50);
        // Same seed (and same per-link salt) → identical fault decisions.
        assert_eq!(run(), (seen1, dropped1));
    }

    #[test]
    fn stats_count_traffic() {
        let master = Master::new();
        let p = NodeBuilder::new("p").build(&master).unwrap();
        let s = NodeBuilder::new("s").build(&master).unwrap();
        let publisher = p.advertise("t").unwrap();
        let _sub = s.subscribe("t", |_| {}).unwrap();
        publisher.publish(&[0u8; 10]).unwrap();
        wait_until(|| s.stats().snapshot().received == 1);
        let ps = p.stats().snapshot();
        assert_eq!(ps.published, 1);
        assert_eq!(ps.sent, 1);
        assert_eq!(ps.bytes_sent, 26); // 16-byte header + 10-byte payload
        assert_eq!(s.stats().snapshot().bytes_received, 26);
    }
}
