//! Link resilience: ack deadlines, bounded retries with backoff, and the
//! protocol events that make degradation observable.
//!
//! The paper's withhold-until-ack penalty (§V-B step 2) is intentionally
//! indefinite: a publisher facing a mute subscriber simply never sends
//! again on that link. That is the correct *accountability* behavior, but
//! operationally it wedges the connection forever. [`ResilienceConfig`]
//! adds an opt-in deadline: when the acknowledgement to the in-flight
//! message is overdue the link is marked [`LinkHealth::Degraded`], a
//! [`LinkEvent`] is emitted, and the frame is retried a bounded number of
//! times with exponential backoff (plus deterministic jitter) before the
//! link is torn down cleanly — converting a silent wedge into accounted,
//! auditable evidence (the interceptor's pending acknowledgements are
//! flushed as unacked-publication entries on teardown).
//!
//! Everything here defaults **off** (`ack_timeout: None`) so the paper's
//! original semantics are untouched unless explicitly requested.

use crate::types::{NodeId, Topic};
use std::time::Duration;

/// Publisher-side fault handling knobs. Disabled by default.
#[derive(Debug, Clone, PartialEq)]
pub struct ResilienceConfig {
    /// How long to wait for the acknowledgement of an in-flight message
    /// before acting. `None` (default) keeps the paper's indefinite
    /// withholding behavior.
    pub ack_timeout: Option<Duration>,
    /// Retransmissions attempted after an ack timeout before the link is
    /// torn down.
    pub max_retries: u32,
    /// Base delay added on top of `ack_timeout` between retries; doubles
    /// each attempt.
    pub retry_backoff: Duration,
    /// Fraction of the backoff (0.0–1.0) added as deterministic per-link
    /// jitter, de-synchronizing retry storms across links.
    pub retry_jitter: f64,
    /// Read timeout for TCP reader threads; a socket silent for this long
    /// is treated as a dead peer. `None` (default) blocks forever.
    pub io_read_timeout: Option<Duration>,
    /// Write timeout for TCP writer threads.
    pub io_write_timeout: Option<Duration>,
}

impl Default for ResilienceConfig {
    fn default() -> Self {
        ResilienceConfig {
            ack_timeout: None,
            max_retries: 3,
            retry_backoff: Duration::from_millis(100),
            retry_jitter: 0.2,
            io_read_timeout: None,
            io_write_timeout: None,
        }
    }
}

impl ResilienceConfig {
    /// The do-nothing config (paper semantics).
    pub fn new() -> Self {
        Self::default()
    }

    /// Enables the ack deadline.
    pub fn with_ack_timeout(mut self, timeout: Duration) -> Self {
        self.ack_timeout = Some(timeout);
        self
    }

    /// Sets the retry bound.
    pub fn with_max_retries(mut self, retries: u32) -> Self {
        self.max_retries = retries;
        self
    }

    /// Sets the backoff base.
    pub fn with_retry_backoff(mut self, backoff: Duration) -> Self {
        self.retry_backoff = backoff;
        self
    }

    /// Sets TCP socket timeouts.
    pub fn with_io_timeouts(mut self, read: Duration, write: Duration) -> Self {
        self.io_read_timeout = Some(read);
        self.io_write_timeout = Some(write);
        self
    }

    /// Whether any deadline handling is active.
    pub fn is_active(&self) -> bool {
        self.ack_timeout.is_some()
    }

    /// Delay before retry number `attempt` (0-based): exponential backoff
    /// with deterministic jitter derived from `salt` (e.g. a link hash).
    pub fn backoff_for(&self, attempt: u32, salt: u64) -> Duration {
        let base = self.retry_backoff.as_nanos() as u64;
        let exp = base.saturating_mul(1u64 << attempt.min(20));
        // Deterministic jitter in [0, retry_jitter): same link, same delays.
        let jitter_frac = (salt.wrapping_mul(0x9e37_79b9_7f4a_7c15) >> 40) as f64
            / (1u64 << 24) as f64
            * self.retry_jitter.clamp(0.0, 1.0);
        Duration::from_nanos(exp.saturating_add((exp as f64 * jitter_frac) as u64))
    }
}

/// Health of one publisher→subscriber link.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum LinkHealth {
    /// Acks (if expected) are arriving within the deadline.
    #[default]
    Healthy,
    /// At least one ack deadline expired; retries may be in flight.
    Degraded,
    /// Retries were exhausted and the connection was closed.
    TornDown,
}

/// An observable protocol event on a publisher link.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LinkEvent {
    /// The ack for `seq` did not arrive within the deadline; retry
    /// `attempt` (1-based) was scheduled (or the link moved to teardown).
    AckTimeout {
        /// Topic of the link.
        topic: Topic,
        /// Subscriber at the far end.
        subscriber: NodeId,
        /// Sequence number of the overdue publication.
        seq: u64,
        /// Which retry this timeout triggered (1-based); `max_retries + 1`
        /// means retries were exhausted.
        attempt: u32,
    },
    /// The link entered [`LinkHealth::Degraded`].
    Degraded {
        /// Topic of the link.
        topic: Topic,
        /// Subscriber at the far end.
        subscriber: NodeId,
    },
    /// An ack arrived on a degraded link; back to [`LinkHealth::Healthy`].
    Recovered {
        /// Topic of the link.
        topic: Topic,
        /// Subscriber at the far end.
        subscriber: NodeId,
    },
    /// Retries were exhausted; the connection was closed and pending
    /// acknowledgements handed to the interceptor as evidence.
    TornDown {
        /// Topic of the link.
        topic: Topic,
        /// Subscriber at the far end.
        subscriber: NodeId,
    },
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_inert() {
        let c = ResilienceConfig::default();
        assert!(!c.is_active());
        assert!(c.io_read_timeout.is_none());
    }

    #[test]
    fn backoff_grows_and_is_deterministic() {
        let c = ResilienceConfig::new()
            .with_ack_timeout(Duration::from_millis(50))
            .with_retry_backoff(Duration::from_millis(10));
        let b0 = c.backoff_for(0, 42);
        let b1 = c.backoff_for(1, 42);
        let b2 = c.backoff_for(2, 42);
        assert!(b0 < b1 && b1 < b2);
        assert_eq!(b1, c.backoff_for(1, 42));
        // Jitter differentiates links.
        assert_ne!(c.backoff_for(1, 42), c.backoff_for(1, 43));
    }

    #[test]
    fn huge_attempt_does_not_overflow() {
        let c = ResilienceConfig::default();
        let _ = c.backoff_for(u32::MAX, 7);
    }
}
