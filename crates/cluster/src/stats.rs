//! Cluster-level accounting.
//!
//! The cluster inherits the substrate's prime directive: degradation is
//! *counted*, never silent. Every deposit ends up in exactly one of
//! `acked` (reached its write quorum) or `entries_lost` (did not), so
//! `submitted == acked + entries_lost` holds at any quiescent point.

use crate::attestation::Observation;
use adlp_logger::DurabilityStats;
use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Cap on retained per-deposit latency samples (for percentiles); beyond
/// it, new samples overwrite a deterministic rotating slot so long runs
/// stay bounded while the distribution keeps refreshing.
const LATENCY_SAMPLE_CAP: usize = 100_000;

#[derive(Debug, Default)]
struct Inner {
    submitted: AtomicU64,
    acked: AtomicU64,
    entries_lost: AtomicU64,
    failovers: AtomicU64,
    quorum_latency_ns: AtomicU64,
    quorum_samples: AtomicU64,
    breaker_trips: AtomicU64,
    breaker_reopens: AtomicU64,
    breaker_closes: AtomicU64,
    breaker_rejections: AtomicU64,
    attestations_verified: AtomicU64,
    attestations_rejected: AtomicU64,
    equivocations_detected: AtomicU64,
    shard_depth: Vec<AtomicU64>,
    latency_samples: Mutex<Vec<u64>>,
}

/// Shared, thread-safe cluster counters (cheap to clone).
#[derive(Debug, Clone, Default)]
pub struct ClusterStats {
    inner: Arc<Inner>,
    durability: DurabilityStats,
}

/// A point-in-time copy of [`ClusterStats`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClusterStatsSnapshot {
    /// Entries handed to the cluster client.
    pub submitted: u64,
    /// Entries accepted by at least W live replicas of their shard.
    pub acked: u64,
    /// Entries that failed their write quorum — counted, never silent.
    /// (A sub-quorum entry may still sit on some replicas, but the cluster
    /// refuses to call it durable.)
    pub entries_lost: u64,
    /// Deposits where at least one replica refused but the quorum was
    /// still met by the survivors.
    pub failovers: u64,
    /// Mean wall-clock time to reach the write quorum, in nanoseconds.
    pub mean_quorum_latency_ns: u64,
    /// 99th-percentile quorum latency (ns) over the retained sample window.
    pub p99_quorum_latency_ns: u64,
    /// 99.9th-percentile quorum latency (ns) over the retained sample
    /// window.
    pub p999_quorum_latency_ns: u64,
    /// BFT mode: signed head attestations whose signature verified.
    pub attestations_verified: u64,
    /// BFT mode: attestations discarded for a bad signature (they prove
    /// nothing about the replica whose identity they claim).
    pub attestations_rejected: u64,
    /// BFT mode: equivocation proofs minted — one replica, two validly
    /// signed conflicting heads at the same scope.
    pub equivocations_detected: u64,
    /// Replica-lane circuit breakers tripped (Closed→Open).
    pub breaker_trips: u64,
    /// Half-open probes that failed and re-opened a replica's breaker.
    pub breaker_reopens: u64,
    /// Replica-lane breakers closed again after successful probes
    /// (HalfOpen→Closed) — the recovery signal.
    pub breaker_closes: u64,
    /// Per-replica deposit attempts refused up front because the lane's
    /// breaker was open (the fan-out routed around that replica).
    pub breaker_rejections: u64,
    /// WAL syncs / snapshot replaces refused by replica storage devices —
    /// storage errors are counted, never discarded.
    pub fsync_failures: u64,
    /// Replica WAL appends that failed outright (e.g. torn writes).
    pub wal_append_failures: u64,
    /// Records lost to torn/corrupt tails across replica recoveries.
    pub records_truncated: u64,
    /// Entries routed to each shard (quorum-acked only).
    pub shard_depth: Vec<u64>,
}

impl ClusterStats {
    /// Creates zeroed counters for `shards` shards.
    pub fn new(shards: usize) -> Self {
        Self::with_durability(shards, DurabilityStats::default())
    }

    /// Creates counters whose durability side is shared with `durability` —
    /// a durable cluster hands the same counters to every replica's
    /// `DurabilityConfig`, so replica-level storage failures surface here
    /// live.
    pub fn with_durability(shards: usize, durability: DurabilityStats) -> Self {
        let shard_depth = (0..shards).map(|_| AtomicU64::new(0)).collect();
        ClusterStats {
            inner: Arc::new(Inner {
                shard_depth,
                ..Inner::default()
            }),
            durability,
        }
    }

    /// The shared durability counters.
    pub fn durability(&self) -> &DurabilityStats {
        &self.durability
    }

    /// Records the outcome of one deposit fan-out.
    pub fn note_deposit(
        &self,
        shard: usize,
        accepted: usize,
        refused: usize,
        write_quorum: usize,
        latency: Duration,
    ) {
        let i = &self.inner;
        i.submitted.fetch_add(1, Ordering::Relaxed);
        if accepted >= write_quorum {
            i.acked.fetch_add(1, Ordering::Relaxed);
            if let Some(depth) = i.shard_depth.get(shard) {
                depth.fetch_add(1, Ordering::Relaxed);
            }
            if refused > 0 {
                i.failovers.fetch_add(1, Ordering::Relaxed);
            }
            let ns = latency.as_nanos() as u64;
            i.quorum_latency_ns.fetch_add(ns, Ordering::Relaxed);
            let nth = i.quorum_samples.fetch_add(1, Ordering::Relaxed);
            let mut samples = i.latency_samples.lock();
            if samples.len() < LATENCY_SAMPLE_CAP {
                samples.push(ns);
            } else if let Some(slot) = samples.get_mut(nth as usize % LATENCY_SAMPLE_CAP) {
                *slot = ns;
            }
        } else {
            i.entries_lost.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Records what the attestation ledger concluded about one observed
    /// attestation (BFT mode).
    pub fn note_observation(&self, observation: &Observation) {
        let i = &self.inner;
        match observation {
            Observation::Consistent | Observation::Duplicate => {
                i.attestations_verified.fetch_add(1, Ordering::Relaxed);
            }
            Observation::BadSignature | Observation::BadIncarnation => {
                i.attestations_rejected.fetch_add(1, Ordering::Relaxed);
            }
            Observation::Equivocation(_) => {
                // The equivocating signature *did* verify — that is what
                // makes it a conviction.
                i.attestations_verified.fetch_add(1, Ordering::Relaxed);
                i.equivocations_detected.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// Entries that failed their write quorum so far.
    pub fn entries_lost(&self) -> u64 {
        self.inner.entries_lost.load(Ordering::Relaxed)
    }

    /// Records a replica-lane breaker state transition.
    pub fn note_breaker_transition(&self, transition: adlp_pubsub::Transition) {
        use adlp_pubsub::Transition;
        let counter = match transition {
            Transition::Tripped => &self.inner.breaker_trips,
            Transition::Reopened => &self.inner.breaker_reopens,
            Transition::Closed => &self.inner.breaker_closes,
        };
        counter.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one per-replica deposit refused because the lane's breaker
    /// was open.
    pub fn note_breaker_rejection(&self) {
        self.inner.breaker_rejections.fetch_add(1, Ordering::Relaxed);
    }

    /// Takes a consistent-enough copy of all counters.
    pub fn snapshot(&self) -> ClusterStatsSnapshot {
        let i = &self.inner;
        let samples = i.quorum_samples.load(Ordering::Relaxed);
        let mean = i
            .quorum_latency_ns
            .load(Ordering::Relaxed)
            .checked_div(samples)
            .unwrap_or(0);
        let (p99, p999) = {
            let mut sorted = i.latency_samples.lock().clone();
            sorted.sort_unstable();
            (percentile(&sorted, 99.0), percentile(&sorted, 99.9))
        };
        ClusterStatsSnapshot {
            submitted: i.submitted.load(Ordering::Relaxed),
            acked: i.acked.load(Ordering::Relaxed),
            entries_lost: i.entries_lost.load(Ordering::Relaxed),
            failovers: i.failovers.load(Ordering::Relaxed),
            mean_quorum_latency_ns: mean,
            p99_quorum_latency_ns: p99,
            p999_quorum_latency_ns: p999,
            attestations_verified: i.attestations_verified.load(Ordering::Relaxed),
            attestations_rejected: i.attestations_rejected.load(Ordering::Relaxed),
            equivocations_detected: i.equivocations_detected.load(Ordering::Relaxed),
            breaker_trips: i.breaker_trips.load(Ordering::Relaxed),
            breaker_reopens: i.breaker_reopens.load(Ordering::Relaxed),
            breaker_closes: i.breaker_closes.load(Ordering::Relaxed),
            breaker_rejections: i.breaker_rejections.load(Ordering::Relaxed),
            fsync_failures: self.durability.fsync_failures(),
            wal_append_failures: self.durability.wal_append_failures(),
            records_truncated: self.durability.records_truncated(),
            shard_depth: i
                .shard_depth
                .iter()
                .map(|d| d.load(Ordering::Relaxed))
                .collect(),
        }
    }
}

impl ClusterStatsSnapshot {
    /// The never-silent-loss invariant: every submission is accounted for.
    pub fn balanced(&self) -> bool {
        self.submitted == self.acked + self.entries_lost
    }
}

/// Nearest-rank percentile over an already-sorted sample set (0 when
/// empty).
fn percentile(sorted: &[u64], pct: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = ((pct / 100.0) * sorted.len() as f64).ceil() as usize;
    let index = rank.max(1).min(sorted.len()) - 1;
    sorted.get(index).copied().unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deposit_accounting_balances() {
        let stats = ClusterStats::new(3);
        stats.note_deposit(0, 3, 0, 2, Duration::from_micros(5));
        stats.note_deposit(1, 2, 1, 2, Duration::from_micros(7));
        stats.note_deposit(2, 1, 2, 2, Duration::from_micros(9));
        let s = stats.snapshot();
        assert_eq!(s.submitted, 3);
        assert_eq!(s.acked, 2);
        assert_eq!(s.entries_lost, 1);
        assert_eq!(s.failovers, 1);
        assert_eq!(s.shard_depth, vec![1, 1, 0]);
        assert!(s.balanced());
        assert!(s.mean_quorum_latency_ns > 0);
        assert_eq!(s.p99_quorum_latency_ns, 7_000, "only acked deposits sample");
    }

    #[test]
    fn percentiles_track_the_tail() {
        let stats = ClusterStats::new(1);
        // 999 fast deposits and one slow outlier.
        for _ in 0..999 {
            stats.note_deposit(0, 1, 0, 1, Duration::from_micros(10));
        }
        stats.note_deposit(0, 1, 0, 1, Duration::from_millis(5));
        let s = stats.snapshot();
        assert_eq!(s.p99_quorum_latency_ns, 10_000, "p99 sits in the bulk");
        assert_eq!(s.p999_quorum_latency_ns, 5_000_000, "p999 catches the outlier");
        assert!(s.mean_quorum_latency_ns > 10_000, "mean is dragged by the tail");
    }

    #[test]
    fn percentile_nearest_rank_edges() {
        assert_eq!(percentile(&[], 99.0), 0);
        assert_eq!(percentile(&[7], 99.9), 7);
        let v: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile(&v, 50.0), 50);
        assert_eq!(percentile(&v, 99.0), 99);
        assert_eq!(percentile(&v, 99.9), 100);
    }

    #[test]
    fn observation_accounting() {
        use crate::attestation::{
            AttestationLog, AttestationScope, ReplicaAttestor, ReplicaKeyring,
        };
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(11);
        let kp = adlp_crypto::RsaKeyPair::generate(512, &mut rng);
        let keyring = ReplicaKeyring::new(vec![vec![kp.public_key().clone()]]);
        let ledger = AttestationLog::new(keyring, 16, 1);
        let attestor = ReplicaAttestor::new(0, 0, kp.into_private_key());
        let stats = ClusterStats::new(1);

        let a = attestor
            .attest(AttestationScope::Head { length: 1 }, adlp_crypto::sha256(b"a"))
            .unwrap();
        let b = attestor
            .attest(AttestationScope::Head { length: 1 }, adlp_crypto::sha256(b"b"))
            .unwrap();
        stats.note_observation(&ledger.observe(a));
        stats.note_observation(&ledger.observe(b));
        let s = stats.snapshot();
        assert_eq!(s.attestations_verified, 2, "both signatures verified");
        assert_eq!(s.equivocations_detected, 1);
        assert_eq!(s.attestations_rejected, 0);
    }
}
