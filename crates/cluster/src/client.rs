//! The deposit router: shards, fans out, and counts quorums.

use crate::attestation::{AttestationLog, HeadAttestation, Observation};
use crate::cluster::{LoggerCluster, ReplicaSlot};
use crate::config::ClusterConfig;
use crate::ring::HashRing;
use crate::stats::ClusterStats;
use adlp_crypto::RsaPublicKey;
use adlp_logger::stats::LogStats;
use adlp_logger::{
    KeyRegistry, LogEntry, LogError, ReconnectConfig, RemoteLogClient, SubmitOutcome,
};
use adlp_pubsub::{Admission, CircuitBreaker, Clock, NodeId, SystemClock, Topic, Transition};
use parking_lot::Mutex;
use std::fmt;
use std::net::SocketAddr;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// One replica's deposit lane. Implementations report whether a *live*
/// replica accepted the entry — the quorum signal.
pub trait ReplicaSink: Send + Sync + fmt::Debug {
    /// Attempts to deliver `entry`; returns whether a live replica took it.
    fn deposit(&self, entry: &LogEntry) -> bool;
    /// Like [`ReplicaSink::deposit`], but only returns `true` once the
    /// replica reports the entry *durable* (in its synced WAL). Sinks
    /// without a durability notion fall back to plain acceptance.
    fn deposit_durable(&self, entry: &LogEntry) -> bool {
        self.deposit(entry)
    }
    /// Blocks until previously accepted entries are stored (best effort);
    /// returns whether the replica confirmed.
    fn flush_replica(&self) -> bool;
    /// Called when the circuit breaker wrapping this lane changes state,
    /// so sinks with their own per-client accounting (the remote TCP sink)
    /// can mirror the transition. Default: no accounting of its own.
    fn note_breaker(&self, _transition: Transition) {}
    /// BFT mode: delivers `entry` and returns the replica's *signed head
    /// attestation* — its sworn statement of the chain head after the
    /// append. `None` means the replica stayed silent (dead, or Byzantine
    /// and withholding); a silent replica simply does not count toward the
    /// `2f+1` attest quorum. The default (sinks without an attestation
    /// identity) deposits and stays silent, so plugging a crash-only sink
    /// into a BFT client fails acks loudly rather than faking signatures.
    fn deposit_attested(&self, entry: &LogEntry, durable: bool) -> Option<HeadAttestation> {
        if durable {
            self.deposit_durable(entry);
        } else {
            self.deposit(entry);
        }
        None
    }
}

/// In-process sink over a [`ReplicaSlot`] (the sim/bench path).
#[derive(Debug)]
struct SlotSink {
    slot: Arc<ReplicaSlot>,
}

impl ReplicaSink for SlotSink {
    fn deposit(&self, entry: &LogEntry) -> bool {
        self.slot.handle().try_submit(entry.clone()).is_ok()
    }

    fn deposit_durable(&self, entry: &LogEntry) -> bool {
        self.slot.handle().submit_durable(entry.clone()).is_ok()
    }

    fn flush_replica(&self) -> bool {
        self.slot.handle().flush().is_ok()
    }

    fn deposit_attested(&self, entry: &LogEntry, durable: bool) -> Option<HeadAttestation> {
        let took = if durable {
            self.deposit_durable(entry)
        } else {
            self.deposit(entry)
        };
        if !took {
            return None;
        }
        // The append is processed on the replica's server thread; flush
        // before reading the head so the attestation covers this entry.
        // That per-entry round-trip is the honest cost of a signed ack.
        if !self.flush_replica() {
            return None;
        }
        self.slot.attest_head().ok().flatten()
    }
}

/// An in-process sink over one [`ReplicaSlot`] — the honest deposit lane.
/// Public so fault harnesses can wrap honest lanes next to misbehaving
/// ones when assembling a [`ClusterLogClient::from_sinks`] client.
pub fn slot_sink(slot: Arc<ReplicaSlot>) -> Box<dyn ReplicaSink> {
    Box::new(SlotSink { slot })
}

/// TCP sink layered on the reconnecting [`RemoteLogClient`] (PR 1): while
/// a replica is unreachable the client buffers the outage locally
/// (per-replica, hence per-shard buffering) and replays on reconnect, but
/// a buffered entry does **not** count toward the write quorum — only a
/// connected replica does.
pub struct RemoteReplicaSink {
    client: Mutex<RemoteLogClient>,
    flush_timeout: Duration,
}

impl fmt::Debug for RemoteReplicaSink {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RemoteReplicaSink").finish_non_exhaustive()
    }
}

impl RemoteReplicaSink {
    /// Connects to one replica endpoint.
    ///
    /// # Errors
    ///
    /// Propagates connection errors from [`RemoteLogClient::connect_with`].
    pub fn connect(addr: SocketAddr, config: ReconnectConfig) -> Result<Self, LogError> {
        Ok(RemoteReplicaSink {
            client: Mutex::new(RemoteLogClient::connect_with(addr, config)?),
            flush_timeout: Duration::from_millis(500),
        })
    }
}

impl ReplicaSink for RemoteReplicaSink {
    fn deposit(&self, entry: &LogEntry) -> bool {
        let mut client = self.client.lock();
        let pushed = client.submit(entry).is_accepted();
        pushed && client.stats().snapshot().connected
    }

    fn flush_replica(&self) -> bool {
        self.client.lock().flush(self.flush_timeout)
    }

    fn note_breaker(&self, transition: Transition) {
        let client = self.client.lock();
        match transition {
            Transition::Tripped | Transition::Reopened => client.stats().note_breaker_trip(),
            Transition::Closed => client.stats().note_breaker_close(),
        }
    }
}

/// What one deposit fan-out produced.
struct FanOutOutcome {
    shard: usize,
    accepted: usize,
    quorate: bool,
}

/// A shard's replica lanes plus the per-shard ordering lock.
struct ShardLanes {
    /// Serializes fan-outs so all replicas see entries in one order —
    /// the property that makes cross-replica divergence detection sharp.
    order: Mutex<()>,
    replicas: Vec<Box<dyn ReplicaSink>>,
    /// One circuit breaker per replica lane (empty when breakers are not
    /// configured). Guarded separately, but only ever touched under the
    /// `order` lock, so breaker trajectories are as serialized as the
    /// fan-outs they observe.
    breakers: Mutex<Vec<CircuitBreaker>>,
}

impl fmt::Debug for ShardLanes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ShardLanes")
            .field("replicas", &self.replicas.len())
            .finish()
    }
}

/// The cluster deposit client: routes each entry to its shard via the
/// consistent-hash ring, fans it out to all R replicas, and accounts the
/// W-of-R quorum outcome. Shaped like [`adlp_logger::LoggerHandle`] so the
/// core logging pipeline can target either interchangeably.
#[derive(Debug)]
pub struct ClusterLogClient {
    ring: HashRing,
    config: ClusterConfig,
    keys: KeyRegistry,
    shards: Vec<ShardLanes>,
    stats: ClusterStats,
    volume: LogStats,
    /// BFT mode: the shared attestation ledger every signed ack flows
    /// through (split-view detection at deposit time). `None` on a
    /// crash-quorum client.
    attestations: Option<AttestationLog>,
}

impl ClusterLogClient {
    /// An in-process client over a [`LoggerCluster`]'s replica slots. The
    /// client shares the cluster's [`ClusterStats`], so deposit accounting
    /// and replica durability counters read from one place.
    pub fn in_proc(cluster: &LoggerCluster) -> Self {
        let sinks = (0..cluster.shard_count())
            .map(|shard| {
                cluster
                    .shard_replicas(shard)
                    .iter()
                    .map(|slot| Box::new(SlotSink { slot: Arc::clone(slot) }) as Box<dyn ReplicaSink>)
                    .collect()
            })
            .collect();
        let client = Self::from_sinks_with_stats(
            cluster.config().clone(),
            cluster.keys().clone(),
            sinks,
            cluster.stats().clone(),
        );
        match cluster.attestations() {
            Some(ledger) => client.with_attestations(ledger.clone()),
            None => client,
        }
    }

    /// Wires the BFT attestation ledger (split-view detector) into this
    /// client, enabling signed-quorum acks when the configuration carries
    /// a [`crate::attestation::BftConfig`]. [`ClusterLogClient::in_proc`]
    /// does this automatically; `from_sinks` assemblies (fault harnesses,
    /// remote clients) wire it explicitly so client and auditor share one
    /// ledger. A client whose configuration is BFT but that never received
    /// a ledger refuses every deposit (counted as lost) rather than
    /// silently downgrading to unsigned crash-quorum counting.
    pub fn with_attestations(mut self, ledger: AttestationLog) -> Self {
        self.attestations = Some(ledger);
        self
    }

    /// A client over arbitrary sinks (one inner `Vec` per shard). Used by
    /// [`ClusterLogClient::remote`] and by tests that fake replicas.
    pub fn from_sinks(
        config: ClusterConfig,
        keys: KeyRegistry,
        sinks: Vec<Vec<Box<dyn ReplicaSink>>>,
    ) -> Self {
        let stats = ClusterStats::new(config.shards);
        Self::from_sinks_with_stats(config, keys, sinks, stats)
    }

    /// Like [`ClusterLogClient::from_sinks`], but accounting into
    /// externally owned counters (e.g. a [`LoggerCluster`]'s own stats).
    pub fn from_sinks_with_stats(
        config: ClusterConfig,
        keys: KeyRegistry,
        sinks: Vec<Vec<Box<dyn ReplicaSink>>>,
        stats: ClusterStats,
    ) -> Self {
        let ring = HashRing::new(config.shards, config.vnodes);
        let shards = sinks
            .into_iter()
            .map(|replicas| ShardLanes {
                order: Mutex::new(()),
                replicas,
                breakers: Mutex::new(Vec::new()),
            })
            .collect();
        let client = ClusterLogClient {
            ring,
            config,
            keys,
            shards,
            stats,
            volume: LogStats::new(),
            attestations: None,
        };
        if let Some(breaker_cfg) = client.config.breaker.clone() {
            client.install_breakers(&breaker_cfg, Arc::new(SystemClock));
        }
        client
    }

    /// (Re)wraps every replica lane in a circuit breaker driven by `clock`
    /// — tests inject a [`adlp_pubsub::ManualClock`] to walk cooldowns
    /// deterministically. Each lane's breaker is seeded from `cfg.seed`
    /// mixed with its shard and replica indices so jitter trajectories are
    /// reproducible but decorrelated across lanes.
    pub fn install_breakers(&self, cfg: &adlp_pubsub::BreakerConfig, clock: Arc<dyn Clock>) {
        for (shard, lane) in self.shards.iter().enumerate() {
            let breakers = lane
                .replicas
                .iter()
                .enumerate()
                .map(|(replica, _)| {
                    let seed = cfg
                        .seed
                        .wrapping_add((shard as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15))
                        .wrapping_add((replica as u64).wrapping_mul(0xD1B5_4A32_D192_ED03));
                    CircuitBreaker::new(cfg.clone().with_seed(seed), Arc::clone(&clock))
                })
                .collect();
            *lane.breakers.lock() = breakers;
        }
    }

    /// A TCP client: one reconnecting connection per replica endpoint
    /// (`addrs` holds one inner `Vec` per shard, in ring order).
    ///
    /// # Errors
    ///
    /// Returns [`LogError::Malformed`] when `addrs` disagrees with the
    /// configuration, or connection errors.
    pub fn remote(
        config: ClusterConfig,
        keys: KeyRegistry,
        addrs: &[Vec<SocketAddr>],
        reconnect: ReconnectConfig,
    ) -> Result<Self, LogError> {
        config.validate()?;
        if addrs.len() != config.shards || addrs.iter().any(|a| a.len() != config.replicas) {
            return Err(LogError::Malformed("cluster endpoints (shape)"));
        }
        let mut sinks: Vec<Vec<Box<dyn ReplicaSink>>> = Vec::with_capacity(addrs.len());
        for shard in addrs {
            let mut lanes: Vec<Box<dyn ReplicaSink>> = Vec::with_capacity(shard.len());
            for addr in shard {
                lanes.push(Box::new(RemoteReplicaSink::connect(
                    *addr,
                    reconnect.clone(),
                )?));
            }
            sinks.push(lanes);
        }
        Ok(Self::from_sinks(config, keys, sinks))
    }

    /// The shard the ring assigns to a (publisher, topic) link.
    pub fn shard_for(&self, publisher: &NodeId, topic: &Topic) -> usize {
        self.ring.shard_for(publisher, topic)
    }

    /// Deposits an entry: routes it to its shard, fans it out to every
    /// replica in one serialized order, and accounts the quorum outcome.
    /// Never blocks on a dead replica and never errors — like
    /// [`adlp_logger::LoggerHandle::submit`], all degradation is counted
    /// ([`ClusterStats`]) *and* surfaced as a [`SubmitOutcome`], never
    /// silent. `Lost` means the write quorum was missed.
    pub fn submit(&self, entry: LogEntry) -> SubmitOutcome {
        if self.fan_out(&entry, false).quorate {
            SubmitOutcome::Accepted
        } else {
            SubmitOutcome::Lost
        }
    }

    /// Deposits an entry and only reports success once a write quorum of
    /// replicas reports it *durable* (synced into their WALs) — the
    /// ack-after-durable path. Accounting is identical to
    /// [`ClusterLogClient::submit`]; a sub-quorum outcome is both counted
    /// and returned as an error so the caller can refuse its own ack.
    ///
    /// # Errors
    ///
    /// Returns [`LogError::Io`] when fewer than W replicas made the entry
    /// durable.
    pub fn submit_durable(&self, entry: LogEntry) -> Result<(), LogError> {
        let outcome = self.fan_out(&entry, true);
        if outcome.quorate {
            Ok(())
        } else {
            Err(LogError::Io(format!(
                "durable write quorum not reached on shard {} ({} acks < W={})",
                outcome.shard, outcome.accepted, self.config.write_quorum
            )))
        }
    }

    /// One routed, serialized fan-out; returns the quorum outcome. All
    /// accounting (stats + quorum-acked volume) happens here.
    ///
    /// Crash-quorum mode counts *acceptances* (a live replica took the
    /// entry). BFT mode counts *matching signed head attestations*: every
    /// returned attestation is verified and fed through the shared
    /// attestation ledger (so an equivocating signature convicts its
    /// signer right here at deposit time), and the entry is acknowledged
    /// only once `2f+1` attestations agree on one (scope, head). A replica
    /// that stays silent, fails verification, claims an ungranted
    /// incarnation, or signs a head nobody else signed simply does not
    /// count — it can withhold liveness, never forge agreement. A BFT
    /// configuration with no attestation ledger wired refuses outright:
    /// signed-quorum trust is never silently downgraded.
    fn fan_out(&self, entry: &LogEntry, durable: bool) -> FanOutOutcome {
        let shard_idx = self.ring.shard_for(&entry.component, &entry.topic);
        let bft = match (&self.config.bft, &self.attestations) {
            (Some(cfg), Some(ledger)) => Some((cfg.attest_quorum(), ledger)),
            (Some(cfg), None) => {
                // A BFT configuration without an attestation ledger cannot
                // verify a single signature. Refuse the deposit — counted
                // as lost, surfaced as a failed ack — instead of silently
                // downgrading a "BFT" client to unsigned crash-quorum
                // trust. `in_proc` wires the ledger automatically;
                // `from_sinks` assemblies must call `with_attestations`.
                self.stats.note_deposit(
                    shard_idx,
                    0,
                    self.config.replicas,
                    cfg.attest_quorum(),
                    Duration::ZERO,
                );
                return FanOutOutcome {
                    shard: shard_idx,
                    accepted: 0,
                    quorate: false,
                };
            }
            (None, _) => None,
        };
        let quorum = bft.as_ref().map_or(self.config.write_quorum, |(q, _)| *q);
        let Some(lane) = self.shards.get(shard_idx) else {
            // Unreachable by construction (the ring only emits known
            // shards), but if it ever happens the loss is still counted.
            self.stats
                .note_deposit(shard_idx, 0, 0, quorum, Duration::ZERO);
            return FanOutOutcome {
                shard: shard_idx,
                accepted: 0,
                quorate: false,
            };
        };
        let encoded_len = entry.encoded_len();
        let started = Instant::now();
        let guard = lane.order.lock();
        let mut breakers = lane.breakers.lock();
        let mut accepted = 0usize;
        let mut attestations: Vec<HeadAttestation> = Vec::new();
        for (i, sink) in lane.replicas.iter().enumerate() {
            // An open breaker routes around the replica: the lane counts as
            // refused for this entry (same as a dead replica), without
            // paying for the doomed call. Half-open admissions probe it.
            if let Some(breaker) = breakers.get_mut(i) {
                match breaker.admit() {
                    Admission::Rejected => {
                        self.stats.note_breaker_rejection();
                        continue;
                    }
                    Admission::Allowed | Admission::Probe => {}
                }
            }
            let took = match &bft {
                None => {
                    if durable {
                        sink.deposit_durable(entry)
                    } else {
                        sink.deposit(entry)
                    }
                }
                Some((_, ledger)) => match sink.deposit_attested(entry, durable) {
                    None => false,
                    Some(att) => {
                        // Whatever identity the attestation claims, it is
                        // evidence — run it through the split-view
                        // detector (a stolen genuine signature lands on
                        // its true signer's record; a forged one is
                        // rejected there).
                        let speaks_as_self = att.shard == shard_idx && att.replica == i;
                        let observation = ledger.observe(att.clone());
                        self.stats.note_observation(&observation);
                        let valid = !matches!(
                            observation,
                            Observation::BadSignature | Observation::BadIncarnation
                        );
                        // Only a replica speaking verifiably as *itself*
                        // joins the quorum count — a lane replaying some
                        // other replica's voice cannot double a vote.
                        if valid && speaks_as_self {
                            attestations.push(att);
                            true
                        } else {
                            false
                        }
                    }
                },
            };
            if let Some(breaker) = breakers.get_mut(i) {
                let transition = if took {
                    breaker.on_success()
                } else {
                    breaker.on_failure()
                };
                if let Some(t) = transition {
                    self.stats.note_breaker_transition(t);
                    sink.note_breaker(t);
                }
            }
            if took {
                accepted += 1;
            }
        }
        drop(breakers);
        drop(guard);
        // BFT: agreement means 2f+1 signatures over the SAME (scope, head)
        // — a valid signature over a head nobody else signed supports
        // nothing.
        let supporting = match &bft {
            None => accepted,
            Some(_) => attestations
                .iter()
                .map(|a| {
                    attestations
                        .iter()
                        .filter(|b| a.scope == b.scope && a.head == b.head)
                        .count()
                })
                .max()
                .unwrap_or(0),
        };
        let refused = lane.replicas.len().saturating_sub(supporting);
        self.stats
            .note_deposit(shard_idx, supporting, refused, quorum, started.elapsed());
        let quorate = supporting >= quorum;
        if quorate {
            self.volume.record(&entry.component, &entry.topic, encoded_len);
        }
        FanOutOutcome {
            shard: shard_idx,
            accepted: supporting,
            quorate,
        }
    }

    /// Registers a component key cluster-wide (the registry is shared by
    /// every replica of every shard, including ones restarted later).
    ///
    /// # Errors
    ///
    /// Returns [`LogError::KeyConflict`] for a conflicting registration.
    pub fn register_key(&self, component: &NodeId, key: RsaPublicKey) -> Result<(), LogError> {
        self.keys.register(component, key)
    }

    /// Flushes every shard.
    ///
    /// # Errors
    ///
    /// Returns [`LogError::ServerClosed`] when some shard could not confirm
    /// a write-quorum of flushes (its durable state is in doubt).
    pub fn flush(&self) -> Result<(), LogError> {
        let mut all_quorate = true;
        for lane in &self.shards {
            let confirmed = lane
                .replicas
                .iter()
                .filter(|sink| sink.flush_replica())
                .count();
            all_quorate &= confirmed >= self.config.write_quorum;
        }
        if all_quorate {
            Ok(())
        } else {
            Err(LogError::ServerClosed)
        }
    }

    /// The cluster-wide key registry.
    pub fn keys(&self) -> &KeyRegistry {
        &self.keys
    }

    /// Quorum/failover accounting.
    pub fn stats(&self) -> &ClusterStats {
        &self.stats
    }

    /// Volume accounting over quorum-acknowledged deposits (mirrors the
    /// single logger's [`LogStats`], so reports read one source either way).
    pub fn volume(&self) -> &LogStats {
        &self.volume
    }

    /// The cluster configuration.
    pub fn config(&self) -> &ClusterConfig {
        &self.config
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adlp_logger::Direction;
    use adlp_pubsub::{BreakerConfig, ManualClock};
    use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

    fn entry(publisher: &str, topic: &str, seq: u64) -> LogEntry {
        LogEntry::naive(
            NodeId::new(publisher),
            Topic::new(topic),
            Direction::Out,
            seq,
            seq,
            vec![3u8; 24],
        )
    }

    #[test]
    fn quorum_met_with_one_replica_down() {
        let cluster = LoggerCluster::spawn(ClusterConfig::replicated(2)).unwrap();
        let client = ClusterLogClient::in_proc(&cluster);
        cluster.kill_replica(0, 0);
        cluster.kill_replica(1, 2);
        for seq in 0..20 {
            assert!(client.submit(entry("cam", "image", seq)).is_accepted());
            assert!(client.submit(entry("lidar", "scan", seq)).is_accepted());
        }
        client.flush().unwrap();
        let s = client.stats().snapshot();
        assert_eq!(s.submitted, 40);
        assert_eq!(s.entries_lost, 0, "2 of 3 replicas ≥ W=2: no loss");
        assert!(s.failovers > 0, "dead replicas must show as failovers");
        assert!(s.balanced());
        assert_eq!(client.volume().snapshot().entries, 40);
    }

    #[test]
    fn quorum_failure_is_counted_never_silent() {
        let cluster = LoggerCluster::spawn(ClusterConfig::replicated(1)).unwrap();
        let client = ClusterLogClient::in_proc(&cluster);
        cluster.kill_replica(0, 0);
        cluster.kill_replica(0, 1);
        for seq in 0..10 {
            assert_eq!(client.submit(entry("cam", "image", seq)), SubmitOutcome::Lost);
        }
        let s = client.stats().snapshot();
        assert_eq!(s.submitted, 10);
        assert_eq!(s.entries_lost, 10, "1 of 3 replicas < W=2: all lost");
        assert_eq!(s.acked, 0);
        assert!(s.balanced());
        assert!(client.flush().is_err(), "sub-quorum flush must not claim durability");
    }

    /// A replica lane whose health the test controls, counting every
    /// deposit call it actually receives.
    #[derive(Debug, Default)]
    struct ScriptedSink {
        up: AtomicBool,
        calls: AtomicU64,
    }

    impl ReplicaSink for Arc<ScriptedSink> {
        fn deposit(&self, _entry: &LogEntry) -> bool {
            self.calls.fetch_add(1, Ordering::SeqCst);
            self.up.load(Ordering::SeqCst)
        }

        fn flush_replica(&self) -> bool {
            self.up.load(Ordering::SeqCst)
        }
    }

    #[test]
    fn breaker_routes_around_dead_replica_and_recloses() {
        let sick = Arc::new(ScriptedSink::default());
        let healthy = Arc::new(ScriptedSink::default());
        healthy.up.store(true, Ordering::SeqCst);
        let config = ClusterConfig::new(1)
            .with_replicas(2)
            .with_write_quorum(1)
            .with_breaker(BreakerConfig::default().with_trip(4, 4));
        let sinks: Vec<Vec<Box<dyn ReplicaSink>>> = vec![vec![
            Box::new(Arc::clone(&sick)),
            Box::new(Arc::clone(&healthy)),
        ]];
        let client = ClusterLogClient::from_sinks(config, KeyRegistry::new(), sinks);
        let clock = Arc::new(ManualClock::new(1));
        client.install_breakers(&BreakerConfig::default().with_trip(4, 4), clock.clone());

        // Four failures saturate the sick lane's window and trip it.
        for seq in 0..4 {
            assert!(client.submit(entry("cam", "image", seq)).is_accepted());
        }
        let s = client.stats().snapshot();
        assert_eq!(s.breaker_trips, 1, "sick lane must trip: {s:?}");
        assert!(s.failovers >= 4, "quorum met by the healthy survivor");

        // While open, the sick sink is not even called.
        let calls_when_tripped = sick.calls.load(Ordering::SeqCst);
        for seq in 4..8 {
            assert!(client.submit(entry("cam", "image", seq)).is_accepted());
        }
        assert_eq!(sick.calls.load(Ordering::SeqCst), calls_when_tripped);
        assert!(client.stats().snapshot().breaker_rejections >= 4);

        // The replica heals; past the cooldown, half-open probes re-admit
        // it and the breaker closes after enough successes.
        sick.up.store(true, Ordering::SeqCst);
        clock.advance_ns(2_000_000_000);
        for seq in 8..12 {
            assert!(client.submit(entry("cam", "image", seq)).is_accepted());
        }
        let s = client.stats().snapshot();
        assert_eq!(s.breaker_closes, 1, "healed lane must re-close: {s:?}");
        assert!(sick.calls.load(Ordering::SeqCst) > calls_when_tripped);
        assert!(s.balanced());
    }

    #[test]
    fn bft_client_without_ledger_refuses_instead_of_downgrading() {
        use crate::cluster::LoggerCluster;
        // A BFT cluster, but the client is assembled via from_sinks and
        // never wired to the attestation ledger: it must not quietly fall
        // back to counting unsigned acceptances against the 2f+1 quorum.
        let cluster = LoggerCluster::spawn(ClusterConfig::byzantine(1, 1)).unwrap();
        let sinks: Vec<Vec<Box<dyn ReplicaSink>>> = vec![cluster
            .shard_replicas(0)
            .iter()
            .map(|slot| crate::client::slot_sink(Arc::clone(slot)))
            .collect()];
        let client =
            ClusterLogClient::from_sinks(cluster.config().clone(), cluster.keys().clone(), sinks);

        for seq in 0..3 {
            assert_eq!(
                client.submit(entry("cam", "image", seq)),
                SubmitOutcome::Lost,
                "misassembled BFT client must refuse, not downgrade"
            );
        }
        let s = client.stats().snapshot();
        assert_eq!(s.entries_lost, 3);
        assert_eq!(s.acked, 0);
        assert!(s.balanced());
        // No replica even saw the entries: the refusal is at the trust
        // boundary, before any fan-out.
        for slot in cluster.shard_replicas(0) {
            assert_eq!(slot.handle().store().len(), 0);
        }

        // The same assembly with the ledger wired works.
        let sinks: Vec<Vec<Box<dyn ReplicaSink>>> = vec![cluster
            .shard_replicas(0)
            .iter()
            .map(|slot| crate::client::slot_sink(Arc::clone(slot)))
            .collect()];
        let wired =
            ClusterLogClient::from_sinks(cluster.config().clone(), cluster.keys().clone(), sinks)
                .with_attestations(cluster.attestations().unwrap().clone());
        assert!(wired.submit(entry("cam", "image", 9)).is_accepted());
    }

    #[test]
    fn shard_depths_track_routing() {
        let cluster = LoggerCluster::spawn(ClusterConfig::new(3)).unwrap();
        let client = ClusterLogClient::in_proc(&cluster);
        for i in 0..30 {
            assert!(client.submit(entry(&format!("node{i}"), "t", 1)).is_accepted());
        }
        client.flush().unwrap();
        let s = client.stats().snapshot();
        assert_eq!(s.shard_depth.iter().sum::<u64>(), 30);
        assert!(
            s.shard_depth.iter().filter(|&&d| d > 0).count() > 1,
            "30 publishers must spread over shards: {:?}",
            s.shard_depth
        );
        // Replica stores agree with the routing counts.
        for (shard, &depth) in s.shard_depth.iter().enumerate() {
            for slot in cluster.shard_replicas(shard) {
                assert_eq!(slot.handle().store().len() as u64, depth);
            }
        }
    }
}
