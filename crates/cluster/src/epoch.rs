//! Epoch sealing: cross-shard Merkle anchoring.
//!
//! Per-shard Merkle roots alone let each shard be rolled back
//! independently — an attacker controlling one shard's replicas could
//! present an older, shorter log. Sealing an epoch collects every shard's
//! (root, length) into one Merkle tree whose root — the **super-root** —
//! is signed by the cluster's sealing key. An auditor then verifies each
//! shard's live root against the sealed one: any shard presenting a
//! different root (or a shorter log) contradicts a signed commitment.

use adlp_crypto::rsa::RsaPrivateKey;
use adlp_crypto::sha256::{Digest, Sha256};
use adlp_crypto::{pkcs1, CryptoError, RsaPublicKey, Signature};
use adlp_logger::merkle::MerkleTree;
use adlp_logger::sth::{SignedTreeHead, TreeHeadSigner};
use adlp_logger::LogError;
use adlp_pubsub::NodeId;

/// The log identity a shard's tree head is published under — the name
/// witnesses and light clients track per shard.
pub fn shard_log_id(shard: usize) -> NodeId {
    NodeId::new(format!("adlp-shard-{shard}"))
}

/// The sentinel root an empty shard contributes, so every shard always
/// occupies its leaf position in the super-root.
pub fn empty_shard_root() -> Digest {
    adlp_crypto::sha256(b"adlp-cluster/empty-shard")
}

/// One shard's anchoring input: its quorum-log Merkle root and length.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardRoot {
    /// Shard index.
    pub shard: usize,
    /// Number of records committed under `root`.
    pub leaf_count: usize,
    /// Merkle root over the shard's quorum log.
    pub root: Digest,
}

impl ShardRoot {
    /// The super-root leaf digest binding shard index, length, and root.
    pub fn leaf_digest(&self) -> Digest {
        let mut h = Sha256::new();
        h.update(b"adlp-cluster/shard-root");
        h.update(&(self.shard as u64).to_le_bytes());
        h.update(&(self.leaf_count as u64).to_le_bytes());
        h.update(self.root.as_bytes());
        h.finalize()
    }
}

/// A sealed epoch: every shard's root anchored under one signed
/// cross-shard super-root.
#[derive(Debug, Clone)]
pub struct EpochSeal {
    /// Monotonically increasing epoch number.
    pub epoch: u64,
    /// Per-shard roots, in shard order.
    pub shard_roots: Vec<ShardRoot>,
    /// Merkle root over the shard-root leaf digests.
    pub super_root: Digest,
    /// PKCS#1 v1.5 signature by the cluster sealing key over
    /// `h("adlp-cluster/epoch-seal" ‖ epoch ‖ super_root)`.
    pub signature: Signature,
}

fn super_root_of(shard_roots: &[ShardRoot]) -> Digest {
    let leaves: Vec<Digest> = shard_roots.iter().map(ShardRoot::leaf_digest).collect();
    MerkleTree::build(&leaves).root().unwrap_or_else(empty_shard_root)
}

fn seal_digest(epoch: u64, super_root: &Digest) -> Digest {
    let mut h = Sha256::new();
    h.update(b"adlp-cluster/epoch-seal");
    h.update(&epoch.to_le_bytes());
    h.update(super_root.as_bytes());
    h.finalize()
}

impl EpochSeal {
    /// Builds and signs a seal over `shard_roots`.
    ///
    /// # Errors
    ///
    /// Propagates signing failures (e.g. an undersized sealing key).
    pub fn build(
        epoch: u64,
        shard_roots: Vec<ShardRoot>,
        sealing_key: &RsaPrivateKey,
    ) -> Result<EpochSeal, CryptoError> {
        let super_root = super_root_of(&shard_roots);
        let signature = pkcs1::sign_digest(sealing_key, &seal_digest(epoch, &super_root))?;
        Ok(EpochSeal {
            epoch,
            shard_roots,
            super_root,
            signature,
        })
    }

    /// Verifies the seal's internal consistency and signature: the claimed
    /// super-root must re-derive from the claimed shard roots, and the
    /// signature must verify under the cluster's sealing public key.
    pub fn verify(&self, sealing_key: &RsaPublicKey) -> bool {
        super_root_of(&self.shard_roots) == self.super_root
            && pkcs1::verify_digest(
                sealing_key,
                &seal_digest(self.epoch, &self.super_root),
                &self.signature,
            )
    }

    /// Derives one [`SignedTreeHead`] per anchored shard, signed by the
    /// cluster's STH key. The heads let the witness set and light clients
    /// track each shard as an ordinary log (identity
    /// [`shard_log_id`]`(i)`), while the super-root signature keeps the
    /// shards mutually bound: a shard that later shows a different head at
    /// the same size is convicted by the usual split-view pair, and a seal
    /// omitting a shard fails [`EpochSeal::verify`] re-derivation.
    ///
    /// # Errors
    ///
    /// Propagates signing failures (e.g. an undersized key).
    pub fn shard_heads(&self, sth_key: &RsaPrivateKey) -> Result<Vec<SignedTreeHead>, LogError> {
        self.shard_roots
            .iter()
            .map(|r| {
                let key = RsaPrivateKey::from_bytes(&sth_key.to_bytes())
                    .map_err(|_| LogError::Malformed("shard sth key"))?;
                TreeHeadSigner::new(shard_log_id(r.shard), key).sign(
                    self.epoch,
                    r.leaf_count as u64,
                    r.root,
                )
            })
            .collect()
    }

    /// Verifies one shard's *live* state against the seal: the shard's
    /// gathered quorum root and length must match what was anchored. A
    /// mismatch means the shard's history changed after sealing (rollback
    /// or rewrite).
    pub fn verify_shard(&self, shard: usize, live_root: &Digest, live_leaf_count: usize) -> bool {
        let Some(sealed) = self.shard_roots.iter().find(|r| r.shard == shard) else {
            return false;
        };
        // An inclusion proof ties the sealed leaf to the super-root, so a
        // verifier holding only (seal, one shard) needs no other shards.
        let leaves: Vec<Digest> = self.shard_roots.iter().map(ShardRoot::leaf_digest).collect();
        let tree = MerkleTree::build(&leaves);
        let position = self.shard_roots.iter().position(|r| r.shard == shard);
        let proven = position
            .and_then(|i| tree.prove(i))
            .is_some_and(|proof| {
                MerkleTree::verify(
                    &self.super_root,
                    self.shard_roots.len(),
                    &sealed.leaf_digest(),
                    &proof,
                )
            });
        proven && sealed.root == *live_root && sealed.leaf_count == live_leaf_count
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adlp_crypto::RsaKeyPair;
    use rand::SeedableRng;

    fn roots() -> Vec<ShardRoot> {
        (0..3)
            .map(|shard| ShardRoot {
                shard,
                leaf_count: shard * 2,
                root: adlp_crypto::sha256(&[shard as u8; 4]),
            })
            .collect()
    }

    fn keypair() -> RsaKeyPair {
        let mut rng = rand::rngs::StdRng::seed_from_u64(11);
        RsaKeyPair::generate(512, &mut rng)
    }

    #[test]
    fn seal_roundtrip_verifies() {
        let kp = keypair();
        let seal = EpochSeal::build(1, roots(), kp.private_key()).unwrap();
        assert!(seal.verify(kp.public_key()));
        for r in roots() {
            assert!(seal.verify_shard(r.shard, &r.root, r.leaf_count));
        }
    }

    #[test]
    fn tampered_shard_root_fails_verification() {
        let kp = keypair();
        let seal = EpochSeal::build(1, roots(), kp.private_key()).unwrap();
        let rollback = adlp_crypto::sha256(b"older history");
        assert!(!seal.verify_shard(1, &rollback, 2));
        assert!(!seal.verify_shard(1, &adlp_crypto::sha256(&[1u8; 4]), 99));
        assert!(!seal.verify_shard(9, &rollback, 0));
    }

    #[test]
    fn shard_heads_are_witnessable_and_conflict_on_rollback() {
        let kp = keypair();
        let seal = EpochSeal::build(3, roots(), kp.private_key()).unwrap();
        let heads = seal.shard_heads(kp.private_key()).unwrap();
        assert_eq!(heads.len(), 3);
        for (head, anchored) in heads.iter().zip(roots()) {
            assert_eq!(head.log, shard_log_id(anchored.shard));
            assert_eq!(head.epoch, 3);
            assert_eq!(head.size, anchored.leaf_count as u64);
            assert_eq!(head.root, anchored.root);
            assert!(head.verify(kp.public_key()));
        }

        // A rewritten shard at the same length yields a conflicting head —
        // the split-view condition witnesses convict on.
        let mut rewritten = roots();
        rewritten[2].root = adlp_crypto::sha256(b"rewritten");
        let forked = EpochSeal::build(4, rewritten, kp.private_key()).unwrap();
        let forked_heads = forked.shard_heads(kp.private_key()).unwrap();
        assert!(heads[2].conflicts_with(&forked_heads[2]));
        assert!(!heads[0].conflicts_with(&forked_heads[0]), "untouched shards stay consistent");
    }

    #[test]
    fn doctored_seal_fails_signature_or_consistency() {
        let kp = keypair();
        let mut seal = EpochSeal::build(2, roots(), kp.private_key()).unwrap();
        // Claiming different shard roots breaks super-root re-derivation.
        if let Some(first) = seal.shard_roots.first_mut() {
            first.leaf_count += 1;
        }
        assert!(!seal.verify(kp.public_key()));

        // A re-derived-but-unsigned super-root breaks the signature.
        let mut seal2 = EpochSeal::build(2, roots(), kp.private_key()).unwrap();
        if let Some(first) = seal2.shard_roots.first_mut() {
            first.leaf_count += 1;
        }
        seal2.super_root = super_root_of(&seal2.shard_roots);
        assert!(!seal2.verify(kp.public_key()));

        // The wrong public key never verifies.
        let mut rng = rand::rngs::StdRng::seed_from_u64(12);
        let other = RsaKeyPair::generate(512, &mut rng);
        let good = EpochSeal::build(2, roots(), kp.private_key()).unwrap();
        assert!(!good.verify(other.public_key()));
    }
}
