//! `adlp-cluster`: a sharded, quorum-replicated trusted-logger cluster.
//!
//! The paper's trusted logger is a single deposit point (§II-A); this crate
//! scales it out without weakening its audit guarantees:
//!
//! * [`ring`] — a deterministic consistent-hash ring keyed on
//!   (publisher identity, topic) that assigns every log entry to a shard;
//! * [`cluster`] — [`cluster::LoggerCluster`]: N shards × R replica
//!   [`adlp_logger::LogServer`] backends sharing one key registry, with
//!   kill/restart hooks for fault drills;
//! * [`client`] — [`client::ClusterLogClient`]: the deposit router that fans
//!   each entry out to a shard's replicas and counts W-of-R quorum
//!   acknowledgement; degradation is always counted
//!   ([`stats::ClusterStats`]), never silent;
//! * [`epoch`] — epoch sealing: per-shard Merkle roots anchored under one
//!   signed cross-shard super-root, so no shard can be rolled back
//!   independently;
//! * [`view`] — cross-replica comparison: a gathered [`view::ClusterView`]
//!   classifies every replica as consistent, lagging (fail-stop; a strict
//!   prefix of the quorum log), or *diverged* (conflicting content — tamper
//!   evidence naming the shard and replica);
//! * [`attestation`] — Byzantine mode: per-replica signed head
//!   attestations, `2f+1`-of-`3f+1` signed-quorum acks, and transferable
//!   [`attestation::EquivocationProof`]s minted by a shared split-view
//!   ledger; a convicted replica surfaces as
//!   [`view::ReplicaStatus::Equivocated`] — the first *provably malicious*
//!   verdict in the lattice.
//!
//! # Trust model
//!
//! Replicas are **fail-stop for availability, untrusted for integrity**: a
//! crashed or lagging replica only costs redundancy, while any replica that
//! *rewrites* history is exposed by cross-replica divergence and by the
//! signed epoch super-root. The cluster therefore never trusts a single
//! backend's story; auditors read all replicas of all shards. In BFT mode
//! the assumption weakens further — up to `f` of `3f+1` replicas per shard
//! may be *actively malicious* (equivocate, replay, withhold), and every
//! such behavior ends in either continued liveness or a self-incriminating,
//! transferable proof, never silent acceptance.

pub mod attestation;
pub mod client;
pub mod cluster;
pub mod config;
pub mod epoch;
pub mod ring;
pub mod stats;
pub mod view;

pub use attestation::{
    AttestationLog, AttestationScope, BftConfig, EquivocationProof, HeadAttestation, Observation,
    ReplicaAttestor, ReplicaKeyring,
};
pub use client::{slot_sink, ClusterLogClient, ReplicaSink};
pub use cluster::LoggerCluster;
pub use config::ClusterConfig;
pub use epoch::{EpochSeal, ShardRoot};
pub use ring::HashRing;
pub use stats::{ClusterStats, ClusterStatsSnapshot};
pub use view::{ClusterView, ReplicaDivergence, ReplicaStatus, ShardView};
