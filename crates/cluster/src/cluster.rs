//! The replica fleet: N shards × R replica [`LogServer`] backends.

use crate::config::ClusterConfig;
use crate::epoch::EpochSeal;
use crate::stats::ClusterStats;
use crate::view::{self, ClusterView};
use adlp_crypto::rsa::RsaPrivateKey;
use adlp_logger::{
    DurabilityConfig, DurabilityStats, KeyRegistry, LogError, LogServer, LoggerHandle, Recovery,
    Storage, SyncPolicy,
};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// One replica backend of one shard. The inner [`LogServer`] can be killed
/// (simulated crash) and later replaced by a fresh server — the fail-stop
/// lifecycle the trust model allows replicas. A *durable* slot keeps its
/// [`DurabilityConfig`], so a restart reopens the same storage device and
/// recovers the acked prefix instead of starting empty.
#[derive(Debug)]
pub struct ReplicaSlot {
    shard: usize,
    index: usize,
    server: Mutex<LogServer>,
    durability: Option<DurabilityConfig>,
}

impl ReplicaSlot {
    /// A handle to the replica's current server incarnation.
    pub fn handle(&self) -> LoggerHandle {
        self.server.lock().handle()
    }

    /// Shard this replica belongs to.
    pub fn shard(&self) -> usize {
        self.shard
    }

    /// Replica index within the shard.
    pub fn index(&self) -> usize {
        self.index
    }

    /// Simulates a crash of this replica (fail-stop: the store freezes,
    /// new submissions are refused).
    pub fn kill(&self) {
        self.server.lock().kill();
    }

    /// Replaces a (killed) replica with a fresh server sharing the cluster
    /// key registry — a rolling-restart step. A durable slot reopens its
    /// storage and recovers the acked prefix (returning what recovery
    /// found); a volatile slot comes back *empty*. Either way the restarted
    /// replica re-enters as a lagging follower; it never masquerades as
    /// having history it does not hold.
    ///
    /// # Errors
    ///
    /// Returns [`LogError::Io`] when the OS refuses to create the thread or
    /// the storage device refuses recovery outright.
    pub fn restart(&self, keys: KeyRegistry) -> Result<Option<Recovery>, LogError> {
        match &self.durability {
            Some(config) => {
                let spawned = LogServer::try_spawn_durable(keys, config)?;
                *self.server.lock() = spawned.server;
                Ok(Some(spawned.recovery))
            }
            None => {
                let fresh = LogServer::try_spawn_with_keys(keys)?;
                *self.server.lock() = fresh;
                Ok(None)
            }
        }
    }

    /// Whether this slot persists its log across restarts.
    pub fn is_durable(&self) -> bool {
        self.durability.is_some()
    }
}

/// A sharded, replicated trusted-logger cluster.
///
/// All replicas share one [`KeyRegistry`], so a key registered once is
/// honored cluster-wide (including by replicas restarted later).
#[derive(Debug)]
pub struct LoggerCluster {
    config: ClusterConfig,
    keys: KeyRegistry,
    shards: Vec<Vec<Arc<ReplicaSlot>>>,
    epoch: AtomicU64,
    stats: ClusterStats,
}

impl LoggerCluster {
    /// Spawns `shards × replicas` volatile backends.
    ///
    /// # Errors
    ///
    /// Returns [`LogError::Malformed`] for an invalid configuration and
    /// [`LogError::Io`] when a backend thread cannot be created.
    pub fn spawn(config: ClusterConfig) -> Result<Self, LogError> {
        config.validate()?;
        let keys = KeyRegistry::new();
        let stats = ClusterStats::new(config.shards);
        let mut shards = Vec::with_capacity(config.shards);
        for shard in 0..config.shards {
            let mut replicas = Vec::with_capacity(config.replicas);
            for index in 0..config.replicas {
                let server = LogServer::try_spawn_with_keys(keys.clone())?;
                replicas.push(Arc::new(ReplicaSlot {
                    shard,
                    index,
                    server: Mutex::new(server),
                    durability: None,
                }));
            }
            shards.push(replicas);
        }
        Ok(LoggerCluster {
            config,
            keys,
            shards,
            epoch: AtomicU64::new(0),
            stats,
        })
    }

    /// Spawns `shards × replicas` *durable* backends, one storage device per
    /// replica (`storages` holds one inner `Vec` per shard). Every replica
    /// recovers whatever its device already holds, and all replicas share
    /// one [`DurabilityStats`] — also wired into this cluster's
    /// [`ClusterStats`], so fsync failures and truncated records anywhere in
    /// the fleet surface in cluster snapshots live.
    ///
    /// # Errors
    ///
    /// Returns [`LogError::Malformed`] for an invalid configuration or a
    /// `storages` shape that disagrees with it, and [`LogError::Io`] when a
    /// backend thread cannot be created or a device refuses recovery.
    pub fn spawn_durable(
        config: ClusterConfig,
        storages: Vec<Vec<Arc<dyn Storage>>>,
        fsync: SyncPolicy,
        rotate_every: usize,
    ) -> Result<Self, LogError> {
        config.validate()?;
        if storages.len() != config.shards || storages.iter().any(|s| s.len() != config.replicas) {
            return Err(LogError::Malformed("cluster storages (shape)"));
        }
        let keys = KeyRegistry::new();
        let durability = DurabilityStats::default();
        let stats = ClusterStats::with_durability(config.shards, durability.clone());
        let mut shards = Vec::with_capacity(config.shards);
        for (shard, shard_storages) in storages.into_iter().enumerate() {
            let mut replicas = Vec::with_capacity(config.replicas);
            for (index, storage) in shard_storages.into_iter().enumerate() {
                let slot_config = DurabilityConfig::new(storage)
                    .fsync(fsync)
                    .rotate_every(rotate_every)
                    .counters(durability.clone());
                let spawned = LogServer::try_spawn_durable(keys.clone(), &slot_config)?;
                replicas.push(Arc::new(ReplicaSlot {
                    shard,
                    index,
                    server: Mutex::new(spawned.server),
                    durability: Some(slot_config),
                }));
            }
            shards.push(replicas);
        }
        Ok(LoggerCluster {
            config,
            keys,
            shards,
            epoch: AtomicU64::new(0),
            stats,
        })
    }

    /// Cluster-level accounting (shared with clients built over this
    /// cluster; for a durable cluster, also fed by every replica's storage
    /// counters).
    pub fn stats(&self) -> &ClusterStats {
        &self.stats
    }

    /// The cluster configuration.
    pub fn config(&self) -> &ClusterConfig {
        &self.config
    }

    /// The cluster-wide key registry (shared by every replica).
    pub fn keys(&self) -> &KeyRegistry {
        &self.keys
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The replica slots of one shard.
    pub fn shard_replicas(&self, shard: usize) -> &[Arc<ReplicaSlot>] {
        self.shards.get(shard).map_or(&[], Vec::as_slice)
    }

    /// One replica slot, if it exists.
    pub fn replica(&self, shard: usize, replica: usize) -> Option<&Arc<ReplicaSlot>> {
        self.shards.get(shard).and_then(|s| s.get(replica))
    }

    /// Kills one replica (fail-stop crash). Returns whether the slot exists.
    pub fn kill_replica(&self, shard: usize, replica: usize) -> bool {
        match self.replica(shard, replica) {
            Some(slot) => {
                slot.kill();
                true
            }
            None => false,
        }
    }

    /// Restarts one replica. A durable slot reopens its storage device and
    /// recovers the acked prefix (`Some(recovery)` reports what it found);
    /// a volatile slot comes back empty (`None`). Either way it rejoins as
    /// a lagging follower — use [`LoggerCluster::catch_up_replica`] to bring
    /// it back to the quorum log.
    ///
    /// # Errors
    ///
    /// Returns [`LogError::NoSuchEntry`] for an unknown slot and
    /// [`LogError::Io`] when the replacement thread cannot be created or
    /// the storage device refuses recovery.
    pub fn restart_replica(
        &self,
        shard: usize,
        replica: usize,
    ) -> Result<Option<Recovery>, LogError> {
        let slot = self
            .replica(shard, replica)
            .ok_or(LogError::NoSuchEntry(replica))?;
        slot.restart(self.keys.clone())
    }

    /// Brings a lagging replica back to its shard's quorum log by adopting
    /// the records it is missing. The replica's current log must be a
    /// *prefix* of the quorum log — anything else (diverged content, a
    /// replica ahead of the quorum, or a mid-stream window with a hole at
    /// the head) is refused rather than papered over: catch-up repairs
    /// availability, it must never manufacture agreement.
    ///
    /// Returns the number of records adopted.
    ///
    /// **Quiesce the shard first.** Catch-up reads the quorum view and then
    /// adopts the missing suffix record by record, with no exclusion
    /// against concurrent deposits to the same shard: a deposit that
    /// interleaves with the adoption can land at a different position on
    /// this replica than on its peers, creating exactly the lasting order
    /// divergence catch-up exists to repair. Drain or pause client
    /// submissions to the shard for the duration of this call (the
    /// rolling-restart sim scenarios catch up between deposit waves); a
    /// divergence produced by ignoring this shows up in the next
    /// [`LoggerCluster::view`] as a diverged replica, it is not silently
    /// absorbed.
    ///
    /// # Errors
    ///
    /// Returns [`LogError::NoSuchEntry`] for an unknown slot,
    /// [`LogError::Malformed`] when the replica's log is not a prefix of
    /// the quorum log, and submission errors from the adoption path.
    pub fn catch_up_replica(&self, shard: usize, replica: usize) -> Result<usize, LogError> {
        let slot = self
            .replica(shard, replica)
            .ok_or(LogError::NoSuchEntry(replica))?;
        let view = self.view();
        let quorum = view
            .shards
            .get(shard)
            .map(|s| s.records.clone())
            .ok_or(LogError::NoSuchEntry(shard))?;
        let handle = slot.handle();
        let have = handle.store().encoded_records();
        if have.len() > quorum.len() {
            return Err(LogError::Malformed("catch-up (replica ahead of quorum)"));
        }
        if have.iter().zip(quorum.iter()).any(|(a, b)| a != b) {
            return Err(LogError::Malformed("catch-up (replica not a quorum prefix)"));
        }
        let missing = quorum.get(have.len()..).unwrap_or(&[]);
        for record in missing {
            handle.adopt_encoded(record.clone())?;
        }
        handle.flush()?;
        Ok(missing.len())
    }

    /// Gathers every replica's store and cross-checks them (see
    /// [`crate::view`]).
    pub fn view(&self) -> ClusterView {
        view::gather(self)
    }

    /// Seals the next epoch: collects per-shard quorum Merkle roots and
    /// anchors them under one signed cross-shard super-root. Epoch numbers
    /// increase monotonically per cluster.
    ///
    /// # Errors
    ///
    /// Returns [`LogError::Malformed`] when signing fails (e.g. an
    /// undersized sealing key).
    pub fn seal_epoch(&self, sealing_key: &RsaPrivateKey) -> Result<EpochSeal, LogError> {
        let epoch = self.epoch.fetch_add(1, Ordering::SeqCst) + 1;
        let view = self.view();
        EpochSeal::build(epoch, view.shard_roots(), sealing_key)
            .map_err(|_| LogError::Malformed("epoch seal (signing)"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adlp_logger::{Direction, LogEntry};
    use adlp_pubsub::{NodeId, Topic};

    fn entry(seq: u64) -> LogEntry {
        LogEntry::naive(
            NodeId::new("cam"),
            Topic::new("image"),
            Direction::Out,
            seq,
            seq,
            vec![0u8; 16],
        )
    }

    #[test]
    fn spawn_kill_restart_lifecycle() {
        let cluster = LoggerCluster::spawn(ClusterConfig::replicated(2)).unwrap();
        assert_eq!(cluster.shard_count(), 2);
        let slot = cluster.replica(0, 1).unwrap().clone();
        slot.handle().try_submit(entry(1)).unwrap();
        slot.handle().flush().unwrap();
        assert_eq!(slot.handle().store().len(), 1);

        cluster.kill_replica(0, 1);
        assert!(slot.handle().try_submit(entry(2)).is_err());

        cluster.restart_replica(0, 1).unwrap();
        slot.handle().try_submit(entry(3)).unwrap();
        slot.handle().flush().unwrap();
        assert_eq!(slot.handle().store().len(), 1, "restart is empty (lagging)");
    }

    #[test]
    fn replicas_share_one_key_registry() {
        let cluster = LoggerCluster::spawn(ClusterConfig::replicated(2)).unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        use rand::SeedableRng;
        let kp = adlp_crypto::RsaKeyPair::generate(128, &mut rng);
        cluster
            .keys()
            .register(&NodeId::new("cam"), kp.public_key().clone())
            .unwrap();
        for shard in 0..cluster.shard_count() {
            for slot in cluster.shard_replicas(shard) {
                assert!(slot.handle().keys().get(&NodeId::new("cam")).is_some());
            }
        }
        // A restarted replica also sees the registration.
        cluster.restart_replica(1, 0).unwrap();
        let slot = cluster.replica(1, 0).unwrap();
        assert!(slot.handle().keys().get(&NodeId::new("cam")).is_some());
    }

    #[test]
    fn invalid_config_refused() {
        let mut config = ClusterConfig::new(2);
        config.write_quorum = 3;
        assert!(LoggerCluster::spawn(config).is_err());
    }

    #[test]
    fn durable_replica_restart_recovers_and_catches_up() {
        use crate::client::ClusterLogClient;
        use adlp_logger::MemStorage;

        let config = ClusterConfig::replicated(1);
        let devices: Vec<Vec<Arc<MemStorage>>> = (0..config.shards)
            .map(|_| (0..config.replicas).map(|_| Arc::new(MemStorage::new())).collect())
            .collect();
        let storages: Vec<Vec<Arc<dyn Storage>>> = devices
            .iter()
            .map(|shard| {
                shard
                    .iter()
                    .map(|d| Arc::clone(d) as Arc<dyn Storage>)
                    .collect()
            })
            .collect();
        let cluster =
            LoggerCluster::spawn_durable(config, storages, SyncPolicy::EveryAppend, 1024).unwrap();
        let client = ClusterLogClient::in_proc(&cluster);
        for seq in 0..5 {
            client.submit_durable(entry(seq)).unwrap();
        }
        client.flush().unwrap();

        // Crash one replica: fail-stop plus a power cut on its device.
        cluster.kill_replica(0, 2);
        devices[0][2].crash();
        for seq in 5..8 {
            client.submit_durable(entry(seq)).unwrap();
        }
        client.flush().unwrap();

        // The restarted replica recovers its acked prefix — not empty.
        let recovery = cluster
            .restart_replica(0, 2)
            .unwrap()
            .expect("durable slot must report recovery");
        assert_eq!(recovery.records_truncated, 0, "every append was synced");
        let slot = cluster.replica(0, 2).unwrap();
        assert_eq!(slot.handle().store().len(), 5, "acked prefix recovered");

        // It rejoins lagging (never diverged), then catches up to quorum.
        let view = cluster.view();
        assert!(view.divergences().is_empty());
        assert_eq!(view.lagging(), vec![(0, 2, 3)]);
        assert_eq!(cluster.catch_up_replica(0, 2).unwrap(), 3);
        let view = cluster.view();
        assert!(view.divergences().is_empty());
        assert!(view.lagging().is_empty());

        let s = cluster.stats().snapshot();
        assert!(s.balanced());
        assert_eq!(s.acked, 8);
    }

    #[test]
    fn catch_up_refuses_diverged_replica() {
        let cluster = LoggerCluster::spawn(ClusterConfig::replicated(1)).unwrap();
        for slot in cluster.shard_replicas(0) {
            slot.handle().try_submit(entry(1)).unwrap();
            slot.handle().flush().unwrap();
        }
        let victim = cluster.replica(0, 2).unwrap();
        victim
            .handle()
            .store()
            .tamper_with_record(0, entry(9).encode())
            .unwrap();
        assert!(matches!(
            cluster.catch_up_replica(0, 2),
            Err(LogError::Malformed("catch-up (replica not a quorum prefix)"))
        ));
    }
}
