//! The replica fleet: N shards × R replica [`LogServer`] backends.

use crate::attestation::{
    AttestationLog, AttestationScope, ReplicaAttestor, ReplicaKeyring,
};
use crate::config::ClusterConfig;
use crate::epoch::EpochSeal;
use crate::stats::ClusterStats;
use crate::view::{self, ClusterView};
use adlp_crypto::rsa::{RsaPrivateKey, RsaPublicKey};
use adlp_crypto::RsaKeyPair;
use adlp_logger::{
    DurabilityConfig, DurabilityStats, KeyRegistry, LogError, LogServer, LoggerHandle, MemStorage,
    Recorder, Recovery, RecordingWindow, Storage, SyncPolicy,
};
use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// One replica backend of one shard. The inner [`LogServer`] can be killed
/// (simulated crash) and later replaced by a fresh server — the fail-stop
/// lifecycle the trust model allows replicas. A *durable* slot keeps its
/// [`DurabilityConfig`], so a restart reopens the same storage device and
/// recovers the acked prefix instead of starting empty.
#[derive(Debug)]
pub struct ReplicaSlot {
    shard: usize,
    index: usize,
    server: Mutex<LogServer>,
    durability: Option<DurabilityConfig>,
    /// BFT mode only: this replica's attestation identity. The keypair
    /// survives kill/restart — a replica keeps its identity (and its
    /// accountability) across its fail-stop lifecycle.
    attestor: Option<Arc<ReplicaAttestor>>,
}

impl ReplicaSlot {
    /// A handle to the replica's current server incarnation.
    pub fn handle(&self) -> LoggerHandle {
        self.server.lock().handle()
    }

    /// Shard this replica belongs to.
    pub fn shard(&self) -> usize {
        self.shard
    }

    /// Replica index within the shard.
    pub fn index(&self) -> usize {
        self.index
    }

    /// Simulates a crash of this replica (fail-stop: the store freezes,
    /// new submissions are refused).
    pub fn kill(&self) {
        self.server.lock().kill();
    }

    /// Replaces a (killed) replica with a fresh server sharing the cluster
    /// key registry — a rolling-restart step. A durable slot reopens its
    /// storage and recovers the acked prefix (returning what recovery
    /// found); a volatile slot comes back *empty*. Either way the restarted
    /// replica re-enters as a lagging follower; it never masquerades as
    /// having history it does not hold.
    ///
    /// # Errors
    ///
    /// Returns [`LogError::Io`] when the OS refuses to create the thread or
    /// the storage device refuses recovery outright.
    pub fn restart(&self, keys: KeyRegistry) -> Result<Option<Recovery>, LogError> {
        match &self.durability {
            Some(config) => {
                let spawned = LogServer::try_spawn_durable(keys, config)?;
                *self.server.lock() = spawned.server;
                Ok(Some(spawned.recovery))
            }
            None => {
                let fresh = LogServer::try_spawn_with_keys(keys)?;
                *self.server.lock() = fresh;
                Ok(None)
            }
        }
    }

    /// Whether this slot persists its log across restarts.
    pub fn is_durable(&self) -> bool {
        self.durability.is_some()
    }

    /// BFT mode only: this replica's attestation signer. `None` on a
    /// crash-quorum cluster.
    pub fn attestor(&self) -> Option<&Arc<ReplicaAttestor>> {
        self.attestor.as_ref()
    }

    /// Signs this replica's *current true* chain head at its current log
    /// length — the honest deposit/view-time attestation. `None` when the
    /// cluster is not in BFT mode.
    ///
    /// # Errors
    ///
    /// Returns [`LogError::Malformed`] when signing fails.
    pub fn attest_head(&self) -> Result<Option<crate::attestation::HeadAttestation>, LogError> {
        match &self.attestor {
            None => Ok(None),
            Some(attestor) => {
                let handle = self.handle();
                let store = handle.store();
                let scope = AttestationScope::Head {
                    length: store.len() as u64,
                };
                attestor.attest(scope, store.head()).map(Some)
            }
        }
    }
}

/// A sharded, replicated trusted-logger cluster.
///
/// All replicas share one [`KeyRegistry`], so a key registered once is
/// honored cluster-wide (including by replicas restarted later).
#[derive(Debug)]
pub struct LoggerCluster {
    config: ClusterConfig,
    keys: KeyRegistry,
    shards: Vec<Vec<Arc<ReplicaSlot>>>,
    epoch: AtomicU64,
    stats: ClusterStats,
    /// BFT mode only: the shared split-view detector every attestation in
    /// the cluster flows through (deposit acks, view gathering, epoch
    /// countersignatures).
    attestations: Option<AttestationLog>,
    /// Per-shard forensic recorders (None until
    /// [`LoggerCluster::attach_shard_recorders`]); each is shared by every
    /// replica of its shard, so the shard's deposit stream survives
    /// individual replica crashes. Replay dedups the byte-identical frames
    /// the fan-out produces.
    recorders: Mutex<Vec<Option<Arc<Recorder>>>>,
}

/// File name the attestor's restart-critical state persists under on a
/// replica's storage device (alongside the WAL and snapshot files, never
/// clashing with them).
const ATTESTOR_STATE_FILE: &str = "attestor";

/// Per-replica attestation identities for a BFT cluster, generated
/// deterministically from the configured seed (deployments would load real
/// keys; determinism keeps chaos drills replayable).
struct BftIdentities {
    attestors: Vec<Vec<Arc<ReplicaAttestor>>>,
    ledger: AttestationLog,
}

fn bft_identities(config: &ClusterConfig) -> Option<BftIdentities> {
    let bft = config.bft.as_ref()?;
    let mut attestors = Vec::with_capacity(config.shards);
    let mut public: Vec<Vec<RsaPublicKey>> = Vec::with_capacity(config.shards);
    for shard in 0..config.shards {
        let mut row = Vec::with_capacity(config.replicas);
        let mut pub_row = Vec::with_capacity(config.replicas);
        for replica in 0..config.replicas {
            let seed = bft
                .seed
                .wrapping_add((shard as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15))
                .wrapping_add((replica as u64).wrapping_mul(0xD1B5_4A32_D192_ED03));
            let mut rng = StdRng::seed_from_u64(seed);
            let kp = RsaKeyPair::generate(bft.key_bits, &mut rng);
            pub_row.push(kp.public_key().clone());
            row.push(Arc::new(ReplicaAttestor::new(
                shard,
                replica,
                kp.into_private_key(),
            )));
        }
        attestors.push(row);
        public.push(pub_row);
    }
    let ledger = AttestationLog::new(ReplicaKeyring::new(public), bft.window, bft.attest_quorum());
    Some(BftIdentities { attestors, ledger })
}

impl LoggerCluster {
    /// Spawns `shards × replicas` volatile backends.
    ///
    /// # Errors
    ///
    /// Returns [`LogError::Malformed`] for an invalid configuration and
    /// [`LogError::Io`] when a backend thread cannot be created.
    pub fn spawn(config: ClusterConfig) -> Result<Self, LogError> {
        config.validate()?;
        let keys = KeyRegistry::new();
        let stats = ClusterStats::new(config.shards);
        let identities = bft_identities(&config);
        let mut shards = Vec::with_capacity(config.shards);
        for shard in 0..config.shards {
            let mut replicas = Vec::with_capacity(config.replicas);
            for index in 0..config.replicas {
                let server = LogServer::try_spawn_with_keys(keys.clone())?;
                let attestor = identities
                    .as_ref()
                    .and_then(|ids| ids.attestors.get(shard))
                    .and_then(|row| row.get(index))
                    .cloned();
                if let Some(att) = &attestor {
                    // Even with a volatile log, the attestation identity
                    // gets a small durable device of its own (think TPM /
                    // NVRAM): the incarnation and last-signed head survive
                    // the replica's fail-stop lifecycle.
                    att.bind_storage(Arc::new(MemStorage::new()), ATTESTOR_STATE_FILE)?;
                }
                replicas.push(Arc::new(ReplicaSlot {
                    shard,
                    index,
                    server: Mutex::new(server),
                    durability: None,
                    attestor,
                }));
            }
            shards.push(replicas);
        }
        let shard_count = config.shards;
        Ok(LoggerCluster {
            config,
            keys,
            shards,
            epoch: AtomicU64::new(0),
            stats,
            attestations: identities.map(|ids| ids.ledger),
            recorders: Mutex::new(vec![None; shard_count]),
        })
    }

    /// Spawns `shards × replicas` *durable* backends, one storage device per
    /// replica (`storages` holds one inner `Vec` per shard). Every replica
    /// recovers whatever its device already holds, and all replicas share
    /// one [`DurabilityStats`] — also wired into this cluster's
    /// [`ClusterStats`], so fsync failures and truncated records anywhere in
    /// the fleet surface in cluster snapshots live.
    ///
    /// # Errors
    ///
    /// Returns [`LogError::Malformed`] for an invalid configuration or a
    /// `storages` shape that disagrees with it, and [`LogError::Io`] when a
    /// backend thread cannot be created or a device refuses recovery.
    pub fn spawn_durable(
        config: ClusterConfig,
        storages: Vec<Vec<Arc<dyn Storage>>>,
        fsync: SyncPolicy,
        rotate_every: usize,
    ) -> Result<Self, LogError> {
        config.validate()?;
        if storages.len() != config.shards || storages.iter().any(|s| s.len() != config.replicas) {
            return Err(LogError::Malformed("cluster storages (shape)"));
        }
        let keys = KeyRegistry::new();
        let durability = DurabilityStats::default();
        let stats = ClusterStats::with_durability(config.shards, durability.clone());
        let identities = bft_identities(&config);
        let mut shards = Vec::with_capacity(config.shards);
        for (shard, shard_storages) in storages.into_iter().enumerate() {
            let mut replicas = Vec::with_capacity(config.replicas);
            for (index, storage) in shard_storages.into_iter().enumerate() {
                let slot_config = DurabilityConfig::new(Arc::clone(&storage))
                    .fsync(fsync)
                    .rotate_every(rotate_every)
                    .counters(durability.clone());
                let spawned = LogServer::try_spawn_durable(keys.clone(), &slot_config)?;
                let attestor = identities
                    .as_ref()
                    .and_then(|ids| ids.attestors.get(shard))
                    .and_then(|row| row.get(index))
                    .cloned();
                if let Some(att) = &attestor {
                    // The attestation state shares the replica's storage
                    // device, under its own file — same write-replace
                    // durability as snapshots, resumed on re-open.
                    att.bind_storage(Arc::clone(&storage), ATTESTOR_STATE_FILE)?;
                }
                replicas.push(Arc::new(ReplicaSlot {
                    shard,
                    index,
                    server: Mutex::new(spawned.server),
                    durability: Some(slot_config),
                    attestor,
                }));
            }
            shards.push(replicas);
        }
        let shard_count = config.shards;
        Ok(LoggerCluster {
            config,
            keys,
            shards,
            epoch: AtomicU64::new(0),
            stats,
            attestations: identities.map(|ids| ids.ledger),
            recorders: Mutex::new(vec![None; shard_count]),
        })
    }

    /// Cluster-level accounting (shared with clients built over this
    /// cluster; for a durable cluster, also fed by every replica's storage
    /// counters).
    pub fn stats(&self) -> &ClusterStats {
        &self.stats
    }

    /// The cluster configuration.
    pub fn config(&self) -> &ClusterConfig {
        &self.config
    }

    /// The cluster-wide key registry (shared by every replica).
    pub fn keys(&self) -> &KeyRegistry {
        &self.keys
    }

    /// BFT mode only: the shared attestation ledger (split-view detector).
    /// `None` on a crash-quorum cluster.
    pub fn attestations(&self) -> Option<&AttestationLog> {
        self.attestations.as_ref()
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The replica slots of one shard.
    pub fn shard_replicas(&self, shard: usize) -> &[Arc<ReplicaSlot>] {
        self.shards.get(shard).map_or(&[], Vec::as_slice)
    }

    /// One replica slot, if it exists.
    pub fn replica(&self, shard: usize, replica: usize) -> Option<&Arc<ReplicaSlot>> {
        self.shards.get(shard).and_then(|s| s.get(replica))
    }

    /// Kills one replica (fail-stop crash). Returns whether the slot exists.
    pub fn kill_replica(&self, shard: usize, replica: usize) -> bool {
        match self.replica(shard, replica) {
            Some(slot) => {
                slot.kill();
                true
            }
            None => false,
        }
    }

    /// Restarts one replica. A durable slot reopens its storage device and
    /// recovers the acked prefix (`Some(recovery)` reports what it found);
    /// a volatile slot comes back empty (`None`). Either way it rejoins as
    /// a lagging follower — use [`LoggerCluster::catch_up_replica`] to bring
    /// it back to the quorum log.
    ///
    /// # Errors
    ///
    /// Returns [`LogError::NoSuchEntry`] for an unknown slot and
    /// [`LogError::Io`] when the replacement thread cannot be created or
    /// the storage device refuses recovery.
    pub fn restart_replica(
        &self,
        shard: usize,
        replica: usize,
    ) -> Result<Option<Recovery>, LogError> {
        let slot = self
            .replica(shard, replica)
            .ok_or(LogError::NoSuchEntry(replica))?;
        let recovery = slot.restart(self.keys.clone())?;
        self.reconcile_restarted_attestor(slot)?;
        // The fresh server starts with no recording tap; rejoin it to the
        // shard's recorder so the forensic stream keeps flowing.
        if let Some(rec) = self.shard_recorder(shard) {
            slot.handle().attach_recorder(rec);
        }
        Ok(recovery)
    }

    /// Attaches one forensic [`Recorder`] per shard (one storage device
    /// each, files named `recording-shard<N>`): from now on every entry
    /// deposited to, or adopted by, *any replica* of a shard is also framed
    /// into that shard's recording under the epoch currently in force. The
    /// per-replica fan-out writes byte-identical frames; replay-side
    /// deduplication (see `adlp-dispute`) collapses them, which is what
    /// keeps the recording complete across individual replica crashes.
    ///
    /// # Errors
    ///
    /// Returns [`LogError::Malformed`] when `storages` does not hold
    /// exactly one device per shard.
    pub fn attach_shard_recorders(
        &self,
        storages: Vec<Arc<dyn Storage>>,
    ) -> Result<(), LogError> {
        if storages.len() != self.shards.len() {
            return Err(LogError::Malformed("shard recorders (shape)"));
        }
        let epoch = self.epoch.load(Ordering::SeqCst);
        let mut recorders = self.recorders.lock();
        for (shard, ((storage, replicas), rec_slot)) in storages
            .into_iter()
            .zip(self.shards.iter())
            .zip(recorders.iter_mut())
            .enumerate()
        {
            let rec = Arc::new(Recorder::new(storage, format!("recording-shard{shard}")));
            rec.set_epoch(epoch);
            for slot in replicas {
                slot.handle().attach_recorder(Arc::clone(&rec));
            }
            *rec_slot = Some(rec);
        }
        Ok(())
    }

    /// One shard's recorder, if recording is attached.
    pub fn shard_recorder(&self, shard: usize) -> Option<Arc<Recorder>> {
        self.recorders.lock().get(shard).cloned().flatten()
    }

    /// Extracts the transferable `[epoch_from, epoch_to]` recording window
    /// for one shard — the byte blob a dispute party posts as evidence.
    ///
    /// # Errors
    ///
    /// Returns [`LogError::Malformed`] when no recorder is attached to the
    /// shard or the range is inverted, and [`LogError::Io`] on device
    /// failure.
    pub fn extract_recording(
        &self,
        shard: usize,
        epoch_from: u64,
        epoch_to: u64,
    ) -> Result<RecordingWindow, LogError> {
        let rec = self
            .shard_recorder(shard)
            .ok_or(LogError::Malformed("shard recording (not attached)"))?;
        rec.extract_window(epoch_from, epoch_to)
    }

    /// BFT mode only: if a restarted replica's recovered log is shorter
    /// than the highest head its attestor ever signed (a volatile log, or a
    /// recovery that truncated unsynced records), the replica has lost
    /// attested history. Re-signing those small lengths in the old
    /// incarnation would convict it of equivocation against its own past —
    /// so the cluster sanctions the loss exactly like a catch-up rollback:
    /// a fresh incarnation, granted by the ledger and persisted by the
    /// attestor. The durable signed-length record is what makes this
    /// detectable at all; without it a restarted replica could not know it
    /// ever spoke.
    fn reconcile_restarted_attestor(&self, slot: &Arc<ReplicaSlot>) -> Result<(), LogError> {
        let (Some(ledger), Some(attestor)) = (&self.attestations, slot.attestor()) else {
            return Ok(());
        };
        let recovered = slot.handle().store().len() as u64;
        if recovered < attestor.state().signed_len {
            let incarnation = ledger.note_rollback(slot.shard(), slot.index());
            attestor.set_incarnation(incarnation)?;
        }
        Ok(())
    }

    /// Brings a lagging replica back to its shard's quorum log by adopting
    /// the records it is missing. The replica's current log must be a
    /// *prefix* of the quorum log — anything else (diverged content, a
    /// replica ahead of the quorum, or a mid-stream window with a hole at
    /// the head) is refused rather than papered over: catch-up repairs
    /// availability, it must never manufacture agreement.
    ///
    /// Returns the number of records the replica gained.
    ///
    /// Catch-up is safe against a concurrent deposit: after adopting the
    /// missing suffix it re-reads the quorum log, and if the adopted log is
    /// no longer a prefix of (or equal to) it — a deposit interleaved with
    /// the adoption and landed at a different position on this replica than
    /// on its peers — the adoption is rolled back to the pre-catch-up state
    /// and retried against the fresh quorum (a bounded number of times, so
    /// a single race self-heals without caller involvement). Both quorum
    /// reads are *quiet* — no BFT attestation interrogation — so the
    /// replica never swears to a transient mid-repair state, and each
    /// rollback advances the replica's attestation incarnation (see
    /// [`crate::attestation`]): an honest post-rollback re-signature at a
    /// reused length is a fresh statement, never a self-conviction.
    ///
    /// Rollbacks run on the replica's server thread and are durable on a
    /// durable slot (fresh snapshot, WAL reset), so neither a retry's WAL
    /// replay nor a crash recovery can resurrect the rolled-back suffix.
    /// A rollback also discards any deposit that landed mid-adoption on
    /// this replica; until the retry (which re-adopts it from the quorum
    /// log) or — if every attempt is raced — a later catch-up succeeds,
    /// such an entry sits one replica below its acked quorum count. That
    /// window is visible: the replica shows as lagging in every view.
    ///
    /// # Errors
    ///
    /// Returns [`LogError::NoSuchEntry`] for an unknown slot,
    /// [`LogError::Malformed`] when the replica's log is not a prefix of
    /// the quorum log or when deposits raced every adoption attempt (the
    /// replica is left at its pre-catch-up state; retry once the shard is
    /// quieter), and submission errors from the adoption path.
    pub fn catch_up_replica(&self, shard: usize, replica: usize) -> Result<usize, LogError> {
        self.catch_up_replica_inner(shard, replica, &mut |_| {})
    }

    /// Test hook: like [`LoggerCluster::catch_up_replica`], but invoking
    /// `mid_adoption` after each adopted record (with the cumulative number
    /// adopted across all attempts, rolled-back adoptions included) — lets
    /// a test deterministically race a deposit against the adoption loop.
    #[doc(hidden)]
    pub fn catch_up_replica_with_hook(
        &self,
        shard: usize,
        replica: usize,
        mid_adoption: &mut dyn FnMut(usize),
    ) -> Result<usize, LogError> {
        self.catch_up_replica_inner(shard, replica, mid_adoption)
    }

    /// Adoption attempts before catch-up reports the shard too busy.
    const CATCH_UP_ATTEMPTS: usize = 3;

    fn catch_up_replica_inner(
        &self,
        shard: usize,
        replica: usize,
        mid_adoption: &mut dyn FnMut(usize),
    ) -> Result<usize, LogError> {
        let slot = self
            .replica(shard, replica)
            .ok_or(LogError::NoSuchEntry(replica))?;
        let handle = slot.handle();
        let store = handle.store();
        let baseline = store.len();
        let mut adopted_total = 0usize;
        for _ in 0..Self::CATCH_UP_ATTEMPTS {
            // Quiet quorum read: catch-up must not interrogate attestations
            // over a state it may roll back.
            let quorum =
                view::quorum_records(self, shard).ok_or(LogError::NoSuchEntry(shard))?;
            let have = store.encoded_records();
            if have.len() > quorum.len() {
                return Err(LogError::Malformed("catch-up (replica ahead of quorum)"));
            }
            if have.iter().zip(quorum.iter()).any(|(a, b)| a != b) {
                return Err(LogError::Malformed("catch-up (replica not a quorum prefix)"));
            }
            let missing = quorum.get(have.len()..).unwrap_or(&[]);
            for record in missing {
                handle.adopt_encoded(record.clone())?;
                adopted_total += 1;
                mid_adoption(adopted_total);
            }
            handle.flush()?;
            // Re-read the quorum (again quietly): if it advanced and our
            // adopted log is no longer a prefix of it, a deposit
            // interleaved with the adoption — back the adoption out and
            // try again against the fresh quorum rather than leave a
            // silent reorder on this replica.
            let quorum_now =
                view::quorum_records(self, shard).ok_or(LogError::NoSuchEntry(shard))?;
            let ours = store.encoded_records();
            let still_prefix = ours.len() <= quorum_now.len()
                && ours.iter().zip(quorum_now.iter()).all(|(a, b)| a == b);
            if still_prefix {
                return Ok(ours.len() - baseline);
            }
            self.rollback_replica(slot, baseline)?;
        }
        Err(LogError::Malformed("catch-up (quorum advanced mid-catch-up)"))
    }

    /// Rolls a replica's log back to `len` (durably, on the server thread)
    /// and, in BFT mode, advances its attestation incarnation so heads
    /// signed before and after the rollback stop being comparable. Order
    /// matters: the log is truncated back to the quorum-agreed prefix
    /// *before* the bump, so any attestation signed in between covers
    /// unchanged content (a duplicate at worst, never a conflict).
    fn rollback_replica(&self, slot: &Arc<ReplicaSlot>, len: usize) -> Result<(), LogError> {
        slot.handle().rollback_to(len)?;
        if let (Some(ledger), Some(attestor)) = (&self.attestations, slot.attestor()) {
            let incarnation = ledger.note_rollback(slot.shard(), slot.index());
            attestor.set_incarnation(incarnation)?;
        }
        Ok(())
    }

    /// Gathers every replica's store and cross-checks them (see
    /// [`crate::view`]).
    pub fn view(&self) -> ClusterView {
        view::gather(self)
    }

    /// Seals the next epoch: collects per-shard quorum Merkle roots and
    /// anchors them under one signed cross-shard super-root. Epoch numbers
    /// increase monotonically per cluster.
    ///
    /// In BFT mode every replica additionally *countersigns* its own chain
    /// head into the epoch ([`AttestationScope::Epoch`]), and the
    /// countersignatures flow through the attestation ledger: a replica
    /// that seals one history here after acking another at deposit time
    /// convicts itself.
    ///
    /// # Errors
    ///
    /// Returns [`LogError::Malformed`] when signing fails (e.g. an
    /// undersized sealing key).
    pub fn seal_epoch(&self, sealing_key: &RsaPrivateKey) -> Result<EpochSeal, LogError> {
        let epoch = self.epoch.fetch_add(1, Ordering::SeqCst) + 1;
        // Entries recorded from here on belong to the new epoch. The
        // recorder bump is best-effort with respect to concurrent
        // deposits: replica server threads keep depositing while we walk
        // the recorders, so an entry landing in that window may still be
        // tagged with the old epoch even though it follows the seal
        // logically. A dispute window `[e, e]` therefore covers the
        // traffic between seal `e-1` and seal `e` up to that seal-edge
        // skew; quiesce deposits around the seal when an exact epoch
        // boundary matters forensically.
        for rec in self.recorders.lock().iter().flatten() {
            rec.set_epoch(epoch);
        }
        let view = self.view();
        if let Some(ledger) = &self.attestations {
            for shard in &self.shards {
                for slot in shard {
                    if let Some(attestor) = slot.attestor() {
                        let handle = slot.handle();
                        let store = handle.store();
                        let att = attestor
                            .attest(AttestationScope::Epoch { epoch }, store.head())
                            .map_err(|_| LogError::Malformed("epoch seal (countersign)"))?;
                        let observation = ledger.observe(att);
                        self.stats.note_observation(&observation);
                    }
                }
            }
        }
        EpochSeal::build(epoch, view.shard_roots(), sealing_key)
            .map_err(|_| LogError::Malformed("epoch seal (signing)"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adlp_logger::{Direction, LogEntry};
    use adlp_pubsub::{NodeId, Topic};

    fn entry(seq: u64) -> LogEntry {
        LogEntry::naive(
            NodeId::new("cam"),
            Topic::new("image"),
            Direction::Out,
            seq,
            seq,
            vec![0u8; 16],
        )
    }

    #[test]
    fn spawn_kill_restart_lifecycle() {
        let cluster = LoggerCluster::spawn(ClusterConfig::replicated(2)).unwrap();
        assert_eq!(cluster.shard_count(), 2);
        let slot = cluster.replica(0, 1).unwrap().clone();
        slot.handle().try_submit(entry(1)).unwrap();
        slot.handle().flush().unwrap();
        assert_eq!(slot.handle().store().len(), 1);

        cluster.kill_replica(0, 1);
        assert!(slot.handle().try_submit(entry(2)).is_err());

        cluster.restart_replica(0, 1).unwrap();
        slot.handle().try_submit(entry(3)).unwrap();
        slot.handle().flush().unwrap();
        assert_eq!(slot.handle().store().len(), 1, "restart is empty (lagging)");
    }

    #[test]
    fn shard_recorders_capture_deposits_and_follow_epochs() {
        let cluster = LoggerCluster::spawn(ClusterConfig::replicated(2)).unwrap();
        let devices: Vec<Arc<dyn Storage>> = (0..cluster.shard_count())
            .map(|_| Arc::new(MemStorage::new()) as Arc<dyn Storage>)
            .collect();
        cluster.attach_shard_recorders(devices).unwrap();

        let slot = cluster.replica(0, 0).unwrap().clone();
        slot.handle().try_submit(entry(1)).unwrap();
        slot.handle().flush().unwrap();

        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(11);
        let sealing = RsaKeyPair::generate(512, &mut rng);
        cluster.seal_epoch(sealing.private_key()).unwrap();

        slot.handle().try_submit(entry(2)).unwrap();
        slot.handle().flush().unwrap();

        let rec = cluster.shard_recorder(0).unwrap();
        let replay = rec.replay().unwrap();
        assert_eq!(replay.frames.len(), 2);
        assert_eq!(replay.frames[0].epoch, 0);
        assert_eq!(replay.frames[1].epoch, 1);

        // Window extraction returns only the second epoch's frame, as a
        // verifiable recording of its own.
        let window = cluster.extract_recording(0, 1, 1).unwrap();
        assert!(window.verify());
        assert_eq!(window.replay().unwrap().frames.len(), 1);

        // A restarted replica rejoins the shard recorder.
        cluster.kill_replica(0, 0);
        cluster.restart_replica(0, 0).unwrap();
        let slot = cluster.replica(0, 0).unwrap().clone();
        slot.handle().try_submit(entry(3)).unwrap();
        slot.handle().flush().unwrap();
        assert_eq!(rec.replay().unwrap().frames.len(), 3);
    }

    #[test]
    fn extract_recording_without_recorder_is_refused() {
        let cluster = LoggerCluster::spawn(ClusterConfig::replicated(1)).unwrap();
        assert!(matches!(
            cluster.extract_recording(0, 0, 0),
            Err(LogError::Malformed(_))
        ));
        assert!(cluster
            .attach_shard_recorders(vec![])
            .is_err());
    }

    #[test]
    fn replicas_share_one_key_registry() {
        let cluster = LoggerCluster::spawn(ClusterConfig::replicated(2)).unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        use rand::SeedableRng;
        let kp = adlp_crypto::RsaKeyPair::generate(128, &mut rng);
        cluster
            .keys()
            .register(&NodeId::new("cam"), kp.public_key().clone())
            .unwrap();
        for shard in 0..cluster.shard_count() {
            for slot in cluster.shard_replicas(shard) {
                assert!(slot.handle().keys().get(&NodeId::new("cam")).is_some());
            }
        }
        // A restarted replica also sees the registration.
        cluster.restart_replica(1, 0).unwrap();
        let slot = cluster.replica(1, 0).unwrap();
        assert!(slot.handle().keys().get(&NodeId::new("cam")).is_some());
    }

    #[test]
    fn invalid_config_refused() {
        let mut config = ClusterConfig::new(2);
        config.write_quorum = 3;
        assert!(LoggerCluster::spawn(config).is_err());
    }

    #[test]
    fn durable_replica_restart_recovers_and_catches_up() {
        use crate::client::ClusterLogClient;
        use adlp_logger::MemStorage;

        let config = ClusterConfig::replicated(1);
        let devices: Vec<Vec<Arc<MemStorage>>> = (0..config.shards)
            .map(|_| (0..config.replicas).map(|_| Arc::new(MemStorage::new())).collect())
            .collect();
        let storages: Vec<Vec<Arc<dyn Storage>>> = devices
            .iter()
            .map(|shard| {
                shard
                    .iter()
                    .map(|d| Arc::clone(d) as Arc<dyn Storage>)
                    .collect()
            })
            .collect();
        let cluster =
            LoggerCluster::spawn_durable(config, storages, SyncPolicy::EveryAppend, 1024).unwrap();
        let client = ClusterLogClient::in_proc(&cluster);
        for seq in 0..5 {
            client.submit_durable(entry(seq)).unwrap();
        }
        client.flush().unwrap();

        // Crash one replica: fail-stop plus a power cut on its device.
        cluster.kill_replica(0, 2);
        devices[0][2].crash();
        for seq in 5..8 {
            client.submit_durable(entry(seq)).unwrap();
        }
        client.flush().unwrap();

        // The restarted replica recovers its acked prefix — not empty.
        let recovery = cluster
            .restart_replica(0, 2)
            .unwrap()
            .expect("durable slot must report recovery");
        assert_eq!(recovery.records_truncated, 0, "every append was synced");
        let slot = cluster.replica(0, 2).unwrap();
        assert_eq!(slot.handle().store().len(), 5, "acked prefix recovered");

        // It rejoins lagging (never diverged), then catches up to quorum.
        let view = cluster.view();
        assert!(view.divergences().is_empty());
        assert_eq!(view.lagging(), vec![(0, 2, 3)]);
        assert_eq!(cluster.catch_up_replica(0, 2).unwrap(), 3);
        let view = cluster.view();
        assert!(view.divergences().is_empty());
        assert!(view.lagging().is_empty());

        let s = cluster.stats().snapshot();
        assert!(s.balanced());
        assert_eq!(s.acked, 8);
    }

    #[test]
    fn bft_cluster_acks_with_signed_quorum_and_audits_clean() {
        use crate::client::ClusterLogClient;
        let cluster = LoggerCluster::spawn(ClusterConfig::byzantine(1, 1)).unwrap();
        assert_eq!(cluster.config().replicas, 4);
        assert_eq!(cluster.config().write_quorum, 3);
        let client = ClusterLogClient::in_proc(&cluster);
        for seq in 0..5 {
            assert!(client.submit(entry(seq)).is_accepted());
        }
        let s = cluster.stats().snapshot();
        assert_eq!(s.acked, 5);
        assert_eq!(s.entries_lost, 0);
        // Every deposit drew a verified attestation from all four replicas.
        assert_eq!(s.attestations_verified, 20);
        assert_eq!(s.attestations_rejected, 0);
        assert_eq!(s.equivocations_detected, 0);

        let view = cluster.view();
        assert!(view.convictions.is_empty());
        assert!(view.equivocated().is_empty());
        assert!(view
            .shards
            .iter()
            .all(|sh| sh.statuses.iter().all(|st| *st == crate::view::ReplicaStatus::Consistent)));

        // Epoch sealing draws a countersignature from every replica, and
        // honest countersignatures mint no convictions.
        let mut rng = rand::rngs::StdRng::seed_from_u64(9);
        use rand::SeedableRng;
        let sealer = adlp_crypto::RsaKeyPair::generate(512, &mut rng);
        let seal = cluster.seal_epoch(sealer.private_key()).unwrap();
        assert!(seal.verify(sealer.public_key()));
        let s = cluster.stats().snapshot();
        assert_eq!(s.equivocations_detected, 0);
        assert!(s.attestations_verified > 20, "epoch countersignatures observed");
    }

    #[test]
    fn bft_cluster_survives_one_silent_replica() {
        use crate::client::ClusterLogClient;
        let cluster = LoggerCluster::spawn(ClusterConfig::byzantine(1, 1)).unwrap();
        let client = ClusterLogClient::in_proc(&cluster);
        cluster.kill_replica(0, 3);
        for seq in 0..5 {
            assert!(
                client.submit(entry(seq)).is_accepted(),
                "3 of 4 matching signed heads meet the 2f+1 quorum"
            );
        }
        let s = cluster.stats().snapshot();
        assert_eq!(s.entries_lost, 0);
        assert!(s.failovers > 0, "the silent replica is counted, not ignored");

        // Two silent replicas break the 2f+1 quorum: counted loss.
        cluster.kill_replica(0, 2);
        assert!(!client.submit(entry(9)).is_accepted());
        assert_eq!(cluster.stats().snapshot().entries_lost, 1);
    }

    #[test]
    fn bft_replica_restarted_mid_run_neither_self_convicts_nor_loses_incarnation() {
        use crate::client::ClusterLogClient;
        let cluster = LoggerCluster::spawn(ClusterConfig::byzantine(1, 1)).unwrap();
        let client = ClusterLogClient::in_proc(&cluster);
        for seq in 0..3 {
            assert!(client.submit(entry(seq)).is_accepted());
        }
        let slot = cluster.replica(0, 1).unwrap().clone();
        let attestor = slot.attestor().unwrap().clone();
        assert_eq!(attestor.state().signed_len, 3);
        assert_eq!(attestor.incarnation(), 0);

        // Crash and restart: the volatile log is gone, but the attestor's
        // durable state is not — the cluster sees recovered length 0 against
        // signed length 3 and sanctions the loss with a fresh incarnation.
        cluster.kill_replica(0, 1);
        cluster.restart_replica(0, 1).unwrap();
        assert_eq!(attestor.incarnation(), 1, "restart granted a fresh incarnation");
        assert_eq!(attestor.state().signed_len, 3, "durable signed head survived");

        // A deposit lands while the replica is still empty: it appends at
        // local length 1 and re-signs Head{1} with *different* content than
        // it signed at length 1 before the restart. In the old incarnation
        // that is an equivocation against its own past; in the granted one
        // it is a fresh statement. Nobody is convicted.
        assert!(client.submit(entry(9)).is_accepted());
        let view = cluster.view();
        assert!(view.convictions.is_empty(), "honest restart must not convict");
        assert!(view.equivocated().is_empty());
        assert_eq!(cluster.stats().snapshot().equivocations_detected, 0);

        // A second restart clears the (unavoidably diverged) mid-run log;
        // the incarnation keeps ratcheting, never resets, and catch-up
        // brings the replica back to the quorum with a clean view.
        cluster.kill_replica(0, 1);
        cluster.restart_replica(0, 1).unwrap();
        assert_eq!(attestor.incarnation(), 2, "incarnation ratchets, never resets");
        assert!(cluster.catch_up_replica(0, 1).unwrap() >= 4);
        assert!(client.submit(entry(10)).is_accepted());
        let view = cluster.view();
        assert!(view.convictions.is_empty());
        assert!(view.equivocated().is_empty());
        assert!(view.divergences().is_empty());
        assert!(view.lagging().is_empty());
        assert_eq!(cluster.stats().snapshot().equivocations_detected, 0);
    }

    #[test]
    fn catch_up_racing_deposit_is_rolled_back_and_retried() {
        use crate::client::ClusterLogClient;
        use std::sync::Arc as StdArc;
        let cluster = StdArc::new(LoggerCluster::spawn(ClusterConfig::replicated(1)).unwrap());
        let client = ClusterLogClient::in_proc(&cluster);

        // Replicas 0 and 1 hold [e1, e2]; replica 2 is empty (restarted).
        for slot in cluster.shard_replicas(0).iter().take(2) {
            for seq in [1, 2] {
                slot.handle().try_submit(entry(seq)).unwrap();
            }
            slot.handle().flush().unwrap();
        }

        // Race: after the first adopted record, a deposit fans out to the
        // whole shard — landing *mid-adoption* on replica 2, at a different
        // position than on its peers. The racy adoption is rolled back and
        // the internal retry re-adopts everything (raced entry included)
        // from the fresh quorum log — one call, no silent reorder, and no
        // acked entry left below quorum.
        let client_ref = &client;
        let result = cluster.catch_up_replica_with_hook(0, 2, &mut |adopted| {
            if adopted == 1 {
                assert!(client_ref.submit(entry(3)).is_accepted());
                client_ref.flush().unwrap();
            }
        });
        assert_eq!(result.unwrap(), 3, "retry absorbs the raced deposit too");
        let slot = cluster.replica(0, 2).unwrap();
        assert_eq!(slot.handle().store().len(), 3);
        let view = cluster.view();
        assert!(view.divergences().is_empty());
        assert!(view.lagging().is_empty());
    }

    #[test]
    fn catch_up_gives_up_cleanly_when_every_attempt_is_raced() {
        use crate::client::ClusterLogClient;
        use std::sync::Arc as StdArc;
        let cluster = StdArc::new(LoggerCluster::spawn(ClusterConfig::replicated(1)).unwrap());
        let client = ClusterLogClient::in_proc(&cluster);
        for slot in cluster.shard_replicas(0).iter().take(2) {
            for seq in [1, 2] {
                slot.handle().try_submit(entry(seq)).unwrap();
            }
            slot.handle().flush().unwrap();
        }

        // A deposit races *every* adopted record: catch-up exhausts its
        // retries, leaves the replica at its pre-catch-up baseline (not
        // holding a reorder), and reports the shard too busy.
        let client_ref = &client;
        let mut next_seq = 10u64;
        let result = cluster.catch_up_replica_with_hook(0, 2, &mut |_| {
            assert!(client_ref.submit(entry(next_seq)).is_accepted());
            client_ref.flush().unwrap();
            next_seq += 1;
        });
        assert!(
            matches!(result, Err(LogError::Malformed("catch-up (quorum advanced mid-catch-up)"))),
            "persistent racing must surface, got {result:?}"
        );
        let slot = cluster.replica(0, 2).unwrap();
        assert_eq!(slot.handle().store().len(), 0, "rolled back to baseline");
        let view = cluster.view();
        assert!(view.divergences().is_empty(), "no lasting divergence");

        // Once the shard is quiet, a fresh call adopts everything.
        assert!(cluster.catch_up_replica(0, 2).unwrap() >= 2);
        assert!(cluster.view().lagging().is_empty());
    }

    #[test]
    fn bft_catch_up_rollback_never_convicts_an_honest_replica() {
        use crate::client::ClusterLogClient;
        let cluster = LoggerCluster::spawn(ClusterConfig::byzantine(1, 1)).unwrap();
        let client = ClusterLogClient::in_proc(&cluster);

        // Replicas 0, 1, 3 hold [e1, e2]; replica 2 is empty (restarted).
        for (i, slot) in cluster.shard_replicas(0).iter().enumerate() {
            if i == 2 {
                continue;
            }
            for seq in [1, 2] {
                slot.handle().try_submit(entry(seq)).unwrap();
            }
            slot.handle().flush().unwrap();
        }

        // A signed-quorum deposit races the adoption: the racy state is
        // rolled back and re-adopted. The replica's log passes through two
        // *different* contents at the same length — which must never read
        // as an equivocation, because catch-up reads the quorum quietly
        // and the rollback advanced the attestation incarnation.
        let client_ref = &client;
        let result = cluster.catch_up_replica_with_hook(0, 2, &mut |adopted| {
            if adopted == 1 {
                assert!(client_ref.submit(entry(3)).is_accepted());
                client_ref.flush().unwrap();
            }
        });
        assert_eq!(result.unwrap(), 3);

        // Views (interrogations) before and after more signed deposits:
        // nobody is convicted, nothing equivocated.
        let view = cluster.view();
        assert!(view.convictions.is_empty(), "honest repair must not convict");
        assert!(view.equivocated().is_empty());
        assert!(client.submit(entry(4)).is_accepted());
        let view = cluster.view();
        assert!(view.convictions.is_empty());
        assert!(view.equivocated().is_empty());
        assert!(view.divergences().is_empty());
        assert_eq!(cluster.stats().snapshot().equivocations_detected, 0);
    }

    #[test]
    fn durable_catch_up_rollback_survives_crash_recovery() {
        use adlp_logger::MemStorage;

        let config = ClusterConfig::replicated(1);
        let devices: Vec<Vec<Arc<MemStorage>>> = (0..config.shards)
            .map(|_| (0..config.replicas).map(|_| Arc::new(MemStorage::new())).collect())
            .collect();
        let storages: Vec<Vec<Arc<dyn Storage>>> = devices
            .iter()
            .map(|shard| {
                shard
                    .iter()
                    .map(|d| Arc::clone(d) as Arc<dyn Storage>)
                    .collect()
            })
            .collect();
        let cluster =
            LoggerCluster::spawn_durable(config, storages, SyncPolicy::EveryAppend, 1024).unwrap();

        // The replica durably appends three records, then catch-up-style
        // rollback truncates it to one — snapshot rewritten, WAL reset.
        let slot = cluster.replica(0, 2).unwrap();
        for seq in [1, 2, 3] {
            slot.handle().submit_durable(entry(seq)).unwrap();
        }
        slot.handle().rollback_to(1).unwrap();
        assert_eq!(slot.handle().store().len(), 1);

        // Post-rollback appends land at the truncated indices; a crash and
        // recovery must replay exactly [e1, e9] — never resurrect the
        // rolled-back [e2, e3] under or over the retry's records.
        slot.handle().submit_durable(entry(9)).unwrap();
        cluster.kill_replica(0, 2);
        devices[0][2].crash();
        cluster.restart_replica(0, 2).unwrap();
        let store = cluster.replica(0, 2).unwrap().handle().store().clone();
        assert_eq!(store.len(), 2, "rollback is durable: {:?}", store.len());
        assert_eq!(store.entry(0).unwrap().seq, 1);
        assert_eq!(store.entry(1).unwrap().seq, 9);
        assert!(store.verify_chain().is_ok());
    }

    #[test]
    fn catch_up_refuses_diverged_replica() {
        let cluster = LoggerCluster::spawn(ClusterConfig::replicated(1)).unwrap();
        for slot in cluster.shard_replicas(0) {
            slot.handle().try_submit(entry(1)).unwrap();
            slot.handle().flush().unwrap();
        }
        let victim = cluster.replica(0, 2).unwrap();
        victim
            .handle()
            .store()
            .tamper_with_record(0, entry(9).encode())
            .unwrap();
        assert!(matches!(
            cluster.catch_up_replica(0, 2),
            Err(LogError::Malformed("catch-up (replica not a quorum prefix)"))
        ));
    }
}
