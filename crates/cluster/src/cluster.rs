//! The replica fleet: N shards × R replica [`LogServer`] backends.

use crate::config::ClusterConfig;
use crate::epoch::EpochSeal;
use crate::view::{self, ClusterView};
use adlp_crypto::rsa::RsaPrivateKey;
use adlp_logger::{KeyRegistry, LogError, LogServer, LoggerHandle};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// One replica backend of one shard. The inner [`LogServer`] can be killed
/// (simulated crash) and later replaced by a fresh, empty server — the
/// fail-stop lifecycle the trust model allows replicas.
#[derive(Debug)]
pub struct ReplicaSlot {
    shard: usize,
    index: usize,
    server: Mutex<LogServer>,
}

impl ReplicaSlot {
    /// A handle to the replica's current server incarnation.
    pub fn handle(&self) -> LoggerHandle {
        self.server.lock().handle()
    }

    /// Shard this replica belongs to.
    pub fn shard(&self) -> usize {
        self.shard
    }

    /// Replica index within the shard.
    pub fn index(&self) -> usize {
        self.index
    }

    /// Simulates a crash of this replica (fail-stop: the store freezes,
    /// new submissions are refused).
    pub fn kill(&self) {
        self.server.lock().kill();
    }

    /// Replaces a (killed) replica with a fresh, *empty* server sharing the
    /// cluster key registry — a rolling-restart step. The restarted replica
    /// re-enters as a lagging follower; it must never masquerade as having
    /// history it does not hold.
    ///
    /// # Errors
    ///
    /// Returns [`LogError::Io`] when the OS refuses to create the thread.
    pub fn restart(&self, keys: KeyRegistry) -> Result<(), LogError> {
        let fresh = LogServer::try_spawn_with_keys(keys)?;
        *self.server.lock() = fresh;
        Ok(())
    }
}

/// A sharded, replicated trusted-logger cluster.
///
/// All replicas share one [`KeyRegistry`], so a key registered once is
/// honored cluster-wide (including by replicas restarted later).
#[derive(Debug)]
pub struct LoggerCluster {
    config: ClusterConfig,
    keys: KeyRegistry,
    shards: Vec<Vec<Arc<ReplicaSlot>>>,
    epoch: AtomicU64,
}

impl LoggerCluster {
    /// Spawns `shards × replicas` backends.
    ///
    /// # Errors
    ///
    /// Returns [`LogError::Malformed`] for an invalid configuration and
    /// [`LogError::Io`] when a backend thread cannot be created.
    pub fn spawn(config: ClusterConfig) -> Result<Self, LogError> {
        config.validate()?;
        let keys = KeyRegistry::new();
        let mut shards = Vec::with_capacity(config.shards);
        for shard in 0..config.shards {
            let mut replicas = Vec::with_capacity(config.replicas);
            for index in 0..config.replicas {
                let server = LogServer::try_spawn_with_keys(keys.clone())?;
                replicas.push(Arc::new(ReplicaSlot {
                    shard,
                    index,
                    server: Mutex::new(server),
                }));
            }
            shards.push(replicas);
        }
        Ok(LoggerCluster {
            config,
            keys,
            shards,
            epoch: AtomicU64::new(0),
        })
    }

    /// The cluster configuration.
    pub fn config(&self) -> &ClusterConfig {
        &self.config
    }

    /// The cluster-wide key registry (shared by every replica).
    pub fn keys(&self) -> &KeyRegistry {
        &self.keys
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The replica slots of one shard.
    pub fn shard_replicas(&self, shard: usize) -> &[Arc<ReplicaSlot>] {
        self.shards.get(shard).map_or(&[], Vec::as_slice)
    }

    /// One replica slot, if it exists.
    pub fn replica(&self, shard: usize, replica: usize) -> Option<&Arc<ReplicaSlot>> {
        self.shards.get(shard).and_then(|s| s.get(replica))
    }

    /// Kills one replica (fail-stop crash). Returns whether the slot exists.
    pub fn kill_replica(&self, shard: usize, replica: usize) -> bool {
        match self.replica(shard, replica) {
            Some(slot) => {
                slot.kill();
                true
            }
            None => false,
        }
    }

    /// Restarts one replica as a fresh, empty follower.
    ///
    /// # Errors
    ///
    /// Returns [`LogError::NoSuchEntry`] for an unknown slot and
    /// [`LogError::Io`] when the replacement thread cannot be created.
    pub fn restart_replica(&self, shard: usize, replica: usize) -> Result<(), LogError> {
        let slot = self
            .replica(shard, replica)
            .ok_or(LogError::NoSuchEntry(replica))?;
        slot.restart(self.keys.clone())
    }

    /// Gathers every replica's store and cross-checks them (see
    /// [`crate::view`]).
    pub fn view(&self) -> ClusterView {
        view::gather(self)
    }

    /// Seals the next epoch: collects per-shard quorum Merkle roots and
    /// anchors them under one signed cross-shard super-root. Epoch numbers
    /// increase monotonically per cluster.
    ///
    /// # Errors
    ///
    /// Returns [`LogError::Malformed`] when signing fails (e.g. an
    /// undersized sealing key).
    pub fn seal_epoch(&self, sealing_key: &RsaPrivateKey) -> Result<EpochSeal, LogError> {
        let epoch = self.epoch.fetch_add(1, Ordering::SeqCst) + 1;
        let view = self.view();
        EpochSeal::build(epoch, view.shard_roots(), sealing_key)
            .map_err(|_| LogError::Malformed("epoch seal (signing)"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adlp_logger::{Direction, LogEntry};
    use adlp_pubsub::{NodeId, Topic};

    fn entry(seq: u64) -> LogEntry {
        LogEntry::naive(
            NodeId::new("cam"),
            Topic::new("image"),
            Direction::Out,
            seq,
            seq,
            vec![0u8; 16],
        )
    }

    #[test]
    fn spawn_kill_restart_lifecycle() {
        let cluster = LoggerCluster::spawn(ClusterConfig::replicated(2)).unwrap();
        assert_eq!(cluster.shard_count(), 2);
        let slot = cluster.replica(0, 1).unwrap().clone();
        slot.handle().try_submit(entry(1)).unwrap();
        slot.handle().flush().unwrap();
        assert_eq!(slot.handle().store().len(), 1);

        cluster.kill_replica(0, 1);
        assert!(slot.handle().try_submit(entry(2)).is_err());

        cluster.restart_replica(0, 1).unwrap();
        slot.handle().try_submit(entry(3)).unwrap();
        slot.handle().flush().unwrap();
        assert_eq!(slot.handle().store().len(), 1, "restart is empty (lagging)");
    }

    #[test]
    fn replicas_share_one_key_registry() {
        let cluster = LoggerCluster::spawn(ClusterConfig::replicated(2)).unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        use rand::SeedableRng;
        let kp = adlp_crypto::RsaKeyPair::generate(128, &mut rng);
        cluster
            .keys()
            .register(&NodeId::new("cam"), kp.public_key().clone())
            .unwrap();
        for shard in 0..cluster.shard_count() {
            for slot in cluster.shard_replicas(shard) {
                assert!(slot.handle().keys().get(&NodeId::new("cam")).is_some());
            }
        }
        // A restarted replica also sees the registration.
        cluster.restart_replica(1, 0).unwrap();
        let slot = cluster.replica(1, 0).unwrap();
        assert!(slot.handle().keys().get(&NodeId::new("cam")).is_some());
    }

    #[test]
    fn invalid_config_refused() {
        let mut config = ClusterConfig::new(2);
        config.write_quorum = 3;
        assert!(LoggerCluster::spawn(config).is_err());
    }
}
