//! Deterministic consistent-hash ring.
//!
//! Entries are routed to shards by hashing (publisher identity, topic), so
//! one publisher's entries for one topic always land on the same shard —
//! the per-link sequence the auditor reasons about is never split across
//! shards. Virtual nodes smooth the distribution; everything is derived
//! from SHA-256, so routing is identical on every process that agrees on
//! the configuration.

use adlp_crypto::sha256::Sha256;
use adlp_pubsub::{NodeId, Topic};

/// A fixed consistent-hash ring over `shards` shards.
#[derive(Debug, Clone)]
pub struct HashRing {
    /// Sorted (ring position, shard) points.
    points: Vec<(u64, usize)>,
}

fn point(label: &[u8], shard: usize, vnode: usize) -> u64 {
    let mut h = Sha256::new();
    h.update(label);
    h.update(&(shard as u64).to_le_bytes());
    h.update(&(vnode as u64).to_le_bytes());
    digest_prefix(&h.finalize())
}

fn digest_prefix(digest: &adlp_crypto::sha256::Digest) -> u64 {
    let mut v = [0u8; 8];
    for (dst, src) in v.iter_mut().zip(digest.as_bytes().iter()) {
        *dst = *src;
    }
    u64::from_le_bytes(v)
}

impl HashRing {
    /// Builds the ring with `vnodes` virtual nodes per shard.
    pub fn new(shards: usize, vnodes: usize) -> Self {
        let shards = shards.max(1);
        let vnodes = vnodes.max(1);
        let mut points = Vec::with_capacity(shards * vnodes);
        for shard in 0..shards {
            for vnode in 0..vnodes {
                points.push((point(b"adlp-cluster/ring", shard, vnode), shard));
            }
        }
        points.sort_unstable();
        HashRing { points }
    }

    /// The shard owning the (publisher, topic) key.
    pub fn shard_for(&self, publisher: &NodeId, topic: &Topic) -> usize {
        let mut h = Sha256::new();
        h.update(b"adlp-cluster/key");
        h.update(publisher.as_str().as_bytes());
        h.update(&[0u8]); // unambiguous separator (NodeId cannot contain NUL)
        h.update(topic.as_str().as_bytes());
        let key = digest_prefix(&h.finalize());
        // First ring point at or after the key, wrapping around.
        let idx = self.points.partition_point(|&(p, _)| p < key);
        let wrapped = if idx == self.points.len() { 0 } else { idx };
        self.points.get(wrapped).map_or(0, |&(_, shard)| shard)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    #[test]
    fn routing_is_deterministic() {
        let a = HashRing::new(5, 16);
        let b = HashRing::new(5, 16);
        for i in 0..50 {
            let id = NodeId::new(format!("node{i}"));
            let topic = Topic::new(format!("topic{}", i % 7));
            assert_eq!(a.shard_for(&id, &topic), b.shard_for(&id, &topic));
        }
    }

    #[test]
    fn all_shards_receive_keys() {
        let ring = HashRing::new(5, 32);
        let mut counts: BTreeMap<usize, usize> = BTreeMap::new();
        for i in 0..500 {
            let id = NodeId::new(format!("node{i}"));
            let topic = Topic::new(format!("topic{}", i % 13));
            *counts.entry(ring.shard_for(&id, &topic)).or_default() += 1;
        }
        assert_eq!(counts.len(), 5, "every shard must own part of the keyspace");
        for (&shard, &n) in &counts {
            assert!(n > 10, "shard {shard} is starved: {counts:?}");
        }
    }

    #[test]
    fn single_shard_ring_routes_everything_to_zero() {
        let ring = HashRing::new(1, 4);
        for i in 0..20 {
            let id = NodeId::new(format!("n{i}"));
            assert_eq!(ring.shard_for(&id, &Topic::new("t")), 0);
        }
    }

    #[test]
    fn same_link_always_same_shard() {
        // The property the auditor relies on: a (publisher, topic) link is
        // never split across shards.
        let ring = HashRing::new(7, 16);
        let id = NodeId::new("camera");
        let topic = Topic::new("image");
        let first = ring.shard_for(&id, &topic);
        for _ in 0..10 {
            assert_eq!(ring.shard_for(&id, &topic), first);
        }
    }
}
