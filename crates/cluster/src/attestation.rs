//! Byzantine-fault-tolerant head attestation.
//!
//! The crash-quorum cluster (§3.8) counts an entry acknowledged once W
//! replicas *accepted* it — a replica's word is trusted. A malicious
//! replica can therefore equivocate inside its shard: ack one log toward
//! the quorum while showing another to clients, and nothing catches it
//! until an offline audit compares stores. BFT mode removes that trust:
//! every acknowledgement is a **signed head attestation** — the replica
//! countersigns its entry-chain head at an exact length — and an entry is
//! acked only once `2f+1` of `3f+1` replicas produced *matching* signed
//! heads (Wanner et al., "A Formally Verified Protocol for Log Replication
//! with Byzantine Fault Tolerance"; split-view detection after Meiklejohn
//! et al., "Think Global, Act Local").
//!
//! The payoff is that misbehavior becomes *self-incriminating*: two valid
//! signatures by one replica over conflicting heads at the same scope form
//! an [`EquivocationProof`] — a self-contained, transferable object anyone
//! holding the replica's public key can verify. No honest majority, no
//! trusted observer, no cluster state is needed to check it; the replica's
//! own key convicts it.
//!
//! Scopes cover the two places a replica speaks about its history: per
//! deposit ([`AttestationScope::Head`], the chain head at a length) and per
//! epoch seal ([`AttestationScope::Epoch`], the head it countersigned into
//! an epoch). The [`AttestationLog`] is the split-view detector: it
//! remembers the first validly-signed head seen per (replica, scope) and
//! turns any later conflicting signature into a proof.
//!
//! Two refinements keep the detector *sound* (it convicts only liars):
//!
//! * every attestation carries a signed **incarnation** counter, bumped by
//!   the cluster when it rolls a replica's log back (catch-up backing out a
//!   racy adoption). Heads signed across a sanctioned rollback live in
//!   different incarnations and never conflict — an honest replica that
//!   re-reaches the same length with different (correct) content after a
//!   rollback is not an equivocator. The ledger is the incarnation
//!   authority: a replica claiming an incarnation the cluster never granted
//!   it is rejected ([`Observation::BadIncarnation`]), so a Byzantine
//!   replica cannot dodge conviction by bumping its own counter;
//! * window pruning advances only on **quorum-corroborated** progress: the
//!   horizon derives from the highest head length at least `attest_quorum`
//!   replicas of the shard have validly signed, never from the length a
//!   single attestation claims — one replica inflating its self-reported
//!   length cannot flush its own prior statements out of the detector.

use adlp_crypto::pkcs1;
use adlp_crypto::rsa::{RsaPrivateKey, RsaPublicKey};
use adlp_crypto::sha256::{Digest, Sha256};
use adlp_crypto::Signature;
use adlp_logger::encoding::{read_bytes, read_uvarint, write_bytes, write_uvarint};
use adlp_logger::{LogError, Storage};
use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Byzantine fault budget of a shard.
///
/// With `f` tolerated Byzantine replicas a shard needs `3f + 1` replicas,
/// and an acknowledgement needs `2f + 1` matching signed heads — the
/// classic BFT quorum arithmetic: any two ack quorums intersect in at
/// least `f + 1` replicas, at least one of which is honest.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BftConfig {
    /// Byzantine replicas tolerated per shard.
    pub f: usize,
    /// RSA modulus width of the per-replica attestation keys (512 is
    /// test/bench grade; deployments use ≥1024 like the component keys).
    pub key_bits: usize,
    /// Seed for deterministic attestation-key generation (keeps chaos
    /// runs replayable; a deployment would load real keys instead).
    pub seed: u64,
    /// How many recent head scopes the split-view detector retains per
    /// replica (older ones are pruned; equivocation about pruned history
    /// is still caught by the epoch scope and the store comparison).
    pub window: usize,
}

impl BftConfig {
    /// A budget of `f` Byzantine replicas per shard (`f ≥ 1`).
    pub fn new(f: usize) -> Self {
        BftConfig {
            f: f.max(1),
            key_bits: 512,
            seed: 0x0b_f7,
            window: 1024,
        }
    }

    /// Sets the attestation key width.
    pub fn with_key_bits(mut self, bits: usize) -> Self {
        self.key_bits = bits;
        self
    }

    /// Sets the attestation-key generation seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Replicas a shard must have: `3f + 1`.
    pub fn replicas_required(&self) -> usize {
        3 * self.f + 1
    }

    /// Matching signed heads an acknowledgement needs: `2f + 1`.
    pub fn attest_quorum(&self) -> usize {
        2 * self.f + 1
    }
}

/// What a replica is speaking about when it signs a head.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum AttestationScope {
    /// The entry-chain head after record `length` (1-based count) was
    /// appended — one per acknowledged deposit.
    Head {
        /// Number of records the attested head commits to.
        length: u64,
    },
    /// The head the replica countersigned into epoch `epoch`'s seal.
    Epoch {
        /// Epoch number of the seal being countersigned.
        epoch: u64,
    },
}

impl AttestationScope {
    fn tag(&self) -> u8 {
        match self {
            AttestationScope::Head { .. } => 1,
            AttestationScope::Epoch { .. } => 2,
        }
    }

    fn value(&self) -> u64 {
        match self {
            AttestationScope::Head { length } => *length,
            AttestationScope::Epoch { epoch } => *epoch,
        }
    }

    fn from_parts(tag: u8, value: u64) -> Option<Self> {
        match tag {
            1 => Some(AttestationScope::Head { length: value }),
            2 => Some(AttestationScope::Epoch { epoch: value }),
            _ => None,
        }
    }
}

impl std::fmt::Display for AttestationScope {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AttestationScope::Head { length } => write!(f, "head@{length}"),
            AttestationScope::Epoch { epoch } => write!(f, "epoch#{epoch}"),
        }
    }
}

/// A replica's signed statement: "my log at `scope` has head `head`".
///
/// The signature is PKCS#1 v1.5 over
/// `h("adlp-cluster/attestation" ‖ shard ‖ replica ‖ incarnation ‖ scope ‖
/// head)`, so an attestation binds the speaking replica's identity, its
/// rollback incarnation, what it speaks about, and the commitment —
/// nothing can be transplanted between replicas, incarnations, or scopes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HeadAttestation {
    /// Shard of the attesting replica.
    pub shard: usize,
    /// Replica index within the shard.
    pub replica: usize,
    /// The replica's rollback incarnation when it signed (see the module
    /// docs): statements from different incarnations never conflict, and a
    /// claimed incarnation the cluster never granted is rejected.
    pub incarnation: u64,
    /// What the head covers.
    pub scope: AttestationScope,
    /// The attested entry-chain head.
    pub head: Digest,
    /// The replica's signature over the attestation digest.
    pub signature: Signature,
}

fn attestation_digest(
    shard: usize,
    replica: usize,
    incarnation: u64,
    scope: &AttestationScope,
    head: &Digest,
) -> Digest {
    let mut h = Sha256::new();
    h.update(b"adlp-cluster/attestation");
    h.update(&(shard as u64).to_le_bytes());
    h.update(&(replica as u64).to_le_bytes());
    h.update(&incarnation.to_le_bytes());
    h.update(&[scope.tag()]);
    h.update(&scope.value().to_le_bytes());
    h.update(head.as_bytes());
    h.finalize()
}

impl HeadAttestation {
    /// Verifies the signature under `key` (the attesting replica's public
    /// attestation key).
    pub fn verify(&self, key: &RsaPublicKey) -> bool {
        pkcs1::verify_digest(
            key,
            &attestation_digest(
                self.shard,
                self.replica,
                self.incarnation,
                &self.scope,
                &self.head,
            ),
            &self.signature,
        )
    }

    /// Whether two attestations by the same replica, in the same
    /// incarnation, over the same scope commit to different heads — the
    /// equivocation condition. Statements separated by a sanctioned
    /// rollback (different incarnations) never conflict.
    pub fn conflicts_with(&self, other: &HeadAttestation) -> bool {
        self.shard == other.shard
            && self.replica == other.replica
            && self.incarnation == other.incarnation
            && self.scope == other.scope
            && self.head != other.head
    }

    /// Serializes the attestation (transferable evidence).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(64 + self.signature.len());
        write_uvarint(&mut out, self.shard as u64);
        write_uvarint(&mut out, self.replica as u64);
        write_uvarint(&mut out, self.incarnation);
        out.push(self.scope.tag());
        write_uvarint(&mut out, self.scope.value());
        out.extend_from_slice(self.head.as_bytes());
        write_bytes(&mut out, self.signature.as_bytes());
        out
    }

    /// Deserializes an attestation.
    ///
    /// # Errors
    ///
    /// Returns [`LogError::Malformed`] for truncated or invalid bytes.
    pub fn decode(bytes: &[u8]) -> Result<Self, LogError> {
        let mut input = bytes;
        let shard = read_uvarint(&mut input)? as usize;
        let replica = read_uvarint(&mut input)? as usize;
        let incarnation = read_uvarint(&mut input)?;
        let (tag, rest) = input
            .split_first()
            .ok_or(LogError::Malformed("attestation (scope tag)"))?;
        input = rest;
        let value = read_uvarint(&mut input)?;
        let scope = AttestationScope::from_parts(*tag, value)
            .ok_or(LogError::Malformed("attestation (scope)"))?;
        let (head_bytes, rest) = input
            .split_at_checked(32)
            .ok_or(LogError::Malformed("attestation (head)"))?;
        input = rest;
        let head =
            Digest::from_slice(head_bytes).ok_or(LogError::Malformed("attestation (head)"))?;
        let signature = Signature::from_bytes(read_bytes(&mut input)?.to_vec());
        Ok(HeadAttestation {
            shard,
            replica,
            incarnation,
            scope,
            head,
            signature,
        })
    }
}

/// The slice of an attestor's state that must survive a restart for the
/// replica to keep speaking safely (§3.11): its signing incarnation and the
/// highest head it ever signed. A replica that loses this and comes back at
/// incarnation 0 with an empty log would re-sign small lengths against its
/// own durable past and convict itself.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AttestorState {
    /// The rollback incarnation stamped into signatures.
    pub incarnation: u64,
    /// The highest [`AttestationScope::Head`] length ever signed.
    pub signed_len: u64,
    /// The head signed at `signed_len` (`None` before the first signature).
    pub signed_head: Option<Digest>,
}

impl AttestorState {
    /// Serializes the state for [`Storage::write_replace`].
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(64);
        write_uvarint(&mut out, self.incarnation);
        write_uvarint(&mut out, self.signed_len);
        match &self.signed_head {
            None => out.push(0),
            Some(head) => {
                out.push(1);
                out.extend_from_slice(head.as_bytes());
            }
        }
        out
    }

    /// Deserializes a persisted state.
    ///
    /// # Errors
    ///
    /// Returns [`LogError::Malformed`] for truncated or invalid bytes.
    pub fn decode(bytes: &[u8]) -> Result<Self, LogError> {
        let mut input = bytes;
        let incarnation = read_uvarint(&mut input)?;
        let signed_len = read_uvarint(&mut input)?;
        let (flag, rest) = input
            .split_first()
            .ok_or(LogError::Malformed("attestor state (head flag)"))?;
        let signed_head = match flag {
            0 => None,
            1 => Some(
                Digest::from_slice(rest.get(..32).unwrap_or(rest))
                    .ok_or(LogError::Malformed("attestor state (head)"))?,
            ),
            _ => return Err(LogError::Malformed("attestor state (head flag)")),
        };
        Ok(AttestorState {
            incarnation,
            signed_len,
            signed_head,
        })
    }
}

/// The mutable, restart-critical half of an attestor, kept under one lock
/// so every persisted snapshot is internally consistent.
#[derive(Debug)]
struct AttestorDurable {
    signed_len: u64,
    signed_head: Option<Digest>,
    /// Where the state persists (device + file name); `None` runs volatile.
    binding: Option<(Arc<dyn Storage>, String)>,
}

/// The signing half of one replica's attestation identity. Survives
/// restarts (a replica keeps its identity across its fail-stop lifecycle),
/// and — once bound to a storage device via
/// [`ReplicaAttestor::bind_storage`] — persists its incarnation and
/// last-signed head through the same write-replace discipline as snapshots
/// (§3.9), so even a replica whose *log* is volatile resumes from its
/// durable attestation state instead of re-signing history it no longer
/// holds.
#[derive(Debug)]
pub struct ReplicaAttestor {
    shard: usize,
    replica: usize,
    key: RsaPrivateKey,
    /// Current rollback incarnation, stamped into every signature. The
    /// cluster advances it (via [`ReplicaAttestor::set_incarnation`]) when
    /// it rolls this replica's log back; the attestor itself never bumps it.
    incarnation: AtomicU64,
    durable: Mutex<AttestorDurable>,
}

impl ReplicaAttestor {
    /// Creates an attestor for (shard, replica) holding `key`, starting at
    /// incarnation 0 with no storage binding.
    pub fn new(shard: usize, replica: usize, key: RsaPrivateKey) -> Self {
        ReplicaAttestor {
            shard,
            replica,
            key,
            incarnation: AtomicU64::new(0),
            durable: Mutex::new(AttestorDurable {
                signed_len: 0,
                signed_head: None,
                binding: None,
            }),
        }
    }

    /// Binds the attestor to a storage device: any previously persisted
    /// state under `name` is resumed (the persisted incarnation and signed
    /// length are adopted if ahead of the in-memory ones), and every future
    /// head signature or incarnation grant is persisted before it takes
    /// effect. Returns the state in force after the merge.
    ///
    /// # Errors
    ///
    /// Returns [`LogError::Io`] when the device refuses the read or the
    /// initial persist, and [`LogError::Malformed`] for a corrupt state
    /// file (fail closed: better to refuse than to resume from garbage).
    pub fn bind_storage(
        &self,
        storage: Arc<dyn Storage>,
        name: impl Into<String>,
    ) -> Result<AttestorState, LogError> {
        let name = name.into();
        let resumed = match storage.read(&name)? {
            Some(bytes) => Some(AttestorState::decode(&bytes)?),
            None => None,
        };
        let merged = {
            let mut durable = self.durable.lock();
            if let Some(state) = resumed {
                if state.incarnation > self.incarnation.load(Ordering::SeqCst) {
                    self.incarnation.store(state.incarnation, Ordering::SeqCst);
                }
                if state.signed_len > durable.signed_len
                    || (durable.signed_head.is_none() && state.signed_head.is_some())
                {
                    durable.signed_len = durable.signed_len.max(state.signed_len);
                    durable.signed_head = state.signed_head;
                }
            }
            durable.binding = Some((storage, name));
            AttestorState {
                incarnation: self.incarnation.load(Ordering::SeqCst),
                signed_len: durable.signed_len,
                signed_head: durable.signed_head,
            }
        };
        self.persist()?;
        Ok(merged)
    }

    /// The restart-critical state currently in force.
    pub fn state(&self) -> AttestorState {
        let durable = self.durable.lock();
        AttestorState {
            incarnation: self.incarnation.load(Ordering::SeqCst),
            signed_len: durable.signed_len,
            signed_head: durable.signed_head,
        }
    }

    /// Writes the current state through the binding, if any. Called with no
    /// locks held; snapshots the state and binding under the lock, then
    /// performs the device write outside it.
    fn persist(&self) -> Result<(), LogError> {
        let (binding, state) = {
            let durable = self.durable.lock();
            (
                durable.binding.clone(),
                AttestorState {
                    incarnation: self.incarnation.load(Ordering::SeqCst),
                    signed_len: durable.signed_len,
                    signed_head: durable.signed_head,
                },
            )
        };
        match binding {
            None => Ok(()),
            Some((storage, name)) => storage.write_replace(&name, &state.encode()),
        }
    }

    /// Signs a head at a scope.
    ///
    /// This is deliberately *mechanism, not policy*: an honest replica only
    /// ever calls it with its true store head, while the Byzantine sim
    /// driver calls it with whatever lie it wants to tell — the protocol's
    /// claim is that the lie becomes a transferable conviction, not that
    /// lying is impossible.
    ///
    /// # Errors
    ///
    /// Returns [`LogError::Malformed`] when signing fails (e.g. an
    /// undersized key) and [`LogError::Io`] when the attestor is bound to a
    /// storage device that refuses to record the statement — record first,
    /// speak second: a head signature is only released once the durable
    /// state covering it is on the device, so no restart can leave the
    /// replica ignorant of what it already swore to.
    pub fn attest(&self, scope: AttestationScope, head: Digest) -> Result<HeadAttestation, LogError> {
        let incarnation = self.incarnation.load(Ordering::SeqCst);
        let digest = attestation_digest(self.shard, self.replica, incarnation, &scope, &head);
        let signature = pkcs1::sign_digest(&self.key, &digest)
            .map_err(|_| LogError::Malformed("attestation (signing)"))?;
        if let AttestationScope::Head { length } = scope {
            let advanced = {
                let mut durable = self.durable.lock();
                if length >= durable.signed_len {
                    durable.signed_len = length;
                    durable.signed_head = Some(head);
                    true
                } else {
                    false
                }
            };
            if advanced {
                self.persist()?;
            }
        }
        Ok(HeadAttestation {
            shard: self.shard,
            replica: self.replica,
            incarnation,
            scope,
            head,
            signature,
        })
    }

    /// Shard this attestor speaks for.
    pub fn shard(&self) -> usize {
        self.shard
    }

    /// Replica index this attestor speaks for.
    pub fn replica(&self) -> usize {
        self.replica
    }

    /// The incarnation currently stamped into signatures.
    pub fn incarnation(&self) -> u64 {
        self.incarnation.load(Ordering::SeqCst)
    }

    /// Advances the signing incarnation. Called by the cluster after it
    /// rolls this replica's log back (paired with
    /// [`AttestationLog::note_rollback`], which grants the new number) —
    /// never by the replica on its own initiative.
    ///
    /// # Errors
    ///
    /// Returns [`LogError::Io`] when a bound storage device refuses to
    /// persist the grant; the in-memory incarnation still advances (the
    /// grant is the ledger's, losing it merely costs a re-grant on the
    /// next restart).
    pub fn set_incarnation(&self, incarnation: u64) -> Result<(), LogError> {
        self.incarnation.store(incarnation, Ordering::SeqCst);
        self.persist()
    }
}

/// The verification half: every replica's public attestation key, indexed
/// `[shard][replica]`. Auditors and clients share one keyring.
#[derive(Debug, Clone, Default)]
pub struct ReplicaKeyring {
    keys: Vec<Vec<RsaPublicKey>>,
}

impl ReplicaKeyring {
    /// Builds a keyring from per-shard key lists.
    pub fn new(keys: Vec<Vec<RsaPublicKey>>) -> Self {
        ReplicaKeyring { keys }
    }

    /// The public attestation key of (shard, replica), if known.
    pub fn key(&self, shard: usize, replica: usize) -> Option<&RsaPublicKey> {
        self.keys.get(shard).and_then(|s| s.get(replica))
    }

    /// Verifies an attestation against the key its claimed identity maps
    /// to. Unknown identities never verify.
    pub fn verify(&self, att: &HeadAttestation) -> bool {
        self.key(att.shard, att.replica)
            .is_some_and(|key| att.verify(key))
    }
}

/// Two valid signatures, one replica, one scope, two heads: a
/// self-contained, transferable conviction.
///
/// A proof carries everything needed to verify it except the replica's
/// public key; [`EquivocationProof::verify`] rejects pairs that do not
/// actually conflict, carry mismatched identities, or fail either
/// signature — a forged "proof" convicts nobody.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EquivocationProof {
    /// The first-seen attestation.
    pub first: HeadAttestation,
    /// The conflicting attestation.
    pub second: HeadAttestation,
}

impl EquivocationProof {
    /// Shard of the convicted replica.
    pub fn shard(&self) -> usize {
        self.first.shard
    }

    /// Replica index of the convicted replica.
    pub fn replica(&self) -> usize {
        self.first.replica
    }

    /// The scope both attestations speak about.
    pub fn scope(&self) -> AttestationScope {
        self.first.scope
    }

    /// Verifies the proof: both attestations must conflict (same replica,
    /// same scope, different heads) and both signatures must verify under
    /// the replica's key in `keyring`.
    pub fn verify(&self, keyring: &ReplicaKeyring) -> bool {
        self.first.conflicts_with(&self.second)
            && keyring.verify(&self.first)
            && keyring.verify(&self.second)
    }

    /// Serializes the proof (transferable evidence).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        write_bytes(&mut out, &self.first.encode());
        write_bytes(&mut out, &self.second.encode());
        out
    }

    /// Deserializes a proof.
    ///
    /// # Errors
    ///
    /// Returns [`LogError::Malformed`] for truncated or invalid bytes.
    pub fn decode(bytes: &[u8]) -> Result<Self, LogError> {
        let mut input = bytes;
        let first = HeadAttestation::decode(read_bytes(&mut input)?)?;
        let second = HeadAttestation::decode(read_bytes(&mut input)?)?;
        Ok(EquivocationProof { first, second })
    }
}

/// What [`AttestationLog::observe`] concluded about one attestation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Observation {
    /// Valid signature, consistent with everything seen so far.
    Consistent,
    /// Valid signature repeating an already-recorded statement.
    Duplicate,
    /// The signature does not verify under the claimed identity's key —
    /// the attestation is discarded (it proves nothing about the replica,
    /// whose key never signed it).
    BadSignature,
    /// Valid signature claiming an incarnation the cluster never granted
    /// the replica — discarded like a bad signature. Only the cluster
    /// advances incarnations (on sanctioned rollbacks), so a replica
    /// cannot launder a contradiction by bumping its own counter.
    BadIncarnation,
    /// Valid signature conflicting with a previously recorded one: the
    /// replica equivocated, and here is the conviction.
    Equivocation(Box<EquivocationProof>),
}

#[derive(Debug, Default)]
struct LedgerInner {
    /// First validly-signed head seen per (shard, replica, incarnation,
    /// scope).
    seen: BTreeMap<(usize, usize, u64, AttestationScope), HeadAttestation>,
    /// Convictions, in detection order (deduplicated per replica+scope).
    proofs: Vec<EquivocationProof>,
    /// Highest incarnation granted per (shard, replica); absent means 0.
    incarnations: BTreeMap<(usize, usize), u64>,
    /// Highest validly-signed head length per (shard, replica) — the input
    /// to the quorum-corroborated pruning horizon.
    max_head: BTreeMap<(usize, usize), u64>,
}

/// The split-view detector: a shared ledger of every validly-signed head
/// each replica has shown *anyone* — the deposit path, the view gatherer,
/// the epoch sealer, or a client presenting gossip. The first conflicting
/// signature becomes an [`EquivocationProof`].
///
/// Cheap to clone (shared state); bounded per replica by the BFT window
/// (old head scopes are pruned as *quorum-corroborated* progress passes
/// them — pruned history is still covered by epoch scopes and by store
/// comparison).
#[derive(Debug, Clone)]
pub struct AttestationLog {
    keyring: ReplicaKeyring,
    window: usize,
    /// How many replicas of a shard must have signed a length before the
    /// pruning horizon may advance past it (the BFT attest quorum). A
    /// single replica's self-reported length never moves the horizon.
    attest_quorum: usize,
    inner: Arc<Mutex<LedgerInner>>,
}

impl AttestationLog {
    /// Creates an empty ledger verifying against `keyring`, retaining
    /// `window` head scopes per replica behind the highest length that
    /// `attest_quorum` replicas of the shard have validly signed.
    pub fn new(keyring: ReplicaKeyring, window: usize, attest_quorum: usize) -> Self {
        AttestationLog {
            keyring,
            window: window.max(1),
            attest_quorum: attest_quorum.max(1),
            inner: Arc::new(Mutex::new(LedgerInner::default())),
        }
    }

    /// The keyring attestations are verified against.
    pub fn keyring(&self) -> &ReplicaKeyring {
        &self.keyring
    }

    /// Records one attestation: verifies its signature, checks its claimed
    /// incarnation was actually granted, checks it against every prior
    /// statement by the same replica in the same incarnation at the same
    /// scope, and returns what was learned. Equivocations are retained
    /// (see [`AttestationLog::proofs`]).
    pub fn observe(&self, att: HeadAttestation) -> Observation {
        if !self.keyring.verify(&att) {
            return Observation::BadSignature;
        }
        let identity = (att.shard, att.replica);
        let mut inner = self.inner.lock();
        let granted = inner.incarnations.get(&identity).copied().unwrap_or(0);
        if att.incarnation > granted {
            return Observation::BadIncarnation;
        }
        let key = (att.shard, att.replica, att.incarnation, att.scope);
        if let Some(prior) = inner.seen.get(&key) {
            if prior.head == att.head {
                return Observation::Duplicate;
            }
            let proof = EquivocationProof {
                first: prior.clone(),
                second: att,
            };
            let already = inner.proofs.iter().any(|p| {
                p.replica() == proof.replica()
                    && p.shard() == proof.shard()
                    && p.scope() == proof.scope()
            });
            if !already {
                inner.proofs.push(proof.clone());
            }
            return Observation::Equivocation(Box::new(proof));
        }
        inner.seen.insert(key, att.clone());
        // Prune old head scopes for this replica, keeping the window — but
        // advance the horizon only on *quorum-corroborated* length: the
        // attest_quorum-th largest validly-signed length across the shard's
        // replicas. One replica signing an inflated Head{huge} cannot flush
        // its own earlier statements out of the detector.
        if let AttestationScope::Head { length } = att.scope {
            let max = inner.max_head.entry(identity).or_insert(0);
            *max = (*max).max(length);
            let mut lengths: Vec<u64> = inner
                .max_head
                .iter()
                .filter(|((s, _), _)| *s == att.shard)
                .map(|(_, l)| *l)
                .collect();
            lengths.sort_unstable_by(|a, b| b.cmp(a));
            let corroborated = lengths
                .get(self.attest_quorum.saturating_sub(1))
                .copied()
                .unwrap_or(0);
            let horizon = corroborated.saturating_sub(self.window as u64);
            inner.seen.retain(|(s, r, _, scope), _| {
                !(*s == att.shard
                    && *r == att.replica
                    && matches!(scope, AttestationScope::Head { length: l } if *l < horizon))
            });
        }
        Observation::Consistent
    }

    /// Grants (shard, replica) its next rollback incarnation and returns
    /// it. The cluster calls this when it sanctions a rollback of the
    /// replica's log (catch-up backing out a racy adoption), then advances
    /// the replica's [`ReplicaAttestor`] to the returned number — heads
    /// signed before and after the rollback stop being comparable, so the
    /// honest post-rollback re-signature at a reused length is not an
    /// equivocation.
    pub fn note_rollback(&self, shard: usize, replica: usize) -> u64 {
        let mut inner = self.inner.lock();
        let granted = inner.incarnations.entry((shard, replica)).or_insert(0);
        *granted += 1;
        *granted
    }

    /// Every conviction recorded so far (at most one per replica+scope).
    pub fn proofs(&self) -> Vec<EquivocationProof> {
        self.inner.lock().proofs.clone()
    }

    /// Whether any conviction names (shard, replica).
    pub fn convicts(&self, shard: usize, replica: usize) -> bool {
        self.inner
            .lock()
            .proofs
            .iter()
            .any(|p| p.shard() == shard && p.replica() == replica)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adlp_crypto::RsaKeyPair;
    use rand::SeedableRng;

    fn keypair(seed: u64) -> RsaKeyPair {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        RsaKeyPair::generate(512, &mut rng)
    }

    /// `RsaPrivateKey` is deliberately not `Clone`; tests that need both
    /// halves round-trip the private key through its encoding.
    fn keypair_private(kp: &RsaKeyPair) -> RsaPrivateKey {
        RsaPrivateKey::from_bytes(&kp.private_key().to_bytes()).unwrap()
    }

    fn head(tag: u8) -> Digest {
        adlp_crypto::sha256(&[tag; 4])
    }

    #[test]
    fn bft_quorum_arithmetic() {
        let b = BftConfig::new(1);
        assert_eq!(b.replicas_required(), 4);
        assert_eq!(b.attest_quorum(), 3);
        let b2 = BftConfig::new(2);
        assert_eq!(b2.replicas_required(), 7);
        assert_eq!(b2.attest_quorum(), 5);
        assert_eq!(BftConfig::new(0).f, 1, "f clamps to ≥1");
    }

    #[test]
    fn attestation_roundtrip_and_verification() {
        let kp = keypair(1);
        let attestor = ReplicaAttestor::new(2, 3, keypair_private(&kp));
        let att = attestor
            .attest(AttestationScope::Head { length: 17 }, head(7))
            .unwrap();
        assert!(att.verify(kp.public_key()));
        let decoded = HeadAttestation::decode(&att.encode()).unwrap();
        assert_eq!(decoded, att);
        assert!(decoded.verify(kp.public_key()));
        // The wrong key never verifies.
        assert!(!att.verify(keypair(2).public_key()));
        // Truncated bytes are refused, never panicked over.
        for cut in 0..att.encode().len() {
            let _ = HeadAttestation::decode(&att.encode()[..cut]);
        }
    }

    #[test]
    fn attestation_binds_identity_and_scope() {
        let kp = keypair(3);
        let attestor = ReplicaAttestor::new(0, 1, keypair_private(&kp));
        let att = attestor
            .attest(AttestationScope::Head { length: 5 }, head(1))
            .unwrap();
        // Transplanting the signature onto another identity or scope fails.
        let mut moved = att.clone();
        moved.replica = 2;
        assert!(!moved.verify(kp.public_key()));
        let mut rescoped = att.clone();
        rescoped.scope = AttestationScope::Head { length: 6 };
        assert!(!rescoped.verify(kp.public_key()));
        let mut epoch = att.clone();
        epoch.scope = AttestationScope::Epoch { epoch: 5 };
        assert!(
            !epoch.verify(kp.public_key()),
            "head@5 must not replay as epoch#5 (scope tag is signed)"
        );
    }

    fn ring_of(kps: &[(usize, usize, &RsaKeyPair)]) -> ReplicaKeyring {
        let shards = kps.iter().map(|(s, _, _)| s + 1).max().unwrap_or(0);
        let mut keys: Vec<Vec<RsaPublicKey>> = Vec::new();
        for shard in 0..shards {
            let mut row = Vec::new();
            let mut replica = 0;
            while let Some((_, _, kp)) =
                kps.iter().find(|(s, r, _)| *s == shard && *r == replica)
            {
                row.push(kp.public_key().clone());
                replica += 1;
            }
            keys.push(row);
        }
        ReplicaKeyring::new(keys)
    }

    #[test]
    fn equivocation_proof_convicts_and_forgeries_do_not() {
        let kp = keypair(4);
        let other = keypair(5);
        let keyring = ring_of(&[(0, 0, &kp), (0, 1, &other)]);
        let attestor = ReplicaAttestor::new(0, 0, keypair_private(&kp));
        let a = attestor
            .attest(AttestationScope::Head { length: 9 }, head(1))
            .unwrap();
        let b = attestor
            .attest(AttestationScope::Head { length: 9 }, head(2))
            .unwrap();
        let proof = EquivocationProof {
            first: a.clone(),
            second: b.clone(),
        };
        assert!(proof.verify(&keyring));
        let decoded = EquivocationProof::decode(&proof.encode()).unwrap();
        assert!(decoded.verify(&keyring));

        // Same head twice is not a conflict.
        let same = EquivocationProof {
            first: a.clone(),
            second: a.clone(),
        };
        assert!(!same.verify(&keyring));

        // Different scopes do not conflict.
        let c = attestor
            .attest(AttestationScope::Head { length: 10 }, head(2))
            .unwrap();
        assert!(!EquivocationProof { first: a.clone(), second: c }.verify(&keyring));

        // A proof pairing two *different* replicas convicts nobody.
        let other_att = ReplicaAttestor::new(0, 1, keypair_private(&other))
            .attest(AttestationScope::Head { length: 9 }, head(2))
            .unwrap();
        assert!(!EquivocationProof { first: a.clone(), second: other_att }.verify(&keyring));

        // A tampered attestation breaks its signature and the proof.
        let mut forged = b.clone();
        forged.head = head(3);
        assert!(!EquivocationProof { first: a, second: forged }.verify(&keyring));
    }

    #[test]
    fn ledger_detects_split_view_and_rejects_bad_signatures() {
        let kp = keypair(6);
        let keyring = ring_of(&[(0, 0, &kp)]);
        let ledger = AttestationLog::new(keyring, 64, 1);
        let attestor = ReplicaAttestor::new(0, 0, keypair_private(&kp));

        let honest = attestor
            .attest(AttestationScope::Head { length: 3 }, head(1))
            .unwrap();
        assert_eq!(ledger.observe(honest.clone()), Observation::Consistent);
        assert_eq!(ledger.observe(honest.clone()), Observation::Duplicate);
        assert!(ledger.proofs().is_empty());

        // A second, conflicting signature at the same scope convicts.
        let lie = attestor
            .attest(AttestationScope::Head { length: 3 }, head(2))
            .unwrap();
        let obs = ledger.observe(lie);
        assert!(matches!(obs, Observation::Equivocation(_)));
        assert_eq!(ledger.proofs().len(), 1);
        assert!(ledger.convicts(0, 0));
        assert!(ledger.proofs()[0].verify(ledger.keyring()));

        // A forged attestation (wrong key) is discarded, not recorded.
        let imposter = ReplicaAttestor::new(0, 0, keypair(7).into_private_key());
        let forged = imposter
            .attest(AttestationScope::Head { length: 4 }, head(9))
            .unwrap();
        assert_eq!(ledger.observe(forged), Observation::BadSignature);
        assert_eq!(ledger.proofs().len(), 1, "forgery must not add convictions");
    }

    #[test]
    fn ledger_prunes_old_head_scopes_but_keeps_epochs() {
        let kp = keypair(8);
        let keyring = ring_of(&[(0, 0, &kp)]);
        let ledger = AttestationLog::new(keyring, 4, 1);
        let attestor = ReplicaAttestor::new(0, 0, keypair_private(&kp));
        let epoch = attestor
            .attest(AttestationScope::Epoch { epoch: 1 }, head(1))
            .unwrap();
        assert_eq!(ledger.observe(epoch), Observation::Consistent);
        for length in 1..=20u64 {
            let att = attestor
                .attest(AttestationScope::Head { length }, head(length as u8))
                .unwrap();
            assert_eq!(ledger.observe(att), Observation::Consistent);
        }
        // Head@1 fell out of the window: re-attesting it differently is no
        // longer caught here (store comparison still covers it) …
        let stale_lie = attestor
            .attest(AttestationScope::Head { length: 1 }, head(99))
            .unwrap();
        assert_eq!(ledger.observe(stale_lie), Observation::Consistent);
        // … but the epoch scope is never pruned.
        let epoch_lie = attestor
            .attest(AttestationScope::Epoch { epoch: 1 }, head(98))
            .unwrap();
        assert!(matches!(ledger.observe(epoch_lie), Observation::Equivocation(_)));
    }

    #[test]
    fn inflated_self_reported_length_cannot_flush_prior_statements() {
        // Two replicas, attest quorum 2: the pruning horizon only advances
        // on lengths both have signed. Replica 0 signs Head{3}, then an
        // inflated Head{1_000_000} — under the old claimed-length horizon
        // that single statement would have flushed Head{3} from the seen
        // map, letting it re-sign a conflicting head at 3 undetected.
        let kp = keypair(10);
        let peer = keypair(11);
        let keyring = ring_of(&[(0, 0, &kp), (0, 1, &peer)]);
        let ledger = AttestationLog::new(keyring, 4, 2);
        let attestor = ReplicaAttestor::new(0, 0, keypair_private(&kp));
        let honest_peer = ReplicaAttestor::new(0, 1, keypair_private(&peer));

        let first = attestor
            .attest(AttestationScope::Head { length: 3 }, head(1))
            .unwrap();
        assert_eq!(ledger.observe(first), Observation::Consistent);
        let peer_att = honest_peer
            .attest(AttestationScope::Head { length: 3 }, head(1))
            .unwrap();
        assert_eq!(ledger.observe(peer_att), Observation::Consistent);

        // The inflated claim verifies (it is the replica's own signature)
        // but corroborates nothing: the quorum-corroborated length stays 3.
        let inflated = attestor
            .attest(AttestationScope::Head { length: 1_000_000 }, head(50))
            .unwrap();
        assert_eq!(ledger.observe(inflated), Observation::Consistent);

        // Head{3} is still on record: the conflicting re-signature convicts.
        let lie = attestor
            .attest(AttestationScope::Head { length: 3 }, head(2))
            .unwrap();
        assert!(matches!(ledger.observe(lie), Observation::Equivocation(_)));
        assert!(ledger.convicts(0, 0));
    }

    #[test]
    fn attestor_state_roundtrips_and_resumes_across_process_loss() {
        use adlp_logger::MemStorage;

        let device: Arc<dyn Storage> = Arc::new(MemStorage::new());
        let kp = keypair(20);

        // First life: bind, sign heads, receive an incarnation grant.
        let attestor = ReplicaAttestor::new(0, 1, keypair_private(&kp));
        assert_eq!(
            attestor.bind_storage(Arc::clone(&device), "attestor").unwrap(),
            AttestorState { incarnation: 0, signed_len: 0, signed_head: None }
        );
        attestor
            .attest(AttestationScope::Head { length: 7 }, head(7))
            .unwrap();
        // A smaller length never regresses the durable high-water mark.
        attestor
            .attest(AttestationScope::Head { length: 3 }, head(3))
            .unwrap();
        attestor.set_incarnation(2).unwrap();
        drop(attestor);

        // Second life (fresh process): the same device resumes the state —
        // the incarnation and last-signed head survived.
        let reborn = ReplicaAttestor::new(0, 1, keypair_private(&kp));
        let resumed = reborn.bind_storage(Arc::clone(&device), "attestor").unwrap();
        assert_eq!(
            resumed,
            AttestorState { incarnation: 2, signed_len: 7, signed_head: Some(head(7)) }
        );
        assert_eq!(reborn.incarnation(), 2);
        assert_eq!(reborn.state(), resumed);

        // Epoch scopes are not head progress: they must not disturb it.
        reborn
            .attest(AttestationScope::Epoch { epoch: 9 }, head(9))
            .unwrap();
        assert_eq!(reborn.state().signed_len, 7);

        // The raw bytes also round-trip standalone, and truncations are
        // refused rather than resumed from.
        let encoded = reborn.state().encode();
        assert_eq!(AttestorState::decode(&encoded).unwrap(), reborn.state());
        for cut in 0..encoded.len() {
            assert!(
                AttestorState::decode(&encoded[..cut]).is_err(),
                "truncation at {cut} must fail closed"
            );
        }
    }

    #[test]
    fn attest_fails_closed_when_the_state_device_refuses() {
        use adlp_logger::{FaultyStorage, MemStorage, StorageFaultConfig};

        let mut cfg = StorageFaultConfig::none(5);
        cfg.die_after_ops = Some(2); // survives bind (read + persist), then dies
        let device: Arc<dyn Storage> =
            Arc::new(FaultyStorage::new(Arc::new(MemStorage::new()), cfg));
        let kp = keypair(21);
        let attestor = ReplicaAttestor::new(0, 0, keypair_private(&kp));
        attestor.bind_storage(device, "attestor").unwrap();

        // Record first, speak second: if the device cannot record the
        // statement, the signature is withheld.
        assert!(attestor
            .attest(AttestationScope::Head { length: 1 }, head(1))
            .is_err());
    }

    #[test]
    fn rollback_incarnations_separate_statements_and_self_bumps_are_refused() {
        let kp = keypair(12);
        let keyring = ring_of(&[(0, 0, &kp)]);
        let ledger = AttestationLog::new(keyring, 64, 1);
        let attestor = ReplicaAttestor::new(0, 0, keypair_private(&kp));

        // A replica bumping its own incarnation (no sanctioned rollback) is
        // refused: the statement is discarded, recorded nowhere.
        attestor.set_incarnation(1).unwrap();
        let premature = attestor
            .attest(AttestationScope::Head { length: 2 }, head(1))
            .unwrap();
        assert_eq!(ledger.observe(premature), Observation::BadIncarnation);
        attestor.set_incarnation(0).unwrap();

        let before = attestor
            .attest(AttestationScope::Head { length: 2 }, head(1))
            .unwrap();
        assert_eq!(ledger.observe(before.clone()), Observation::Consistent);

        // Sanctioned rollback: the cluster grants incarnation 1, and the
        // honest re-signature at the same length with different content is
        // a fresh statement, not an equivocation.
        let granted = ledger.note_rollback(0, 0);
        assert_eq!(granted, 1);
        attestor.set_incarnation(granted).unwrap();
        let after = attestor
            .attest(AttestationScope::Head { length: 2 }, head(2))
            .unwrap();
        assert_eq!(ledger.observe(after.clone()), Observation::Consistent);
        assert!(ledger.proofs().is_empty(), "cross-incarnation heads never conflict");

        // Within the new incarnation the detector is as sharp as ever.
        let lie = attestor
            .attest(AttestationScope::Head { length: 2 }, head(3))
            .unwrap();
        assert!(matches!(ledger.observe(lie), Observation::Equivocation(_)));

        // And a proof straddling incarnations does not verify as one.
        let proof = EquivocationProof { first: before, second: after };
        assert!(!proof.verify(ledger.keyring()));
    }
}
