//! Cross-replica comparison: the auditor's view of the cluster.
//!
//! Replicas of a shard receive the same entries in the same order (the
//! client serializes each shard's fan-out), so honest replicas hold
//! byte-identical logs — possibly truncated, for a replica that crashed or
//! restarted. That makes the integrity check sharp:
//!
//! * byte-identical → **consistent**;
//! * a strict prefix, a contiguous window (a replica restarted mid-stream
//!   missed the head), or a strict extension of the quorum log →
//!   **lagging/ahead**, the fail-stop degradation the trust model
//!   tolerates;
//! * *conflicting content* at some index → **diverged**: some replica
//!   rewrote history. That is tamper evidence naming the shard and replica,
//!   surfaced before any per-entry classification runs.

use crate::attestation::EquivocationProof;
use crate::cluster::LoggerCluster;
use crate::epoch::{empty_shard_root, ShardRoot};
use adlp_crypto::sha256::Digest;
use adlp_logger::merkle::MerkleTree;
use adlp_logger::{LogEntry, LogError};

/// How one replica's log relates to its shard's quorum log.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReplicaStatus {
    /// Byte-identical to the quorum log.
    Consistent,
    /// A strict prefix or contiguous window of the quorum log —
    /// crashed/restarted, `behind` records short. Availability loss only.
    Lagging {
        /// Records of the quorum log missing from this replica.
        behind: usize,
    },
    /// A strict extension of the quorum log by `extra` records (its peers
    /// stopped short of it). Availability skew only — but note an
    /// over-long log is a *self-report*: the extension is excluded from
    /// the quorum log unless corroborated (see [`ClusterView`] docs), so a
    /// replica fabricating history inflates only its own status, never the
    /// audited log.
    Ahead {
        /// Records beyond the quorum log's length.
        extra: usize,
    },
    /// Conflicting content: this replica's record at
    /// `first_divergent_index` differs from the quorum log. Tamper
    /// evidence.
    Diverged {
        /// First index where the content conflicts.
        first_divergent_index: usize,
    },
    /// BFT mode: this replica signed two conflicting heads at the same
    /// scope — *provably malicious*, the only verdict in this lattice
    /// backed by a transferable cryptographic proof rather than majority
    /// comparison. Overrides the comparison-based statuses above.
    Equivocated {
        /// Verified equivocation proofs naming this replica.
        convictions: usize,
    },
}

/// Tamper evidence: a replica whose log conflicts with its shard's quorum
/// log.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReplicaDivergence {
    /// Shard of the offending replica.
    pub shard: usize,
    /// Replica index within the shard.
    pub replica: usize,
    /// First record index where the content conflicts.
    pub first_divergent_index: usize,
}

/// One shard's gathered state.
#[derive(Debug, Clone)]
pub struct ShardView {
    /// Shard index.
    pub shard: usize,
    /// The quorum log: the record sequence the largest replica group
    /// agrees on (ties broken toward the longer log).
    pub records: Vec<Vec<u8>>,
    /// Per-replica relation to the quorum log.
    pub statuses: Vec<ReplicaStatus>,
    /// Merkle root over the quorum log's record hashes (a fixed sentinel
    /// root for an empty shard).
    pub root: Digest,
}

/// The whole cluster, gathered and cross-checked.
#[derive(Debug, Clone)]
pub struct ClusterView {
    /// Per-shard views, indexed by shard.
    pub shards: Vec<ShardView>,
    /// BFT mode: every equivocation proof the attestation ledger holds at
    /// gather time — self-contained evidence an auditor re-verifies
    /// against the replica keyring (empty on a crash-quorum cluster).
    pub convictions: Vec<EquivocationProof>,
}

impl ShardView {
    /// This shard's anchoring input for the epoch super-root.
    pub fn shard_root(&self) -> ShardRoot {
        ShardRoot {
            shard: self.shard,
            leaf_count: self.records.len(),
            root: self.root,
        }
    }
}

impl ClusterView {
    /// Every replica whose content conflicts with its shard's quorum log.
    pub fn divergences(&self) -> Vec<ReplicaDivergence> {
        let mut out = Vec::new();
        for shard in &self.shards {
            for (replica, status) in shard.statuses.iter().enumerate() {
                if let ReplicaStatus::Diverged {
                    first_divergent_index,
                } = status
                {
                    out.push(ReplicaDivergence {
                        shard: shard.shard,
                        replica,
                        first_divergent_index: *first_divergent_index,
                    });
                }
            }
        }
        out
    }

    /// (shard, replica) for every replica convicted of equivocation.
    pub fn equivocated(&self) -> Vec<(usize, usize)> {
        let mut out = Vec::new();
        for shard in &self.shards {
            for (replica, status) in shard.statuses.iter().enumerate() {
                if matches!(status, ReplicaStatus::Equivocated { .. }) {
                    out.push((shard.shard, replica));
                }
            }
        }
        out
    }

    /// (shard, replica, records behind) for every lagging replica.
    pub fn lagging(&self) -> Vec<(usize, usize, usize)> {
        let mut out = Vec::new();
        for shard in &self.shards {
            for (replica, status) in shard.statuses.iter().enumerate() {
                if let ReplicaStatus::Lagging { behind } = status {
                    out.push((shard.shard, replica, *behind));
                }
            }
        }
        out
    }

    /// Total records across all shards' quorum logs (shards partition the
    /// keyspace, so this is a union without duplicates).
    pub fn total_records(&self) -> usize {
        self.shards.iter().map(|s| s.records.len()).sum()
    }

    /// Per-shard anchoring inputs, in shard order.
    pub fn shard_roots(&self) -> Vec<ShardRoot> {
        self.shards.iter().map(ShardView::shard_root).collect()
    }

    /// Decodes every quorum-log record across all shards.
    pub fn entries(&self) -> Vec<Result<LogEntry, LogError>> {
        self.shards
            .iter()
            .flat_map(|s| s.records.iter().map(|r| LogEntry::decode(r)))
            .collect()
    }
}

/// Gathers every replica's store and cross-checks the shard groups.
///
/// In BFT mode, gathering is also an *interrogation*: every replica signs
/// its current chain head into the attestation ledger, so a replica that
/// told the deposit path one history and shows the gatherer another
/// convicts itself here. Convicted replicas surface as
/// [`ReplicaStatus::Equivocated`] and the proofs ride along in
/// [`ClusterView::convictions`].
pub fn gather(cluster: &LoggerCluster) -> ClusterView {
    let shards = (0..cluster.shard_count())
        .map(|shard| gather_shard(cluster, shard))
        .collect();
    let convictions = cluster
        .attestations()
        .map(|ledger| ledger.proofs())
        .unwrap_or_default();
    ClusterView { shards, convictions }
}

/// One shard's quorum log, gathered *quietly* — no BFT attestation
/// interrogation. Catch-up uses this for its before/after quorum reads:
/// interrogating mid-repair would make the caught-up replica swear to a
/// transient adopted state that a rollback may later undo, and the honest
/// post-rollback re-signature at the same length would then read as an
/// equivocation — a false conviction minted by the repair path itself.
pub(crate) fn quorum_records(cluster: &LoggerCluster, shard: usize) -> Option<Vec<Vec<u8>>> {
    if shard >= cluster.shard_count() {
        return None;
    }
    let stores: Vec<Vec<Vec<u8>>> = cluster
        .shard_replicas(shard)
        .iter()
        .map(|slot| slot.handle().store().encoded_records())
        .collect();
    Some(quorum_log(&stores))
}

fn gather_shard(cluster: &LoggerCluster, shard: usize) -> ShardView {
    let slots = cluster.shard_replicas(shard);
    let stores: Vec<Vec<Vec<u8>>> = slots
        .iter()
        .map(|slot| slot.handle().store().encoded_records())
        .collect();
    let records = quorum_log(&stores);
    let mut statuses: Vec<ReplicaStatus> =
        stores.iter().map(|s| status_of(s, &records)).collect();
    if let Some(ledger) = cluster.attestations() {
        // Interrogate: every replica countersigns its current true head.
        for slot in slots {
            if let Ok(Some(att)) = slot.attest_head() {
                let observation = ledger.observe(att);
                cluster.stats().note_observation(&observation);
            }
        }
        // A verified conviction outranks any comparison-based status.
        let proofs = ledger.proofs();
        for (replica, status) in statuses.iter_mut().enumerate() {
            let convictions = proofs
                .iter()
                .filter(|p| p.shard() == shard && p.replica() == replica)
                .count();
            if convictions > 0 {
                *status = ReplicaStatus::Equivocated { convictions };
            }
        }
    }
    let root = merkle_root(&records);
    ShardView {
        shard,
        records,
        statuses,
        root,
    }
}

/// The record sequence the largest replica group agrees on. Ties are
/// broken lexicographically by (equality count, prefix corroboration,
/// length):
///
/// * *prefix corroboration* of a candidate counts the stores that are a
///   prefix of (or equal to) it — peers whose shorter logs vouch for the
///   candidate's early history. A lone survivor extending a stale group's
///   log is corroborated by that group; a replica self-reporting an
///   over-long log that *conflicts* with its peers corroborates nothing
///   beyond itself and loses the tie (the symmetric twin of catch-up's
///   "replica ahead of quorum" refusal — the read path no longer lets an
///   uncorroborated over-long log become the quorum log merely by being
///   longest);
/// * length only breaks ties *within* equally-corroborated candidates.
///
/// Residual ambiguity: when a single replica extends the corroborated
/// prefix, a genuine lone survivor and a fabricated extension are
/// indistinguishable by content alone. Crash-quorum clusters accept the
/// extension (availability bias, as before); BFT clusters do not need to
/// choose — an extension without `2f+1` signed head attestations was
/// never acknowledged, and the attestation ledger convicts a replica that
/// signs for history its peers never saw.
fn quorum_log(stores: &[Vec<Vec<u8>>]) -> Vec<Vec<u8>> {
    let mut best: Option<(usize, usize, &Vec<Vec<u8>>)> = None;
    for candidate in stores {
        let count = stores.iter().filter(|s| *s == candidate).count();
        let support = stores
            .iter()
            .filter(|s| is_prefix_of(s, candidate))
            .count();
        let better = match best {
            None => true,
            Some((best_count, best_support, best_ref)) => {
                (count, support, candidate.len()) > (best_count, best_support, best_ref.len())
            }
        };
        if better {
            best = Some((count, support, candidate));
        }
    }
    best.map(|(_, _, r)| r.clone()).unwrap_or_default()
}

/// Whether `shorter` is a (possibly equal) prefix of `longer`.
fn is_prefix_of(shorter: &[Vec<u8>], longer: &[Vec<u8>]) -> bool {
    shorter.len() <= longer.len() && shorter.iter().zip(longer.iter()).all(|(a, b)| a == b)
}

fn status_of(records: &[Vec<u8>], reference: &[Vec<u8>]) -> ReplicaStatus {
    let common = records
        .iter()
        .zip(reference.iter())
        .take_while(|(a, b)| a == b)
        .count();
    if common == records.len() && common == reference.len() {
        ReplicaStatus::Consistent
    } else if common == records.len() {
        ReplicaStatus::Lagging {
            behind: reference.len() - common,
        }
    } else if common == reference.len() {
        ReplicaStatus::Ahead {
            extra: records.len() - common,
        }
    } else if is_window_of(records, reference) {
        // A replica restarted mid-stream holds a contiguous *window* of
        // the quorum log (typically a suffix: it missed the head while
        // down). Its content never conflicts — availability loss, not
        // tamper evidence.
        ReplicaStatus::Lagging {
            behind: reference.len() - records.len(),
        }
    } else {
        ReplicaStatus::Diverged {
            first_divergent_index: common,
        }
    }
}

/// Whether `records` appears as a contiguous run inside `reference`.
fn is_window_of(records: &[Vec<u8>], reference: &[Vec<u8>]) -> bool {
    if records.len() >= reference.len() {
        return false;
    }
    (0..=reference.len() - records.len()).any(|start| {
        reference
            .iter()
            .skip(start)
            .take(records.len())
            .eq(records.iter())
    })
}

/// Merkle root over a record sequence (sentinel root when empty, so every
/// shard contributes a leaf to the super-root).
pub(crate) fn merkle_root(records: &[Vec<u8>]) -> Digest {
    if records.is_empty() {
        return empty_shard_root();
    }
    let leaves: Vec<Digest> = records.iter().map(|r| adlp_crypto::sha256(r)).collect();
    MerkleTree::build(&leaves).root().unwrap_or_else(empty_shard_root)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ClusterConfig;
    use adlp_logger::{Direction, LogEntry};
    use adlp_pubsub::{NodeId, Topic};

    fn rec(tag: u8) -> Vec<u8> {
        vec![tag; 8]
    }

    #[test]
    fn status_classification() {
        let reference = vec![rec(1), rec(2), rec(3)];
        assert_eq!(
            status_of(&reference, &reference),
            ReplicaStatus::Consistent
        );
        assert_eq!(
            status_of(&reference[..1], &reference),
            ReplicaStatus::Lagging { behind: 2 }
        );
        assert_eq!(
            status_of(&[rec(1), rec(2), rec(3), rec(4)], &reference),
            ReplicaStatus::Ahead { extra: 1 }
        );
        assert_eq!(
            status_of(&[rec(1), rec(9), rec(3)], &reference),
            ReplicaStatus::Diverged {
                first_divergent_index: 1
            }
        );
        // A restarted replica holding only the tail is lagging, not
        // diverged: its content never conflicts.
        assert_eq!(
            status_of(&[rec(2), rec(3)], &reference),
            ReplicaStatus::Lagging { behind: 1 }
        );
        // But conflicting content that happens to start elsewhere is not.
        assert_eq!(
            status_of(&[rec(3), rec(2)], &reference),
            ReplicaStatus::Diverged {
                first_divergent_index: 0
            }
        );
    }

    #[test]
    fn quorum_log_majority_wins() {
        let good = vec![rec(1), rec(2)];
        let bad = vec![rec(1), rec(9)];
        let stores = vec![good.clone(), good.clone(), bad];
        assert_eq!(quorum_log(&stores), good);
    }

    #[test]
    fn quorum_log_tie_prefers_longer() {
        let long = vec![rec(1), rec(2), rec(3)];
        let short = vec![rec(1)];
        // Tie (every store is unique): the lone survivor's extension is
        // corroborated by the stale prefix, so it still wins.
        let stores = vec![short, long.clone()];
        assert_eq!(quorum_log(&stores), long);
    }

    #[test]
    fn quorum_log_uncorroborated_overlong_log_loses_the_tie() {
        // Three unique stores: a stale prefix, a survivor one record ahead
        // of it, and a replica self-reporting a *conflicting* over-long
        // log. The conflicting fabrication corroborates nothing beyond
        // itself and must not win merely by being longest.
        let stale = vec![rec(1)];
        let survivor = vec![rec(1), rec(2)];
        let fabricated = vec![rec(9), rec(8), rec(7), rec(6)];
        let stores = vec![stale, survivor.clone(), fabricated];
        assert_eq!(quorum_log(&stores), survivor);
    }

    #[test]
    fn quorum_log_overlong_replica_is_ahead_not_quorum() {
        // A corroborated pair outvotes a longer self-report that extends
        // their log: the extension was never acknowledged by anyone else.
        let agreed = vec![rec(1), rec(2)];
        let inflated = vec![rec(1), rec(2), rec(3), rec(4)];
        let stores = vec![agreed.clone(), agreed.clone(), inflated.clone()];
        assert_eq!(quorum_log(&stores), agreed);
        // And on the status side the over-long replica is merely Ahead —
        // its self-reported extension inflates its own status, never the
        // audited log (the symmetric twin of catch-up's "replica ahead of
        // quorum" refusal).
        assert_eq!(
            status_of(&inflated, &quorum_log(&stores)),
            ReplicaStatus::Ahead { extra: 2 }
        );
    }

    #[test]
    fn gathered_view_flags_tampered_replica() {
        let cluster = LoggerCluster::spawn(ClusterConfig::replicated(1)).unwrap();
        let entry = LogEntry::naive(
            NodeId::new("cam"),
            Topic::new("image"),
            Direction::Out,
            1,
            1,
            vec![7u8; 16],
        );
        for slot in cluster.shard_replicas(0) {
            slot.handle().try_submit(entry.clone()).unwrap();
            slot.handle().flush().unwrap();
        }
        // Rewrite history on replica 2 via the existing tamper path.
        let victim = cluster.replica(0, 2).unwrap();
        let fake = LogEntry::naive(
            NodeId::new("cam"),
            Topic::new("image"),
            Direction::Out,
            1,
            1,
            vec![9u8; 16],
        );
        victim
            .handle()
            .store()
            .tamper_with_record(0, fake.encode())
            .unwrap();

        let view = cluster.view();
        let div = view.divergences();
        assert_eq!(div.len(), 1);
        assert_eq!(
            div.first(),
            Some(&ReplicaDivergence {
                shard: 0,
                replica: 2,
                first_divergent_index: 0
            })
        );
        assert_eq!(view.total_records(), 1);
    }
}
