//! Cross-replica comparison: the auditor's view of the cluster.
//!
//! Replicas of a shard receive the same entries in the same order (the
//! client serializes each shard's fan-out), so honest replicas hold
//! byte-identical logs — possibly truncated, for a replica that crashed or
//! restarted. That makes the integrity check sharp:
//!
//! * byte-identical → **consistent**;
//! * a strict prefix, a contiguous window (a replica restarted mid-stream
//!   missed the head), or a strict extension of the quorum log →
//!   **lagging/ahead**, the fail-stop degradation the trust model
//!   tolerates;
//! * *conflicting content* at some index → **diverged**: some replica
//!   rewrote history. That is tamper evidence naming the shard and replica,
//!   surfaced before any per-entry classification runs.

use crate::cluster::LoggerCluster;
use crate::epoch::{empty_shard_root, ShardRoot};
use adlp_crypto::sha256::Digest;
use adlp_logger::merkle::MerkleTree;
use adlp_logger::{LogEntry, LogError};

/// How one replica's log relates to its shard's quorum log.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReplicaStatus {
    /// Byte-identical to the quorum log.
    Consistent,
    /// A strict prefix or contiguous window of the quorum log —
    /// crashed/restarted, `behind` records short. Availability loss only.
    Lagging {
        /// Records of the quorum log missing from this replica.
        behind: usize,
    },
    /// A strict extension of the quorum log by `extra` records (its peers
    /// stopped short of it). Availability skew only.
    Ahead {
        /// Records beyond the quorum log's length.
        extra: usize,
    },
    /// Conflicting content: this replica's record at
    /// `first_divergent_index` differs from the quorum log. Tamper
    /// evidence.
    Diverged {
        /// First index where the content conflicts.
        first_divergent_index: usize,
    },
}

/// Tamper evidence: a replica whose log conflicts with its shard's quorum
/// log.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReplicaDivergence {
    /// Shard of the offending replica.
    pub shard: usize,
    /// Replica index within the shard.
    pub replica: usize,
    /// First record index where the content conflicts.
    pub first_divergent_index: usize,
}

/// One shard's gathered state.
#[derive(Debug, Clone)]
pub struct ShardView {
    /// Shard index.
    pub shard: usize,
    /// The quorum log: the record sequence the largest replica group
    /// agrees on (ties broken toward the longer log).
    pub records: Vec<Vec<u8>>,
    /// Per-replica relation to the quorum log.
    pub statuses: Vec<ReplicaStatus>,
    /// Merkle root over the quorum log's record hashes (a fixed sentinel
    /// root for an empty shard).
    pub root: Digest,
}

/// The whole cluster, gathered and cross-checked.
#[derive(Debug, Clone)]
pub struct ClusterView {
    /// Per-shard views, indexed by shard.
    pub shards: Vec<ShardView>,
}

impl ShardView {
    /// This shard's anchoring input for the epoch super-root.
    pub fn shard_root(&self) -> ShardRoot {
        ShardRoot {
            shard: self.shard,
            leaf_count: self.records.len(),
            root: self.root,
        }
    }
}

impl ClusterView {
    /// Every replica whose content conflicts with its shard's quorum log.
    pub fn divergences(&self) -> Vec<ReplicaDivergence> {
        let mut out = Vec::new();
        for shard in &self.shards {
            for (replica, status) in shard.statuses.iter().enumerate() {
                if let ReplicaStatus::Diverged {
                    first_divergent_index,
                } = status
                {
                    out.push(ReplicaDivergence {
                        shard: shard.shard,
                        replica,
                        first_divergent_index: *first_divergent_index,
                    });
                }
            }
        }
        out
    }

    /// (shard, replica, records behind) for every lagging replica.
    pub fn lagging(&self) -> Vec<(usize, usize, usize)> {
        let mut out = Vec::new();
        for shard in &self.shards {
            for (replica, status) in shard.statuses.iter().enumerate() {
                if let ReplicaStatus::Lagging { behind } = status {
                    out.push((shard.shard, replica, *behind));
                }
            }
        }
        out
    }

    /// Total records across all shards' quorum logs (shards partition the
    /// keyspace, so this is a union without duplicates).
    pub fn total_records(&self) -> usize {
        self.shards.iter().map(|s| s.records.len()).sum()
    }

    /// Per-shard anchoring inputs, in shard order.
    pub fn shard_roots(&self) -> Vec<ShardRoot> {
        self.shards.iter().map(ShardView::shard_root).collect()
    }

    /// Decodes every quorum-log record across all shards.
    pub fn entries(&self) -> Vec<Result<LogEntry, LogError>> {
        self.shards
            .iter()
            .flat_map(|s| s.records.iter().map(|r| LogEntry::decode(r)))
            .collect()
    }
}

/// Gathers every replica's store and cross-checks the shard groups.
pub fn gather(cluster: &LoggerCluster) -> ClusterView {
    let shards = (0..cluster.shard_count())
        .map(|shard| gather_shard(cluster, shard))
        .collect();
    ClusterView { shards }
}

fn gather_shard(cluster: &LoggerCluster, shard: usize) -> ShardView {
    let stores: Vec<Vec<Vec<u8>>> = cluster
        .shard_replicas(shard)
        .iter()
        .map(|slot| slot.handle().store().encoded_records())
        .collect();
    let records = quorum_log(&stores);
    let statuses = stores.iter().map(|s| status_of(s, &records)).collect();
    let root = merkle_root(&records);
    ShardView {
        shard,
        records,
        statuses,
        root,
    }
}

/// The record sequence the largest replica group agrees on; ties broken
/// toward the longer log (a lone survivor that kept writing beats equally
/// sized stale groups).
fn quorum_log(stores: &[Vec<Vec<u8>>]) -> Vec<Vec<u8>> {
    let mut best: Option<(usize, &Vec<Vec<u8>>)> = None;
    for candidate in stores {
        let count = stores.iter().filter(|s| *s == candidate).count();
        let better = match best {
            None => true,
            Some((best_count, best_ref)) => {
                count > best_count || (count == best_count && candidate.len() > best_ref.len())
            }
        };
        if better {
            best = Some((count, candidate));
        }
    }
    best.map(|(_, r)| r.clone()).unwrap_or_default()
}

fn status_of(records: &[Vec<u8>], reference: &[Vec<u8>]) -> ReplicaStatus {
    let common = records
        .iter()
        .zip(reference.iter())
        .take_while(|(a, b)| a == b)
        .count();
    if common == records.len() && common == reference.len() {
        ReplicaStatus::Consistent
    } else if common == records.len() {
        ReplicaStatus::Lagging {
            behind: reference.len() - common,
        }
    } else if common == reference.len() {
        ReplicaStatus::Ahead {
            extra: records.len() - common,
        }
    } else if is_window_of(records, reference) {
        // A replica restarted mid-stream holds a contiguous *window* of
        // the quorum log (typically a suffix: it missed the head while
        // down). Its content never conflicts — availability loss, not
        // tamper evidence.
        ReplicaStatus::Lagging {
            behind: reference.len() - records.len(),
        }
    } else {
        ReplicaStatus::Diverged {
            first_divergent_index: common,
        }
    }
}

/// Whether `records` appears as a contiguous run inside `reference`.
fn is_window_of(records: &[Vec<u8>], reference: &[Vec<u8>]) -> bool {
    if records.len() >= reference.len() {
        return false;
    }
    (0..=reference.len() - records.len()).any(|start| {
        reference
            .iter()
            .skip(start)
            .take(records.len())
            .eq(records.iter())
    })
}

/// Merkle root over a record sequence (sentinel root when empty, so every
/// shard contributes a leaf to the super-root).
pub(crate) fn merkle_root(records: &[Vec<u8>]) -> Digest {
    if records.is_empty() {
        return empty_shard_root();
    }
    let leaves: Vec<Digest> = records.iter().map(|r| adlp_crypto::sha256(r)).collect();
    MerkleTree::build(&leaves).root().unwrap_or_else(empty_shard_root)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ClusterConfig;
    use adlp_logger::{Direction, LogEntry};
    use adlp_pubsub::{NodeId, Topic};

    fn rec(tag: u8) -> Vec<u8> {
        vec![tag; 8]
    }

    #[test]
    fn status_classification() {
        let reference = vec![rec(1), rec(2), rec(3)];
        assert_eq!(
            status_of(&reference, &reference),
            ReplicaStatus::Consistent
        );
        assert_eq!(
            status_of(&reference[..1], &reference),
            ReplicaStatus::Lagging { behind: 2 }
        );
        assert_eq!(
            status_of(&[rec(1), rec(2), rec(3), rec(4)], &reference),
            ReplicaStatus::Ahead { extra: 1 }
        );
        assert_eq!(
            status_of(&[rec(1), rec(9), rec(3)], &reference),
            ReplicaStatus::Diverged {
                first_divergent_index: 1
            }
        );
        // A restarted replica holding only the tail is lagging, not
        // diverged: its content never conflicts.
        assert_eq!(
            status_of(&[rec(2), rec(3)], &reference),
            ReplicaStatus::Lagging { behind: 1 }
        );
        // But conflicting content that happens to start elsewhere is not.
        assert_eq!(
            status_of(&[rec(3), rec(2)], &reference),
            ReplicaStatus::Diverged {
                first_divergent_index: 0
            }
        );
    }

    #[test]
    fn quorum_log_majority_wins() {
        let good = vec![rec(1), rec(2)];
        let bad = vec![rec(1), rec(9)];
        let stores = vec![good.clone(), good.clone(), bad];
        assert_eq!(quorum_log(&stores), good);
    }

    #[test]
    fn quorum_log_tie_prefers_longer() {
        let long = vec![rec(1), rec(2), rec(3)];
        let short = vec![rec(1)];
        // Tie (every store is unique): longest wins.
        let stores = vec![short, long.clone()];
        assert_eq!(quorum_log(&stores), long);
    }

    #[test]
    fn gathered_view_flags_tampered_replica() {
        let cluster = LoggerCluster::spawn(ClusterConfig::replicated(1)).unwrap();
        let entry = LogEntry::naive(
            NodeId::new("cam"),
            Topic::new("image"),
            Direction::Out,
            1,
            1,
            vec![7u8; 16],
        );
        for slot in cluster.shard_replicas(0) {
            slot.handle().try_submit(entry.clone()).unwrap();
            slot.handle().flush().unwrap();
        }
        // Rewrite history on replica 2 via the existing tamper path.
        let victim = cluster.replica(0, 2).unwrap();
        let fake = LogEntry::naive(
            NodeId::new("cam"),
            Topic::new("image"),
            Direction::Out,
            1,
            1,
            vec![9u8; 16],
        );
        victim
            .handle()
            .store()
            .tamper_with_record(0, fake.encode())
            .unwrap();

        let view = cluster.view();
        let div = view.divergences();
        assert_eq!(div.len(), 1);
        assert_eq!(
            div.first(),
            Some(&ReplicaDivergence {
                shard: 0,
                replica: 2,
                first_divergent_index: 0
            })
        );
        assert_eq!(view.total_records(), 1);
    }
}
