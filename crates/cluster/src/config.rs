//! Cluster topology and quorum configuration.

use crate::attestation::BftConfig;
use adlp_logger::LogError;
use adlp_pubsub::BreakerConfig;

/// Shape of a logger cluster: how many shards, how many replicas per
/// shard, and how many replica acknowledgements a deposit needs before it
/// counts as durable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClusterConfig {
    /// Number of shards the consistent-hash ring spreads entries over.
    pub shards: usize,
    /// Replicas per shard; every entry is fanned out to all of them.
    pub replicas: usize,
    /// Write quorum W: a deposit is acknowledged once W replicas of its
    /// shard accepted it. `W ≤ replicas`.
    pub write_quorum: usize,
    /// Virtual nodes per shard on the hash ring (smooths the key
    /// distribution; purely deterministic).
    pub vnodes: usize,
    /// When set, every replica lane is wrapped in a circuit breaker seeded
    /// deterministically from this configuration: a persistently failing
    /// replica is routed around (fast-fail, counted) and re-admitted
    /// through half-open probes. `None` (the default) preserves the
    /// always-attempt fan-out.
    pub breaker: Option<BreakerConfig>,
    /// When set, the shard runs in Byzantine-fault-tolerant mode: every
    /// replica holds an attestation keypair, an acknowledgement needs
    /// `2f+1` *matching signed head attestations* (not mere acceptances),
    /// and conflicting signatures become transferable equivocation proofs.
    /// Requires `replicas ≥ 3f+1`. `None` (the default) is the crash-only
    /// W-of-R quorum.
    pub bft: Option<BftConfig>,
}

impl ClusterConfig {
    /// A single-replica cluster of `shards` shards (R=1, W=1).
    pub fn new(shards: usize) -> Self {
        ClusterConfig {
            shards: shards.max(1),
            replicas: 1,
            write_quorum: 1,
            vnodes: 16,
            breaker: None,
            bft: None,
        }
    }

    /// Sets the replication factor R (write quorum clamped to stay `≤ R`).
    pub fn with_replicas(mut self, replicas: usize) -> Self {
        self.replicas = replicas.max(1);
        self.write_quorum = self.write_quorum.min(self.replicas);
        self
    }

    /// Sets the write quorum W.
    pub fn with_write_quorum(mut self, quorum: usize) -> Self {
        self.write_quorum = quorum.max(1);
        self
    }

    /// Sets the number of virtual ring nodes per shard.
    pub fn with_vnodes(mut self, vnodes: usize) -> Self {
        self.vnodes = vnodes.max(1);
        self
    }

    /// Wraps every replica lane in a circuit breaker configured by `cfg`
    /// (each lane gets its own breaker, seeded from `cfg.seed` mixed with
    /// its shard and replica indices, so trajectories are deterministic
    /// but decorrelated).
    pub fn with_breaker(mut self, cfg: BreakerConfig) -> Self {
        self.breaker = Some(cfg);
        self
    }

    /// The paper-style R=3/W=2 replication profile.
    pub fn replicated(shards: usize) -> Self {
        ClusterConfig::new(shards)
            .with_replicas(3)
            .with_write_quorum(2)
    }

    /// Enables BFT mode with budget `bft` (replica count and write quorum
    /// are raised to `3f+1` / `2f+1` if the current shape is smaller).
    pub fn with_bft(mut self, bft: BftConfig) -> Self {
        self.replicas = self.replicas.max(bft.replicas_required());
        self.write_quorum = self.write_quorum.max(bft.attest_quorum());
        self.bft = Some(bft);
        self
    }

    /// The Byzantine profile: `shards` shards of `3f+1` replicas, acks at
    /// `2f+1` matching signed heads.
    pub fn byzantine(shards: usize, f: usize) -> Self {
        ClusterConfig::new(shards).with_bft(BftConfig::new(f))
    }

    /// Checks the internal consistency of the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`LogError::Malformed`] when `write_quorum > replicas` or a
    /// field is zero.
    pub fn validate(&self) -> Result<(), LogError> {
        if self.shards == 0 || self.replicas == 0 || self.vnodes == 0 {
            return Err(LogError::Malformed("cluster config (zero dimension)"));
        }
        if self.write_quorum == 0 || self.write_quorum > self.replicas {
            return Err(LogError::Malformed("cluster config (write quorum)"));
        }
        if let Some(bft) = &self.bft {
            if self.replicas < bft.replicas_required() {
                return Err(LogError::Malformed("cluster config (bft replicas < 3f+1)"));
            }
            if self.write_quorum < bft.attest_quorum() {
                return Err(LogError::Malformed("cluster config (bft quorum < 2f+1)"));
            }
        }
        Ok(())
    }
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig::new(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_single_logger_equivalent() {
        let c = ClusterConfig::default();
        assert_eq!((c.shards, c.replicas, c.write_quorum), (1, 1, 1));
        assert!(c.validate().is_ok());
    }

    #[test]
    fn quorum_clamped_to_replicas() {
        let c = ClusterConfig::new(3).with_write_quorum(5).with_replicas(3);
        assert_eq!(c.write_quorum, 3);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn oversized_quorum_rejected() {
        let mut c = ClusterConfig::replicated(3);
        c.write_quorum = 4;
        assert!(c.validate().is_err());
    }

    #[test]
    fn byzantine_profile_shapes_the_shard() {
        let c = ClusterConfig::byzantine(2, 1);
        assert_eq!((c.shards, c.replicas, c.write_quorum), (2, 4, 3));
        assert!(c.validate().is_ok());
        // An under-provisioned BFT shard is refused.
        let mut small = ClusterConfig::byzantine(1, 1);
        small.replicas = 3;
        assert!(small.validate().is_err());
        let mut weak = ClusterConfig::byzantine(1, 1);
        weak.write_quorum = 2;
        assert!(weak.validate().is_err());
    }
}
