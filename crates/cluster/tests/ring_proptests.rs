//! Property-based tests for the consistent-hash ring.
//!
//! The routing layer carries two load-bearing promises: a (publisher,
//! topic) link's shard depends only on the ring *configuration* (so every
//! process routes identically), and resizing the cluster moves only the
//! keys the new topology forces to move. Because every shard's ring
//! points are derived independently of the shard count, growing from `n`
//! to `n+1` shards leaves shards `0..n`'s points untouched — a key either
//! keeps its shard or lands on the new one, never hops between survivors.

use adlp_cluster::HashRing;
use adlp_pubsub::{NodeId, Topic};
use proptest::prelude::*;

const VNODES: usize = 32;

fn arb_key() -> impl Strategy<Value = (NodeId, Topic)> {
    ("[a-z0-9_]{1,24}", "[a-z0-9_]{1,24}")
        .prop_map(|(n, t)| (NodeId::new(n), Topic::new(t)))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// Growing the ring by one shard may only move a key *to* the new
    /// shard — never between surviving shards. This is the bounded-key-
    /// movement guarantee: the set of moved keys is exactly the new
    /// shard's keyspace share.
    #[test]
    fn adding_a_shard_only_moves_keys_to_it(
        keys in proptest::collection::vec(arb_key(), 1..64),
        shards in 1usize..16,
    ) {
        let before = HashRing::new(shards, VNODES);
        let after = HashRing::new(shards + 1, VNODES);
        for (node, topic) in &keys {
            let old = before.shard_for(node, topic);
            let new = after.shard_for(node, topic);
            prop_assert!(
                new == old || new == shards,
                "key hopped between surviving shards: {} -> {} (added shard {})",
                old, new, shards
            );
        }
    }

    /// Shrinking the ring by one shard strands only the removed shard's
    /// keys; every key owned by a surviving shard keeps its assignment.
    #[test]
    fn removing_a_shard_strands_only_its_keys(
        keys in proptest::collection::vec(arb_key(), 1..64),
        shards in 1usize..16,
    ) {
        let before = HashRing::new(shards + 1, VNODES);
        let after = HashRing::new(shards, VNODES);
        for (node, topic) in &keys {
            let old = before.shard_for(node, topic);
            let new = after.shard_for(node, topic);
            if old < shards {
                prop_assert_eq!(new, old);
            } else {
                prop_assert!(new < shards, "orphaned key must land on a survivor");
            }
        }
    }

    /// Routing is a pure function of the configuration: two independently
    /// built rings with the same (shards, vnodes) agree on every key.
    #[test]
    fn routing_is_configuration_determined(
        key in arb_key(),
        shards in 1usize..17,
        vnodes in 1usize..48,
    ) {
        let a = HashRing::new(shards, vnodes);
        let b = HashRing::new(shards, vnodes);
        prop_assert_eq!(a.shard_for(&key.0, &key.1), b.shard_for(&key.0, &key.1));
        // And the answer is always a real shard.
        prop_assert!(a.shard_for(&key.0, &key.1) < shards);
    }
}

/// Deterministic balance sweep: at every cluster size from 1 to 16 shards
/// no shard is starved or a hotspot, and resizing moves no more than a
/// small multiple of the fair share (the structural proptests above prove
/// *which* keys move; this bounds *how many*).
#[test]
fn keyspace_balances_across_one_to_sixteen_shards() {
    const KEYS: usize = 4000;
    let population: Vec<(NodeId, Topic)> = (0..KEYS)
        .map(|i| {
            (
                NodeId::new(format!("pub{i}")),
                Topic::new(format!("topic{}", i % 11)),
            )
        })
        .collect();

    let mut prev: Option<(HashRing, usize)> = None;
    for shards in 1..=16usize {
        let ring = HashRing::new(shards, 64);
        let mut counts = vec![0usize; shards];
        for (node, topic) in &population {
            counts[ring.shard_for(node, topic)] += 1;
        }
        let fair = KEYS / shards;
        for (shard, &n) in counts.iter().enumerate() {
            assert!(
                n * 4 >= fair,
                "{shards} shards: shard {shard} starved ({n} of fair {fair}): {counts:?}"
            );
            assert!(
                n <= fair * 3,
                "{shards} shards: shard {shard} is a hotspot ({n} of fair {fair}): {counts:?}"
            );
        }

        if let Some((old_ring, old_shards)) = prev {
            let moved = population
                .iter()
                .filter(|(n, t)| old_ring.shard_for(n, t) != ring.shard_for(n, t))
                .count();
            let new_fair = KEYS / shards;
            assert!(
                moved <= new_fair * 3,
                "growing {old_shards}->{shards} shards moved {moved} keys (fair {new_fair})"
            );
        }
        prev = Some((ring, shards));
    }
}
