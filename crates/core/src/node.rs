//! [`AdlpNode`]: an application-facing component with a pluggable logging
//! scheme. The application sees the plain advertise/subscribe API; the
//! scheme (NoLogging / Base / ADLP) is wired in beneath it.

use crate::behavior::BehaviorProfile;
use crate::config::Scheme;
use crate::events::LogEvent;
use crate::identity::ComponentIdentity;
use crate::interceptor::{AdlpInterceptor, BaseInterceptor};
use crate::logging::{LoggingContext, LoggingThread};
use crate::overload::{OverloadConfig, QueuePressure};
use crate::target::DepositTarget;
use crate::AdlpError;
use adlp_crypto::Signature;
use adlp_logger::LoggerHandle;
use adlp_pubsub::{
    Clock, FaultConfig, FaultStats, LinkEvent, Master, Message, Node, NodeBuilder, NodeId,
    NodeStats, Publisher, ResilienceConfig, SubscribeOptions, Subscription, SystemClock, Topic,
    TransportKind,
};
use rand::RngCore;
use std::sync::Arc;

/// RSA modulus width the paper's prototype uses.
pub const PAPER_KEY_BITS: usize = 1024;

/// Configures and builds an [`AdlpNode`].
#[derive(Debug)]
pub struct AdlpNodeBuilder {
    id: NodeId,
    scheme: Scheme,
    behavior: BehaviorProfile,
    clock: Arc<dyn Clock>,
    transport: TransportKind,
    key_bits: usize,
    identity: Option<ComponentIdentity>,
    base_stores_hash: bool,
    resilience: ResilienceConfig,
    faults: Option<FaultConfig>,
    ack_after_durable: bool,
    overload: OverloadConfig,
}

impl AdlpNodeBuilder {
    /// Starts building a node running the default scheme (ADLP).
    pub fn new(id: impl Into<NodeId>) -> Self {
        AdlpNodeBuilder {
            id: id.into(),
            scheme: Scheme::default(),
            behavior: BehaviorProfile::faithful(),
            clock: Arc::new(SystemClock),
            transport: TransportKind::InProc,
            key_bits: PAPER_KEY_BITS,
            identity: None,
            base_stores_hash: false,
            resilience: ResilienceConfig::default(),
            faults: None,
            ack_after_durable: false,
            overload: OverloadConfig::default(),
        }
    }

    /// Configures the deposit pipeline's overload handling: the bounded
    /// queue, shed policy, watermarks, and (optionally) a circuit breaker.
    /// The resulting [`QueuePressure`] is readable through
    /// [`AdlpNode::queue_pressure`].
    pub fn overload(mut self, overload: OverloadConfig) -> Self {
        self.overload = overload;
        self
    }

    /// Deposits through the durable path: the logging thread only treats an
    /// entry as delivered once the logger reports it synced to its WAL (or
    /// WAL-acked by a write quorum, for a cluster target). Refused deposits
    /// are counted ([`AdlpNode::deposit_failures`]). Default off — the
    /// paper's fire-and-forget deposit.
    pub fn ack_after_durable(mut self, yes: bool) -> Self {
        self.ack_after_durable = yes;
        self
    }

    /// Configures ack deadlines, retries and I/O timeouts for links this
    /// node publishes on (passed through to the middleware; defaults inert,
    /// preserving the paper's indefinite withhold-until-ack penalty).
    pub fn resilience(mut self, resilience: ResilienceConfig) -> Self {
        self.resilience = resilience;
        self
    }

    /// Installs deterministic fault injection on the node's outgoing links
    /// (testing/simulation only).
    pub fn faults(mut self, faults: FaultConfig) -> Self {
        self.faults = Some(faults);
        self
    }

    /// Selects the logging scheme.
    pub fn scheme(mut self, scheme: Scheme) -> Self {
        self.scheme = scheme;
        self
    }

    /// Installs a (mis)behavior profile.
    pub fn behavior(mut self, behavior: BehaviorProfile) -> Self {
        self.behavior = behavior;
        self
    }

    /// Sets the timestamp source.
    pub fn clock(mut self, clock: Arc<dyn Clock>) -> Self {
        self.clock = clock;
        self
    }

    /// Selects the transport for published topics.
    pub fn transport(mut self, transport: TransportKind) -> Self {
        self.transport = transport;
        self
    }

    /// RSA key width (default 1024, the paper's configuration; tests use
    /// 512 or smaller for speed).
    pub fn key_bits(mut self, bits: usize) -> Self {
        self.key_bits = bits;
        self
    }

    /// Under the Base scheme, subscribers store `h(D)` instead of the data
    /// (the paper's Table IV measures base logging in this mode).
    pub fn base_subscriber_stores_hash(mut self, yes: bool) -> Self {
        self.base_stores_hash = yes;
        self
    }

    /// Uses a pre-generated identity instead of generating one at build
    /// time. This is how collusion scenarios arrange key sharing between
    /// components before wiring them up.
    ///
    /// # Panics
    ///
    /// Panics if the identity's id differs from the node id.
    pub fn identity(mut self, identity: ComponentIdentity) -> Self {
        assert_eq!(
            identity.id(),
            &self.id,
            "identity id must match the node id"
        );
        self.identity = Some(identity);
        self
    }

    /// Builds the node: generates and registers its key (ADLP, §V-B step 1),
    /// spawns its logging thread (Base/ADLP) and registers with the master.
    ///
    /// # Errors
    ///
    /// Returns [`AdlpError`] for duplicate ids, key-registration conflicts,
    /// or transport failures.
    pub fn build<R: RngCore + ?Sized>(
        self,
        master: &Master,
        logger: &LoggerHandle,
        rng: &mut R,
    ) -> Result<AdlpNode, AdlpError> {
        self.build_with_target(master, DepositTarget::Single(logger.clone()), rng)
    }

    /// Builds the node against an explicit [`DepositTarget`] — the same
    /// pipeline as [`AdlpNodeBuilder::build`], but deposits can go to a
    /// sharded logger cluster instead of a single server.
    ///
    /// # Errors
    ///
    /// Returns [`AdlpError`] for duplicate ids, key-registration conflicts,
    /// or transport failures.
    pub fn build_with_target<R: RngCore + ?Sized>(
        self,
        master: &Master,
        logger: DepositTarget,
        rng: &mut R,
    ) -> Result<AdlpNode, AdlpError> {
        let behavior = Arc::new(self.behavior);
        let make_builder = || {
            let mut nb = NodeBuilder::new(self.id.clone())
                .clock(Arc::clone(&self.clock))
                .transport(self.transport)
                .resilience(self.resilience.clone());
            if let Some(f) = &self.faults {
                nb = nb.faults(f.clone());
            }
            nb
        };
        let (node, identity, logging, adlp) = match &self.scheme {
            Scheme::NoLogging => {
                let node = make_builder().build(master)?;
                (node, None, None, None)
            }
            Scheme::Base => {
                let logging = LoggingThread::spawn(LoggingContext {
                    node_id: self.id.clone(),
                    identity: None,
                    behavior: (*behavior).clone(),
                    subscriber_stores_hash: self.base_stores_hash,
                    logger: logger.clone(),
                    ack_after_durable: self.ack_after_durable,
                    overload: self.overload.clone(),
                    clock: Arc::clone(&self.clock),
                })?;
                let interceptor = Arc::new(BaseInterceptor::new(
                    Arc::clone(&self.clock),
                    logging.sink(),
                ));
                let node = make_builder().interceptor(interceptor).build(master)?;
                (node, None, Some(logging), None)
            }
            Scheme::Adlp(config) => {
                let identity = self
                    .identity
                    .clone()
                    .unwrap_or_else(|| {
                        ComponentIdentity::generate(self.id.clone(), self.key_bits, rng)
                    });
                logger.register_key(identity.id(), identity.public_key().clone())?;
                let logging = LoggingThread::spawn(LoggingContext {
                    node_id: self.id.clone(),
                    identity: Some(identity.clone()),
                    behavior: (*behavior).clone(),
                    subscriber_stores_hash: config.subscriber_stores_hash,
                    logger: logger.clone(),
                    ack_after_durable: self.ack_after_durable,
                    overload: self.overload.clone(),
                    clock: Arc::clone(&self.clock),
                })?;
                let interceptor = Arc::new(
                    AdlpInterceptor::new(
                        identity.clone(),
                        config.clone(),
                        Arc::clone(&behavior),
                        Arc::clone(&self.clock),
                        logging.sink(),
                    )
                    .with_keys(logger.keys().clone()),
                );
                let node = make_builder()
                    .interceptor(Arc::clone(&interceptor) as Arc<dyn adlp_pubsub::LinkInterceptor>)
                    .build(master)?;
                (node, Some(identity), Some(logging), Some(interceptor))
            }
        };
        Ok(AdlpNode {
            node,
            scheme: self.scheme,
            identity,
            logging,
            adlp,
            logger,
        })
    }
}

/// A software component with accountable logging.
#[derive(Debug)]
pub struct AdlpNode {
    node: Node,
    scheme: Scheme,
    identity: Option<ComponentIdentity>,
    logging: Option<LoggingThread>,
    adlp: Option<Arc<AdlpInterceptor>>,
    logger: DepositTarget,
}

impl AdlpNode {
    /// The component id.
    pub fn id(&self) -> &NodeId {
        self.node.id()
    }

    /// The active scheme.
    pub fn scheme(&self) -> &Scheme {
        &self.scheme
    }

    /// The node's cryptographic identity (ADLP scheme only).
    pub fn identity(&self) -> Option<&ComponentIdentity> {
        self.identity.as_ref()
    }

    /// Middleware traffic counters.
    pub fn stats(&self) -> &NodeStats {
        self.node.stats()
    }

    /// Drains the link-health events (ack timeouts, degradations,
    /// recoveries, teardowns) accumulated since the last call.
    pub fn take_link_events(&self) -> Vec<LinkEvent> {
        self.node.take_events()
    }

    /// Counters for injected transport faults (all zero unless the node was
    /// built with [`AdlpNodeBuilder::faults`]).
    pub fn fault_stats(&self) -> &Arc<FaultStats> {
        self.node.fault_stats()
    }

    /// Claims a topic.
    ///
    /// # Errors
    ///
    /// Propagates middleware errors (e.g. topic already owned).
    pub fn advertise(&self, topic: impl Into<Topic>) -> Result<Publisher, AdlpError> {
        Ok(self.node.advertise(topic)?)
    }

    /// Subscribes to a topic.
    ///
    /// # Errors
    ///
    /// Propagates middleware errors (e.g. no such topic).
    pub fn subscribe<F>(&self, topic: impl Into<Topic>, callback: F) -> Result<Subscription, AdlpError>
    where
        F: Fn(Message) + Send + 'static,
    {
        Ok(self.node.subscribe(topic, callback)?)
    }

    /// Subscribes with explicit QoS options (e.g. a bounded queue).
    ///
    /// # Errors
    ///
    /// Propagates middleware errors.
    pub fn subscribe_with<F>(
        &self,
        topic: impl Into<Topic>,
        options: SubscribeOptions,
        callback: F,
    ) -> Result<Subscription, AdlpError>
    where
        F: Fn(Message) + Send + 'static,
    {
        Ok(self.node.subscribe_with(topic, options, callback)?)
    }

    /// Drains all in-flight logging work: unacknowledged publications are
    /// recorded as such, the logging thread is drained, and the logger
    /// flushes its queue.
    ///
    /// # Errors
    ///
    /// Returns [`AdlpError::Logger`] when the log server is gone.
    pub fn flush(&self) -> Result<(), AdlpError> {
        if let Some(adlp) = &self.adlp {
            adlp.flush_pending();
        }
        if let Some(logging) = &self.logging {
            logging.flush();
        }
        self.logger.flush()?;
        Ok(())
    }

    /// **Fabrication attack** (Lemma 1): enters a publisher log entry for a
    /// transmission that never happened. The entry is self-signed (so it
    /// passes the authenticity check) but carries a *random* "subscriber
    /// signature", since the fabricator cannot forge a real one.
    ///
    /// # Errors
    ///
    /// Returns crypto errors; requires the ADLP scheme (no-op otherwise).
    pub fn fabricate_publication(
        &self,
        topic: impl Into<Topic>,
        seq: u64,
        payload: &[u8],
        claimed_subscriber: impl Into<NodeId>,
        rng: &mut (impl RngCore + ?Sized),
    ) -> Result<(), AdlpError> {
        let Some(identity) = &self.identity else {
            return Ok(());
        };
        let topic = topic.into();
        let body = fake_body(seq, payload);
        let digest = adlp_crypto::sha256(&body);
        let own_sig = identity.sign_digest(&adlp_crypto::sha256::binding_digest(
            topic.as_str(),
            seq,
            &digest,
        ))?;
        let mut random_sig = vec![0u8; identity.signature_len()];
        rng.fill_bytes(&mut random_sig);
        if let Some(logging) = &self.logging {
            logging.sink().submit(LogEvent::AckedPublication {
                topic,
                seq,
                stamp_ns: now(),
                body: Arc::new(body),
                own_sig,
                subscriber: claimed_subscriber.into(),
                peer_hash: digest,
                peer_sig: Signature::from_bytes(random_sig),
            });
        }
        Ok(())
    }

    /// **Fabrication attack**, subscriber side: enters a receipt entry for
    /// data never received, with a random "publisher signature".
    ///
    /// # Errors
    ///
    /// Returns crypto errors; requires the ADLP scheme (no-op otherwise).
    pub fn fabricate_receipt(
        &self,
        topic: impl Into<Topic>,
        seq: u64,
        payload: &[u8],
        claimed_publisher: impl Into<NodeId>,
        rng: &mut (impl RngCore + ?Sized),
    ) -> Result<(), AdlpError> {
        let Some(identity) = &self.identity else {
            return Ok(());
        };
        let topic = topic.into();
        let body = fake_body(seq, payload);
        let digest = adlp_crypto::sha256(&body);
        let own_sig = identity.sign_digest(&adlp_crypto::sha256::binding_digest(
            topic.as_str(),
            seq,
            &digest,
        ))?;
        let mut random_sig = vec![0u8; identity.signature_len()];
        rng.fill_bytes(&mut random_sig);
        if let Some(logging) = &self.logging {
            logging.sink().submit(LogEvent::Receipt {
                topic,
                seq,
                stamp_ns: now(),
                publisher: claimed_publisher.into(),
                body: body.clone(),
                body_digest: digest,
                peer_sig: Signature::from_bytes(random_sig),
                own_sig,
            });
        }
        Ok(())
    }

    /// Number of connections currently gated on an acknowledgement (ADLP
    /// only; 0 otherwise).
    pub fn pending_acks(&self) -> usize {
        self.adlp.as_ref().map_or(0, |a| a.pending_count())
    }

    /// Entries the logger refused to make durable (nodes built with
    /// [`AdlpNodeBuilder::ack_after_durable`] only; 0 otherwise).
    pub fn deposit_failures(&self) -> u64 {
        self.logging.as_ref().map_or(0, LoggingThread::deposit_failures)
    }

    /// The deposit pipeline's shared overload view: queue depth and
    /// watermark level, shed counts, gap-receipt counts, and breaker
    /// transitions. Publishers poll [`QueuePressure::is_high`] to slow
    /// their send loops instead of letting the backlog grow. Nodes without
    /// a logging thread (NoLogging) report a permanently idle handle.
    pub fn queue_pressure(&self) -> QueuePressure {
        self.logging
            .as_ref()
            .map(LoggingThread::pressure)
            .unwrap_or_default()
    }

    /// Messages this node dropped as replays (ADLP only).
    pub fn replays_dropped(&self) -> u64 {
        self.adlp.as_ref().map_or(0, |a| a.replays_dropped())
    }

    /// Acknowledgements this node ignored as invalid (ADLP with
    /// [`crate::AdlpConfig::verify_acks`] only).
    pub fn invalid_acks(&self) -> u64 {
        self.adlp.as_ref().map_or(0, |a| a.invalid_acks())
    }

    /// Access to the underlying middleware node.
    pub fn inner(&self) -> &Node {
        &self.node
    }
}

fn fake_body(seq: u64, payload: &[u8]) -> Vec<u8> {
    let mut body = Vec::with_capacity(16 + payload.len());
    body.extend_from_slice(&seq.to_le_bytes());
    body.extend_from_slice(&now().to_le_bytes());
    body.extend_from_slice(payload);
    body
}

fn now() -> u64 {
    std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map_or(0, |d| d.as_nanos() as u64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::AdlpConfig;
    use adlp_logger::{Direction, LogServer, PayloadRecord};
    use rand::SeedableRng;
    use std::time::Duration;

    fn wait_until(pred: impl Fn() -> bool) {
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while !pred() {
            assert!(std::time::Instant::now() < deadline, "timed out");
            std::thread::sleep(Duration::from_millis(2));
        }
    }

    fn build(
        id: &str,
        scheme: Scheme,
        master: &Master,
        logger: &LoggerHandle,
        seed: u64,
    ) -> AdlpNode {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        AdlpNodeBuilder::new(id)
            .scheme(scheme)
            .key_bits(512)
            .build(master, logger, &mut rng)
            .unwrap()
    }

    #[test]
    fn adlp_roundtrip_produces_both_entries() {
        let master = Master::new();
        let server = LogServer::spawn();
        let h = server.handle();
        let p = build("cam", Scheme::adlp(), &master, &h, 1);
        let s = build("det", Scheme::adlp(), &master, &h, 2);
        let publisher = p.advertise("image").unwrap();
        let _sub = s.subscribe("image", |_| {}).unwrap();
        publisher.publish(&[5u8; 100]).unwrap();

        // Wait until the ack came back and the publisher logged.
        wait_until(|| p.pending_acks() == 0);
        p.flush().unwrap();
        s.flush().unwrap();

        let entries: Vec<_> = h.store().entries().into_iter().map(Result::unwrap).collect();
        assert_eq!(entries.len(), 2);
        let pub_entry = entries.iter().find(|e| e.direction == Direction::Out).unwrap();
        let sub_entry = entries.iter().find(|e| e.direction == Direction::In).unwrap();
        assert_eq!(pub_entry.component, NodeId::new("cam"));
        assert_eq!(pub_entry.peer, Some(NodeId::new("det")));
        assert!(pub_entry.peer_sig.is_some());
        assert_eq!(
            pub_entry.peer_hash.unwrap(),
            pub_entry.payload.digest(),
            "subscriber acknowledged exactly what was sent"
        );
        assert_eq!(sub_entry.component, NodeId::new("det"));
        assert!(matches!(sub_entry.payload, PayloadRecord::Hash(_)));
        assert_eq!(sub_entry.payload.digest(), pub_entry.payload.digest());
    }

    #[test]
    fn ack_gating_blocks_until_acked() {
        let master = Master::new();
        let server = LogServer::spawn();
        let h = server.handle();
        let p = build("cam", Scheme::adlp(), &master, &h, 3);
        // Subscriber that withholds acks entirely.
        let mut rng = rand::rngs::StdRng::seed_from_u64(4);
        let s = AdlpNodeBuilder::new("det")
            .scheme(Scheme::adlp())
            .key_bits(512)
            .behavior(BehaviorProfile::faithful().withholding_acks(Topic::new("image")))
            .build(&master, &h, &mut rng)
            .unwrap();
        let publisher = p.advertise("image").unwrap();
        let _sub = s.subscribe("image", |_| {}).unwrap();

        let r1 = publisher.publish(&[1u8; 10]).unwrap();
        assert_eq!(r1.sent, 1);
        // Give the first message time to arrive (and be deliberately unacked).
        wait_until(|| s.stats().snapshot().received == 1);
        let r2 = publisher.publish(&[2u8; 10]).unwrap();
        assert_eq!(r2.sent, 0, "second send must be gated");
        assert_eq!(r2.skipped, 1);
        assert_eq!(p.pending_acks(), 1);
    }

    #[test]
    fn base_scheme_logs_raw_data_without_sigs() {
        let master = Master::new();
        let server = LogServer::spawn();
        let h = server.handle();
        let p = build("cam", Scheme::Base, &master, &h, 5);
        let s = build("det", Scheme::Base, &master, &h, 6);
        let publisher = p.advertise("image").unwrap();
        let _sub = s.subscribe("image", |_| {}).unwrap();
        publisher.publish(&[7u8; 32]).unwrap();
        wait_until(|| s.stats().snapshot().received == 1);
        p.flush().unwrap();
        s.flush().unwrap();
        let entries: Vec<_> = h.store().entries().into_iter().map(Result::unwrap).collect();
        assert_eq!(entries.len(), 2);
        for e in &entries {
            assert!(!e.is_adlp());
            assert!(matches!(&e.payload, PayloadRecord::Data(d) if d.len() == 48));
        }
    }

    #[test]
    fn no_logging_scheme_logs_nothing() {
        let master = Master::new();
        let server = LogServer::spawn();
        let h = server.handle();
        let p = build("cam", Scheme::NoLogging, &master, &h, 7);
        let s = build("det", Scheme::NoLogging, &master, &h, 8);
        let publisher = p.advertise("image").unwrap();
        let _sub = s.subscribe("image", |_| {}).unwrap();
        publisher.publish(&[7u8; 32]).unwrap();
        wait_until(|| s.stats().snapshot().received == 1);
        p.flush().unwrap();
        assert_eq!(h.store().len(), 0);
    }

    #[test]
    fn message_size_matches_paper_arithmetic() {
        // ADLP message = |D| + |sig|; with the 4-byte preamble this is the
        // paper's |D| + 4 + 128 (for RSA-1024; 64-byte sigs here).
        let master = Master::new();
        let server = LogServer::spawn();
        let h = server.handle();
        let p = build("cam", Scheme::adlp(), &master, &h, 9);
        let s = build("det", Scheme::adlp(), &master, &h, 10);
        let publisher = p.advertise("image").unwrap();
        let _sub = s.subscribe("image", |_| {}).unwrap();
        publisher.publish(&[0u8; 4]).unwrap(); // |D| = 16 + 4 = 20 (Steering)
        wait_until(|| s.stats().snapshot().received == 1);
        let sent = p.stats().snapshot().bytes_sent;
        assert_eq!(sent, 20 + 64); // |D| + |sig|
    }

    #[test]
    fn unacked_publications_flushed_as_unproven() {
        let master = Master::new();
        let server = LogServer::spawn();
        let h = server.handle();
        let p = build("cam", Scheme::adlp(), &master, &h, 11);
        let mut rng = rand::rngs::StdRng::seed_from_u64(12);
        let s = AdlpNodeBuilder::new("det")
            .scheme(Scheme::adlp())
            .key_bits(512)
            .behavior(BehaviorProfile::faithful().withholding_acks(Topic::new("image")))
            .build(&master, &h, &mut rng)
            .unwrap();
        let publisher = p.advertise("image").unwrap();
        let _sub = s.subscribe("image", |_| {}).unwrap();
        publisher.publish(&[1u8; 10]).unwrap();
        wait_until(|| s.stats().snapshot().received == 1);
        p.flush().unwrap();
        let entries: Vec<_> = h.store().entries().into_iter().map(Result::unwrap).collect();
        let pub_entries: Vec<_> = entries
            .iter()
            .filter(|e| e.direction == Direction::Out)
            .collect();
        assert_eq!(pub_entries.len(), 1);
        assert!(pub_entries[0].peer_sig.is_none(), "unproven: no ack");
        assert_eq!(pub_entries[0].peer, Some(NodeId::new("det")));
    }

    #[test]
    fn aggregated_mode_single_entry_for_many_subscribers() {
        let master = Master::new();
        let server = LogServer::spawn();
        let h = server.handle();
        let mut rng = rand::rngs::StdRng::seed_from_u64(13);
        let p = AdlpNodeBuilder::new("cam")
            .scheme(Scheme::Adlp(AdlpConfig::new().aggregated()))
            .key_bits(512)
            .build(&master, &h, &mut rng)
            .unwrap();
        let publisher = p.advertise("image").unwrap();
        let mut subs = Vec::new();
        let mut nodes = Vec::new();
        for i in 0..3 {
            let s = build(&format!("det{i}"), Scheme::adlp(), &master, &h, 20 + i as u64);
            subs.push(s.subscribe("image", |_| {}).unwrap());
            nodes.push(s);
        }
        publisher.publish(&[1u8; 10]).unwrap();
        wait_until(|| p.pending_acks() == 0);
        p.flush().unwrap();
        for n in &nodes {
            n.flush().unwrap();
        }
        let entries: Vec<_> = h.store().entries().into_iter().map(Result::unwrap).collect();
        let agg: Vec<_> = entries.iter().filter(|e| !e.acks.is_empty()).collect();
        assert_eq!(agg.len(), 1);
        assert_eq!(agg[0].acks.len(), 3);
        // Exactly one publisher-side entry despite three subscribers.
        assert_eq!(
            entries
                .iter()
                .filter(|e| e.direction == Direction::Out)
                .count(),
            1
        );
    }

    #[test]
    fn logger_death_does_not_disturb_the_data_plane() {
        // "ADLP is free from a single-point failure — any failure at the
        // log server does not interrupt a normal operation of the ROS
        // nodes" (§V-B). Kill the log server mid-run; messages keep
        // flowing.
        let master = Master::new();
        let server = LogServer::spawn();
        let h = server.handle();
        let p = build("cam", Scheme::adlp(), &master, &h, 40);
        let s = build("det", Scheme::adlp(), &master, &h, 41);
        let publisher = p.advertise("image").unwrap();
        let _sub = s.subscribe("image", |_| {}).unwrap();
        publisher.publish(&[1u8; 32]).unwrap();
        wait_until(|| p.pending_acks() == 0);

        // The trusted logger crashes.
        server.kill();

        // The data plane keeps working: publish several more messages.
        for i in 0..3 {
            wait_until(|| p.pending_acks() == 0);
            let r = publisher.publish(&[i as u8; 32]).unwrap();
            assert_eq!(r.sent, 1);
        }
        wait_until(|| s.stats().snapshot().received == 4);
    }

    #[test]
    fn ack_deadline_tears_down_mute_link_and_flushes_evidence() {
        // With a configured ack deadline, a subscriber that never acks is
        // torn down after the retries run out, and the pending publication
        // is flushed as unproven evidence immediately — the auditor sees
        // the same record it would after an explicit flush.
        let master = Master::new();
        let server = LogServer::spawn();
        let h = server.handle();
        let mut rng = rand::rngs::StdRng::seed_from_u64(50);
        let p = AdlpNodeBuilder::new("cam")
            .scheme(Scheme::adlp())
            .key_bits(512)
            .resilience(
                ResilienceConfig::new()
                    .with_ack_timeout(Duration::from_millis(30))
                    .with_max_retries(2)
                    .with_retry_backoff(Duration::from_millis(5)),
            )
            .build(&master, &h, &mut rng)
            .unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(51);
        let s = AdlpNodeBuilder::new("det")
            .scheme(Scheme::adlp())
            .key_bits(512)
            .behavior(BehaviorProfile::faithful().withholding_acks(Topic::new("image")))
            .build(&master, &h, &mut rng)
            .unwrap();
        let publisher = p.advertise("image").unwrap();
        let _sub = s.subscribe("image", |_| {}).unwrap();
        publisher.publish(&[9u8; 16]).unwrap();

        // Teardown flushes the pending ack without an explicit flush call.
        wait_until(|| p.pending_acks() == 0);
        let events = p.take_link_events();
        assert!(
            events
                .iter()
                .any(|e| matches!(e, LinkEvent::TornDown { subscriber, .. } if subscriber == &NodeId::new("det"))),
            "expected a teardown event, got {events:?}"
        );
        p.flush().unwrap();
        let entries: Vec<_> = h.store().entries().into_iter().map(Result::unwrap).collect();
        let pub_entries: Vec<_> = entries
            .iter()
            .filter(|e| e.direction == Direction::Out)
            .collect();
        assert_eq!(pub_entries.len(), 1, "evidence flushed exactly once");
        assert!(pub_entries[0].peer_sig.is_none(), "unproven: no ack");
        assert_eq!(pub_entries[0].peer, Some(NodeId::new("det")));
    }

    #[test]
    fn ack_after_durable_deposits_and_counts_refusals() {
        use adlp_logger::{DurabilityConfig, KeyRegistry, LogServer, MemStorage};
        let master = Master::new();
        let spawned = LogServer::try_spawn_durable(
            KeyRegistry::new(),
            &DurabilityConfig::new(Arc::new(MemStorage::new())),
        )
        .unwrap();
        let server = spawned.server;
        let h = server.handle();
        let mut rng = rand::rngs::StdRng::seed_from_u64(60);
        let p = AdlpNodeBuilder::new("cam")
            .scheme(Scheme::adlp())
            .key_bits(512)
            .ack_after_durable(true)
            .build(&master, &h, &mut rng)
            .unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(61);
        let s = AdlpNodeBuilder::new("det")
            .scheme(Scheme::adlp())
            .key_bits(512)
            .ack_after_durable(true)
            .build(&master, &h, &mut rng)
            .unwrap();
        let publisher = p.advertise("image").unwrap();
        let _sub = s.subscribe("image", |_| {}).unwrap();
        publisher.publish(&[5u8; 64]).unwrap();
        wait_until(|| p.pending_acks() == 0);
        p.flush().unwrap();
        s.flush().unwrap();
        assert_eq!(h.store().len(), 2);
        assert_eq!(p.deposit_failures() + s.deposit_failures(), 0);

        // The logger dies: durable deposits are refused — and counted.
        server.kill();
        publisher.publish(&[6u8; 64]).unwrap();
        wait_until(|| p.pending_acks() == 0);
        assert!(p.flush().is_err(), "flush against a dead logger must fail");
        assert!(p.deposit_failures() > 0);
    }

    #[test]
    fn fabrication_apis_enter_entries() {
        let master = Master::new();
        let server = LogServer::spawn();
        let h = server.handle();
        let p = build("cam", Scheme::adlp(), &master, &h, 30);
        let mut rng = rand::rngs::StdRng::seed_from_u64(31);
        p.fabricate_publication("image", 99, &[1, 2, 3], "det", &mut rng)
            .unwrap();
        p.fabricate_receipt("scan", 7, &[4, 5], "lidar", &mut rng)
            .unwrap();
        p.flush().unwrap();
        let entries: Vec<_> = h.store().entries().into_iter().map(Result::unwrap).collect();
        assert_eq!(entries.len(), 2);
        assert!(entries.iter().any(|e| e.seq == 99 && e.direction == Direction::Out));
        assert!(entries.iter().any(|e| e.seq == 7 && e.direction == Direction::In));
    }
}
