//! Events flowing from the transport layer to a node's logging thread.
//!
//! The prototype runs one logging thread per ROS node (§V-B); transport
//! hooks construct these events and the thread turns them into log entries,
//! applying the component's (mis)behavior on the way.

use adlp_crypto::sha256::Digest;
use adlp_crypto::Signature;
use adlp_logger::AckRecord;
use adlp_pubsub::{NodeId, Topic};
use std::sync::Arc;

/// A unit of logging work.
#[derive(Debug, Clone)]
pub enum LogEvent {
    /// ADLP publisher record: subscriber `subscriber` acknowledged the
    /// `seq`-th publication (§V-B step 6). One per acknowledgement.
    AckedPublication {
        /// Published topic.
        topic: Topic,
        /// Sequence number of the publication.
        seq: u64,
        /// Honest event time at the publisher.
        stamp_ns: u64,
        /// The transmitted body `D` (shared across subscribers).
        body: Arc<Vec<u8>>,
        /// The publisher's signature `s_x` over `h(D)`.
        own_sig: Signature,
        /// The acknowledging subscriber.
        subscriber: NodeId,
        /// The hash `h(D_y)` the subscriber returned.
        peer_hash: Digest,
        /// The subscriber's signature `s_y`.
        peer_sig: Signature,
    },
    /// ADLP publisher record for a publication whose acknowledgement never
    /// arrived (flushed at shutdown). Carries no peer fields; the auditor
    /// treats it as *unproven* (Lemma 1: the publisher's entry alone cannot
    /// prove publication).
    UnackedPublication {
        /// Published topic.
        topic: Topic,
        /// Sequence number.
        seq: u64,
        /// Honest event time.
        stamp_ns: u64,
        /// The transmitted body.
        body: Arc<Vec<u8>>,
        /// The publisher's signature.
        own_sig: Signature,
        /// The subscriber that never acknowledged.
        subscriber: NodeId,
    },
    /// Aggregated publisher record (§VI-E): one entry per publication with
    /// every received acknowledgement.
    AggregatedPublication {
        /// Published topic.
        topic: Topic,
        /// Sequence number.
        seq: u64,
        /// Honest event time.
        stamp_ns: u64,
        /// The transmitted body.
        body: Arc<Vec<u8>>,
        /// The publisher's signature.
        own_sig: Signature,
        /// All acknowledgements collected for this publication.
        acks: Vec<AckRecord>,
    },
    /// ADLP subscriber record (§V-B step 5).
    Receipt {
        /// Subscribed topic.
        topic: Topic,
        /// Sequence number of the received message.
        seq: u64,
        /// Honest event time at the subscriber.
        stamp_ns: u64,
        /// The publisher (from the connection).
        publisher: NodeId,
        /// The received body `I_y`.
        body: Vec<u8>,
        /// `h(I_y)`.
        body_digest: Digest,
        /// The publisher's signature `s_x` from the message.
        peer_sig: Signature,
        /// The subscriber's own signature `s_y`.
        own_sig: Signature,
    },
    /// Naive-scheme publisher record (Definition 2). One per publication.
    BasePublication {
        /// Published topic.
        topic: Topic,
        /// Sequence number.
        seq: u64,
        /// Honest event time.
        stamp_ns: u64,
        /// The transmitted body.
        body: Arc<Vec<u8>>,
    },
    /// Naive-scheme subscriber record.
    BaseReceipt {
        /// Subscribed topic.
        topic: Topic,
        /// Sequence number.
        seq: u64,
        /// Honest event time.
        stamp_ns: u64,
        /// The publisher.
        publisher: NodeId,
        /// The received body.
        body: Vec<u8>,
    },
}

impl LogEvent {
    /// The topic this event concerns.
    pub fn topic(&self) -> &Topic {
        match self {
            LogEvent::AckedPublication { topic, .. }
            | LogEvent::UnackedPublication { topic, .. }
            | LogEvent::AggregatedPublication { topic, .. }
            | LogEvent::Receipt { topic, .. }
            | LogEvent::BasePublication { topic, .. }
            | LogEvent::BaseReceipt { topic, .. } => topic,
        }
    }

    /// Whether this is a publication-side event.
    pub fn is_publication(&self) -> bool {
        !matches!(self, LogEvent::Receipt { .. } | LogEvent::BaseReceipt { .. })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn topic_and_side_accessors() {
        let e = LogEvent::BasePublication {
            topic: Topic::new("image"),
            seq: 1,
            stamp_ns: 2,
            body: Arc::new(vec![]),
        };
        assert_eq!(e.topic().as_str(), "image");
        assert!(e.is_publication());

        let r = LogEvent::BaseReceipt {
            topic: Topic::new("scan"),
            seq: 1,
            stamp_ns: 2,
            publisher: NodeId::new("lidar"),
            body: vec![],
        };
        assert_eq!(r.topic().as_str(), "scan");
        assert!(!r.is_publication());
    }
}
