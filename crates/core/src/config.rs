//! Logging-scheme configuration.
//!
//! Besides the scheme selector this module re-exports the fault-tolerance
//! knobs from the transport and logging layers, so every tunable a
//! deployment needs lives behind one import path:
//! [`ResilienceConfig`] (ack deadlines, retry/backoff, socket timeouts),
//! [`FaultConfig`] (deterministic fault injection), and
//! [`ReconnectConfig`] (log-client outage buffering and redial policy).

pub use adlp_logger::ReconnectConfig;
pub use adlp_pubsub::{FaultConfig, ResilienceConfig};

/// Which logging scheme a node runs — the three columns of the paper's
/// CPU-overhead comparison (Figure 14, Table II).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Scheme {
    /// No logging at all (baseline "(i) no logging").
    NoLogging,
    /// The naive scheme of Definition 2: entries carry the raw data, no
    /// cryptography, no acknowledgements ("(ii) base logging").
    Base,
    /// The full protocol ("(iii) ADLP").
    Adlp(AdlpConfig),
}

impl Default for Scheme {
    fn default() -> Self {
        Scheme::Adlp(AdlpConfig::default())
    }
}

impl Scheme {
    /// Default ADLP configuration.
    pub fn adlp() -> Self {
        Scheme::Adlp(AdlpConfig::default())
    }

    /// Short label used by the experiment harnesses.
    pub fn label(&self) -> &'static str {
        match self {
            Scheme::NoLogging => "no-logging",
            Scheme::Base => "base",
            Scheme::Adlp(_) => "adlp",
        }
    }
}

/// Tunables of the ADLP scheme.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AdlpConfig {
    /// Subscribers store `h(I_y)` instead of the data in their log entries
    /// (§IV-A "`h(I_y)` vs `I_y`"; the paper's default for the storage
    /// results of Table III / Figure 15).
    pub subscriber_stores_hash: bool,
    /// Publishers withhold the next message on a connection until the
    /// previous one is acknowledged (§V-B step 2). Disable for the
    /// ack-gating ablation.
    pub gate_on_ack: bool,
    /// Aggregated logging (§VI-E): one publisher entry per publication
    /// carrying all subscribers' acknowledgements, instead of one entry per
    /// acknowledgement.
    pub aggregated_publisher_log: bool,
    /// Subscribers drop messages whose sequence number does not increase
    /// (transport-level replay defense, complementing the audit-time
    /// freshness argument of Lemma 1).
    pub drop_replayed: bool,
    /// Publishers verify `s_y` in acknowledgements on receipt (against the
    /// logger's key registry) and ignore invalid ones, keeping the
    /// connection gated — an online version of requirement (4)'s
    /// enforcement.
    pub verify_acks: bool,
}

impl Default for AdlpConfig {
    fn default() -> Self {
        AdlpConfig {
            subscriber_stores_hash: true,
            gate_on_ack: true,
            aggregated_publisher_log: false,
            drop_replayed: true,
            verify_acks: false,
        }
    }
}

impl AdlpConfig {
    /// Paper-default configuration.
    pub fn new() -> Self {
        Self::default()
    }

    /// Subscribers store the raw data instead of its hash (the `D''_y`
    /// variant in Figure 15).
    pub fn storing_data(mut self) -> Self {
        self.subscriber_stores_hash = false;
        self
    }

    /// Disables acknowledgement gating.
    pub fn without_gating(mut self) -> Self {
        self.gate_on_ack = false;
        self
    }

    /// Enables aggregated publisher logging.
    pub fn aggregated(mut self) -> Self {
        self.aggregated_publisher_log = true;
        self
    }

    /// Enables online acknowledgement verification at publishers.
    pub fn verifying_acks(mut self) -> Self {
        self.verify_acks = true;
        self
    }

    /// Disables the transport-level replay defense.
    pub fn allowing_replays(mut self) -> Self {
        self.drop_replayed = false;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let c = AdlpConfig::default();
        assert!(c.subscriber_stores_hash);
        assert!(c.gate_on_ack);
        assert!(!c.aggregated_publisher_log);
        assert!(c.drop_replayed);
        assert!(!c.verify_acks);
        assert_eq!(Scheme::default(), Scheme::Adlp(c));
    }

    #[test]
    fn builder_variants() {
        let c = AdlpConfig::new()
            .storing_data()
            .without_gating()
            .aggregated()
            .verifying_acks()
            .allowing_replays();
        assert!(!c.subscriber_stores_hash);
        assert!(!c.gate_on_ack);
        assert!(c.aggregated_publisher_log);
        assert!(c.verify_acks);
        assert!(!c.drop_replayed);
    }

    #[test]
    fn labels() {
        assert_eq!(Scheme::NoLogging.label(), "no-logging");
        assert_eq!(Scheme::Base.label(), "base");
        assert_eq!(Scheme::adlp().label(), "adlp");
    }
}
