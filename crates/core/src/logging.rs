//! The per-node logging thread.
//!
//! "For logging operations, we created a Logging Thread that runs in
//! parallel with each node's main thread. One logging thread is created per
//! ROS node, no matter how many topics the node publishes and subscribes"
//! (§V-B). Transport hooks push [`LogEvent`]s; this thread converts them to
//! [`LogEntry`]s — applying the node's [`BehaviorProfile`] — and submits
//! them to the trusted logger.

use crate::behavior::{falsify_body, BehaviorProfile, LinkRole, LogBehavior};
use crate::events::LogEvent;
use crate::identity::ComponentIdentity;
use crate::target::DepositTarget;
use adlp_crypto::rsa::RsaPrivateKey;
use adlp_crypto::sha256::{binding_digest, sha256, Digest};
use adlp_crypto::{pkcs1, Signature};
use adlp_logger::{Direction, LogEntry, LogError, PayloadRecord};
use adlp_pubsub::{NodeId, Topic};
use crossbeam::channel::Sender;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

enum Command {
    Event(Box<LogEvent>),
    Flush(Sender<()>),
}

/// Handle to a running logging thread.
#[derive(Debug)]
pub struct LoggingThread {
    tx: Sender<Command>,
    worker: Option<JoinHandle<()>>,
    lost: Arc<AtomicU64>,
    deposit_failures: Arc<AtomicU64>,
}

/// A cloneable submitter for transport hooks.
#[derive(Debug, Clone)]
pub struct EventSink {
    tx: Sender<Command>,
    /// Events the sink could not enqueue (worker gone). Shared with the
    /// owning [`LoggingThread`] so losses are observable, not silent.
    lost: Arc<AtomicU64>,
}

impl EventSink {
    /// Pushes an event; never blocks on logging work. An event that cannot
    /// be enqueued (the worker exited) is counted, not silently dropped —
    /// unlogged activity is exactly what an auditor needs to know about.
    pub fn submit(&self, event: LogEvent) {
        if self.tx.send(Command::Event(Box::new(event))).is_err() {
            self.lost.fetch_add(1, Ordering::Relaxed);
        }
    }
}

/// Everything the worker needs to turn events into entries.
pub(crate) struct LoggingContext {
    /// The node's id (used verbatim for Base-scheme entries).
    pub node_id: NodeId,
    /// ADLP identity; `None` under the Base scheme.
    pub identity: Option<ComponentIdentity>,
    /// The node's (mis)behavior.
    pub behavior: BehaviorProfile,
    /// Whether subscribers store `h(I_y)` instead of `I_y`.
    pub subscriber_stores_hash: bool,
    /// The deposit destination (single logger or cluster).
    pub logger: DepositTarget,
    /// Deposit through [`DepositTarget::submit_durable`] and count
    /// rejections, instead of the fire-and-forget path.
    pub ack_after_durable: bool,
}

impl LoggingThread {
    /// Spawns the thread.
    ///
    /// # Errors
    ///
    /// Returns [`LogError::Io`] when the OS refuses to create the thread.
    pub(crate) fn spawn(ctx: LoggingContext) -> Result<Self, LogError> {
        let (tx, rx) = crossbeam::channel::unbounded();
        let deposit_failures = Arc::new(AtomicU64::new(0));
        let failures = Arc::clone(&deposit_failures);
        let worker = std::thread::Builder::new()
            .name(format!("lg-{}", ctx.node_id))
            .spawn(move || {
                while let Ok(cmd) = rx.recv() {
                    match cmd {
                        Command::Event(event) => {
                            if let Some(entry) = build_entry(&ctx, *event) {
                                if ctx.ack_after_durable {
                                    // The durable path reports refusals;
                                    // like every other degradation they are
                                    // counted, never silent.
                                    if ctx.logger.submit_durable(entry).is_err() {
                                        failures.fetch_add(1, Ordering::Relaxed);
                                    }
                                } else {
                                    ctx.logger.submit(entry);
                                }
                            }
                        }
                        Command::Flush(reply) => {
                            // adlp-lint: allow(discarded-fallible) — the flush requester may have timed out; nothing left to acknowledge
                            let _ = reply.send(());
                        }
                    }
                }
            })
            .map_err(|e| LogError::Io(format!("spawn logging thread: {e}")))?;
        Ok(LoggingThread {
            tx,
            worker: Some(worker),
            lost: Arc::new(AtomicU64::new(0)),
            deposit_failures,
        })
    }

    /// A submitter handle for transport hooks.
    pub fn sink(&self) -> EventSink {
        EventSink {
            tx: self.tx.clone(),
            lost: Arc::clone(&self.lost),
        }
    }

    /// Events that could not be enqueued because the worker was gone.
    pub fn events_lost(&self) -> u64 {
        self.lost.load(Ordering::Relaxed)
    }

    /// Entries the logger refused to make durable (ack-after-durable mode
    /// only; the fire-and-forget path counts losses at the logger instead).
    pub fn deposit_failures(&self) -> u64 {
        self.deposit_failures.load(Ordering::Relaxed)
    }

    /// Blocks until all previously submitted events were handed to the
    /// logger.
    pub fn flush(&self) {
        let (tx, rx) = crossbeam::channel::bounded(1);
        if self.tx.send(Command::Flush(tx)).is_ok() {
            let _ = rx.recv();
        }
    }
}

impl Drop for LoggingThread {
    fn drop(&mut self) {
        // Sever our sender; the worker drains and exits once all EventSinks
        // are gone too.
        let (dead_tx, _) = crossbeam::channel::unbounded();
        self.tx = dead_tx;
        if let Some(w) = self.worker.take() {
            if w.is_finished() {
                let _ = w.join();
            }
        }
    }
}

/// Applies behavior and constructs the entry (or `None` when hiding).
fn build_entry(ctx: &LoggingContext, event: LogEvent) -> Option<LogEntry> {
    let role = if event.is_publication() {
        LinkRole::Publisher
    } else {
        LinkRole::Subscriber
    };
    let behavior = ctx.behavior.link(role, event.topic()).clone();
    if matches!(behavior, LogBehavior::Hide) {
        return None;
    }

    let mut entry = match event {
        LogEvent::AckedPublication {
            topic,
            seq,
            stamp_ns,
            body,
            own_sig,
            subscriber,
            peer_hash,
            peer_sig,
        } => {
            let (payload, own_sig, peer_hash, peer_sig) = apply_pub_falsification(
                ctx,
                &behavior,
                &topic,
                seq,
                &body,
                own_sig,
                Some(peer_hash),
                Some(peer_sig),
            );
            LogEntry {
                component: ctx.node_id.clone(),
                topic,
                direction: Direction::Out,
                seq,
                timestamp_ns: ctx.behavior.skewed_timestamp(stamp_ns),
                payload,
                own_sig: Some(own_sig),
                peer_sig,
                peer_hash,
                peer: Some(subscriber),
                acks: Vec::new(),
            }
        }
        LogEvent::UnackedPublication {
            topic,
            seq,
            stamp_ns,
            body,
            own_sig,
            subscriber,
        } => {
            let (payload, own_sig, _, _) =
                apply_pub_falsification(ctx, &behavior, &topic, seq, &body, own_sig, None, None);
            LogEntry {
                component: ctx.node_id.clone(),
                topic,
                direction: Direction::Out,
                seq,
                timestamp_ns: ctx.behavior.skewed_timestamp(stamp_ns),
                payload,
                own_sig: Some(own_sig),
                peer_sig: None,
                peer_hash: None,
                peer: Some(subscriber),
                acks: Vec::new(),
            }
        }
        LogEvent::AggregatedPublication {
            topic,
            seq,
            stamp_ns,
            body,
            own_sig,
            acks,
        } => {
            let (payload, own_sig, _, _) =
                apply_pub_falsification(ctx, &behavior, &topic, seq, &body, own_sig, None, None);
            LogEntry {
                component: ctx.node_id.clone(),
                topic,
                direction: Direction::Out,
                seq,
                timestamp_ns: ctx.behavior.skewed_timestamp(stamp_ns),
                payload,
                own_sig: Some(own_sig),
                peer_sig: None,
                peer_hash: None,
                peer: None,
                acks,
            }
        }
        LogEvent::Receipt {
            topic,
            seq,
            stamp_ns,
            publisher,
            body,
            body_digest,
            peer_sig,
            own_sig,
        } => {
            let (payload, own_sig, peer_sig) = apply_sub_falsification(
                ctx,
                &behavior,
                &topic,
                seq,
                body,
                body_digest,
                own_sig,
                peer_sig,
            );
            LogEntry {
                component: ctx.node_id.clone(),
                topic,
                direction: Direction::In,
                seq,
                timestamp_ns: ctx.behavior.skewed_timestamp(stamp_ns),
                payload,
                own_sig: Some(own_sig),
                peer_sig: Some(peer_sig),
                peer_hash: None,
                peer: Some(publisher),
                acks: Vec::new(),
            }
        }
        LogEvent::BasePublication {
            topic,
            seq,
            stamp_ns,
            body,
        } => {
            let data = match behavior {
                LogBehavior::Falsify | LogBehavior::FalsifyWithPeerKey(_) => falsify_body(&body),
                _ => body.as_ref().clone(),
            };
            LogEntry::naive(
                ctx.node_id.clone(),
                topic,
                Direction::Out,
                seq,
                ctx.behavior.skewed_timestamp(stamp_ns),
                data,
            )
        }
        LogEvent::BaseReceipt {
            topic,
            seq,
            stamp_ns,
            publisher,
            body,
        } => {
            let data = match behavior {
                LogBehavior::Falsify | LogBehavior::FalsifyWithPeerKey(_) => falsify_body(&body),
                _ => body,
            };
            let mut e = LogEntry::naive(
                ctx.node_id.clone(),
                topic,
                Direction::In,
                seq,
                ctx.behavior.skewed_timestamp(stamp_ns),
                data,
            );
            if ctx.subscriber_stores_hash {
                // Base logging can also store h(D) (the paper's Table IV
                // measures it in this mode).
                e.payload = PayloadRecord::Hash(e.payload.digest());
            }
            e.peer = Some(publisher);
            e
        }
    };

    if let LogBehavior::ImpersonateAs(victim) = &behavior {
        entry.component = victim.clone();
    }
    Some(entry)
}

/// Publisher-side falsification: rewrite the body, re-sign with our key,
/// and (under collusion) re-forge the peer's acknowledgement over the lie.
fn apply_pub_falsification(
    ctx: &LoggingContext,
    behavior: &LogBehavior,
    topic: &Topic,
    seq: u64,
    body: &Arc<Vec<u8>>,
    own_sig: Signature,
    peer_hash: Option<Digest>,
    peer_sig: Option<Signature>,
) -> (PayloadRecord, Signature, Option<Digest>, Option<Signature>) {
    match behavior {
        LogBehavior::Falsify => {
            let fake = falsify_body(body);
            let binding = binding_digest(topic.as_str(), seq, &sha256(&fake));
            let sig = sign_own(ctx, &binding).unwrap_or(own_sig);
            (PayloadRecord::Data(fake), sig, peer_hash, peer_sig)
        }
        LogBehavior::FalsifyWithPeerKey(peer_key) => {
            // A colluding pair fabricates a fully consistent lie: the fake
            // payload, the publisher's re-signature, and the subscriber's
            // "acknowledgement" forged with the shared private key.
            let fake = falsify_body(body);
            let digest = sha256(&fake);
            let binding = binding_digest(topic.as_str(), seq, &digest);
            let sig = sign_own(ctx, &binding).unwrap_or(own_sig);
            let forged = forge_with(peer_key, &binding);
            (PayloadRecord::Data(fake), sig, Some(digest), forged)
        }
        _ => (
            PayloadRecord::Data(body.as_ref().clone()),
            own_sig,
            peer_hash,
            peer_sig,
        ),
    }
}

/// Subscriber-side falsification.
fn apply_sub_falsification(
    ctx: &LoggingContext,
    behavior: &LogBehavior,
    topic: &Topic,
    seq: u64,
    body: Vec<u8>,
    body_digest: Digest,
    own_sig: Signature,
    peer_sig: Signature,
) -> (PayloadRecord, Signature, Signature) {
    let store = |body: Vec<u8>, digest: Digest| {
        if ctx.subscriber_stores_hash {
            PayloadRecord::Hash(digest)
        } else {
            PayloadRecord::Data(body)
        }
    };
    match behavior {
        LogBehavior::Falsify => {
            let fake = falsify_body(&body);
            let digest = sha256(&fake);
            let sig = sign_own(ctx, &binding_digest(topic.as_str(), seq, &digest)).unwrap_or(own_sig);
            // Keeps the real s_x: the subscriber cannot forge the
            // publisher's signature over its lie (Lemma 3 ii).
            (store(fake, digest), sig, peer_sig)
        }
        LogBehavior::FalsifyWithPeerKey(peer_key) => {
            let fake = falsify_body(&body);
            let digest = sha256(&fake);
            let binding = binding_digest(topic.as_str(), seq, &digest);
            let sig = sign_own(ctx, &binding).unwrap_or(own_sig);
            let forged = forge_with(peer_key, &binding).unwrap_or(peer_sig);
            (store(fake, digest), sig, forged)
        }
        _ => (store(body, body_digest), own_sig, peer_sig),
    }
}

fn sign_own(ctx: &LoggingContext, digest: &Digest) -> Option<Signature> {
    ctx.identity
        .as_ref()
        .and_then(|i| i.sign_digest(digest).ok())
}

fn forge_with(key: &Arc<RsaPrivateKey>, digest: &Digest) -> Option<Signature> {
    pkcs1::sign_digest(key, digest).ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use adlp_logger::LogServer;
    use adlp_pubsub::Topic;
    use rand::SeedableRng;

    fn ctx(behavior: BehaviorProfile, store_hash: bool) -> (LoggingContext, LogServer) {
        let server = LogServer::spawn();
        let mut rng = rand::rngs::StdRng::seed_from_u64(21);
        let identity = ComponentIdentity::generate("pub", 512, &mut rng);
        server
            .handle()
            .register_key(identity.id(), identity.public_key().clone())
            .unwrap();
        (
            LoggingContext {
                node_id: NodeId::new("pub"),
                identity: Some(identity),
                behavior,
                subscriber_stores_hash: store_hash,
                logger: DepositTarget::Single(server.handle()),
                ack_after_durable: false,
            },
            server,
        )
    }

    fn receipt_event(ctx: &LoggingContext, body: Vec<u8>) -> LogEvent {
        let digest = sha256(&body);
        let own_sig = ctx
            .identity
            .as_ref()
            .unwrap()
            .sign_digest(&binding_digest("image", 5, &digest))
            .unwrap();
        LogEvent::Receipt {
            topic: Topic::new("image"),
            seq: 5,
            stamp_ns: 1000,
            publisher: NodeId::new("cam"),
            body,
            body_digest: digest,
            peer_sig: Signature::from_bytes(vec![9u8; 64]),
            own_sig,
        }
    }

    #[test]
    fn faithful_receipt_stores_hash() {
        let (c, _server) = ctx(BehaviorProfile::faithful(), true);
        let body = vec![1u8; 64];
        let entry = build_entry(&c, receipt_event(&c, body.clone())).unwrap();
        assert_eq!(entry.direction, Direction::In);
        assert_eq!(entry.payload, PayloadRecord::Hash(sha256(&body)));
        assert_eq!(entry.peer, Some(NodeId::new("cam")));
        assert_eq!(entry.timestamp_ns, 1000);
    }

    #[test]
    fn store_data_mode_keeps_payload() {
        let (c, _server) = ctx(BehaviorProfile::faithful(), false);
        let body = vec![1u8; 64];
        let entry = build_entry(&c, receipt_event(&c, body.clone())).unwrap();
        assert_eq!(entry.payload, PayloadRecord::Data(body));
    }

    #[test]
    fn hide_suppresses_entry() {
        let profile = BehaviorProfile::faithful().with_link(
            LinkRole::Subscriber,
            Topic::new("image"),
            LogBehavior::Hide,
        );
        let (c, _server) = ctx(profile, true);
        assert!(build_entry(&c, receipt_event(&c, vec![1u8; 32])).is_none());
    }

    #[test]
    fn falsify_changes_payload_and_resigns() {
        let profile = BehaviorProfile::faithful().with_link(
            LinkRole::Subscriber,
            Topic::new("image"),
            LogBehavior::Falsify,
        );
        let (c, _server) = ctx(profile, true);
        let body = vec![1u8; 64];
        let entry = build_entry(&c, receipt_event(&c, body.clone())).unwrap();
        let real_digest = sha256(&body);
        let PayloadRecord::Hash(claimed) = entry.payload else {
            panic!("expected hash payload");
        };
        assert_ne!(claimed, real_digest);
        // The falsified entry still passes the authenticity check (3): the
        // component re-signed its own lie (over the binding digest).
        let pk = c.identity.as_ref().unwrap().public_key();
        assert!(pkcs1::verify_digest(
            pk,
            &binding_digest("image", 5, &claimed),
            entry.own_sig.as_ref().unwrap()
        ));
    }

    #[test]
    fn impersonation_rewrites_component() {
        let profile = BehaviorProfile::faithful().with_link(
            LinkRole::Subscriber,
            Topic::new("image"),
            LogBehavior::ImpersonateAs(NodeId::new("victim")),
        );
        let (c, _server) = ctx(profile, true);
        let entry = build_entry(&c, receipt_event(&c, vec![1u8; 32])).unwrap();
        assert_eq!(entry.component, NodeId::new("victim"));
    }

    #[test]
    fn timestamp_skew_applied() {
        let profile = BehaviorProfile::faithful().with_timestamp_skew_ns(-600);
        let (c, _server) = ctx(profile, true);
        let entry = build_entry(&c, receipt_event(&c, vec![1u8; 32])).unwrap();
        assert_eq!(entry.timestamp_ns, 400);
    }

    #[test]
    fn thread_processes_and_flushes() {
        let (c, server) = ctx(BehaviorProfile::faithful(), true);
        let thread = LoggingThread::spawn(c).unwrap();
        let sink = thread.sink();
        sink.submit(LogEvent::BasePublication {
            topic: Topic::new("t"),
            seq: 1,
            stamp_ns: 1,
            body: Arc::new(vec![0u8; 20]),
        });
        thread.flush();
        server.handle().flush().unwrap();
        assert_eq!(server.handle().store().len(), 1);
    }

    #[test]
    fn base_falsify_flips_payload() {
        let profile = BehaviorProfile::faithful().with_link(
            LinkRole::Publisher,
            Topic::new("t"),
            LogBehavior::Falsify,
        );
        let (c, _server) = ctx(profile, true);
        let body = vec![0u8; 20];
        let entry = build_entry(
            &c,
            LogEvent::BasePublication {
                topic: Topic::new("t"),
                seq: 1,
                stamp_ns: 1,
                body: Arc::new(body.clone()),
            },
        )
        .unwrap();
        assert_eq!(entry.payload, PayloadRecord::Data(falsify_body(&body)));
    }
}
