//! The per-node logging thread.
//!
//! "For logging operations, we created a Logging Thread that runs in
//! parallel with each node's main thread. One logging thread is created per
//! ROS node, no matter how many topics the node publishes and subscribes"
//! (§V-B). Transport hooks push [`LogEvent`]s; this thread converts them to
//! [`LogEntry`]s — applying the node's [`BehaviorProfile`] — and submits
//! them to the trusted logger.
//!
//! # Overload
//!
//! The worker keeps a **bounded** deposit queue ([`OverloadConfig`]). When
//! the logger cannot keep up, overflow is shed by policy (oldest-first or
//! newest-first), each shed is counted on the shared [`QueuePressure`]
//! handle, and contiguous shed runs are admitted in **signed gap receipts**
//! ([`GapReceipt`]) that ride the ordinary deposit path and are never
//! themselves shed. An optional circuit breaker fast-fails a refusing
//! target: queue-full sheds and failed deposits feed its failure window,
//! and while it is open the worker stops hammering the logger until a
//! half-open probe succeeds.

use crate::behavior::{falsify_body, BehaviorProfile, LinkRole, LogBehavior};
use crate::events::LogEvent;
use crate::identity::ComponentIdentity;
use crate::overload::{OverloadConfig, QueuePressure, ShedPolicy};
use crate::target::DepositTarget;
use adlp_crypto::rsa::RsaPrivateKey;
use adlp_crypto::sha256::{binding_digest, sha256, Digest};
use adlp_crypto::{pkcs1, Signature};
use adlp_logger::{Direction, GapReceipt, LogEntry, LogError, PayloadRecord, ShedReason};
use adlp_pubsub::{Admission, BreakerState, CircuitBreaker, Clock, NodeId, Topic};
use crossbeam::channel::{Receiver, RecvTimeoutError, Sender, TryRecvError};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// How long a stalled worker (breaker open, or the target refusing
/// receipts) waits for new commands before re-probing, instead of spinning.
const STALL_PACE: Duration = Duration::from_millis(1);

enum Command {
    Event(Box<LogEvent>),
    Flush(Sender<()>),
}

/// Handle to a running logging thread.
#[derive(Debug)]
pub struct LoggingThread {
    tx: Sender<Command>,
    worker: Option<JoinHandle<()>>,
    lost: Arc<AtomicU64>,
    deposit_failures: Arc<AtomicU64>,
    pressure: QueuePressure,
}

/// A cloneable submitter for transport hooks.
#[derive(Debug, Clone)]
pub struct EventSink {
    tx: Sender<Command>,
    /// Events the sink could not enqueue (worker gone). Shared with the
    /// owning [`LoggingThread`] so losses are observable, not silent.
    lost: Arc<AtomicU64>,
}

impl EventSink {
    /// Pushes an event; never blocks on logging work. An event that cannot
    /// be enqueued (the worker exited) is counted, not silently dropped —
    /// unlogged activity is exactly what an auditor needs to know about.
    pub fn submit(&self, event: LogEvent) {
        if self.tx.send(Command::Event(Box::new(event))).is_err() {
            self.lost.fetch_add(1, Ordering::Relaxed);
        }
    }
}

/// Everything the worker needs to turn events into entries.
pub(crate) struct LoggingContext {
    /// The node's id (used verbatim for Base-scheme entries).
    pub node_id: NodeId,
    /// ADLP identity; `None` under the Base scheme.
    pub identity: Option<ComponentIdentity>,
    /// The node's (mis)behavior.
    pub behavior: BehaviorProfile,
    /// Whether subscribers store `h(I_y)` instead of `I_y`.
    pub subscriber_stores_hash: bool,
    /// The deposit destination (single logger or cluster).
    pub logger: DepositTarget,
    /// Deposit through [`DepositTarget::submit_durable`] and count
    /// rejections, instead of the fire-and-forget path.
    pub ack_after_durable: bool,
    /// Bounded-queue / shedding / breaker policy for the deposit pipeline.
    pub overload: OverloadConfig,
    /// Clock driving the deposit breaker and stamping gap receipts.
    pub clock: Arc<dyn Clock>,
}

impl LoggingThread {
    /// Spawns the thread.
    ///
    /// # Errors
    ///
    /// Returns [`LogError::Io`] when the OS refuses to create the thread.
    pub(crate) fn spawn(ctx: LoggingContext) -> Result<Self, LogError> {
        let (tx, rx) = crossbeam::channel::unbounded();
        let deposit_failures = Arc::new(AtomicU64::new(0));
        let pressure = QueuePressure::new();
        let worker = {
            let deposit_failures = Arc::clone(&deposit_failures);
            let pressure = pressure.clone();
            std::thread::Builder::new()
                .name(format!("lg-{}", ctx.node_id))
                .spawn(move || {
                    let breaker = ctx
                        .overload
                        .breaker
                        .clone()
                        .map(|cfg| CircuitBreaker::new(cfg, Arc::clone(&ctx.clock)));
                    Worker {
                        ctx,
                        rx,
                        queue: VecDeque::new(),
                        pending_receipts: VecDeque::new(),
                        draft: None,
                        breaker,
                        pressure,
                        deposit_failures,
                        stalled: false,
                    }
                    .run();
                })
                .map_err(|e| LogError::Io(format!("spawn logging thread: {e}")))?
        };
        Ok(LoggingThread {
            tx,
            worker: Some(worker),
            lost: Arc::new(AtomicU64::new(0)),
            deposit_failures,
            pressure,
        })
    }

    /// A submitter handle for transport hooks.
    pub fn sink(&self) -> EventSink {
        EventSink {
            tx: self.tx.clone(),
            lost: Arc::clone(&self.lost),
        }
    }

    /// Events that could not be enqueued because the worker was gone.
    pub fn events_lost(&self) -> u64 {
        self.lost.load(Ordering::Relaxed)
    }

    /// Entries the deposit target refused: durable-mode rejections plus
    /// fire-and-forget submissions the target reported as lost (which the
    /// logger's own stats also count).
    pub fn deposit_failures(&self) -> u64 {
        self.deposit_failures.load(Ordering::Relaxed)
    }

    /// The shared overload view of this pipeline: queue depth and
    /// watermark level, shed counts, gap-receipt counts, and deposit
    /// breaker transitions. Cloning is cheap and shares the counters.
    pub fn pressure(&self) -> QueuePressure {
        self.pressure.clone()
    }

    /// Blocks until all previously submitted events were handed to the
    /// logger.
    pub fn flush(&self) {
        let (tx, rx) = crossbeam::channel::bounded(1);
        if self.tx.send(Command::Flush(tx)).is_ok() {
            let _ = rx.recv();
        }
    }
}

impl Drop for LoggingThread {
    fn drop(&mut self) {
        // Sever our sender; the worker drains and exits once all EventSinks
        // are gone too.
        let (dead_tx, _) = crossbeam::channel::unbounded();
        self.tx = dead_tx;
        if let Some(w) = self.worker.take() {
            if w.is_finished() {
                let _ = w.join();
            }
        }
    }
}

/// The logging thread's state: a bounded deposit queue, the receipts it
/// owes for shed ranges, and (optionally) the deposit circuit breaker.
struct Worker {
    ctx: LoggingContext,
    rx: Receiver<Command>,
    /// Bounded (by `ctx.overload.queue_capacity`) deposit backlog.
    queue: VecDeque<LogEntry>,
    /// Signed gap receipts awaiting delivery — never shed, retried until
    /// delivered or the pipeline ends.
    pending_receipts: VecDeque<LogEntry>,
    /// The open (still-coalescing) shed range, if any.
    draft: Option<GapReceipt>,
    breaker: Option<CircuitBreaker>,
    pressure: QueuePressure,
    deposit_failures: Arc<AtomicU64>,
    /// Set when the last work round had a backlog but made no progress
    /// (breaker open / target refusing receipts): the next intake waits
    /// [`STALL_PACE`] instead of spinning.
    stalled: bool,
}

impl Worker {
    fn run(mut self) {
        loop {
            let mut disconnected = false;
            let has_backlog = !self.queue.is_empty() || !self.pending_receipts.is_empty();
            if !has_backlog && self.draft.is_some() {
                // The pipeline went quiet with an open shed range: emit the
                // receipt now instead of letting the admission linger.
                self.finalize_draft();
            } else if !has_backlog {
                match self.rx.recv() {
                    Ok(cmd) => self.handle(cmd),
                    Err(_) => disconnected = true,
                }
            } else if self.stalled {
                match self.rx.recv_timeout(STALL_PACE) {
                    Ok(cmd) => self.handle(cmd),
                    Err(RecvTimeoutError::Timeout) => {}
                    Err(RecvTimeoutError::Disconnected) => disconnected = true,
                }
            }
            // Eager intake: admission control (not the channel) decides
            // what is kept, so the unbounded channel never holds a backlog.
            loop {
                match self.rx.try_recv() {
                    Ok(cmd) => self.handle(cmd),
                    Err(TryRecvError::Empty) => break,
                    Err(TryRecvError::Disconnected) => {
                        disconnected = true;
                        break;
                    }
                }
            }
            if disconnected {
                break;
            }
            let progressed = self.work();
            self.stalled =
                !progressed && (!self.queue.is_empty() || !self.pending_receipts.is_empty());
        }
        self.final_drain();
    }

    fn handle(&mut self, cmd: Command) {
        match cmd {
            Command::Event(event) => {
                if let Some(entry) = build_entry(&self.ctx, *event) {
                    self.enqueue(entry);
                }
                self.update_depth();
            }
            Command::Flush(reply) => {
                self.full_drain();
                // adlp-lint: allow(discarded-fallible) — the flush requester may have timed out; nothing left to acknowledge
                let _ = reply.send(());
            }
        }
    }

    /// Admission control: queue the entry, or shed per policy when full.
    fn enqueue(&mut self, entry: LogEntry) {
        if self.queue.len() < self.ctx.overload.queue_capacity {
            self.queue.push_back(entry);
            return;
        }
        match self.ctx.overload.policy {
            ShedPolicy::OldestFirst => {
                if let Some(victim) = self.queue.pop_front() {
                    self.shed(victim);
                }
                self.queue.push_back(entry);
            }
            ShedPolicy::NewestFirst => self.shed(entry),
        }
    }

    /// Sheds one entry under the current overload condition. A queue-full
    /// shed is a failure of the deposit pipeline, so it feeds the breaker's
    /// failure window exactly like a refused deposit: sustained overload
    /// trips the breaker even while the target still answers.
    fn shed(&mut self, entry: LogEntry) {
        let reason = match self.breaker.as_mut().map(CircuitBreaker::state) {
            Some(BreakerState::Open) => ShedReason::BreakerOpen,
            _ => ShedReason::QueueFull,
        };
        self.breaker_outcome(false);
        self.shed_with_reason(entry, reason);
    }

    /// Counts the shed and folds it into a gap-receipt draft. Entries the
    /// node cannot truthfully receipt — Base scheme (no identity) or a
    /// component field rewritten by impersonation — are counted but left
    /// unreceipted: the auditor will (correctly) hold that against them.
    fn shed_with_reason(&mut self, entry: LogEntry, reason: ShedReason) {
        self.pressure.note_shed();
        if self.ctx.identity.is_none() || entry.component != self.ctx.node_id {
            return;
        }
        if let Some(d) = &mut self.draft {
            if d.topic == entry.topic
                && d.direction == entry.direction
                && d.reason == reason
                && entry.seq == d.last_seq.wrapping_add(1)
                && d.count < self.ctx.overload.receipt_max_span
            {
                d.last_seq = entry.seq;
                d.count += 1;
                return;
            }
            self.finalize_draft();
        }
        self.draft = Some(GapReceipt {
            component: self.ctx.node_id.clone(),
            topic: entry.topic.clone(),
            direction: entry.direction,
            first_seq: entry.seq,
            last_seq: entry.seq,
            count: 1,
            reason,
        });
    }

    /// Signs the open draft (the ordinary binding-digest signature over the
    /// receipt payload *is* `sign_x(h(first ‖ last ‖ count ‖ reason))`) and
    /// queues it for delivery.
    fn finalize_draft(&mut self) {
        let Some(receipt) = self.draft.take() else {
            return;
        };
        let mut entry = receipt.to_entry(self.ctx.clock.now_ns());
        let binding = binding_digest(entry.topic.as_str(), entry.seq, &entry.payload.digest());
        match sign_own(&self.ctx, &binding) {
            Some(sig) => {
                entry.own_sig = Some(sig);
                self.pressure.note_receipt_issued();
                self.pending_receipts.push_back(entry);
            }
            // A receipt we cannot sign is useless to the auditor; count it
            // as undeliverable rather than deposit an unverifiable claim.
            None => self.pressure.note_receipts_undeliverable(1),
        }
    }

    /// One work round: receipts first (never shed), then queued entries
    /// while the breaker admits and no fresh commands wait.
    fn work(&mut self) -> bool {
        let mut progressed = self.deliver_receipts();
        while !self.queue.is_empty() && self.rx.is_empty() {
            if let Some(b) = &mut self.breaker {
                if matches!(b.admit(), Admission::Rejected) {
                    break;
                }
            }
            let Some(entry) = self.queue.pop_front() else {
                break;
            };
            self.deposit(entry);
            // A refused deposit still consumed the entry (the target
            // counted the loss), so the round made progress either way.
            progressed = true;
            self.update_depth();
        }
        progressed
    }

    /// One delivery attempt per pending receipt. Receipts bypass the
    /// breaker's admission — they are tiny and the whole point of the
    /// accountability story — but their outcomes still feed it.
    fn deliver_receipts(&mut self) -> bool {
        let mut progressed = false;
        let mut remaining = self.pending_receipts.len();
        while remaining > 0 {
            remaining -= 1;
            let Some(receipt) = self.pending_receipts.pop_front() else {
                break;
            };
            if self.deposit(receipt.clone()) {
                progressed = true;
            } else {
                self.pending_receipts.push_back(receipt);
            }
        }
        progressed
    }

    /// Hands one entry to the target and feeds the breaker.
    fn deposit(&mut self, entry: LogEntry) -> bool {
        let ok = if self.ctx.ack_after_durable {
            self.ctx.logger.submit_durable(entry).is_ok()
        } else {
            self.ctx.logger.submit(entry).is_accepted()
        };
        if ok {
            self.pressure.note_deposited();
        } else {
            self.deposit_failures.fetch_add(1, Ordering::Relaxed);
        }
        self.breaker_outcome(ok);
        ok
    }

    fn breaker_outcome(&mut self, success: bool) {
        if let Some(b) = &mut self.breaker {
            let transition = if success { b.on_success() } else { b.on_failure() };
            if let Some(t) = transition {
                self.pressure.note_transition(t);
            }
        }
    }

    /// Flush barrier: finalize the draft and push everything out, bypassing
    /// the breaker's admission (outcomes still feed it, so flushing through
    /// a healthy-but-tripped pipeline also heals the breaker).
    fn full_drain(&mut self) {
        self.finalize_draft();
        while let Some(entry) = self.queue.pop_front() {
            self.deposit(entry);
        }
        self.deliver_receipts();
        self.update_depth();
    }

    /// Teardown: best-effort full drain, but after the first refusal stop
    /// hammering a dead target and shed the remainder under a `Shutdown`
    /// receipt. Receipts that still cannot be delivered are counted.
    fn final_drain(&mut self) {
        self.finalize_draft();
        while let Some(entry) = self.queue.pop_front() {
            if !self.deposit(entry) {
                while let Some(rest) = self.queue.pop_front() {
                    self.shed_with_reason(rest, ShedReason::Shutdown);
                }
                self.finalize_draft();
                break;
            }
        }
        self.deliver_receipts();
        let undeliverable = self.pending_receipts.len() as u64;
        if undeliverable > 0 {
            self.pressure.note_receipts_undeliverable(undeliverable);
            self.pending_receipts.clear();
        }
        self.update_depth();
    }

    fn update_depth(&mut self) {
        let cfg = &self.ctx.overload;
        self.pressure
            .set_depth(self.queue.len(), cfg.low_watermark, cfg.high_watermark);
    }
}

/// Applies behavior and constructs the entry (or `None` when hiding).
fn build_entry(ctx: &LoggingContext, event: LogEvent) -> Option<LogEntry> {
    let role = if event.is_publication() {
        LinkRole::Publisher
    } else {
        LinkRole::Subscriber
    };
    let behavior = ctx.behavior.link(role, event.topic()).clone();
    if matches!(behavior, LogBehavior::Hide) {
        return None;
    }

    let mut entry = match event {
        LogEvent::AckedPublication {
            topic,
            seq,
            stamp_ns,
            body,
            own_sig,
            subscriber,
            peer_hash,
            peer_sig,
        } => {
            let (payload, own_sig, peer_hash, peer_sig) = apply_pub_falsification(
                ctx,
                &behavior,
                &topic,
                seq,
                &body,
                own_sig,
                Some(peer_hash),
                Some(peer_sig),
            );
            LogEntry {
                component: ctx.node_id.clone(),
                topic,
                direction: Direction::Out,
                seq,
                timestamp_ns: ctx.behavior.skewed_timestamp(stamp_ns),
                payload,
                own_sig: Some(own_sig),
                peer_sig,
                peer_hash,
                peer: Some(subscriber),
                acks: Vec::new(),
            }
        }
        LogEvent::UnackedPublication {
            topic,
            seq,
            stamp_ns,
            body,
            own_sig,
            subscriber,
        } => {
            let (payload, own_sig, _, _) =
                apply_pub_falsification(ctx, &behavior, &topic, seq, &body, own_sig, None, None);
            LogEntry {
                component: ctx.node_id.clone(),
                topic,
                direction: Direction::Out,
                seq,
                timestamp_ns: ctx.behavior.skewed_timestamp(stamp_ns),
                payload,
                own_sig: Some(own_sig),
                peer_sig: None,
                peer_hash: None,
                peer: Some(subscriber),
                acks: Vec::new(),
            }
        }
        LogEvent::AggregatedPublication {
            topic,
            seq,
            stamp_ns,
            body,
            own_sig,
            acks,
        } => {
            let (payload, own_sig, _, _) =
                apply_pub_falsification(ctx, &behavior, &topic, seq, &body, own_sig, None, None);
            LogEntry {
                component: ctx.node_id.clone(),
                topic,
                direction: Direction::Out,
                seq,
                timestamp_ns: ctx.behavior.skewed_timestamp(stamp_ns),
                payload,
                own_sig: Some(own_sig),
                peer_sig: None,
                peer_hash: None,
                peer: None,
                acks,
            }
        }
        LogEvent::Receipt {
            topic,
            seq,
            stamp_ns,
            publisher,
            body,
            body_digest,
            peer_sig,
            own_sig,
        } => {
            let (payload, own_sig, peer_sig) = apply_sub_falsification(
                ctx,
                &behavior,
                &topic,
                seq,
                body,
                body_digest,
                own_sig,
                peer_sig,
            );
            LogEntry {
                component: ctx.node_id.clone(),
                topic,
                direction: Direction::In,
                seq,
                timestamp_ns: ctx.behavior.skewed_timestamp(stamp_ns),
                payload,
                own_sig: Some(own_sig),
                peer_sig: Some(peer_sig),
                peer_hash: None,
                peer: Some(publisher),
                acks: Vec::new(),
            }
        }
        LogEvent::BasePublication {
            topic,
            seq,
            stamp_ns,
            body,
        } => {
            let data = match behavior {
                LogBehavior::Falsify | LogBehavior::FalsifyWithPeerKey(_) => falsify_body(&body),
                _ => body.as_ref().clone(),
            };
            LogEntry::naive(
                ctx.node_id.clone(),
                topic,
                Direction::Out,
                seq,
                ctx.behavior.skewed_timestamp(stamp_ns),
                data,
            )
        }
        LogEvent::BaseReceipt {
            topic,
            seq,
            stamp_ns,
            publisher,
            body,
        } => {
            let data = match behavior {
                LogBehavior::Falsify | LogBehavior::FalsifyWithPeerKey(_) => falsify_body(&body),
                _ => body,
            };
            let mut e = LogEntry::naive(
                ctx.node_id.clone(),
                topic,
                Direction::In,
                seq,
                ctx.behavior.skewed_timestamp(stamp_ns),
                data,
            );
            if ctx.subscriber_stores_hash {
                // Base logging can also store h(D) (the paper's Table IV
                // measures it in this mode).
                e.payload = PayloadRecord::Hash(e.payload.digest());
            }
            e.peer = Some(publisher);
            e
        }
    };

    if let LogBehavior::ImpersonateAs(victim) = &behavior {
        entry.component = victim.clone();
    }
    Some(entry)
}

/// Publisher-side falsification: rewrite the body, re-sign with our key,
/// and (under collusion) re-forge the peer's acknowledgement over the lie.
fn apply_pub_falsification(
    ctx: &LoggingContext,
    behavior: &LogBehavior,
    topic: &Topic,
    seq: u64,
    body: &Arc<Vec<u8>>,
    own_sig: Signature,
    peer_hash: Option<Digest>,
    peer_sig: Option<Signature>,
) -> (PayloadRecord, Signature, Option<Digest>, Option<Signature>) {
    match behavior {
        LogBehavior::Falsify => {
            let fake = falsify_body(body);
            let binding = binding_digest(topic.as_str(), seq, &sha256(&fake));
            let sig = sign_own(ctx, &binding).unwrap_or(own_sig);
            (PayloadRecord::Data(fake), sig, peer_hash, peer_sig)
        }
        LogBehavior::FalsifyWithPeerKey(peer_key) => {
            // A colluding pair fabricates a fully consistent lie: the fake
            // payload, the publisher's re-signature, and the subscriber's
            // "acknowledgement" forged with the shared private key.
            let fake = falsify_body(body);
            let digest = sha256(&fake);
            let binding = binding_digest(topic.as_str(), seq, &digest);
            let sig = sign_own(ctx, &binding).unwrap_or(own_sig);
            let forged = forge_with(peer_key, &binding);
            (PayloadRecord::Data(fake), sig, Some(digest), forged)
        }
        _ => (
            PayloadRecord::Data(body.as_ref().clone()),
            own_sig,
            peer_hash,
            peer_sig,
        ),
    }
}

/// Subscriber-side falsification.
fn apply_sub_falsification(
    ctx: &LoggingContext,
    behavior: &LogBehavior,
    topic: &Topic,
    seq: u64,
    body: Vec<u8>,
    body_digest: Digest,
    own_sig: Signature,
    peer_sig: Signature,
) -> (PayloadRecord, Signature, Signature) {
    let store = |body: Vec<u8>, digest: Digest| {
        if ctx.subscriber_stores_hash {
            PayloadRecord::Hash(digest)
        } else {
            PayloadRecord::Data(body)
        }
    };
    match behavior {
        LogBehavior::Falsify => {
            let fake = falsify_body(&body);
            let digest = sha256(&fake);
            let sig = sign_own(ctx, &binding_digest(topic.as_str(), seq, &digest)).unwrap_or(own_sig);
            // Keeps the real s_x: the subscriber cannot forge the
            // publisher's signature over its lie (Lemma 3 ii).
            (store(fake, digest), sig, peer_sig)
        }
        LogBehavior::FalsifyWithPeerKey(peer_key) => {
            let fake = falsify_body(&body);
            let digest = sha256(&fake);
            let binding = binding_digest(topic.as_str(), seq, &digest);
            let sig = sign_own(ctx, &binding).unwrap_or(own_sig);
            let forged = forge_with(peer_key, &binding).unwrap_or(peer_sig);
            (store(fake, digest), sig, forged)
        }
        _ => (store(body, body_digest), own_sig, peer_sig),
    }
}

fn sign_own(ctx: &LoggingContext, digest: &Digest) -> Option<Signature> {
    ctx.identity
        .as_ref()
        .and_then(|i| i.sign_digest(digest).ok())
}

fn forge_with(key: &Arc<RsaPrivateKey>, digest: &Digest) -> Option<Signature> {
    pkcs1::sign_digest(key, digest).ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use adlp_logger::LogServer;
    use adlp_pubsub::Topic;
    use rand::SeedableRng;

    fn ctx(behavior: BehaviorProfile, store_hash: bool) -> (LoggingContext, LogServer) {
        let server = LogServer::spawn();
        let mut rng = rand::rngs::StdRng::seed_from_u64(21);
        let identity = ComponentIdentity::generate("pub", 512, &mut rng);
        server
            .handle()
            .register_key(identity.id(), identity.public_key().clone())
            .unwrap();
        (
            LoggingContext {
                node_id: NodeId::new("pub"),
                identity: Some(identity),
                behavior,
                subscriber_stores_hash: store_hash,
                logger: DepositTarget::Single(server.handle()),
                ack_after_durable: false,
                overload: OverloadConfig::default(),
                clock: Arc::new(adlp_pubsub::SystemClock),
            },
            server,
        )
    }

    /// A worker around `ctx` driven synchronously by the test (the channel
    /// stays empty), for deterministic overload scenarios.
    fn worker(ctx: LoggingContext) -> (Worker, Sender<Command>) {
        let (tx, rx) = crossbeam::channel::unbounded();
        let breaker = ctx
            .overload
            .breaker
            .clone()
            .map(|cfg| CircuitBreaker::new(cfg, Arc::clone(&ctx.clock)));
        (
            Worker {
                ctx,
                rx,
                queue: VecDeque::new(),
                pending_receipts: VecDeque::new(),
                draft: None,
                breaker,
                pressure: QueuePressure::new(),
                deposit_failures: Arc::new(AtomicU64::new(0)),
                stalled: false,
            },
            tx,
        )
    }

    fn own_entry(seq: u64) -> LogEntry {
        LogEntry::naive(
            NodeId::new("pub"),
            Topic::new("image"),
            Direction::Out,
            seq,
            seq,
            vec![seq as u8; 16],
        )
    }

    fn receipt_event(ctx: &LoggingContext, body: Vec<u8>) -> LogEvent {
        let digest = sha256(&body);
        let own_sig = ctx
            .identity
            .as_ref()
            .unwrap()
            .sign_digest(&binding_digest("image", 5, &digest))
            .unwrap();
        LogEvent::Receipt {
            topic: Topic::new("image"),
            seq: 5,
            stamp_ns: 1000,
            publisher: NodeId::new("cam"),
            body,
            body_digest: digest,
            peer_sig: Signature::from_bytes(vec![9u8; 64]),
            own_sig,
        }
    }

    #[test]
    fn faithful_receipt_stores_hash() {
        let (c, _server) = ctx(BehaviorProfile::faithful(), true);
        let body = vec![1u8; 64];
        let entry = build_entry(&c, receipt_event(&c, body.clone())).unwrap();
        assert_eq!(entry.direction, Direction::In);
        assert_eq!(entry.payload, PayloadRecord::Hash(sha256(&body)));
        assert_eq!(entry.peer, Some(NodeId::new("cam")));
        assert_eq!(entry.timestamp_ns, 1000);
    }

    #[test]
    fn store_data_mode_keeps_payload() {
        let (c, _server) = ctx(BehaviorProfile::faithful(), false);
        let body = vec![1u8; 64];
        let entry = build_entry(&c, receipt_event(&c, body.clone())).unwrap();
        assert_eq!(entry.payload, PayloadRecord::Data(body));
    }

    #[test]
    fn hide_suppresses_entry() {
        let profile = BehaviorProfile::faithful().with_link(
            LinkRole::Subscriber,
            Topic::new("image"),
            LogBehavior::Hide,
        );
        let (c, _server) = ctx(profile, true);
        assert!(build_entry(&c, receipt_event(&c, vec![1u8; 32])).is_none());
    }

    #[test]
    fn falsify_changes_payload_and_resigns() {
        let profile = BehaviorProfile::faithful().with_link(
            LinkRole::Subscriber,
            Topic::new("image"),
            LogBehavior::Falsify,
        );
        let (c, _server) = ctx(profile, true);
        let body = vec![1u8; 64];
        let entry = build_entry(&c, receipt_event(&c, body.clone())).unwrap();
        let real_digest = sha256(&body);
        let PayloadRecord::Hash(claimed) = entry.payload else {
            panic!("expected hash payload");
        };
        assert_ne!(claimed, real_digest);
        // The falsified entry still passes the authenticity check (3): the
        // component re-signed its own lie (over the binding digest).
        let pk = c.identity.as_ref().unwrap().public_key();
        assert!(pkcs1::verify_digest(
            pk,
            &binding_digest("image", 5, &claimed),
            entry.own_sig.as_ref().unwrap()
        ));
    }

    #[test]
    fn impersonation_rewrites_component() {
        let profile = BehaviorProfile::faithful().with_link(
            LinkRole::Subscriber,
            Topic::new("image"),
            LogBehavior::ImpersonateAs(NodeId::new("victim")),
        );
        let (c, _server) = ctx(profile, true);
        let entry = build_entry(&c, receipt_event(&c, vec![1u8; 32])).unwrap();
        assert_eq!(entry.component, NodeId::new("victim"));
    }

    #[test]
    fn timestamp_skew_applied() {
        let profile = BehaviorProfile::faithful().with_timestamp_skew_ns(-600);
        let (c, _server) = ctx(profile, true);
        let entry = build_entry(&c, receipt_event(&c, vec![1u8; 32])).unwrap();
        assert_eq!(entry.timestamp_ns, 400);
    }

    #[test]
    fn thread_processes_and_flushes() {
        let (c, server) = ctx(BehaviorProfile::faithful(), true);
        let thread = LoggingThread::spawn(c).unwrap();
        let sink = thread.sink();
        sink.submit(LogEvent::BasePublication {
            topic: Topic::new("t"),
            seq: 1,
            stamp_ns: 1,
            body: Arc::new(vec![0u8; 20]),
        });
        thread.flush();
        server.handle().flush().unwrap();
        assert_eq!(server.handle().store().len(), 1);
    }

    #[test]
    fn overflow_sheds_oldest_and_issues_signed_receipt() {
        let (mut c, server) = ctx(BehaviorProfile::faithful(), true);
        c.overload = OverloadConfig::with_capacity(4);
        let pk = c.identity.as_ref().unwrap().public_key().clone();
        let (mut w, _tx) = worker(c);
        for seq in 0..10 {
            w.enqueue(own_entry(seq));
        }
        // Capacity 4 under oldest-first: seqs 0..=5 shed, 6..=9 kept.
        assert_eq!(w.pressure.entries_shed(), 6);
        assert_eq!(w.queue.len(), 4);
        w.full_drain();
        assert_eq!(w.pressure.receipts_issued(), 1);
        assert_eq!(w.pressure.deposited(), 5); // 4 entries + 1 receipt
        server.handle().flush().unwrap();
        let entries: Vec<LogEntry> = server
            .handle()
            .store()
            .entries()
            .into_iter()
            .map(Result::unwrap)
            .collect();
        let receipts: Vec<GapReceipt> = entries
            .iter()
            .filter_map(GapReceipt::from_entry)
            .collect();
        assert_eq!(receipts.len(), 1);
        let r = &receipts[0];
        assert!(r.well_formed());
        assert_eq!((r.first_seq, r.last_seq, r.count), (0, 5, 6));
        assert_eq!(r.reason, ShedReason::QueueFull);
        // The receipt passes the auditor's ordinary screening signature:
        // the component signed its admission of loss.
        let carried = entries
            .iter()
            .find(|e| GapReceipt::claims_receipt(e))
            .unwrap();
        assert!(pkcs1::verify_digest(
            &pk,
            &binding_digest(
                carried.topic.as_str(),
                carried.seq,
                &carried.payload.digest()
            ),
            carried.own_sig.as_ref().unwrap()
        ));
    }

    #[test]
    fn newest_first_refuses_arrivals_and_caps_receipt_span() {
        let (mut c, _server) = ctx(BehaviorProfile::faithful(), true);
        c.overload = OverloadConfig::with_capacity(2)
            .with_policy(ShedPolicy::NewestFirst)
            .with_receipt_span(2);
        let (mut w, _tx) = worker(c);
        for seq in 0..6 {
            w.enqueue(own_entry(seq));
        }
        // The queue keeps the unbroken prefix 0..=1; 2..=5 are refused and
        // split into two receipts by the span cap.
        assert_eq!(w.queue.len(), 2);
        assert_eq!(w.pressure.entries_shed(), 4);
        w.finalize_draft();
        assert_eq!(w.pressure.receipts_issued(), 2);
        let ranges: Vec<(u64, u64)> = w
            .pending_receipts
            .iter()
            .filter_map(GapReceipt::from_entry)
            .map(|r| (r.first_seq, r.last_seq))
            .collect();
        assert_eq!(ranges, vec![(2, 3), (4, 5)]);
    }

    #[test]
    fn queue_full_sheds_trip_breaker_and_probes_reclose_it() {
        let (mut c, server) = ctx(BehaviorProfile::faithful(), true);
        let clock = adlp_pubsub::ManualClock::new(1);
        c.clock = Arc::new(clock.clone());
        c.overload = OverloadConfig::with_capacity(1).with_breaker(
            adlp_pubsub::BreakerConfig::default()
                .with_trip(2, 2)
                .with_cooldown(Duration::from_millis(1)),
        );
        let (mut w, _tx) = worker(c);
        w.enqueue(own_entry(0));
        w.enqueue(own_entry(1));
        w.enqueue(own_entry(2));
        assert_eq!(w.pressure.entries_shed(), 2);
        assert_eq!(w.pressure.breaker_trips(), 1, "sustained overload trips");
        // While open, the work round refuses to deposit (fast-fail).
        assert!(!w.work());
        assert_eq!(w.queue.len(), 1);
        // Cooldown elapses: the probe deposits against the healthy logger.
        clock.advance_ns(10_000_000);
        assert!(w.work());
        assert!(w.queue.is_empty());
        // The receipt delivery supplies the second probe success → Closed.
        w.finalize_draft();
        assert!(w.work());
        assert_eq!(w.pressure.breaker_closes(), 1);
        server.handle().flush().unwrap();
        assert_eq!(server.handle().store().len(), 2); // entry 2 + receipt
    }

    #[test]
    fn shutdown_receipts_remaining_backlog_on_dead_target() {
        let (mut c, server) = ctx(BehaviorProfile::faithful(), true);
        c.overload = OverloadConfig::with_capacity(16);
        server.kill(); // the target is gone before the backlog drains
        let (mut w, _tx) = worker(c);
        for seq in 0..5 {
            w.enqueue(own_entry(seq));
        }
        w.final_drain();
        // First deposit fails; the remaining 4 are shed under a Shutdown
        // receipt that itself cannot be delivered — all of it counted.
        assert_eq!(w.pressure.entries_shed(), 4);
        assert_eq!(w.pressure.receipts_issued(), 1);
        assert_eq!(w.pressure.receipts_undeliverable(), 1);
        assert_eq!(w.pressure.deposited(), 0);
    }

    #[test]
    fn base_falsify_flips_payload() {
        let profile = BehaviorProfile::faithful().with_link(
            LinkRole::Publisher,
            Topic::new("t"),
            LogBehavior::Falsify,
        );
        let (c, _server) = ctx(profile, true);
        let body = vec![0u8; 20];
        let entry = build_entry(
            &c,
            LogEvent::BasePublication {
                topic: Topic::new("t"),
                seq: 1,
                stamp_ns: 1,
                body: Arc::new(body.clone()),
            },
        )
        .unwrap();
        assert_eq!(entry.payload, PayloadRecord::Data(falsify_body(&body)));
    }
}
