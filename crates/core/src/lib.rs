//! The Accountable Data Logging Protocol (ADLP).
//!
//! This crate implements the paper's protocol on top of the
//! [`adlp_pubsub`] middleware and the [`adlp_logger`] trusted logger:
//!
//! * every publication `M_x = (D, s_x)` carries the publisher's signature
//!   `s_x = sign_x(h(type ‖ seq ‖ h(D)))` — the *binding digest*, which
//!   keeps the paper's freshness binding (§IV-A) while staying
//!   recomputable from logged fields (see DESIGN.md §3.4) — computed
//!   **once per publication** regardless of subscriber count;
//! * every subscriber returns a signed acknowledgement `M_y = (h(I_y), s_y)`
//!   — a fixed 32 + |sig| bytes (160 bytes with RSA-1024, §V-B step 4);
//! * the publisher withholds further messages on a connection until the
//!   previous one is acknowledged (the non-cooperation penalty);
//! * both sides deposit log entries at the trusted logger through a
//!   per-node **logging thread**, the publisher's entry carrying the
//!   subscriber's acknowledgement and vice versa (Figure 9).
//!
//! All of this is transparent to application code: an [`AdlpNode`] exposes
//! the same advertise/subscribe API as a plain node, and a [`Scheme`] value
//! switches between **NoLogging**, **Base** (the naive scheme of
//! Definition 2) and **ADLP** without touching the application.
//!
//! Unfaithful components — the paper's whole reason to exist — are modeled
//! by [`BehaviorProfile`]: hiding, falsification, fabrication,
//! impersonation, timestamp disruption, and collusion (forging the peer's
//! signature with a shared private key).
//!
//! # Example
//!
//! ```
//! use adlp_core::{AdlpNodeBuilder, Scheme, AdlpConfig};
//! use adlp_logger::LogServer;
//! use adlp_pubsub::Master;
//! use rand::SeedableRng;
//!
//! # fn main() -> Result<(), adlp_core::AdlpError> {
//! let master = Master::new();
//! let server = LogServer::spawn();
//! let mut rng = rand::rngs::StdRng::seed_from_u64(1);
//!
//! let cam = AdlpNodeBuilder::new("camera")
//!     .scheme(Scheme::Adlp(AdlpConfig::default()))
//!     .key_bits(512)
//!     .build(&master, &server.handle(), &mut rng)?;
//! let det = AdlpNodeBuilder::new("detector")
//!     .scheme(Scheme::Adlp(AdlpConfig::default()))
//!     .key_bits(512)
//!     .build(&master, &server.handle(), &mut rng)?;
//!
//! let publisher = cam.advertise("image")?;
//! let _sub = det.subscribe("image", |_msg| {})?;
//! publisher.publish(&[7u8; 64])?;
//! # std::thread::sleep(std::time::Duration::from_millis(200));
//! cam.flush()?;
//! det.flush()?;
//! // Publisher + subscriber entries were deposited at the logger.
//! assert!(server.handle().store().len() >= 2);
//! # Ok(())
//! # }
//! ```

pub mod behavior;
pub mod config;
pub mod events;
pub mod identity;
pub mod interceptor;
pub mod keystore;
pub mod logging;
pub mod node;
pub mod overload;
pub mod protocol;
pub mod target;

pub use adlp_pubsub::{FaultStats, LinkEvent, LinkHealth};
pub use behavior::{BehaviorProfile, LinkRole, LogBehavior};
pub use config::{AdlpConfig, FaultConfig, ReconnectConfig, ResilienceConfig, Scheme};
pub use identity::ComponentIdentity;
pub use keystore::IdentityStore;
pub use node::{AdlpNode, AdlpNodeBuilder};
pub use overload::{OverloadConfig, PressureLevel, QueuePressure, ShedPolicy};
pub use target::{AckMode, DepositTarget};

use std::error::Error;
use std::fmt;

/// Errors from the protocol layer.
#[derive(Debug)]
#[non_exhaustive]
pub enum AdlpError {
    /// Underlying pub/sub failure.
    PubSub(adlp_pubsub::PubSubError),
    /// Underlying logger failure.
    Logger(adlp_logger::LogError),
    /// Underlying cryptographic failure.
    Crypto(adlp_crypto::CryptoError),
}

impl fmt::Display for AdlpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AdlpError::PubSub(e) => write!(f, "pub/sub error: {e}"),
            AdlpError::Logger(e) => write!(f, "logger error: {e}"),
            AdlpError::Crypto(e) => write!(f, "crypto error: {e}"),
        }
    }
}

impl Error for AdlpError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            AdlpError::PubSub(e) => Some(e),
            AdlpError::Logger(e) => Some(e),
            AdlpError::Crypto(e) => Some(e),
        }
    }
}

impl From<adlp_pubsub::PubSubError> for AdlpError {
    fn from(e: adlp_pubsub::PubSubError) -> Self {
        AdlpError::PubSub(e)
    }
}

impl From<adlp_logger::LogError> for AdlpError {
    fn from(e: adlp_logger::LogError) -> Self {
        AdlpError::Logger(e)
    }
}

impl From<adlp_crypto::CryptoError> for AdlpError {
    fn from(e: adlp_crypto::CryptoError) -> Self {
        AdlpError::Crypto(e)
    }
}
