//! Overload policy for the deposit pipeline.
//!
//! The paper's pipeline assumes the trusted logger keeps up; under
//! sustained overload an unbounded deposit queue trades memory for an
//! unbounded accountability *lag*. This module bounds the queue and makes
//! the overflow explicit: a [`ShedPolicy`] picks which entries to drop, a
//! circuit breaker (optional) fast-fails a persistently refusing logger,
//! and every consequence is surfaced through a shared [`QueuePressure`]
//! handle — depth, watermark level, shed counts, gap-receipt counts,
//! breaker transitions. Publishers watch the pressure level and slow their
//! ack-gated send loops instead of letting the backlog grow.

use adlp_pubsub::{BreakerConfig, Transition};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

/// Which entries to sacrifice when the bounded deposit queue overflows.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ShedPolicy {
    /// Drop the oldest queued entry to make room for the arrival: the
    /// deadline-aware choice when fresh activity matters more than stale
    /// backlog (the queued entry has already waited longest and is the
    /// most likely to be useless by the time it lands).
    #[default]
    OldestFirst,
    /// Refuse the arriving entry and keep the queue intact: preserves an
    /// unbroken prefix of the sequence space, at the cost of losing the
    /// most recent activity.
    NewestFirst,
}

/// Tunables for one logging pipeline's overload handling.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OverloadConfig {
    /// Hard bound on queued-but-undeposited entries (clamped to ≥ 1).
    pub queue_capacity: usize,
    /// Depth at or above which [`QueuePressure::level`] turns
    /// [`PressureLevel::High`].
    pub high_watermark: usize,
    /// Depth at or below which the level falls back to
    /// [`PressureLevel::Normal`] (hysteresis: must be < `high_watermark`).
    pub low_watermark: usize,
    /// What to shed on overflow.
    pub policy: ShedPolicy,
    /// When set, deposits flow through a circuit breaker: repeated deposit
    /// failures (and queue-full sheds, which are overload failures too)
    /// trip it, and while it is open the worker stops hammering the logger
    /// until a half-open probe succeeds.
    pub breaker: Option<BreakerConfig>,
    /// Longest contiguous range a single gap receipt may cover; longer
    /// shed runs are split into multiple receipts so no single receipt
    /// admission grows unbounded.
    pub receipt_max_span: u64,
}

impl Default for OverloadConfig {
    fn default() -> Self {
        OverloadConfig::with_capacity(4096)
    }
}

impl OverloadConfig {
    /// A config with `capacity` queue slots and watermarks at 3/4 (high)
    /// and 1/4 (low) of it.
    pub fn with_capacity(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        OverloadConfig {
            queue_capacity: capacity,
            high_watermark: (capacity * 3 / 4).max(1),
            low_watermark: capacity / 4,
            policy: ShedPolicy::default(),
            breaker: None,
            receipt_max_span: 256,
        }
    }

    /// Sets explicit watermarks (low clamped below high, high clamped to
    /// the capacity).
    pub fn with_watermarks(mut self, low: usize, high: usize) -> Self {
        self.high_watermark = high.clamp(1, self.queue_capacity);
        self.low_watermark = low.min(self.high_watermark.saturating_sub(1));
        self
    }

    /// Sets the shed policy.
    pub fn with_policy(mut self, policy: ShedPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Enables the deposit circuit breaker.
    pub fn with_breaker(mut self, breaker: BreakerConfig) -> Self {
        self.breaker = Some(breaker);
        self
    }

    /// Sets the per-receipt range cap (clamped to ≥ 1).
    pub fn with_receipt_span(mut self, span: u64) -> Self {
        self.receipt_max_span = span.max(1);
        self
    }
}

/// The pressure level publishers react to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PressureLevel {
    /// Depth is below the high watermark (or fell back under the low one).
    Normal,
    /// The queue crossed its high watermark: slow down.
    High,
}

#[derive(Debug, Default)]
struct PressureInner {
    high: AtomicBool,
    depth: AtomicU64,
    high_water: AtomicU64,
    deposited: AtomicU64,
    shed: AtomicU64,
    receipts_issued: AtomicU64,
    receipts_undeliverable: AtomicU64,
    breaker_trips: AtomicU64,
    breaker_reopens: AtomicU64,
    breaker_closes: AtomicU64,
}

/// Shared, read-anywhere view of one logging pipeline's overload state.
///
/// The worker writes; the owning node, its publishers, and the sim/bench
/// harnesses read. Cloning shares the underlying counters.
#[derive(Debug, Clone, Default)]
pub struct QueuePressure {
    inner: Arc<PressureInner>,
}

impl QueuePressure {
    /// Fresh zeroed state at [`PressureLevel::Normal`].
    pub fn new() -> Self {
        Self::default()
    }

    /// The current watermark level.
    pub fn level(&self) -> PressureLevel {
        if self.inner.high.load(Ordering::Relaxed) {
            PressureLevel::High
        } else {
            PressureLevel::Normal
        }
    }

    /// Whether publishers should currently slow down.
    pub fn is_high(&self) -> bool {
        matches!(self.level(), PressureLevel::High)
    }

    /// Entries currently queued for deposit.
    pub fn depth(&self) -> u64 {
        self.inner.depth.load(Ordering::Relaxed)
    }

    /// Deepest the queue ever got (stays ≤ the configured capacity).
    pub fn high_water(&self) -> u64 {
        self.inner.high_water.load(Ordering::Relaxed)
    }

    /// Entries handed to the deposit target so far.
    pub fn deposited(&self) -> u64 {
        self.inner.deposited.load(Ordering::Relaxed)
    }

    /// Entries shed by admission control — counted, never silent.
    pub fn entries_shed(&self) -> u64 {
        self.inner.shed.load(Ordering::Relaxed)
    }

    /// Gap receipts deposited (or queued for deposit) covering shed ranges.
    pub fn receipts_issued(&self) -> u64 {
        self.inner.receipts_issued.load(Ordering::Relaxed)
    }

    /// Gap receipts that could not be delivered before the pipeline ended
    /// (the logger stayed dead) — the one loss receipts cannot cover,
    /// still counted.
    pub fn receipts_undeliverable(&self) -> u64 {
        self.inner.receipts_undeliverable.load(Ordering::Relaxed)
    }

    /// Deposit-breaker trips (Closed→Open) so far.
    pub fn breaker_trips(&self) -> u64 {
        self.inner.breaker_trips.load(Ordering::Relaxed)
    }

    /// Failed half-open probes (HalfOpen→Open) so far.
    pub fn breaker_reopens(&self) -> u64 {
        self.inner.breaker_reopens.load(Ordering::Relaxed)
    }

    /// Breaker closes (HalfOpen→Closed) so far — recovery events.
    pub fn breaker_closes(&self) -> u64 {
        self.inner.breaker_closes.load(Ordering::Relaxed)
    }

    /// Updates depth, the high-water mark, and the hysteresis level.
    pub(crate) fn set_depth(&self, depth: usize, low_watermark: usize, high_watermark: usize) {
        let d = depth as u64;
        self.inner.depth.store(d, Ordering::Relaxed);
        self.inner.high_water.fetch_max(d, Ordering::Relaxed);
        if depth >= high_watermark {
            self.inner.high.store(true, Ordering::Relaxed);
        } else if depth <= low_watermark {
            self.inner.high.store(false, Ordering::Relaxed);
        }
    }

    pub(crate) fn note_deposited(&self) {
        self.inner.deposited.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn note_shed(&self) {
        self.inner.shed.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn note_receipt_issued(&self) {
        self.inner.receipts_issued.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn note_receipts_undeliverable(&self, n: u64) {
        self.inner
            .receipts_undeliverable
            .fetch_add(n, Ordering::Relaxed);
    }

    pub(crate) fn note_transition(&self, transition: Transition) {
        let counter = match transition {
            Transition::Tripped => &self.inner.breaker_trips,
            Transition::Reopened => &self.inner.breaker_reopens,
            Transition::Closed => &self.inner.breaker_closes,
        };
        counter.fetch_add(1, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_watermarks_bracket_capacity() {
        let c = OverloadConfig::default();
        assert_eq!(c.queue_capacity, 4096);
        assert_eq!(c.high_watermark, 3072);
        assert_eq!(c.low_watermark, 1024);
        assert!(c.low_watermark < c.high_watermark);
        assert!(c.high_watermark <= c.queue_capacity);
    }

    #[test]
    fn watermark_hysteresis() {
        let p = QueuePressure::new();
        assert_eq!(p.level(), PressureLevel::Normal);
        p.set_depth(8, 2, 8);
        assert_eq!(p.level(), PressureLevel::High);
        // Between the watermarks the level sticks (hysteresis).
        p.set_depth(5, 2, 8);
        assert_eq!(p.level(), PressureLevel::High);
        p.set_depth(2, 2, 8);
        assert_eq!(p.level(), PressureLevel::Normal);
        p.set_depth(5, 2, 8);
        assert_eq!(p.level(), PressureLevel::Normal);
        assert_eq!(p.high_water(), 8);
    }

    #[test]
    fn builders_clamp() {
        let c = OverloadConfig::with_capacity(0);
        assert_eq!(c.queue_capacity, 1);
        let c = OverloadConfig::with_capacity(100).with_watermarks(90, 50);
        assert_eq!(c.high_watermark, 50);
        assert_eq!(c.low_watermark, 49);
        assert_eq!(OverloadConfig::default().with_receipt_span(0).receipt_max_span, 1);
    }
}
