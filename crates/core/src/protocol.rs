//! Wire-level message composition for ADLP.
//!
//! * `M_x` (forward): the middleware body `D` (header ‖ payload) with the
//!   publisher's signature `s_x` appended. The signature length is announced
//!   in the connection handshake, so no extra framing bytes are needed and
//!   the message size is exactly `|D| + |s_x|` (+4 frame preamble) — the
//!   arithmetic of Table III.
//! * `M_y` (reverse): `h(I_y) ‖ s_y`, a fixed `32 + |s_y|` bytes (160 for
//!   RSA-1024, §V-B step 4).

use adlp_crypto::sha256::{Digest, DIGEST_LEN};
use adlp_crypto::Signature;
use adlp_pubsub::PubSubError;

/// Handshake key under which an ADLP publisher announces its signature
/// length.
pub const SIG_LEN_FIELD: &str = "adlp_sig_len";

/// Appends `s_x` to a body, forming the forward message `M_x`.
pub fn attach_signature(mut body: Vec<u8>, sig: &Signature) -> Vec<u8> {
    body.extend_from_slice(sig.as_bytes());
    body
}

/// Reads the middleware header's sequence number (the first 8 body bytes,
/// little-endian); `None` for bodies too short to carry a header. The
/// panic-free parse every interceptor hot path uses.
pub fn header_seq(body: &[u8]) -> Option<u64> {
    let head: [u8; 8] = body.get(..8)?.try_into().ok()?;
    Some(u64::from_le_bytes(head))
}

/// Splits a received `M_x` into `(D, s_x)` given the announced signature
/// length.
///
/// # Errors
///
/// Returns [`PubSubError::Malformed`] if the frame is shorter than the
/// signature.
pub fn split_signature(mut frame: Vec<u8>, sig_len: usize) -> Result<(Vec<u8>, Signature), PubSubError> {
    if frame.len() < sig_len {
        return Err(PubSubError::Malformed("adlp message (shorter than signature)"));
    }
    let sig_bytes = frame.split_off(frame.len() - sig_len);
    Ok((frame, Signature::from_bytes(sig_bytes)))
}

/// Encodes the acknowledgement `M_y = h(I_y) ‖ s_y`.
pub fn encode_ack(hash: &Digest, sig: &Signature) -> Vec<u8> {
    let mut out = Vec::with_capacity(DIGEST_LEN + sig.len());
    out.extend_from_slice(hash.as_bytes());
    out.extend_from_slice(sig.as_bytes());
    out
}

/// Decodes an acknowledgement into `(h(I_y), s_y)`.
///
/// # Errors
///
/// Returns [`PubSubError::Malformed`] when the frame is not exactly
/// `32 + sig_len` bytes.
pub fn decode_ack(frame: &[u8], sig_len: usize) -> Result<(Digest, Signature), PubSubError> {
    if frame.len() != DIGEST_LEN + sig_len {
        return Err(PubSubError::Malformed("adlp ack (wrong length)"));
    }
    let (head, sig) = frame
        .split_at_checked(DIGEST_LEN)
        .ok_or(PubSubError::Malformed("adlp ack (wrong length)"))?;
    let digest =
        Digest::from_slice(head).ok_or(PubSubError::Malformed("adlp ack (digest)"))?;
    Ok((digest, Signature::from_bytes(sig.to_vec())))
}

#[cfg(test)]
mod tests {
    use super::*;
    use adlp_crypto::sha256;

    #[test]
    fn attach_split_roundtrip() {
        let body = vec![1u8, 2, 3, 4];
        let sig = Signature::from_bytes(vec![9u8; 128]);
        let m = attach_signature(body.clone(), &sig);
        assert_eq!(m.len(), 4 + 128);
        let (d, s) = split_signature(m, 128).unwrap();
        assert_eq!(d, body);
        assert_eq!(s, sig);
    }

    #[test]
    fn split_too_short_rejected() {
        assert!(split_signature(vec![0u8; 10], 128).is_err());
    }

    #[test]
    fn ack_roundtrip_and_fixed_size() {
        let h = sha256(b"image");
        let sig = Signature::from_bytes(vec![7u8; 128]);
        let ack = encode_ack(&h, &sig);
        // The paper's fixed 160-byte acknowledgement (32 + 128).
        assert_eq!(ack.len(), 160);
        let (h2, s2) = decode_ack(&ack, 128).unwrap();
        assert_eq!(h2, h);
        assert_eq!(s2, sig);
    }

    #[test]
    fn ack_wrong_length_rejected() {
        assert!(decode_ack(&[0u8; 159], 128).is_err());
        assert!(decode_ack(&[0u8; 161], 128).is_err());
        assert!(decode_ack(&[], 128).is_err());
    }

    #[test]
    fn empty_body_message_is_just_signature() {
        let sig = Signature::from_bytes(vec![1u8; 64]);
        let m = attach_signature(Vec::new(), &sig);
        let (d, s) = split_signature(m, 64).unwrap();
        assert!(d.is_empty());
        assert_eq!(s, sig);
    }
}
