//! The ADLP transport interceptor: signing, acknowledgement, gating and
//! log-event emission, beneath the application layer (paper Figure 12).

use crate::behavior::BehaviorProfile;
use crate::config::AdlpConfig;
use crate::events::LogEvent;
use crate::identity::ComponentIdentity;
use crate::logging::EventSink;
use crate::protocol::{
    attach_signature, decode_ack, encode_ack, header_seq, split_signature, SIG_LEN_FIELD,
};
use adlp_crypto::sha256::{binding_digest, sha256};
use adlp_crypto::{pkcs1, Signature};
use adlp_logger::{AckRecord, KeyRegistry};
use adlp_pubsub::{Clock, ConnectionInfo, LinkInterceptor, NodeId, RecvOutcome, Topic};
use adlp_witness::AckProbe;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Signing state for the current publication of one topic — hash and
/// signature are "computed just once for a single publication" (§V-B
/// step 2) no matter how many subscribers receive it.
struct CurrentPublication {
    seq: u64,
    stamp_ns: u64,
    body: Arc<Vec<u8>>,
    sig: Signature,
    /// Aggregated mode: acknowledgements collected for this publication.
    agg_acks: Vec<AckRecord>,
}

/// A publication awaiting a subscriber's acknowledgement.
struct PendingAck {
    seq: u64,
    stamp_ns: u64,
    body: Arc<Vec<u8>>,
    sig: Signature,
}

/// The ADLP interceptor; one per node, shared by all its connections.
pub struct AdlpInterceptor {
    identity: ComponentIdentity,
    config: AdlpConfig,
    behavior: Arc<BehaviorProfile>,
    clock: Arc<dyn Clock>,
    sink: EventSink,
    current: Mutex<HashMap<Topic, CurrentPublication>>,
    pending: Mutex<HashMap<(Topic, NodeId), PendingAck>>,
    /// Highest sequence number delivered per subscribed link (replay
    /// defense).
    last_seen: Mutex<HashMap<(Topic, NodeId), u64>>,
    /// Key registry for online acknowledgement verification (optional).
    keys: Option<KeyRegistry>,
    /// Light-client probe auditing the logger on every accepted
    /// acknowledgement (optional; DESIGN.md §3.12).
    light: Option<Arc<AckProbe>>,
    /// Count of messages dropped as replays.
    replays_dropped: AtomicU64,
    /// Count of acknowledgements ignored as invalid.
    invalid_acks: AtomicU64,
    /// Count of messages not signed/acknowledged because the signing
    /// operation itself failed (cannot happen for a well-formed key; kept
    /// so the degradation is observable rather than a panic).
    sign_failures: AtomicU64,
    /// Outgoing-message counter (drives the requirement-(4) violation
    /// model).
    sends_counter: AtomicU64,
}

impl fmt::Debug for AdlpInterceptor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("AdlpInterceptor")
            .field("id", self.identity.id())
            .field("config", &self.config)
            .finish_non_exhaustive()
    }
}

impl AdlpInterceptor {
    /// Creates the interceptor for a node.
    pub fn new(
        identity: ComponentIdentity,
        config: AdlpConfig,
        behavior: Arc<BehaviorProfile>,
        clock: Arc<dyn Clock>,
        sink: EventSink,
    ) -> Self {
        AdlpInterceptor {
            identity,
            config,
            behavior,
            clock,
            sink,
            current: Mutex::new(HashMap::new()),
            pending: Mutex::new(HashMap::new()),
            last_seen: Mutex::new(HashMap::new()),
            keys: None,
            light: None,
            replays_dropped: AtomicU64::new(0),
            invalid_acks: AtomicU64::new(0),
            sign_failures: AtomicU64::new(0),
            sends_counter: AtomicU64::new(0),
        }
    }

    /// Supplies the key registry used for online acknowledgement
    /// verification when [`AdlpConfig::verify_acks`] is set.
    pub fn with_keys(mut self, keys: KeyRegistry) -> Self {
        self.keys = Some(keys);
        self
    }

    /// Attaches a light-client probe: every accepted acknowledgement then
    /// also pulls the logger's latest signed tree head, verifies it
    /// (signature + consistency with the previously trusted head), and
    /// demands an inclusion proof for the newest record — retiring the
    /// trusted post-hoc auditor on the hot path. Failures are counted in
    /// [`AdlpInterceptor::sth_verify_failures`], never panicked over.
    pub fn with_light_client(mut self, probe: Arc<AckProbe>) -> Self {
        self.light = Some(probe);
        self
    }

    /// Signed-tree-head verifications (signature, consistency, split view,
    /// inclusion) that failed on the ack path so far; 0 when no light
    /// client is attached.
    pub fn sth_verify_failures(&self) -> u64 {
        self.light
            .as_ref()
            .map_or(0, |probe| probe.client().sth_verify_failures())
    }

    /// Messages dropped by the replay defense so far.
    pub fn replays_dropped(&self) -> u64 {
        self.replays_dropped.load(Ordering::Relaxed)
    }

    /// Acknowledgements ignored as cryptographically invalid so far.
    pub fn invalid_acks(&self) -> u64 {
        self.invalid_acks.load(Ordering::Relaxed)
    }

    /// Messages left unsigned/unacknowledged because signing failed.
    pub fn sign_failures(&self) -> u64 {
        self.sign_failures.load(Ordering::Relaxed)
    }

    /// Signature length of the counterpart on a connection, from its
    /// handshake fields (falling back to our own — homogeneous deployments).
    fn peer_sig_len(&self, conn: &ConnectionInfo) -> usize {
        conn.peer_fields
            .get(SIG_LEN_FIELD)
            .and_then(|v| v.parse().ok())
            .unwrap_or_else(|| self.identity.signature_len())
    }

    /// Emits publisher log events for publications that never got
    /// acknowledged, and flushes any aggregated entry in progress. Called at
    /// node flush/shutdown.
    pub fn flush_pending(&self) {
        let pending: Vec<((Topic, NodeId), PendingAck)> =
            self.pending.lock().drain().collect();
        for ((topic, subscriber), p) in pending {
            self.sink.submit(LogEvent::UnackedPublication {
                topic,
                seq: p.seq,
                stamp_ns: p.stamp_ns,
                body: p.body,
                own_sig: p.sig,
                subscriber,
            });
        }
        if self.config.aggregated_publisher_log {
            let current: Vec<(Topic, CurrentPublication)> =
                self.current.lock().drain().collect();
            for (topic, cur) in current {
                self.sink.submit(LogEvent::AggregatedPublication {
                    topic,
                    seq: cur.seq,
                    stamp_ns: cur.stamp_ns,
                    body: cur.body,
                    own_sig: cur.sig,
                    acks: cur.agg_acks,
                });
            }
        }
    }

    /// Number of connections currently gated on an acknowledgement.
    pub fn pending_count(&self) -> usize {
        self.pending.lock().len()
    }
}

impl LinkInterceptor for AdlpInterceptor {
    fn handshake_fields(&self, _topic: &Topic, _publishing: bool) -> Vec<(String, String)> {
        vec![(
            SIG_LEN_FIELD.to_owned(),
            self.identity.signature_len().to_string(),
        )]
    }

    fn may_send(&self, conn: &ConnectionInfo) -> bool {
        if !self.config.gate_on_ack {
            return true;
        }
        !self
            .pending
            .lock()
            .contains_key(&(conn.topic.clone(), conn.subscriber.clone()))
    }

    fn on_send(&self, conn: &ConnectionInfo, body: Vec<u8>) -> Vec<u8> {
        // A body without a middleware header cannot be attributed to a
        // publication; forward it untouched rather than panicking.
        let Some(seq) = header_seq(&body) else {
            return body;
        };
        let stamp_ns = self.clock.now_ns();

        let mut current = self.current.lock();
        let needs_new = current
            .get(&conn.topic)
            .is_none_or(|c| c.seq != seq);
        if needs_new {
            // New publication: hash + sign once. The signature covers the
            // binding digest h(seq ‖ h(D)) so auditors can recompute it
            // from logged fields (freshness, §IV-A).
            let digest = binding_digest(conn.topic.as_str(), seq, &sha256(&body));
            let sig = match self.identity.sign_digest(&digest) {
                Ok(sig) => sig,
                Err(_) => {
                    // Cannot happen for a well-formed key; degrade to an
                    // unsigned (hence unloggable, subscriber-rejected) send
                    // instead of tearing down the publisher.
                    self.sign_failures.fetch_add(1, Ordering::Relaxed);
                    return body;
                }
            };
            // Aggregated mode: the previous publication's entry is emitted
            // when a new one starts (all acks that will come have come).
            if self.config.aggregated_publisher_log {
                if let Some(prev) = current.remove(&conn.topic) {
                    self.sink.submit(LogEvent::AggregatedPublication {
                        topic: conn.topic.clone(),
                        seq: prev.seq,
                        stamp_ns: prev.stamp_ns,
                        body: prev.body,
                        own_sig: prev.sig,
                        acks: prev.agg_acks,
                    });
                }
            }
            current.insert(
                conn.topic.clone(),
                CurrentPublication {
                    seq,
                    stamp_ns,
                    body: Arc::new(body.clone()),
                    sig,
                    agg_acks: Vec::new(),
                },
            );
        }
        let Some(cur) = current.get(&conn.topic) else {
            // Unreachable: inserted above when absent. Forward unsigned
            // rather than panicking if the invariant ever breaks.
            return body;
        };
        let sig = cur.sig.clone();

        // Remember M_x for this subscriber until the acknowledgement
        // arrives (§V-B step 2: "stored at the logging thread for a future
        // use in step 6").
        self.pending.lock().insert(
            (conn.topic.clone(), conn.subscriber.clone()),
            PendingAck {
                seq,
                stamp_ns: cur.stamp_ns,
                body: Arc::clone(&cur.body),
                sig: sig.clone(),
            },
        );
        drop(current);

        let mut frame = attach_signature(body, &sig);
        // Requirement-(4) violation model (Figure 8): corrupt the signature
        // of every n-th publication.
        if let Some(n) = self.behavior.corrupt_signature_every {
            let count = self.sends_counter.fetch_add(1, Ordering::Relaxed) + 1;
            if count.is_multiple_of(n) {
                if let Some(last) = frame.last_mut() {
                    *last ^= 0xff;
                }
            }
        }
        frame
    }

    fn on_recv(&self, conn: &ConnectionInfo, frame: Vec<u8>) -> RecvOutcome {
        let sig_len = self.peer_sig_len(conn);
        let Ok((body, peer_sig)) = split_signature(frame, sig_len) else {
            return RecvOutcome::drop_message();
        };
        let Some(seq) = header_seq(&body) else {
            return RecvOutcome::drop_message();
        };
        let stamp_ns = self.clock.now_ns();

        // Replay defense: per link, only strictly increasing sequence
        // numbers are delivered or acknowledged.
        if self.config.drop_replayed {
            let key = (conn.topic.clone(), conn.publisher.clone());
            let mut last = self.last_seen.lock();
            match last.get(&key) {
                Some(&prev) if seq <= prev => {
                    self.replays_dropped.fetch_add(1, Ordering::Relaxed);
                    return RecvOutcome::drop_message();
                }
                _ => {
                    last.insert(key, seq);
                }
            }
        }

        // §V-B step 4: hash, sign, acknowledge. The ack carries h(I_y);
        // the signature covers the binding digest h(seq ‖ h(I_y)).
        let payload_digest = sha256(&body);
        let binding = binding_digest(conn.topic.as_str(), seq, &payload_digest);
        let own_sig = match self.identity.sign_digest(&binding) {
            Ok(sig) => sig,
            Err(_) => {
                // Cannot happen for a well-formed key; without a signature
                // there is no log entry and no ack, so drop (an unlogged
                // delivery would violate the accountability invariant).
                self.sign_failures.fetch_add(1, Ordering::Relaxed);
                return RecvOutcome::drop_message();
            }
        };
        let reply = if self.behavior.withholds_ack(&conn.topic) {
            None
        } else {
            Some(encode_ack(&payload_digest, &own_sig))
        };

        // §V-B step 5: the subscriber's log entry.
        self.sink.submit(LogEvent::Receipt {
            topic: conn.topic.clone(),
            seq,
            stamp_ns,
            publisher: conn.publisher.clone(),
            body: body.clone(),
            body_digest: payload_digest,
            peer_sig,
            own_sig,
        });

        RecvOutcome {
            deliver: Some(body),
            reply,
        }
    }

    fn on_return(&self, conn: &ConnectionInfo, frame: Vec<u8>) {
        let sig_len = self.peer_sig_len(conn);
        let Ok((peer_hash, peer_sig)) = decode_ack(&frame, sig_len) else {
            return; // malformed ack: keep the connection gated
        };
        // Optional online verification of s_y (requirement (4) enforced at
        // receipt time): an invalid acknowledgement is ignored, so the
        // connection stays gated — the protocol's penalty applies.
        if self.config.verify_acks {
            if let Some(keys) = &self.keys {
                let pending_seq = self
                    .pending
                    .lock()
                    .get(&(conn.topic.clone(), conn.subscriber.clone()))
                    .map(|p| p.seq);
                let valid = match (keys.get(&conn.subscriber), pending_seq) {
                    (Some(k), Some(seq)) => {
                        pkcs1::verify_digest(
                            &k,
                            &binding_digest(conn.topic.as_str(), seq, &peer_hash),
                            &peer_sig,
                        )
                    }
                    _ => false,
                };
                if !valid {
                    self.invalid_acks.fetch_add(1, Ordering::Relaxed);
                    return;
                }
            }
        }
        let key = (conn.topic.clone(), conn.subscriber.clone());
        let Some(p) = self.pending.lock().remove(&key) else {
            return; // unsolicited ack
        };

        // Light-client audit (§3.12): an accepted acknowledgement implies
        // the logger has (claimed to have) logged the exchange, so demand
        // its latest signed tree head and an inclusion proof now, while the
        // counterpart is still live. A failed audit never blocks the data
        // path — it increments `sth_verify_failures` and, on a split view,
        // retains the transferable conviction as evidence.
        if let Some(probe) = &self.light {
            let _ = probe.audit_ack();
        }

        if self.config.aggregated_publisher_log {
            let mut current = self.current.lock();
            if let Some(cur) = current.get_mut(&conn.topic) {
                if cur.seq == p.seq {
                    cur.agg_acks.push(AckRecord {
                        subscriber: conn.subscriber.clone(),
                        hash: peer_hash,
                        sig: peer_sig,
                    });
                    return;
                }
            }
        }

        // §V-B step 6: the publisher's log entry, one per acknowledgement.
        self.sink.submit(LogEvent::AckedPublication {
            topic: conn.topic.clone(),
            seq: p.seq,
            stamp_ns: p.stamp_ns,
            body: p.body,
            own_sig: p.sig,
            subscriber: conn.subscriber.clone(),
            peer_hash,
            peer_sig,
        });
    }

    fn on_disconnect(&self, conn: &ConnectionInfo) {
        // The link died (peer vanished, or resilience retries were
        // exhausted): the publication still awaiting its ack becomes
        // unacked-publication evidence immediately, instead of lingering
        // until node shutdown. The auditor classifies it exactly like a
        // withheld ack — a dead subscriber and a mute one are
        // indistinguishable, and both leave the publisher provably honest.
        let key = (conn.topic.clone(), conn.subscriber.clone());
        let removed = self.pending.lock().remove(&key);
        if let Some(p) = removed {
            self.sink.submit(LogEvent::UnackedPublication {
                topic: key.0,
                seq: p.seq,
                stamp_ns: p.stamp_ns,
                body: p.body,
                own_sig: p.sig,
                subscriber: key.1,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::logging::{LoggingContext, LoggingThread};
    use adlp_logger::LogServer;
    use adlp_pubsub::wire::Handshake;
    use adlp_pubsub::SystemClock;
    use rand::SeedableRng;

    struct Fixture {
        interceptor: AdlpInterceptor,
        sub_identity: ComponentIdentity,
        _logging: LoggingThread,
        _server: LogServer,
    }

    /// Builds a subscriber-side interceptor for node "det" receiving from
    /// "cam", plus the keys of both parties.
    fn fixture(config: AdlpConfig) -> Fixture {
        let mut rng = rand::rngs::StdRng::seed_from_u64(77);
        let server = LogServer::spawn();
        let det = ComponentIdentity::generate("det", 512, &mut rng);
        let cam = ComponentIdentity::generate("cam", 512, &mut rng);
        server
            .handle()
            .register_key(det.id(), det.public_key().clone())
            .unwrap();
        server
            .handle()
            .register_key(cam.id(), cam.public_key().clone())
            .unwrap();
        let logging = LoggingThread::spawn(LoggingContext {
            node_id: det.id().clone(),
            identity: Some(det.clone()),
            behavior: BehaviorProfile::faithful(),
            subscriber_stores_hash: true,
            logger: crate::target::DepositTarget::Single(server.handle()),
            ack_after_durable: false,
            overload: crate::overload::OverloadConfig::default(),
            clock: Arc::new(SystemClock),
        })
        .unwrap();
        let interceptor = AdlpInterceptor::new(
            det.clone(),
            config,
            Arc::new(BehaviorProfile::faithful()),
            Arc::new(SystemClock),
            logging.sink(),
        )
        .with_keys(server.handle().keys().clone());
        Fixture {
            interceptor,
            sub_identity: cam,
            _logging: logging,
            _server: server,
        }
    }

    fn conn_as_subscriber() -> ConnectionInfo {
        ConnectionInfo {
            topic: Topic::new("image"),
            publisher: NodeId::new("cam"),
            subscriber: NodeId::new("det"),
            peer_fields: Handshake::new().with("adlp_sig_len", "64"),
        }
    }

    /// Builds an M_x frame (body ‖ s_x) signed by `signer` for `seq`.
    fn frame(signer: &ComponentIdentity, seq: u64, payload: &[u8]) -> Vec<u8> {
        let mut body = Vec::new();
        body.extend_from_slice(&seq.to_le_bytes());
        body.extend_from_slice(&42u64.to_le_bytes());
        body.extend_from_slice(payload);
        let sig = signer
            .sign_digest(&binding_digest("image", seq, &sha256(&body)))
            .unwrap();
        crate::protocol::attach_signature(body, &sig)
    }

    #[test]
    fn replayed_frames_are_dropped() {
        let f = fixture(AdlpConfig::default());
        let conn = conn_as_subscriber();
        let m = frame(&f.sub_identity, 5, b"data");
        let first = f.interceptor.on_recv(&conn, m.clone());
        assert!(first.deliver.is_some());
        assert!(first.reply.is_some());
        // Exact replay: dropped, not delivered, not acknowledged.
        let second = f.interceptor.on_recv(&conn, m.clone());
        assert!(second.deliver.is_none());
        assert!(second.reply.is_none());
        // Stale (lower) seq: also dropped.
        let old = frame(&f.sub_identity, 4, b"older");
        let third = f.interceptor.on_recv(&conn, old);
        assert!(third.deliver.is_none());
        assert_eq!(f.interceptor.replays_dropped(), 2);
        // Fresh seq flows again.
        let fresh = frame(&f.sub_identity, 6, b"next");
        assert!(f.interceptor.on_recv(&conn, fresh).deliver.is_some());
    }

    #[test]
    fn replay_defense_can_be_disabled() {
        let f = fixture(AdlpConfig::new().allowing_replays());
        let conn = conn_as_subscriber();
        let m = frame(&f.sub_identity, 5, b"data");
        assert!(f.interceptor.on_recv(&conn, m.clone()).deliver.is_some());
        assert!(f.interceptor.on_recv(&conn, m).deliver.is_some());
        assert_eq!(f.interceptor.replays_dropped(), 0);
    }

    #[test]
    fn invalid_ack_keeps_connection_gated_under_verification() {
        // Here the fixture's interceptor acts as PUBLISHER on topic "plan"
        // to subscriber "cam" (identities reused for brevity).
        let f = fixture(AdlpConfig::new().verifying_acks());
        let conn = ConnectionInfo {
            topic: Topic::new("plan"),
            publisher: NodeId::new("det"),
            subscriber: NodeId::new("cam"),
            peer_fields: Handshake::new().with("adlp_sig_len", "64"),
        };
        // Send: installs the pending-ack gate.
        let mut body = Vec::new();
        body.extend_from_slice(&1u64.to_le_bytes());
        body.extend_from_slice(&9u64.to_le_bytes());
        body.extend_from_slice(b"payload");
        let _ = f.interceptor.on_send(&conn, body.clone());
        assert_eq!(f.interceptor.pending_count(), 1);

        // A garbage acknowledgement is ignored: still gated.
        let digest = sha256(&body);
        let bad = crate::protocol::encode_ack(&digest, &Signature::from_bytes(vec![0u8; 64]));
        f.interceptor.on_return(&conn, bad);
        assert_eq!(f.interceptor.pending_count(), 1);
        assert_eq!(f.interceptor.invalid_acks(), 1);

        // A genuine acknowledgement from "cam" releases the gate.
        let sig = f
            .sub_identity
            .sign_digest(&binding_digest("plan", 1, &digest))
            .unwrap();
        let good = crate::protocol::encode_ack(&digest, &sig);
        f.interceptor.on_return(&conn, good);
        assert_eq!(f.interceptor.pending_count(), 0);
    }

    #[test]
    fn light_client_audits_on_ack_and_counts_failures() {
        use adlp_logger::sth::{SthPublisher, TreeHeadSigner};
        use adlp_logger::LogStore;
        use adlp_witness::{AckProbe, LightClient, SthKeyring};

        let mut rng = rand::rngs::StdRng::seed_from_u64(78);
        let sth_kp = adlp_crypto::RsaKeyPair::generate(512, &mut rng);
        let other_kp = adlp_crypto::RsaKeyPair::generate(512, &mut rng);
        let store = LogStore::new();
        store.append_encoded(vec![1; 16]);
        let publisher = Arc::new(SthPublisher::new(
            TreeHeadSigner::new(
                NodeId::new("logger"),
                adlp_crypto::rsa::RsaPrivateKey::from_bytes(&sth_kp.private_key().to_bytes())
                    .unwrap(),
            ),
            store.clone(),
        ));

        let run = |trusted_key: &adlp_crypto::RsaPublicKey| {
            let client = Arc::new(LightClient::new(
                SthKeyring::new().with_log(NodeId::new("logger"), trusted_key.clone()),
            ));
            let f = fixture(AdlpConfig::default());
            let interceptor = f
                .interceptor
                .with_light_client(Arc::new(AckProbe::new(Arc::clone(&client), publisher.clone())));
            let conn = ConnectionInfo {
                topic: Topic::new("plan"),
                publisher: NodeId::new("det"),
                subscriber: NodeId::new("cam"),
                peer_fields: Handshake::new().with("adlp_sig_len", "64"),
            };
            let mut body = Vec::new();
            body.extend_from_slice(&1u64.to_le_bytes());
            body.extend_from_slice(&9u64.to_le_bytes());
            let _ = interceptor.on_send(&conn, body.clone());
            let digest = sha256(&body);
            let sig = f
                .sub_identity
                .sign_digest(&binding_digest("plan", 1, &digest))
                .unwrap();
            interceptor.on_return(&conn, crate::protocol::encode_ack(&digest, &sig));
            assert_eq!(interceptor.pending_count(), 0, "audit never blocks the path");
            (interceptor.sth_verify_failures(), client.verified_acks())
        };

        // Trusting the logger's real key: the ack-path audit passes.
        assert_eq!(run(sth_kp.public_key()), (0, 1));
        // Trusting a different key: the head is rejected and counted.
        assert_eq!(run(other_kp.public_key()), (1, 0));
    }

    #[test]
    fn without_verification_any_wellformed_ack_releases_gate() {
        let f = fixture(AdlpConfig::default());
        let conn = ConnectionInfo {
            topic: Topic::new("plan"),
            publisher: NodeId::new("det"),
            subscriber: NodeId::new("cam"),
            peer_fields: Handshake::new().with("adlp_sig_len", "64"),
        };
        let mut body = Vec::new();
        body.extend_from_slice(&1u64.to_le_bytes());
        body.extend_from_slice(&9u64.to_le_bytes());
        let _ = f.interceptor.on_send(&conn, body.clone());
        let bad = crate::protocol::encode_ack(
            &sha256(&body),
            &Signature::from_bytes(vec![0u8; 64]),
        );
        f.interceptor.on_return(&conn, bad);
        // Paper default: verification is the auditor's job; the gate opens.
        assert_eq!(f.interceptor.pending_count(), 0);
    }
}
