//! Transport-layer interceptors implementing the logging schemes.

mod adlp;
mod base;

pub use adlp::AdlpInterceptor;
pub use base::BaseInterceptor;
