//! The naive-scheme interceptor (Definition 2): log entries with raw data,
//! no cryptography, no acknowledgements.

use crate::events::LogEvent;
use crate::logging::EventSink;
use crate::protocol::header_seq;
use adlp_pubsub::{Clock, ConnectionInfo, LinkInterceptor, RecvOutcome, Topic};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

/// Interceptor for the base logging scheme.
pub struct BaseInterceptor {
    clock: Arc<dyn Clock>,
    sink: EventSink,
    /// Last sequence number logged per published topic — the publisher
    /// writes one entry per *publication*, not per subscriber connection.
    last_logged: Mutex<HashMap<Topic, u64>>,
}

impl fmt::Debug for BaseInterceptor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("BaseInterceptor").finish_non_exhaustive()
    }
}

impl BaseInterceptor {
    /// Creates the interceptor.
    pub fn new(clock: Arc<dyn Clock>, sink: EventSink) -> Self {
        BaseInterceptor {
            clock,
            sink,
            last_logged: Mutex::new(HashMap::new()),
        }
    }
}

impl LinkInterceptor for BaseInterceptor {
    fn on_send(&self, conn: &ConnectionInfo, body: Vec<u8>) -> Vec<u8> {
        // A body without a header cannot be attributed to a publication;
        // forward it untouched rather than panicking mid-protocol.
        let Some(seq) = header_seq(&body) else {
            return body;
        };
        let mut last = self.last_logged.lock();
        if last.get(&conn.topic) != Some(&seq) {
            last.insert(conn.topic.clone(), seq);
            self.sink.submit(LogEvent::BasePublication {
                topic: conn.topic.clone(),
                seq,
                stamp_ns: self.clock.now_ns(),
                body: Arc::new(body.clone()),
            });
        }
        body
    }

    fn on_recv(&self, conn: &ConnectionInfo, body: Vec<u8>) -> RecvOutcome {
        let Some(seq) = header_seq(&body) else {
            return RecvOutcome::drop_message();
        };
        self.sink.submit(LogEvent::BaseReceipt {
            topic: conn.topic.clone(),
            seq,
            stamp_ns: self.clock.now_ns(),
            publisher: conn.publisher.clone(),
            body: body.clone(),
        });
        RecvOutcome::deliver(body)
    }
}
