//! Durable component identities.
//!
//! The paper assumes each component can generate a key pair and that "a
//! standard security mechanism is in place to protect the private key"
//! (§II-A). [`IdentityStore`] is the file-based form: identities persist
//! across restarts (a component that reboots must keep its identity, or
//! the key registry's first-write-wins rule will lock it out), stored with
//! owner-only permissions on Unix.

use crate::identity::ComponentIdentity;
use crate::AdlpError;
use adlp_crypto::rsa::RsaPrivateKey;
use adlp_crypto::CryptoError;
use adlp_pubsub::NodeId;
use rand::RngCore;
use std::path::{Path, PathBuf};

/// A directory of persisted component identities (one file per component).
#[derive(Debug, Clone)]
pub struct IdentityStore {
    dir: PathBuf,
}

impl IdentityStore {
    /// Opens (creating if needed) an identity directory.
    ///
    /// # Errors
    ///
    /// Returns [`AdlpError::Crypto`] wrapping a malformed-input error when
    /// the directory cannot be created.
    pub fn open(dir: impl Into<PathBuf>) -> Result<Self, AdlpError> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)
            .map_err(|_| AdlpError::Crypto(CryptoError::Malformed("identity directory")))?;
        Ok(IdentityStore { dir })
    }

    fn path_for(&self, id: &NodeId) -> PathBuf {
        // Node ids may contain path-hostile characters; encode as hex.
        self.dir
            .join(format!("{}.key", adlp_crypto::hex::encode(id.as_str().as_bytes())))
    }

    /// Loads the identity for `id`, or generates (and persists) a fresh one.
    ///
    /// # Errors
    ///
    /// Returns [`AdlpError::Crypto`] for unreadable or corrupt key files.
    pub fn load_or_generate<R: RngCore + ?Sized>(
        &self,
        id: &NodeId,
        key_bits: usize,
        rng: &mut R,
    ) -> Result<ComponentIdentity, AdlpError> {
        if let Some(existing) = self.load(id)? {
            return Ok(existing);
        }
        let identity = ComponentIdentity::generate(id.clone(), key_bits, rng);
        self.save(&identity)?;
        Ok(identity)
    }

    /// Loads an identity if its key file exists.
    ///
    /// # Errors
    ///
    /// Returns [`AdlpError::Crypto`] for corrupt key files (missing files
    /// are `Ok(None)`).
    pub fn load(&self, id: &NodeId) -> Result<Option<ComponentIdentity>, AdlpError> {
        let path = self.path_for(id);
        let bytes = match std::fs::read(&path) {
            Ok(b) => b,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
            Err(_) => return Err(AdlpError::Crypto(CryptoError::Malformed("key file"))),
        };
        let key = RsaPrivateKey::from_bytes(&bytes)?;
        Ok(Some(ComponentIdentity::from_parts(id.clone(), key)))
    }

    /// Persists an identity (owner-only permissions on Unix).
    ///
    /// # Errors
    ///
    /// Returns [`AdlpError::Crypto`] on write failure.
    pub fn save(&self, identity: &ComponentIdentity) -> Result<(), AdlpError> {
        let path = self.path_for(identity.id());
        let bytes = identity.private_key().to_bytes();
        write_private(&path, &bytes)
            .map_err(|_| AdlpError::Crypto(CryptoError::Malformed("key file (write)")))
    }

    /// Deletes a stored identity; `false` if none existed.
    pub fn remove(&self, id: &NodeId) -> bool {
        std::fs::remove_file(self.path_for(id)).is_ok()
    }
}

#[cfg(unix)]
fn write_private(path: &Path, bytes: &[u8]) -> std::io::Result<()> {
    use std::io::Write;
    use std::os::unix::fs::OpenOptionsExt;
    let mut f = std::fs::OpenOptions::new()
        .write(true)
        .create(true)
        .truncate(true)
        .mode(0o600)
        .open(path)?;
    f.write_all(bytes)
}

#[cfg(not(unix))]
fn write_private(path: &Path, bytes: &[u8]) -> std::io::Result<()> {
    std::fs::write(path, bytes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use adlp_crypto::sha256;
    use rand::SeedableRng;

    fn tmpdir() -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "adlp-keys-{}-{}",
            std::process::id(),
            std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .unwrap()
                .as_nanos()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn identity_survives_restart() {
        let store = IdentityStore::open(tmpdir()).unwrap();
        let id = NodeId::new("camera");
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let first = store.load_or_generate(&id, 512, &mut rng).unwrap();
        // "Restart": load again; the same key comes back.
        let second = store.load_or_generate(&id, 512, &mut rng).unwrap();
        assert_eq!(first.public_key(), second.public_key());
        // And it still signs identically.
        let d = sha256(b"frame");
        assert_eq!(
            first.sign_digest(&d).unwrap(),
            second.sign_digest(&d).unwrap()
        );
    }

    #[test]
    fn distinct_components_distinct_keys() {
        let store = IdentityStore::open(tmpdir()).unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let a = store
            .load_or_generate(&NodeId::new("a"), 512, &mut rng)
            .unwrap();
        let b = store
            .load_or_generate(&NodeId::new("b"), 512, &mut rng)
            .unwrap();
        assert_ne!(a.public_key(), b.public_key());
    }

    #[test]
    fn remove_forces_regeneration() {
        let store = IdentityStore::open(tmpdir()).unwrap();
        let id = NodeId::new("c");
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let first = store.load_or_generate(&id, 512, &mut rng).unwrap();
        assert!(store.remove(&id));
        assert!(!store.remove(&id));
        let second = store.load_or_generate(&id, 512, &mut rng).unwrap();
        assert_ne!(first.public_key(), second.public_key());
    }

    #[test]
    fn corrupt_key_file_rejected() {
        let dir = tmpdir();
        let store = IdentityStore::open(&dir).unwrap();
        let id = NodeId::new("d");
        let path = store.path_for(&id);
        std::fs::write(&path, b"garbage").unwrap();
        assert!(store.load(&id).is_err());
    }

    #[test]
    fn hostile_node_ids_are_safe_filenames() {
        let store = IdentityStore::open(tmpdir()).unwrap();
        let id = NodeId::new("../../../etc/passwd");
        let mut rng = rand::rngs::StdRng::seed_from_u64(4);
        let ident = store.load_or_generate(&id, 512, &mut rng).unwrap();
        assert_eq!(ident.id(), &id);
        // The file landed inside the store directory.
        assert!(store.path_for(&id).parent().unwrap().ends_with(
            store.dir.file_name().unwrap()
        ));
    }

    #[cfg(unix)]
    #[test]
    fn key_files_are_owner_only() {
        use std::os::unix::fs::PermissionsExt;
        let store = IdentityStore::open(tmpdir()).unwrap();
        let id = NodeId::new("perm");
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        store.load_or_generate(&id, 512, &mut rng).unwrap();
        let mode = std::fs::metadata(store.path_for(&id))
            .unwrap()
            .permissions()
            .mode();
        assert_eq!(mode & 0o777, 0o600);
    }
}
