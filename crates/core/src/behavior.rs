//! Unfaithful-component behavior models (§III-B of the paper).
//!
//! A [`BehaviorProfile`] describes how a component treats its *logging*
//! duties. The transport always behaves correctly — exchanged signatures are
//! valid with respect to the transmitted data (the paper's requirement (4),
//! enforced by making signing transparent at the transport layer) — but a
//! component is free to lie to the *logger*: hide entries, falsify payloads,
//! impersonate others, skew timestamps, or (with a colluder's private key)
//! forge the counterpart's signature so the lie looks internally consistent.

use adlp_crypto::rsa::RsaPrivateKey;
use adlp_pubsub::{NodeId, Topic};
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

/// The role a component plays on a link (a directed topic edge).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LinkRole {
    /// Producing the topic.
    Publisher,
    /// Consuming the topic.
    Subscriber,
}

/// How a component logs its activity on one link.
#[derive(Clone, Default)]
pub enum LogBehavior {
    /// Reports exactly what happened.
    #[default]
    Faithful,
    /// Enters no log entry at all (the paper's *hiding*).
    Hide,
    /// Logs a payload different from the real one, re-signed with its own
    /// key so the entry passes the authenticity check (3). Against a
    /// faithful counterpart this is detectable (*falsification*, Lemma 3).
    Falsify,
    /// Falsifies the payload **and** forges the counterpart's signature
    /// over the false payload using the counterpart's private key — only
    /// possible under collusion. Produces an internally consistent lie
    /// (`L_{V,c}` in the paper's classification).
    FalsifyWithPeerKey(Arc<RsaPrivateKey>),
    /// Logs the entry as if it were written by another component
    /// (*impersonation*). The forged entry fails authenticity under the
    /// victim's public key.
    ImpersonateAs(NodeId),
}

impl fmt::Debug for LogBehavior {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LogBehavior::Faithful => write!(f, "Faithful"),
            LogBehavior::Hide => write!(f, "Hide"),
            LogBehavior::Falsify => write!(f, "Falsify"),
            LogBehavior::FalsifyWithPeerKey(_) => write!(f, "FalsifyWithPeerKey(<key>)"),
            LogBehavior::ImpersonateAs(id) => write!(f, "ImpersonateAs({id})"),
        }
    }
}

impl LogBehavior {
    /// Whether this behavior is [`LogBehavior::Faithful`].
    pub fn is_faithful(&self) -> bool {
        matches!(self, LogBehavior::Faithful)
    }
}

/// A component's complete (mis)behavior specification.
///
/// # Example
///
/// ```
/// use adlp_core::{BehaviorProfile, LinkRole, LogBehavior};
/// use adlp_pubsub::Topic;
///
/// // A sign recognizer that hides every record of the images it consumed.
/// let profile = BehaviorProfile::faithful()
///     .with_link(LinkRole::Subscriber, Topic::new("image"), LogBehavior::Hide);
/// assert!(!profile.is_faithful());
/// ```
#[derive(Debug, Clone, Default)]
pub struct BehaviorProfile {
    links: HashMap<(LinkRole, Topic), LogBehavior>,
    /// Topics on which this component, as a subscriber, refuses to send the
    /// acknowledgement `M_y` (fully non-cooperative; the publisher's ack
    /// gating then withholds further data — the protocol's penalty).
    withhold_acks: std::collections::HashSet<Topic>,
    /// Signed offset applied to every log-entry timestamp (*timing
    /// disruption*, §IV-B2). Zero for faithful components.
    pub timestamp_skew_ns: i64,
    /// Violates the paper's requirement (4): every `n`-th outgoing message
    /// carries a corrupted signature (Figure 8's invalid `(O_x, s_r)`
    /// pair). `None` for compliant transports. Exists to demonstrate *why*
    /// the protocol must enforce signature validity at the transport layer:
    /// without (4), an invalid pair is misattributed to the receiver.
    pub corrupt_signature_every: Option<u64>,
}

impl BehaviorProfile {
    /// A fully faithful profile.
    pub fn faithful() -> Self {
        Self::default()
    }

    /// Overrides the behavior on one link, returning `self` for chaining.
    pub fn with_link(mut self, role: LinkRole, topic: Topic, behavior: LogBehavior) -> Self {
        self.links.insert((role, topic), behavior);
        self
    }

    /// Sets a timestamp skew.
    pub fn with_timestamp_skew_ns(mut self, skew: i64) -> Self {
        self.timestamp_skew_ns = skew;
        self
    }

    /// Violates requirement (4) on every `n`-th publication.
    pub fn corrupting_signatures_every(mut self, n: u64) -> Self {
        self.corrupt_signature_every = Some(n.max(1));
        self
    }

    /// Marks a subscribed topic as never acknowledged.
    pub fn withholding_acks(mut self, topic: Topic) -> Self {
        self.withhold_acks.insert(topic);
        self
    }

    /// Whether acknowledgements are withheld on `topic`.
    pub fn withholds_ack(&self, topic: &Topic) -> bool {
        self.withhold_acks.contains(topic)
    }

    /// The behavior on a link (faithful unless overridden).
    pub fn link(&self, role: LinkRole, topic: &Topic) -> &LogBehavior {
        self.links
            .get(&(role, topic.clone()))
            .unwrap_or(&LogBehavior::Faithful)
    }

    /// Whether the whole profile is faithful (no overrides, no skew, no
    /// withheld acknowledgements).
    pub fn is_faithful(&self) -> bool {
        self.timestamp_skew_ns == 0
            && self.withhold_acks.is_empty()
            && self.corrupt_signature_every.is_none()
            && self.links.values().all(LogBehavior::is_faithful)
    }

    /// Applies the timestamp skew to an honest timestamp.
    pub fn skewed_timestamp(&self, honest_ns: u64) -> u64 {
        honest_ns.saturating_add_signed(self.timestamp_skew_ns)
    }
}

/// Deterministically falsifies a body: flips every payload byte past the
/// 16-byte header, keeping length (so falsified data remains plausible) and
/// the header (seq must stay consistent for the lie to target the right
/// transmission).
pub fn falsify_body(body: &[u8]) -> Vec<u8> {
    let mut out = body.to_vec();
    for b in out.iter_mut().skip(adlp_pubsub::HEADER_LEN) {
        *b = !*b;
    }
    // Degenerate case: header-only body; flip the timestamp half so the
    // falsified claim still differs.
    if body.len() <= adlp_pubsub::HEADER_LEN {
        for b in out.iter_mut().skip(8) {
            *b = !*b;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_faithful() {
        let p = BehaviorProfile::faithful();
        assert!(p.is_faithful());
        assert!(p
            .link(LinkRole::Publisher, &Topic::new("x"))
            .is_faithful());
        assert_eq!(p.skewed_timestamp(100), 100);
    }

    #[test]
    fn link_overrides_are_scoped() {
        let p = BehaviorProfile::faithful().with_link(
            LinkRole::Subscriber,
            Topic::new("image"),
            LogBehavior::Hide,
        );
        assert!(matches!(
            p.link(LinkRole::Subscriber, &Topic::new("image")),
            LogBehavior::Hide
        ));
        // Same topic, other role: still faithful (the paper's example of B
        // forging logs for D_{C→B} while correctly logging D_{B→A}).
        assert!(p.link(LinkRole::Publisher, &Topic::new("image")).is_faithful());
        assert!(p.link(LinkRole::Subscriber, &Topic::new("scan")).is_faithful());
        assert!(!p.is_faithful());
    }

    #[test]
    fn skew_applies_and_saturates() {
        let p = BehaviorProfile::faithful().with_timestamp_skew_ns(-50);
        assert!(!p.is_faithful());
        assert_eq!(p.skewed_timestamp(100), 50);
        assert_eq!(p.skewed_timestamp(10), 0);
        let p = BehaviorProfile::faithful().with_timestamp_skew_ns(50);
        assert_eq!(p.skewed_timestamp(100), 150);
    }

    #[test]
    fn falsified_body_differs_but_keeps_header_and_len() {
        let body: Vec<u8> = (0..40).collect();
        let f = falsify_body(&body);
        assert_eq!(f.len(), body.len());
        assert_eq!(&f[..16], &body[..16]);
        assert_ne!(&f[16..], &body[16..]);
    }

    #[test]
    fn header_only_body_still_changes() {
        let body = vec![0u8; 16];
        let f = falsify_body(&body);
        assert_eq!(f.len(), 16);
        assert_ne!(f, body);
        assert_eq!(&f[..8], &body[..8]); // seq preserved
    }
}
