//! Component identities: a node id bound to an RSA key pair.

use adlp_crypto::rsa::{RsaKeyPair, RsaPrivateKey, RsaPublicKey};
use adlp_crypto::sha256::Digest;
use adlp_crypto::{pkcs1, CryptoError, Signature};
use adlp_pubsub::NodeId;
use rand::RngCore;
use std::fmt;
use std::sync::Arc;

/// A component's cryptographic identity.
///
/// Generated at logging-thread startup in the prototype (§V-B step 1); the
/// public half is registered with the trusted logger, the private half never
/// leaves the component (except by explicit sharing, which is exactly the
/// collusion model).
#[derive(Clone)]
pub struct ComponentIdentity {
    id: NodeId,
    key: Arc<RsaPrivateKey>,
}

impl ComponentIdentity {
    /// Generates a fresh identity with a `bits`-bit RSA key (the paper uses
    /// 1024; tests use smaller keys for speed).
    pub fn generate<R: RngCore + ?Sized>(id: impl Into<NodeId>, bits: usize, rng: &mut R) -> Self {
        ComponentIdentity {
            id: id.into(),
            key: Arc::new(RsaKeyPair::generate(bits, rng).into_private_key()),
        }
    }

    /// Rebuilds an identity from a stored private key (see
    /// [`crate::keystore::IdentityStore`]).
    pub fn from_parts(id: NodeId, key: RsaPrivateKey) -> Self {
        ComponentIdentity {
            id,
            key: Arc::new(key),
        }
    }

    /// The component id.
    pub fn id(&self) -> &NodeId {
        &self.id
    }

    /// The public key (for registration with the logger).
    pub fn public_key(&self) -> &RsaPublicKey {
        self.key.public_key()
    }

    /// Signature length in bytes (128 for RSA-1024).
    pub fn signature_len(&self) -> usize {
        self.key.public_key().modulus_len()
    }

    /// Signs a precomputed digest.
    ///
    /// # Errors
    ///
    /// Propagates [`CryptoError`] (e.g. a key too small for the encoding).
    pub fn sign_digest(&self, digest: &Digest) -> Result<Signature, CryptoError> {
        pkcs1::sign_digest(&self.key, digest)
    }

    /// The private key — exposed **only** to model collusion, where
    /// components from the same non-compliant vendor share key material to
    /// forge each other's acknowledgements.
    pub fn private_key(&self) -> &Arc<RsaPrivateKey> {
        &self.key
    }
}

impl fmt::Debug for ComponentIdentity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ComponentIdentity")
            .field("id", &self.id)
            .field("modulus_bits", &(self.signature_len() * 8))
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adlp_crypto::sha256;
    use rand::SeedableRng;

    #[test]
    fn sign_and_verify_through_identity() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(9);
        let ident = ComponentIdentity::generate("camera", 512, &mut rng);
        assert_eq!(ident.id().as_str(), "camera");
        assert_eq!(ident.signature_len(), 64);
        let d = sha256(b"frame");
        let sig = ident.sign_digest(&d).unwrap();
        assert!(pkcs1::verify_digest(ident.public_key(), &d, &sig));
        assert!(!pkcs1::verify_digest(
            ident.public_key(),
            &sha256(b"other"),
            &sig
        ));
    }

    #[test]
    fn debug_hides_private_material() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(9);
        let ident = ComponentIdentity::generate("camera", 128, &mut rng);
        let dbg = format!("{ident:?}");
        assert!(dbg.contains("camera"));
        assert!(!dbg.contains("RsaPrivateKey {"));
    }
}
