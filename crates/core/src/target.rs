//! Where deposits go: one trusted logger, or a sharded cluster of them.
//!
//! The protocol layer (logging threads, interceptors, flush paths) is
//! indifferent to the logger's deployment shape. [`DepositTarget`] captures
//! the two shapes — the paper's single [`LoggerHandle`] and the
//! quorum-replicated [`ClusterLogClient`] — behind one submit/flush/keys
//! surface, so a node built for one runs unchanged against the other.

use adlp_cluster::ClusterLogClient;
use adlp_crypto::RsaPublicKey;
use adlp_logger::{KeyRegistry, LogEntry, LogError, LoggerHandle, SubmitOutcome};
use adlp_pubsub::NodeId;
use parking_lot::Mutex;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// How a deposit to a [`DepositTarget`] gets acknowledged — the trust
/// shape the logging pipeline is running against. Nodes and harnesses
/// read this to label runs and pick protocol expectations (e.g. what a
/// "lost" deposit means) without matching on the target shape themselves.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AckMode {
    /// The paper's model: one trusted logger's acceptance is the ack.
    Single,
    /// Crash-tolerant cluster: `write` live acceptances of `replicas`
    /// replicas per shard.
    Quorum {
        /// Write quorum W.
        write: usize,
        /// Replication factor R.
        replicas: usize,
    },
    /// Byzantine-tolerant cluster: `quorum = 2f+1` *matching signed head
    /// attestations* of `3f+1` replicas per shard; up to `f` replicas may
    /// lie without forging an ack.
    Bft {
        /// Byzantine replicas tolerated per shard.
        f: usize,
        /// Matching signed attestations required per ack (`2f+1`).
        quorum: usize,
    },
}

/// The deposit destination a node's logging pipeline writes to.
#[derive(Debug, Clone)]
pub enum DepositTarget {
    /// The paper's deployment: one trusted log server.
    Single(LoggerHandle),
    /// A sharded, quorum-replicated logger cluster.
    Cluster(Arc<ClusterLogClient>),
    /// A rate-limited wrapper around either shape, modeling a
    /// slow-consumer logger: each deposit waits for the pace gate before
    /// reaching the inner target. Overload scenarios and benches use this
    /// to make the deposit pipeline the bottleneck deterministically
    /// (arrival rate vs. `1/min_interval`), without sleeping inside the
    /// logger itself.
    Paced {
        /// The real destination.
        inner: Box<DepositTarget>,
        /// Minimum spacing between consecutive deposits.
        min_interval: Duration,
        /// When the gate next opens (shared across clones).
        next_free: Arc<Mutex<Option<Instant>>>,
    },
}

impl DepositTarget {
    /// Wraps `inner` so consecutive deposits are at least `min_interval`
    /// apart — a deterministic slow-consumer logger model.
    pub fn paced(inner: DepositTarget, min_interval: Duration) -> DepositTarget {
        DepositTarget::Paced {
            inner: Box::new(inner),
            min_interval,
            next_free: Arc::new(Mutex::new(None)),
        }
    }

    /// Blocks until the pace gate opens and claims the next slot. No-op
    /// for unpaced targets.
    fn pace(&self) {
        let DepositTarget::Paced {
            min_interval,
            next_free,
            ..
        } = self
        else {
            return;
        };
        let wait = {
            let mut slot = next_free.lock();
            let now = Instant::now();
            let start = slot.map_or(now, |t: Instant| t.max(now));
            *slot = Some(start + *min_interval);
            start.saturating_duration_since(now)
        };
        if !wait.is_zero() {
            std::thread::sleep(wait);
        }
    }

    /// Deposits an entry. Never blocks on logging *trouble* (a paced
    /// target does block on its rate gate) and never errors; every shape
    /// counts failed deposits — and reports them as an outcome — instead
    /// of dropping them silently.
    pub fn submit(&self, entry: LogEntry) -> SubmitOutcome {
        match self {
            DepositTarget::Single(handle) => handle.submit(entry),
            DepositTarget::Cluster(client) => client.submit(entry),
            DepositTarget::Paced { inner, .. } => {
                self.pace();
                inner.submit(entry)
            }
        }
    }

    /// Deposits an entry and only reports success once the logger made it
    /// *durable*: synced into the single logger's WAL, or WAL-acked by a
    /// write quorum of cluster replicas. A logger without a durability
    /// layer acks on acceptance (volatile deployments keep working).
    ///
    /// # Errors
    ///
    /// Returns [`LogError::ServerClosed`] when the logger is gone and
    /// [`LogError::Io`] when the entry could not be made durable.
    pub fn submit_durable(&self, entry: LogEntry) -> Result<(), LogError> {
        match self {
            DepositTarget::Single(handle) => handle.submit_durable(entry),
            DepositTarget::Cluster(client) => client.submit_durable(entry),
            DepositTarget::Paced { inner, .. } => {
                self.pace();
                inner.submit_durable(entry)
            }
        }
    }

    /// Registers a component key (§V-B step 1). For a cluster the registry
    /// is shared by every replica of every shard.
    ///
    /// # Errors
    ///
    /// Returns [`LogError::KeyConflict`] for a conflicting registration, or
    /// [`LogError::ServerClosed`] when a single logger is gone.
    pub fn register_key(&self, component: &NodeId, key: RsaPublicKey) -> Result<(), LogError> {
        match self {
            DepositTarget::Single(handle) => handle.register_key(component, key),
            DepositTarget::Cluster(client) => client.register_key(component, key),
            DepositTarget::Paced { inner, .. } => inner.register_key(component, key),
        }
    }

    /// Blocks until previously submitted entries are durably stored.
    ///
    /// # Errors
    ///
    /// Returns [`LogError::ServerClosed`] when the logger is gone (single)
    /// or some shard could not confirm a write quorum (cluster).
    pub fn flush(&self) -> Result<(), LogError> {
        match self {
            DepositTarget::Single(handle) => handle.flush(),
            DepositTarget::Cluster(client) => client.flush(),
            // Flush is a drain barrier, not a deposit: not paced.
            DepositTarget::Paced { inner, .. } => inner.flush(),
        }
    }

    /// The acknowledgement discipline this target runs: single-logger
    /// acceptance, W-of-R crash quorum, or 2f+1-of-3f+1 signed BFT quorum.
    /// Pacing is a rate shape, not a trust shape, so a paced target
    /// reports its inner target's mode.
    pub fn ack_mode(&self) -> AckMode {
        match self {
            DepositTarget::Single(_) => AckMode::Single,
            DepositTarget::Cluster(client) => {
                let config = client.config();
                match &config.bft {
                    Some(bft) => AckMode::Bft {
                        f: bft.f,
                        quorum: bft.attest_quorum(),
                    },
                    None => AckMode::Quorum {
                        write: config.write_quorum,
                        replicas: config.replicas,
                    },
                }
            }
            DepositTarget::Paced { inner, .. } => inner.ack_mode(),
        }
    }

    /// The key registry subscribers verify publisher signatures against.
    pub fn keys(&self) -> &KeyRegistry {
        match self {
            DepositTarget::Single(handle) => handle.keys(),
            DepositTarget::Cluster(client) => client.keys(),
            DepositTarget::Paced { inner, .. } => inner.keys(),
        }
    }
}

impl From<&LoggerHandle> for DepositTarget {
    fn from(handle: &LoggerHandle) -> Self {
        DepositTarget::Single(handle.clone())
    }
}

impl From<Arc<ClusterLogClient>> for DepositTarget {
    fn from(client: Arc<ClusterLogClient>) -> Self {
        DepositTarget::Cluster(client)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adlp_cluster::{ClusterConfig, LoggerCluster};
    use adlp_logger::{Direction, LogServer};
    use adlp_pubsub::Topic;

    fn entry(seq: u64) -> LogEntry {
        LogEntry::naive(
            NodeId::new("cam"),
            Topic::new("image"),
            Direction::Out,
            seq,
            seq,
            vec![1u8; 8],
        )
    }

    #[test]
    fn both_shapes_deposit_and_flush() {
        let server = LogServer::spawn();
        let single = DepositTarget::from(&server.handle());
        assert!(single.submit(entry(1)).is_accepted());
        single.flush().unwrap();
        assert_eq!(server.handle().store().len(), 1);

        let cluster = LoggerCluster::spawn(ClusterConfig::replicated(1)).unwrap();
        let clustered = DepositTarget::from(Arc::new(ClusterLogClient::in_proc(&cluster)));
        assert!(clustered.submit(entry(2)).is_accepted());
        clustered.flush().unwrap();
        assert_eq!(cluster.view().total_records(), 1);
    }

    #[test]
    fn paced_target_spaces_deposits() {
        let server = LogServer::spawn();
        let paced = DepositTarget::paced(
            DepositTarget::from(&server.handle()),
            Duration::from_millis(5),
        );
        let started = Instant::now();
        for seq in 0..4 {
            assert!(paced.submit(entry(seq)).is_accepted());
        }
        // First deposit is immediate; the next three wait a slot each.
        assert!(started.elapsed() >= Duration::from_millis(15));
        paced.flush().unwrap();
        assert_eq!(server.handle().store().len(), 4);
    }

    #[test]
    fn ack_mode_names_the_trust_shape() {
        let server = LogServer::spawn();
        let single = DepositTarget::from(&server.handle());
        assert_eq!(single.ack_mode(), AckMode::Single);

        let crash = LoggerCluster::spawn(ClusterConfig::replicated(1)).unwrap();
        let crash_target = DepositTarget::from(Arc::new(ClusterLogClient::in_proc(&crash)));
        assert_eq!(
            crash_target.ack_mode(),
            AckMode::Quorum { write: 2, replicas: 3 }
        );

        let bft = LoggerCluster::spawn(ClusterConfig::byzantine(1, 1)).unwrap();
        let bft_target = DepositTarget::from(Arc::new(ClusterLogClient::in_proc(&bft)));
        assert_eq!(bft_target.ack_mode(), AckMode::Bft { f: 1, quorum: 3 });

        // Pacing wraps the rate, not the trust shape.
        let paced = DepositTarget::paced(bft_target, Duration::from_millis(1));
        assert_eq!(paced.ack_mode(), AckMode::Bft { f: 1, quorum: 3 });
    }

    #[test]
    fn both_shapes_accept_durable_deposits() {
        // Volatile loggers ack durable deposits on acceptance, so the
        // ack-after-durable pipeline runs unchanged against either shape.
        let server = LogServer::spawn();
        let single = DepositTarget::from(&server.handle());
        single.submit_durable(entry(1)).unwrap();
        assert_eq!(server.handle().store().len(), 1);

        let cluster = LoggerCluster::spawn(ClusterConfig::replicated(1)).unwrap();
        let clustered = DepositTarget::from(Arc::new(ClusterLogClient::in_proc(&cluster)));
        clustered.submit_durable(entry(2)).unwrap();
        assert_eq!(cluster.view().total_records(), 1);
    }
}
