//! End-to-end scenario tests for the paper's protocol analysis (§IV-B):
//! Lemmas 1–3 and Theorems 1–2, executed against the real protocol stack
//! (middleware + ADLP interceptors + trusted logger + auditor).

use adlp_audit::{Anomaly, Auditor, CollusionGroups, EntryClass, ViolationKind};
use adlp_core::{AdlpNode, AdlpNodeBuilder, BehaviorProfile, LinkRole, LogBehavior, Scheme};
use adlp_logger::{Direction, LogServer, LoggerHandle};
use adlp_pubsub::{Master, NodeId, Topic};
use rand::SeedableRng;
use std::time::Duration;

const KEY_BITS: usize = 512;

struct Scenario {
    master: Master,
    server: LogServer,
    rng: rand::rngs::StdRng,
}

impl Scenario {
    fn new(seed: u64) -> Self {
        Scenario {
            master: Master::new(),
            server: LogServer::spawn(),
            rng: rand::rngs::StdRng::seed_from_u64(seed),
        }
    }

    fn handle(&self) -> LoggerHandle {
        self.server.handle()
    }

    fn node(&mut self, id: &str, behavior: BehaviorProfile) -> AdlpNode {
        AdlpNodeBuilder::new(id)
            .scheme(Scheme::adlp())
            .key_bits(KEY_BITS)
            .behavior(behavior)
            .build(&self.master, &self.server.handle(), &mut self.rng)
            .unwrap()
    }

    fn auditor(&self) -> Auditor {
        Auditor::new(self.handle().keys().clone())
            .with_topology(self.master.topology())
    }
}

fn wait_until(pred: impl Fn() -> bool) {
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    while !pred() {
        assert!(std::time::Instant::now() < deadline, "timed out waiting");
        std::thread::sleep(Duration::from_millis(2));
    }
}

/// Runs one pub→sub link for `n` messages and flushes all logging. Waits
/// for the previous acknowledgement before each publish so sequence
/// numbers stay contiguous (retrying a gated publish would burn seqs).
fn run_link(publisher: &AdlpNode, subscriber: &AdlpNode, topic: &str, n: usize) {
    let p = publisher.advertise(topic).unwrap();
    let _sub = subscriber.subscribe(topic, |_| {}).unwrap();
    for i in 0..n {
        wait_until(|| publisher.pending_acks() == 0);
        let r = p.publish(&[i as u8; 32]).unwrap();
        assert_eq!(r.sent, 1, "publish {i} must reach the subscriber");
    }
    wait_until(|| publisher.pending_acks() == 0 || subscriber.stats().snapshot().received >= n as u64);
    // Give the final ack a moment to land before flushing.
    std::thread::sleep(Duration::from_millis(30));
    publisher.flush().unwrap();
    subscriber.flush().unwrap();
}

#[test]
fn ideal_system_is_all_clear() {
    let mut s = Scenario::new(1);
    let cam = s.node("camera", BehaviorProfile::faithful());
    let det = s.node("detector", BehaviorProfile::faithful());
    run_link(&cam, &det, "image", 5);

    let report = s.auditor().audit_store(s.handle().store());
    assert_eq!(report.link_count(), 5);
    assert!(report.all_clear(), "report: {report:?}");
    assert_eq!(report.verdicts[&NodeId::new("camera")].valid_entries, 5);
    assert_eq!(report.verdicts[&NodeId::new("detector")].valid_entries, 5);
}

#[test]
fn lemma2_subscriber_cannot_hide_receipts() {
    let mut s = Scenario::new(2);
    let cam = s.node("camera", BehaviorProfile::faithful());
    let det = s.node(
        "detector",
        BehaviorProfile::faithful().with_link(
            LinkRole::Subscriber,
            Topic::new("image"),
            LogBehavior::Hide,
        ),
    );
    run_link(&cam, &det, "image", 3);

    let report = s.auditor().audit_store(s.handle().store());
    // The subscriber acknowledged (transport is honest), so its receipt is
    // exposed: 3 hidden records recovered, all attributed to the detector.
    assert_eq!(report.hidden.len(), 3);
    for h in &report.hidden {
        assert_eq!(h.component, NodeId::new("detector"));
        assert_eq!(h.direction, Direction::In);
        assert_eq!(h.proven_by, NodeId::new("camera"));
    }
    let verdict = &report.verdicts[&NodeId::new("detector")];
    assert!(verdict
        .violations
        .iter()
        .all(|v| v.kind == ViolationKind::HidReceipt));
    // Theorem 1: the faithful publisher is fully valid.
    assert!(report.verdicts[&NodeId::new("camera")].is_faithful());
    assert_eq!(report.verdicts[&NodeId::new("camera")].valid_entries, 3);
}

#[test]
fn lemma2_publisher_cannot_hide_publications() {
    let mut s = Scenario::new(3);
    let cam = s.node(
        "camera",
        BehaviorProfile::faithful().with_link(
            LinkRole::Publisher,
            Topic::new("image"),
            LogBehavior::Hide,
        ),
    );
    let det = s.node("detector", BehaviorProfile::faithful());
    run_link(&cam, &det, "image", 3);

    let report = s.auditor().audit_store(s.handle().store());
    assert_eq!(report.hidden.len(), 3);
    for h in &report.hidden {
        assert_eq!(h.component, NodeId::new("camera"));
        assert_eq!(h.direction, Direction::Out);
    }
    assert!(report.verdicts[&NodeId::new("camera")]
        .violations
        .iter()
        .all(|v| v.kind == ViolationKind::HidPublication));
    assert!(report.verdicts[&NodeId::new("detector")].is_faithful());
}

#[test]
fn lemma3_publisher_falsification_detected() {
    let mut s = Scenario::new(4);
    let cam = s.node(
        "camera",
        BehaviorProfile::faithful().with_link(
            LinkRole::Publisher,
            Topic::new("image"),
            LogBehavior::Falsify,
        ),
    );
    let det = s.node("detector", BehaviorProfile::faithful());
    run_link(&cam, &det, "image", 3);

    let report = s.auditor().audit_store(s.handle().store());
    let verdict = &report.verdicts[&NodeId::new("camera")];
    assert_eq!(verdict.violations.len(), 3);
    assert!(verdict
        .violations
        .iter()
        .all(|v| v.kind == ViolationKind::FalsifiedLog));
    // The faithful subscriber's entries are all valid (Theorem 1).
    assert!(report.verdicts[&NodeId::new("detector")].is_faithful());
    assert_eq!(report.verdicts[&NodeId::new("detector")].valid_entries, 3);
    for link in &report.links {
        assert!(matches!(
            link.publisher_entry,
            Some(EntryClass::Invalid(_))
        ));
        assert_eq!(link.subscriber_entry, Some(EntryClass::Valid));
    }
}

#[test]
fn lemma3_subscriber_false_accusation_detected() {
    // The motivating example of Figure 3: the sign recognizer claims it
    // received D' ≠ D.
    let mut s = Scenario::new(5);
    let cam = s.node("camera", BehaviorProfile::faithful());
    let det = s.node(
        "detector",
        BehaviorProfile::faithful().with_link(
            LinkRole::Subscriber,
            Topic::new("image"),
            LogBehavior::Falsify,
        ),
    );
    run_link(&cam, &det, "image", 3);

    let report = s.auditor().audit_store(s.handle().store());
    let verdict = &report.verdicts[&NodeId::new("detector")];
    assert_eq!(verdict.violations.len(), 3);
    assert!(verdict
        .violations
        .iter()
        .all(|v| v.kind == ViolationKind::FalsifiedLog));
    assert!(report.verdicts[&NodeId::new("camera")].is_faithful());
}

#[test]
fn lemma1_fabricated_publication_detected() {
    let mut s = Scenario::new(6);
    let cam = s.node("camera", BehaviorProfile::faithful());
    let det = s.node("detector", BehaviorProfile::faithful());
    // A real link exists so keys/topology are registered.
    run_link(&cam, &det, "image", 1);
    // Fabricate publication #50 which never happened: the "subscriber
    // signature" is random bytes.
    let mut rng = rand::rngs::StdRng::seed_from_u64(60);
    cam.fabricate_publication("image", 50, &[9u8; 16], "detector", &mut rng)
        .unwrap();
    cam.flush().unwrap();

    let report = s.auditor().audit_store(s.handle().store());
    let verdict = &report.verdicts[&NodeId::new("camera")];
    assert!(verdict
        .violations
        .iter()
        .any(|v| v.kind == ViolationKind::FabricatedLog && v.seq == 50));
    assert!(report.verdicts[&NodeId::new("detector")].is_faithful());
}

#[test]
fn lemma1_fabricated_receipt_detected() {
    let mut s = Scenario::new(7);
    let cam = s.node("camera", BehaviorProfile::faithful());
    let det = s.node("detector", BehaviorProfile::faithful());
    run_link(&cam, &det, "image", 1);
    let mut rng = rand::rngs::StdRng::seed_from_u64(70);
    det.fabricate_receipt("image", 50, &[9u8; 16], "camera", &mut rng)
        .unwrap();
    det.flush().unwrap();

    let report = s.auditor().audit_store(s.handle().store());
    let verdict = &report.verdicts[&NodeId::new("detector")];
    assert!(verdict
        .violations
        .iter()
        .any(|v| v.kind == ViolationKind::FabricatedLog && v.seq == 50));
    assert!(report.verdicts[&NodeId::new("camera")].is_faithful());
}

#[test]
fn impersonation_rejected_by_authenticity_check() {
    let mut s = Scenario::new(8);
    let cam = s.node("camera", BehaviorProfile::faithful());
    // The detector logs its receipts as if "innocent" wrote them.
    let det = s.node(
        "detector",
        BehaviorProfile::faithful().with_link(
            LinkRole::Subscriber,
            Topic::new("image"),
            LogBehavior::ImpersonateAs(NodeId::new("innocent")),
        ),
    );
    // Register the innocent party so its key exists.
    let innocent = s.node("innocent", BehaviorProfile::faithful());
    let _ = &innocent;
    run_link(&cam, &det, "image", 2);

    let report = s.auditor().audit_store(s.handle().store());
    // The forged entries fail authenticity under the victim's key.
    assert!(report
        .anomalies
        .iter()
        .any(|a| matches!(a, Anomaly::ImpersonationSuspected { claimed, .. }
            if claimed == &NodeId::new("innocent"))));
    // The victim is NOT convicted of anything.
    assert!(report
        .verdicts
        .get(&NodeId::new("innocent"))
        .is_none_or(|v| v.is_faithful()));
    // The detector's true receipts are missing → recovered as hidden.
    assert!(report
        .hidden
        .iter()
        .any(|h| h.component == NodeId::new("detector")));
}

#[test]
fn colluding_pair_evades_detection_but_faithful_parties_unharmed() {
    // Theorem 1's caveat: a colluding pair can enter consistent lies
    // (L_{V,c}); ADLP cannot flag them — but no faithful component is
    // misclassified, and an honest link of the same publisher still audits
    // clean.
    let mut s = Scenario::new(9);
    let cam = s.node("camera", BehaviorProfile::faithful());
    let det_honest = s.node("det_honest", BehaviorProfile::faithful());

    // Build the colluding pair: planner publishes "plan"; sink subscribes.
    // Components from the same non-compliant vendor share key material, so
    // pre-generate both identities and cross-wire the private keys.
    use adlp_core::{AdlpNodeBuilder, ComponentIdentity};
    let planner_ident = ComponentIdentity::generate("planner", KEY_BITS, &mut s.rng);
    let sink_ident = ComponentIdentity::generate("sink", KEY_BITS, &mut s.rng);
    let planner_key = std::sync::Arc::clone(planner_ident.private_key());
    let sink_key = std::sync::Arc::clone(sink_ident.private_key());

    let planner = AdlpNodeBuilder::new("planner")
        .scheme(Scheme::adlp())
        .identity(planner_ident)
        .behavior(BehaviorProfile::faithful().with_link(
            LinkRole::Publisher,
            Topic::new("plan"),
            LogBehavior::FalsifyWithPeerKey(sink_key),
        ))
        .build(&s.master, &s.server.handle(), &mut s.rng)
        .unwrap();
    let sink = AdlpNodeBuilder::new("sink")
        .scheme(Scheme::adlp())
        .identity(sink_ident)
        .behavior(BehaviorProfile::faithful().with_link(
            LinkRole::Subscriber,
            Topic::new("plan"),
            LogBehavior::FalsifyWithPeerKey(planner_key),
        ))
        .build(&s.master, &s.server.handle(), &mut s.rng)
        .unwrap();

    run_link(&cam, &det_honest, "image", 2);
    run_link(&planner, &sink, "plan", 2);

    let report = s.auditor().audit_store(s.handle().store());
    // The colluders' consistent lie is classified valid — the fundamental
    // limit the paper concedes.
    assert!(report.verdicts[&NodeId::new("planner")].is_faithful());
    assert!(report.verdicts[&NodeId::new("sink")].is_faithful());
    // And the faithful pair is of course clean.
    assert!(report.verdicts[&NodeId::new("camera")].is_faithful());
    assert!(report.verdicts[&NodeId::new("det_honest")].is_faithful());
}

#[test]
fn theorem2_collusion_free_system_identifies_every_unfaithful_component() {
    // A 4-component collusion-free system where two distinct components
    // misbehave in different ways; both must be identified, and only them.
    let mut s = Scenario::new(10);
    let cam = s.node("camera", BehaviorProfile::faithful());
    let hider = s.node(
        "hider",
        BehaviorProfile::faithful().with_link(
            LinkRole::Subscriber,
            Topic::new("image"),
            LogBehavior::Hide,
        ),
    );
    let lidar = s.node(
        "lidar",
        BehaviorProfile::faithful().with_link(
            LinkRole::Publisher,
            Topic::new("scan"),
            LogBehavior::Falsify,
        ),
    );
    let obstacle = s.node("obstacle", BehaviorProfile::faithful());

    run_link(&cam, &hider, "image", 2);
    run_link(&lidar, &obstacle, "scan", 2);

    let report = s.auditor().audit_store(s.handle().store());
    let unfaithful: Vec<&NodeId> = report
        .unfaithful_components()
        .into_iter()
        .map(|(id, _)| id)
        .collect();
    assert_eq!(unfaithful.len(), 2);
    assert!(unfaithful.contains(&&NodeId::new("hider")));
    assert!(unfaithful.contains(&&NodeId::new("lidar")));
    // No false positives.
    assert!(report.verdicts[&NodeId::new("camera")].is_faithful());
    assert!(report.verdicts[&NodeId::new("obstacle")].is_faithful());

    // Collusion-group machinery: ground truth says all singletons.
    let mut groups = CollusionGroups::new();
    for id in ["camera", "hider", "lidar", "obstacle"] {
        groups.add_component(NodeId::new(id));
    }
    assert!(groups.is_collusion_free());
}

#[test]
fn theorem1_faithful_entries_never_misclassified_under_any_peer_behavior() {
    // Sweep every unfaithful subscriber behavior against a faithful
    // publisher: the publisher's entries must always classify valid.
    let behaviors: Vec<(&str, LogBehavior)> = vec![
        ("hide", LogBehavior::Hide),
        ("falsify", LogBehavior::Falsify),
        ("impersonate", LogBehavior::ImpersonateAs(NodeId::new("ghost"))),
    ];
    for (i, (name, b)) in behaviors.into_iter().enumerate() {
        let mut s = Scenario::new(100 + i as u64);
        let cam = s.node("camera", BehaviorProfile::faithful());
        let det = s.node(
            "detector",
            BehaviorProfile::faithful().with_link(
                LinkRole::Subscriber,
                Topic::new("image"),
                b,
            ),
        );
        run_link(&cam, &det, "image", 2);
        let report = s.auditor().audit_store(s.handle().store());
        let cam_verdict = &report.verdicts[&NodeId::new("camera")];
        assert!(
            cam_verdict.is_faithful(),
            "behavior {name}: faithful publisher misclassified: {report:?}"
        );
        assert_eq!(
            cam_verdict.valid_entries, 2,
            "behavior {name}: publisher entries not all valid"
        );
    }
}

#[test]
fn figure8_requirement4_violation_misattributes_the_receiver() {
    // Figure 8: if the transport does NOT enforce signature validity
    // (requirement (4)), a publisher can send an invalid (O_x, s_r) pair.
    // The faithful subscriber logs what it received — and the auditor,
    // trusting (4), pins the invalid signature on the *subscriber* as a
    // fabrication. This test documents that known, intended limitation:
    // it is exactly why the protocol performs signing transparently at the
    // transport layer.
    let mut s = Scenario::new(14);
    let cam = s.node(
        "camera",
        BehaviorProfile::faithful().corrupting_signatures_every(1),
    );
    let det = s.node("detector", BehaviorProfile::faithful());
    run_link(&cam, &det, "image", 2);

    let report = s.auditor().audit_store(s.handle().store());
    // The faithful subscriber is (wrongly, but per the model) implicated…
    let det_verdict = &report.verdicts[&NodeId::new("detector")];
    assert!(
        det_verdict
            .violations
            .iter()
            .all(|v| v.kind == ViolationKind::FabricatedLog),
        "{report:?}"
    );
    assert!(!det_verdict.is_faithful());
    // …which is precisely the ambiguity requirement (4) exists to prevent.
}

#[test]
fn timing_disruption_caught_by_causality_check() {
    use adlp_audit::{CausalityChecker, FlowStep};

    // camera → relay → actuator chain; relay skews its log timestamps
    // backwards by a large amount, inverting its in/out order.
    let mut s = Scenario::new(11);
    let cam = s.node("camera", BehaviorProfile::faithful());
    let relay = s.node(
        "relay",
        BehaviorProfile::faithful().with_timestamp_skew_ns(-3_600_000_000_000),
    );
    let act = s.node("actuator", BehaviorProfile::faithful());

    // camera → relay on "image"
    let p1 = cam.advertise("image").unwrap();
    let _s1 = relay.subscribe("image", |_| {}).unwrap();
    // relay → actuator on "cmd"
    let p2 = relay.advertise("cmd").unwrap();
    let _s2 = act.subscribe("cmd", |_| {}).unwrap();

    p1.publish(&[1u8; 16]).unwrap();
    wait_until(|| relay.stats().snapshot().received == 1);
    p2.publish(&[2u8; 16]).unwrap();
    wait_until(|| act.stats().snapshot().received == 1);
    std::thread::sleep(Duration::from_millis(30));
    for n in [&cam, &relay, &act] {
        n.flush().unwrap();
    }

    let entries: Vec<_> = s
        .handle()
        .store()
        .entries()
        .into_iter()
        .map(Result::unwrap)
        .collect();
    let checker = CausalityChecker::from_entries(&entries);
    let violations = checker.check_chain(&[
        (
            FlowStep {
                topic: Topic::new("image"),
                seq: 1,
                subscriber: NodeId::new("relay"),
            },
            NodeId::new("camera"),
        ),
        (
            FlowStep {
                topic: Topic::new("cmd"),
                seq: 1,
                subscriber: NodeId::new("actuator"),
            },
            NodeId::new("relay"),
        ),
    ]);
    assert!(!violations.is_empty(), "skew must break a constraint");
    // Every violated constraint implicates the relay.
    assert!(violations
        .iter()
        .all(|v| v.suspects.contains(&NodeId::new("relay"))));
}

#[test]
fn provenance_traces_steering_back_to_camera() {
    use adlp_audit::ProvenanceGraph;

    let mut s = Scenario::new(12);
    let cam = s.node("camera", BehaviorProfile::faithful());
    let lane = s.node("lane", BehaviorProfile::faithful());
    let ctrl = s.node("ctrl", BehaviorProfile::faithful());

    let p_img = cam.advertise("image").unwrap();
    let _s1 = lane.subscribe("image", |_| {}).unwrap();
    let p_lane = lane.advertise("lane_pos").unwrap();
    let _s2 = ctrl.subscribe("lane_pos", |_| {}).unwrap();

    p_img.publish(&[1u8; 64]).unwrap();
    wait_until(|| lane.stats().snapshot().received == 1);
    p_lane.publish(&[2u8; 8]).unwrap();
    wait_until(|| ctrl.stats().snapshot().received == 1);
    std::thread::sleep(Duration::from_millis(30));
    for n in [&cam, &lane, &ctrl] {
        n.flush().unwrap();
    }

    let entries: Vec<_> = s
        .handle()
        .store()
        .entries()
        .into_iter()
        .map(Result::unwrap)
        .collect();
    let graph = ProvenanceGraph::from_entries(&entries);
    let trace = graph.trace(&Topic::new("lane_pos"), 1, 4).unwrap();
    let flat = trace.flatten();
    assert!(flat.contains(&(NodeId::new("camera"), Topic::new("image"), 1)));
}
