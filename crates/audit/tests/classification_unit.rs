//! Synthetic-entry tests for the classification engine: entries are built
//! by hand with real keys, bypassing the transport, so each branch of the
//! dispute logic can be targeted precisely.

use adlp_audit::{Anomaly, Auditor, EntryClass, InvalidReason};
use adlp_core::ComponentIdentity;
use adlp_crypto::sha256::{binding_digest, sha256};
use adlp_crypto::Signature;
use adlp_logger::{AckRecord, Direction, KeyRegistry, LogEntry, PayloadRecord};
use adlp_pubsub::{NodeId, Topic};
use rand::SeedableRng;

struct Pair {
    keys: KeyRegistry,
    publisher: ComponentIdentity,
    subscriber: ComponentIdentity,
}

fn pair() -> Pair {
    let mut rng = rand::rngs::StdRng::seed_from_u64(2718);
    let publisher = ComponentIdentity::generate("pubber", 512, &mut rng);
    let subscriber = ComponentIdentity::generate("subber", 512, &mut rng);
    let keys = KeyRegistry::new();
    keys.register(publisher.id(), publisher.public_key().clone())
        .unwrap();
    keys.register(subscriber.id(), subscriber.public_key().clone())
        .unwrap();
    Pair {
        keys,
        publisher,
        subscriber,
    }
}

fn auditor(p: &Pair) -> Auditor {
    Auditor::new(p.keys.clone()).with_topology([(Topic::new("t"), p.publisher.id().clone())])
}

/// Builds the faithful (publisher entry, subscriber entry) pair for `body`.
fn faithful_entries(p: &Pair, seq: u64, body: &[u8]) -> (LogEntry, LogEntry) {
    let digest = sha256(body);
    let bound = binding_digest("t", seq, &digest);
    let s_x = p.publisher.sign_digest(&bound).unwrap();
    let s_y = p.subscriber.sign_digest(&bound).unwrap();
    let pub_entry = LogEntry {
        component: p.publisher.id().clone(),
        topic: Topic::new("t"),
        direction: Direction::Out,
        seq,
        timestamp_ns: 100,
        payload: PayloadRecord::Data(body.to_vec()),
        own_sig: Some(s_x.clone()),
        peer_sig: Some(s_y.clone()),
        peer_hash: Some(digest),
        peer: Some(p.subscriber.id().clone()),
        acks: Vec::new(),
    };
    let sub_entry = LogEntry {
        component: p.subscriber.id().clone(),
        topic: Topic::new("t"),
        direction: Direction::In,
        seq,
        timestamp_ns: 110,
        payload: PayloadRecord::Hash(digest),
        own_sig: Some(s_y),
        peer_sig: Some(s_x),
        peer_hash: None,
        peer: Some(p.publisher.id().clone()),
        acks: Vec::new(),
    };
    (pub_entry, sub_entry)
}

#[test]
fn faithful_pair_is_valid() {
    let p = pair();
    let (pe, se) = faithful_entries(&p, 1, b"payload");
    let report = auditor(&p).audit(&[pe, se]);
    assert!(report.all_clear(), "{report:?}");
    assert_eq!(report.links.len(), 1);
    assert_eq!(report.links[0].publisher_entry, Some(EntryClass::Valid));
    assert_eq!(report.links[0].subscriber_entry, Some(EntryClass::Valid));
}

#[test]
fn unknown_component_rejected() {
    let p = pair();
    let (mut pe, se) = faithful_entries(&p, 1, b"payload");
    pe.component = NodeId::new("stranger");
    pe.topic = Topic::new("other"); // avoid WrongPublisher masking
    let report = auditor(&p).audit(&[pe, se]);
    assert!(report
        .rejected_entries
        .iter()
        .any(|(_, r)| *r == InvalidReason::UnknownComponent));
}

#[test]
fn wrong_publisher_rejected() {
    let p = pair();
    let (pe, se) = faithful_entries(&p, 1, b"payload");
    // The subscriber claims to have *published* topic t it doesn't own.
    let mut forged = se.clone();
    forged.direction = Direction::Out;
    let report = auditor(&p).audit(&[pe, se, forged]);
    assert!(report
        .rejected_entries
        .iter()
        .any(|(_, r)| *r == InvalidReason::WrongPublisher));
}

#[test]
fn duplicate_seq_replay_rejected() {
    let p = pair();
    let (pe, se) = faithful_entries(&p, 1, b"payload");
    let report = auditor(&p).audit(&[pe.clone(), se.clone(), se.clone()]);
    assert!(report
        .rejected_entries
        .iter()
        .any(|(_, r)| *r == InvalidReason::DuplicateSeq));
    let report = auditor(&p).audit(&[pe.clone(), pe, se]);
    assert!(report
        .rejected_entries
        .iter()
        .any(|(_, r)| *r == InvalidReason::DuplicateSeq));
}

#[test]
fn tampered_own_signature_is_authenticity_failure() {
    let p = pair();
    let (mut pe, se) = faithful_entries(&p, 1, b"payload");
    pe.payload = PayloadRecord::Data(b"different".to_vec()); // sig no longer matches
    let report = auditor(&p).audit(&[pe, se]);
    assert!(report
        .rejected_entries
        .iter()
        .any(|(_, r)| *r == InvalidReason::AuthenticityFailure));
    assert!(report
        .anomalies
        .iter()
        .any(|a| matches!(a, Anomaly::ImpersonationSuspected { .. })));
}

#[test]
fn dispute_resolved_against_publisher() {
    // Publisher logs D' while the subscriber holds s_x over D.
    let p = pair();
    let (_, se) = faithful_entries(&p, 1, b"real-data");
    let fake = b"fake-data".to_vec();
    let fake_digest = sha256(&fake);
    let pe = LogEntry {
        component: p.publisher.id().clone(),
        topic: Topic::new("t"),
        direction: Direction::Out,
        seq: 1,
        timestamp_ns: 100,
        payload: PayloadRecord::Data(fake),
        own_sig: Some(
            p.publisher
                .sign_digest(&binding_digest("t", 1, &fake_digest))
                .unwrap(),
        ),
        // It still holds the subscriber's genuine ack over the REAL data.
        peer_sig: se.own_sig.clone(),
        peer_hash: Some(sha256(b"real-data")),
        peer: Some(p.subscriber.id().clone()),
        acks: Vec::new(),
    };
    let report = auditor(&p).audit(&[pe, se]);
    assert_eq!(
        report.links[0].publisher_entry,
        Some(EntryClass::Invalid(InvalidReason::FalsifiedPayload))
    );
    assert_eq!(report.links[0].subscriber_entry, Some(EntryClass::Valid));
}

#[test]
fn dispute_resolved_against_subscriber() {
    // Subscriber logs D'' but acknowledged D; publisher's entry carries the
    // genuine ack over D.
    let p = pair();
    let (pe, _) = faithful_entries(&p, 1, b"real-data");
    let fake_digest = sha256(b"claimed-other-data");
    let se = LogEntry {
        component: p.subscriber.id().clone(),
        topic: Topic::new("t"),
        direction: Direction::In,
        seq: 1,
        timestamp_ns: 110,
        payload: PayloadRecord::Hash(fake_digest),
        own_sig: Some(
            p.subscriber
                .sign_digest(&binding_digest("t", 1, &fake_digest))
                .unwrap(),
        ),
        // It cannot forge s_x over its lie; it reuses the real s_x (which
        // verifies only against the real digest).
        peer_sig: pe.own_sig.clone(),
        peer_hash: None,
        peer: Some(p.publisher.id().clone()),
        acks: Vec::new(),
    };
    let report = auditor(&p).audit(&[pe, se]);
    assert_eq!(report.links[0].publisher_entry, Some(EntryClass::Valid));
    assert_eq!(
        report.links[0].subscriber_entry,
        Some(EntryClass::Invalid(InvalidReason::FalsifiedPayload))
    );
}

#[test]
fn figure8_invalid_pair_blamed_on_fabricator() {
    // The subscriber fabricates (I_y, s_r) with random s_r (Figure 8(b)):
    // under requirement (4) the transport would never deliver an invalid
    // pair, so the subscriber is the fabricator.
    let p = pair();
    let digest = sha256(b"whatever");
    let se = LogEntry {
        component: p.subscriber.id().clone(),
        topic: Topic::new("t"),
        direction: Direction::In,
        seq: 1,
        timestamp_ns: 110,
        payload: PayloadRecord::Hash(digest),
        own_sig: Some(
            p.subscriber
                .sign_digest(&binding_digest("t", 1, &digest))
                .unwrap(),
        ),
        peer_sig: Some(Signature::from_bytes(vec![0xab; 64])),
        peer_hash: None,
        peer: Some(p.publisher.id().clone()),
        acks: Vec::new(),
    };
    let report = auditor(&p).audit(&[se]);
    assert_eq!(
        report.links[0].subscriber_entry,
        Some(EntryClass::Invalid(InvalidReason::FabricatedPeerSignature))
    );
}

#[test]
fn aggregated_entry_audits_per_subscriber() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(31);
    let p = pair();
    let third = ComponentIdentity::generate("third", 512, &mut rng);
    p.keys
        .register(third.id(), third.public_key().clone())
        .unwrap();

    let body = b"fanout".to_vec();
    let digest = sha256(&body);
    let bound = binding_digest("t", 1, &digest);
    let s_x = p.publisher.sign_digest(&bound).unwrap();
    let pub_entry = LogEntry {
        component: p.publisher.id().clone(),
        topic: Topic::new("t"),
        direction: Direction::Out,
        seq: 1,
        timestamp_ns: 100,
        payload: PayloadRecord::Data(body.clone()),
        own_sig: Some(s_x.clone()),
        peer_sig: None,
        peer_hash: None,
        peer: None,
        acks: vec![
            AckRecord {
                subscriber: p.subscriber.id().clone(),
                hash: digest,
                sig: p.subscriber.sign_digest(&bound).unwrap(),
            },
            AckRecord {
                subscriber: third.id().clone(),
                hash: digest,
                sig: third.sign_digest(&bound).unwrap(),
            },
        ],
    };
    // Only the first subscriber logged its receipt; the third hid.
    let sub_entry = LogEntry {
        component: p.subscriber.id().clone(),
        topic: Topic::new("t"),
        direction: Direction::In,
        seq: 1,
        timestamp_ns: 110,
        payload: PayloadRecord::Hash(digest),
        own_sig: Some(p.subscriber.sign_digest(&bound).unwrap()),
        peer_sig: Some(s_x),
        peer_hash: None,
        peer: Some(p.publisher.id().clone()),
        acks: Vec::new(),
    };
    let report = auditor(&p).audit(&[pub_entry, sub_entry]);
    assert_eq!(report.links.len(), 2);
    assert!(report
        .hidden
        .iter()
        .any(|h| h.component == NodeId::new("third") && h.direction == Direction::In));
    assert!(report.verdicts[&NodeId::new("subber")].is_faithful());
}

#[test]
fn relabeled_seq_cannot_frame_the_publisher() {
    // Attack: the subscriber takes its genuine (valid) receipt entry for
    // seq 1 and re-enters it relabeled as seq 7 — attempting to "prove" a
    // publication the publisher never made (and thereby convict it of
    // hiding). Because signatures cover h(seq ‖ h(D)), the relabeled entry
    // fails authenticity outright.
    let p = pair();
    let (pe, se) = faithful_entries(&p, 1, b"payload");
    let mut relabeled = se.clone();
    relabeled.seq = 7;
    let report = auditor(&p).audit(&[pe, se, relabeled]);
    // The forged entry is rejected, not treated as evidence.
    assert!(report
        .rejected_entries
        .iter()
        .any(|(e, r)| e.seq == 7 && *r == InvalidReason::AuthenticityFailure));
    // The publisher is NOT convicted of hiding a phantom publication.
    assert!(report
        .verdicts
        .get(&p.publisher.id().clone())
        .is_none_or(|v| v.is_faithful()));
    assert!(report.hidden.iter().all(|h| h.seq != 7));
}

#[test]
fn single_field_mutations_never_convict_the_counterpart() {
    // Whatever single field one side tampers with in its own entry, the
    // other (faithful) side must never be convicted.
    let p = pair();
    let auditor = auditor(&p);
    let (pe, se) = faithful_entries(&p, 1, b"payload");

    // Subscriber-side mutations: publisher must stay clean.
    let sub_mutations: Vec<Box<dyn Fn(&mut LogEntry)>> = vec![
        Box::new(|e| e.seq = 9),
        Box::new(|e| e.timestamp_ns = 0),
        Box::new(|e| e.payload = PayloadRecord::Hash(sha256(b"lie"))),
        Box::new(|e| e.peer_sig = Some(Signature::from_bytes(vec![1u8; 64]))),
        Box::new(|e| e.peer_sig = None),
        Box::new(|e| e.own_sig = Some(Signature::from_bytes(vec![2u8; 64]))),
        Box::new(|e| e.peer = Some(NodeId::new("someone_else"))),
        Box::new(|e| e.topic = Topic::new("other_topic")),
    ];
    for (i, mutate) in sub_mutations.iter().enumerate() {
        let mut mutated = se.clone();
        mutate(&mut mutated);
        let report = auditor.audit(&[pe.clone(), mutated]);
        assert!(
            report
                .verdicts
                .get(&p.publisher.id().clone())
                .is_none_or(|v| v.is_faithful()),
            "sub mutation {i} convicted the faithful publisher: {report:?}"
        );
    }

    // Publisher-side mutations: subscriber must stay clean.
    let pub_mutations: Vec<Box<dyn Fn(&mut LogEntry)>> = vec![
        Box::new(|e| e.seq = 9),
        Box::new(|e| e.timestamp_ns = 0),
        Box::new(|e| e.payload = PayloadRecord::Data(b"lie".to_vec())),
        Box::new(|e| e.peer_sig = Some(Signature::from_bytes(vec![1u8; 64]))),
        Box::new(|e| e.peer_hash = Some(sha256(b"lie"))),
        Box::new(|e| e.own_sig = Some(Signature::from_bytes(vec![2u8; 64]))),
        Box::new(|e| {
            e.peer_sig = None;
            e.peer_hash = None;
        }),
    ];
    for (i, mutate) in pub_mutations.iter().enumerate() {
        let mut mutated = pe.clone();
        mutate(&mut mutated);
        let report = auditor.audit(&[mutated, se.clone()]);
        assert!(
            report
                .verdicts
                .get(&p.subscriber.id().clone())
                .is_none_or(|v| v.is_faithful()),
            "pub mutation {i} convicted the faithful subscriber: {report:?}"
        );
    }
}

#[test]
fn empty_log_audits_clean() {
    let p = pair();
    let report = auditor(&p).audit(&[]);
    assert!(report.all_clear());
    assert_eq!(report.link_count(), 0);
}

#[test]
fn sequence_gap_anomaly_reported() {
    let p = pair();
    let (pe1, se1) = faithful_entries(&p, 1, b"a");
    let (pe3, se3) = faithful_entries(&p, 3, b"c");
    let report = auditor(&p).audit(&[pe1, se1, pe3, se3]);
    assert!(report.anomalies.iter().any(|a| matches!(
        a,
        Anomaly::SequenceGap { missing, .. } if missing == &vec![2]
    )));
}
