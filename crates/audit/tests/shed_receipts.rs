//! Gap-receipt audit semantics: a verified receipt converts covered
//! absences from `Hidden` (a conviction) into `Shed` (an accounted loss),
//! while malformed, overlapping, or lying receipts are rejected as invalid
//! and excuse nothing.

use adlp_audit::{Anomaly, Auditor, EntryClass, InvalidReason};
use adlp_core::ComponentIdentity;
use adlp_crypto::sha256::{binding_digest, sha256};
use adlp_logger::{Direction, GapReceipt, KeyRegistry, LogEntry, PayloadRecord, ShedReason};
use adlp_pubsub::Topic;
use rand::SeedableRng;

struct Pair {
    keys: KeyRegistry,
    publisher: ComponentIdentity,
    subscriber: ComponentIdentity,
}

fn pair() -> Pair {
    let mut rng = rand::rngs::StdRng::seed_from_u64(4242);
    let publisher = ComponentIdentity::generate("pubber", 512, &mut rng);
    let subscriber = ComponentIdentity::generate("subber", 512, &mut rng);
    let keys = KeyRegistry::new();
    keys.register(publisher.id(), publisher.public_key().clone())
        .unwrap();
    keys.register(subscriber.id(), subscriber.public_key().clone())
        .unwrap();
    Pair {
        keys,
        publisher,
        subscriber,
    }
}

fn auditor(p: &Pair) -> Auditor {
    Auditor::new(p.keys.clone()).with_topology([(Topic::new("t"), p.publisher.id().clone())])
}

/// Builds the faithful (publisher entry, subscriber entry) pair for `body`.
fn faithful_entries(p: &Pair, seq: u64, body: &[u8]) -> (LogEntry, LogEntry) {
    let digest = sha256(body);
    let bound = binding_digest("t", seq, &digest);
    let s_x = p.publisher.sign_digest(&bound).unwrap();
    let s_y = p.subscriber.sign_digest(&bound).unwrap();
    let pub_entry = LogEntry {
        component: p.publisher.id().clone(),
        topic: Topic::new("t"),
        direction: Direction::Out,
        seq,
        timestamp_ns: 100,
        payload: PayloadRecord::Data(body.to_vec()),
        own_sig: Some(s_x.clone()),
        peer_sig: Some(s_y.clone()),
        peer_hash: Some(digest),
        peer: Some(p.subscriber.id().clone()),
        acks: Vec::new(),
    };
    let sub_entry = LogEntry {
        component: p.subscriber.id().clone(),
        topic: Topic::new("t"),
        direction: Direction::In,
        seq,
        timestamp_ns: 110,
        payload: PayloadRecord::Hash(digest),
        own_sig: Some(s_y),
        peer_sig: Some(s_x),
        peer_hash: None,
        peer: Some(p.publisher.id().clone()),
        acks: Vec::new(),
    };
    (pub_entry, sub_entry)
}

/// Builds a properly signed gap-receipt entry, exactly as the deposit
/// pipeline does.
fn receipt_entry(
    id: &ComponentIdentity,
    direction: Direction,
    first: u64,
    last: u64,
    reason: ShedReason,
) -> LogEntry {
    let r = GapReceipt {
        component: id.id().clone(),
        topic: Topic::new("t"),
        direction,
        first_seq: first,
        last_seq: last,
        count: last - first + 1,
        reason,
    };
    let mut e = r.to_entry(500);
    let bound = binding_digest("t", e.seq, &e.payload.digest());
    e.own_sig = Some(id.sign_digest(&bound).unwrap());
    e
}

#[test]
fn subscriber_receipt_converts_hidden_receipt_to_shed() {
    let p = pair();
    // Publisher holds the subscriber's valid ack; the subscriber's own
    // record is absent — normally a HidReceipt conviction (Lemma 2).
    let (pe, _) = faithful_entries(&p, 1, b"payload");
    let receipt = receipt_entry(&p.subscriber, Direction::In, 0, 3, ShedReason::QueueFull);
    let report = auditor(&p).audit(&[pe, receipt]);
    assert_eq!(report.links.len(), 1);
    assert_eq!(report.links[0].publisher_entry, Some(EntryClass::Valid));
    assert_eq!(
        report.links[0].subscriber_entry,
        Some(EntryClass::Shed {
            first_seq: 0,
            last_seq: 3
        })
    );
    assert!(report.hidden.is_empty(), "{report:?}");
    assert_eq!(report.shed.len(), 1);
    assert!(report.all_clear(), "{report:?}");
}

#[test]
fn publisher_receipt_converts_hidden_publication_to_shed() {
    let p = pair();
    // Subscriber holds a valid s_x; the publisher's record is absent —
    // normally a HidPublication conviction.
    let (_, se) = faithful_entries(&p, 2, b"payload");
    let receipt = receipt_entry(&p.publisher, Direction::Out, 2, 4, ShedReason::BreakerOpen);
    let report = auditor(&p).audit(&[se, receipt]);
    assert_eq!(report.links.len(), 1);
    assert_eq!(report.links[0].subscriber_entry, Some(EntryClass::Valid));
    assert_eq!(
        report.links[0].publisher_entry,
        Some(EntryClass::Shed {
            first_seq: 2,
            last_seq: 4
        })
    );
    assert!(report.hidden.is_empty());
    assert!(report.all_clear(), "{report:?}");
}

#[test]
fn without_receipt_the_absence_still_convicts() {
    let p = pair();
    let (pe, _) = faithful_entries(&p, 1, b"payload");
    let report = auditor(&p).audit(&[pe]);
    assert!(!report.hidden.is_empty());
    assert!(!report.all_clear());
}

#[test]
fn unsigned_receipt_is_rejected() {
    let p = pair();
    let mut receipt = receipt_entry(&p.subscriber, Direction::In, 0, 3, ShedReason::QueueFull);
    receipt.own_sig = None;
    let report = auditor(&p).audit(&[receipt]);
    assert!(report
        .rejected_entries
        .iter()
        .any(|(_, r)| *r == InvalidReason::InvalidGapReceipt));
    assert!(report.shed.is_empty());
    assert!(!report.all_clear());
}

#[test]
fn tampered_receipt_fails_authenticity_not_shedding() {
    // Enlarging the claimed range after signing breaks the binding-digest
    // signature: the receipt rejects as an authenticity failure and the
    // forged range excuses nothing.
    let p = pair();
    let (pe, _) = faithful_entries(&p, 1, b"payload");
    let mut receipt = receipt_entry(&p.subscriber, Direction::In, 0, 3, ShedReason::QueueFull);
    let r = GapReceipt {
        last_seq: 9,
        count: 10,
        ..GapReceipt::from_entry(&receipt).unwrap()
    };
    receipt.payload = PayloadRecord::Data(r.to_payload());
    let report = auditor(&p).audit(&[pe, receipt]);
    assert!(report
        .rejected_entries
        .iter()
        .any(|(_, r)| *r == InvalidReason::AuthenticityFailure));
    assert!(report.shed.is_empty());
    assert!(!report.hidden.is_empty(), "forged receipt must not excuse");
}

#[test]
fn receipt_covering_deposited_entries_is_rejected() {
    // Laundering attempt: the subscriber deposits its real entry for seq 1
    // *and* a receipt claiming 0..=3 was shed. The receipt contradicts the
    // deposit and is rejected; nothing is excused by it.
    let p = pair();
    let (pe1, se1) = faithful_entries(&p, 1, b"a");
    let receipt = receipt_entry(&p.subscriber, Direction::In, 0, 3, ShedReason::QueueFull);
    let report = auditor(&p).audit(&[pe1, se1, receipt]);
    assert!(report
        .rejected_entries
        .iter()
        .any(|(_, r)| *r == InvalidReason::InvalidGapReceipt));
    assert!(report.shed.is_empty());
    assert!(!report.all_clear());
}

#[test]
fn overlapping_receipts_are_both_rejected() {
    let p = pair();
    let r1 = receipt_entry(&p.publisher, Direction::Out, 2, 5, ShedReason::QueueFull);
    let r2 = receipt_entry(&p.publisher, Direction::Out, 4, 8, ShedReason::QueueFull);
    let report = auditor(&p).audit(&[r1, r2]);
    let rejected = report
        .rejected_entries
        .iter()
        .filter(|(_, r)| *r == InvalidReason::InvalidGapReceipt)
        .count();
    assert_eq!(rejected, 2);
    assert!(report.shed.is_empty());
}

#[test]
fn identical_duplicate_receipts_are_deduped() {
    // The deposit path re-delivers a receipt whose first submission was
    // reported lost: two byte-identical copies are one admission, not an
    // overlap.
    let p = pair();
    let (pe, _) = faithful_entries(&p, 1, b"payload");
    let receipt = receipt_entry(&p.subscriber, Direction::In, 0, 3, ShedReason::QueueFull);
    let report = auditor(&p).audit(&[pe, receipt.clone(), receipt]);
    assert_eq!(report.shed.len(), 1);
    assert!(report.rejected_entries.is_empty(), "{report:?}");
    assert!(report.all_clear(), "{report:?}");
}

#[test]
fn sequence_gap_excused_by_covering_receipt() {
    let p = pair();
    let (pe1, se1) = faithful_entries(&p, 1, b"a");
    let (pe4, se4) = faithful_entries(&p, 4, b"d");
    let receipt = receipt_entry(&p.publisher, Direction::Out, 2, 3, ShedReason::QueueFull);
    let report = auditor(&p).audit(&[pe1, se1, pe4, se4, receipt]);
    assert!(
        !report
            .anomalies
            .iter()
            .any(|a| matches!(a, Anomaly::SequenceGap { .. })),
        "{report:?}"
    );
    assert!(report.all_clear(), "{report:?}");
}

#[test]
fn partially_covered_gap_still_reports_the_rest() {
    let p = pair();
    let (pe1, se1) = faithful_entries(&p, 1, b"a");
    let (pe5, se5) = faithful_entries(&p, 5, b"e");
    // Receipt covers 2..=3 but seq 4 is unexplained.
    let receipt = receipt_entry(&p.publisher, Direction::Out, 2, 3, ShedReason::Shutdown);
    let report = auditor(&p).audit(&[pe1, se1, pe5, se5, receipt]);
    assert!(report.anomalies.iter().any(|a| matches!(
        a,
        Anomaly::SequenceGap { missing, .. } if missing == &vec![4]
    )));
}

#[test]
fn receipt_from_another_component_excuses_nothing() {
    // The *publisher* admits shedding its Out records; that says nothing
    // about the subscriber's missing In record, which stays a conviction.
    let p = pair();
    let (pe, _) = faithful_entries(&p, 1, b"payload");
    let receipt = receipt_entry(&p.publisher, Direction::Out, 0, 3, ShedReason::QueueFull);
    let report = auditor(&p).audit(&[pe, receipt]);
    assert!(
        !report.hidden.is_empty(),
        "wrong component's receipt must not excuse: {report:?}"
    );
    assert!(!report.all_clear());
}
