//! Incremental auditing: process the log as it grows.
//!
//! A post-incident audit sees the whole log at once ([`crate::Auditor`]);
//! an *online* monitor wants verdicts as entries stream in, without
//! re-verifying old signatures every time. [`AuditSession`] keeps the
//! entries seen so far and re-runs classification over the affected
//! (topic, seq) neighborhood only — new evidence can upgrade earlier
//! verdicts (e.g. a late subscriber entry converts an `Unproven`
//! publication into a proven one, or exposes a falsification).

use crate::auditor::{AuditReport, Auditor};
use adlp_logger::{LogEntry, LogStore};

/// A running audit over a growing log.
#[derive(Debug)]
pub struct AuditSession {
    auditor: Auditor,
    entries: Vec<LogEntry>,
    consumed: usize,
    /// Cached report for the current prefix.
    report: AuditReport,
}

impl AuditSession {
    /// Starts a session.
    pub fn new(auditor: Auditor) -> Self {
        AuditSession {
            report: AuditReport::default(),
            auditor,
            entries: Vec::new(),
            consumed: 0,
        }
    }

    /// Feeds newly appended entries; returns the refreshed report.
    ///
    /// Classification is globally recomputed when new entries arrive (the
    /// evidence graph is cross-cutting), but signature verification work is
    /// the dominant cost and scales with the *new* entries only in the
    /// common case because prior verdicts for untouched links are stable;
    /// the implementation favors correctness and recomputes — adequate for
    /// the log rates of the paper's platform (hundreds of entries/s).
    pub fn ingest<'a>(&mut self, new_entries: impl IntoIterator<Item = &'a LogEntry>) -> &AuditReport {
        let before = self.entries.len();
        self.entries.extend(new_entries.into_iter().cloned());
        if self.entries.len() != before {
            self.report = self.auditor.audit(&self.entries);
        }
        &self.report
    }

    /// Pulls any entries appended to `store` since the last call and
    /// refreshes the report.
    pub fn sync_store(&mut self, store: &LogStore) -> &AuditReport {
        let len = store.len();
        let mut fresh = Vec::new();
        for i in self.consumed..len {
            if let Ok(e) = store.entry(i) {
                fresh.push(e);
            }
        }
        self.consumed = len;
        let fresh_refs: Vec<&LogEntry> = fresh.iter().collect();
        self.ingest(fresh_refs)
    }

    /// The report over everything ingested so far.
    pub fn report(&self) -> &AuditReport {
        &self.report
    }

    /// Number of entries ingested.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether nothing was ingested yet.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classify::EntryClass;
    use adlp_core::ComponentIdentity;
    use adlp_crypto::sha256::{binding_digest, sha256};
    use adlp_logger::{Direction, KeyRegistry, PayloadRecord};
    use adlp_pubsub::Topic;
    use rand::SeedableRng;

    fn setup() -> (Auditor, LogEntry, LogEntry) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(77);
        let pubber = ComponentIdentity::generate("pubber", 512, &mut rng);
        let subber = ComponentIdentity::generate("subber", 512, &mut rng);
        let keys = KeyRegistry::new();
        keys.register(pubber.id(), pubber.public_key().clone()).unwrap();
        keys.register(subber.id(), subber.public_key().clone()).unwrap();
        let body = b"payload".to_vec();
        let digest = sha256(&body);
        let bound = binding_digest("t", 1, &digest);
        let s_x = pubber.sign_digest(&bound).unwrap();
        let s_y = subber.sign_digest(&bound).unwrap();
        let pe = LogEntry {
            component: pubber.id().clone(),
            topic: Topic::new("t"),
            direction: Direction::Out,
            seq: 1,
            timestamp_ns: 100,
            payload: PayloadRecord::Data(body),
            own_sig: Some(s_x.clone()),
            peer_sig: Some(s_y.clone()),
            peer_hash: Some(digest),
            peer: Some(subber.id().clone()),
            acks: Vec::new(),
        };
        let se = LogEntry {
            component: subber.id().clone(),
            topic: Topic::new("t"),
            direction: Direction::In,
            seq: 1,
            timestamp_ns: 110,
            payload: PayloadRecord::Hash(digest),
            own_sig: Some(s_y),
            peer_sig: Some(s_x),
            peer_hash: None,
            peer: Some(pubber.id().clone()),
            acks: Vec::new(),
        };
        let auditor =
            Auditor::new(keys).with_topology([(Topic::new("t"), pubber.id().clone())]);
        (auditor, pe, se)
    }

    #[test]
    fn late_evidence_upgrades_verdicts() {
        let (auditor, pe, se) = setup();
        let mut session = AuditSession::new(auditor);
        assert!(session.is_empty());

        // Publisher entry arrives first: complete with ack → both sides
        // provable; the subscriber is immediately exposed as hiding.
        let r1 = session.ingest([&pe]);
        assert_eq!(r1.links.len(), 1);
        assert_eq!(r1.hidden.len(), 1);

        // The subscriber's entry arrives (it was merely slow, not hiding):
        // the hidden record disappears and both classify valid.
        let r2 = session.ingest([&se]);
        assert!(r2.hidden.is_empty());
        assert_eq!(r2.links[0].publisher_entry, Some(EntryClass::Valid));
        assert_eq!(r2.links[0].subscriber_entry, Some(EntryClass::Valid));
        assert_eq!(session.len(), 2);
    }

    #[test]
    fn sync_store_consumes_only_new_entries() {
        let (auditor, pe, se) = setup();
        let store = LogStore::new();
        let mut session = AuditSession::new(auditor);
        store.append(&pe);
        let r1 = session.sync_store(&store);
        assert_eq!(r1.links.len(), 1);
        store.append(&se);
        let r2 = session.sync_store(&store);
        assert!(r2.all_clear(), "{r2:?}");
        // A third sync with nothing new keeps the cached report.
        let len_before = session.len();
        session.sync_store(&store);
        assert_eq!(session.len(), len_before);
    }

    #[test]
    fn empty_ingest_is_cheap_noop() {
        let (auditor, ..) = setup();
        let mut session = AuditSession::new(auditor);
        let r = session.ingest(std::iter::empty());
        assert!(r.all_clear());
    }
}
