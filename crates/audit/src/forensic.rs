//! Verdict contestation hooks and deterministic report serialization.
//!
//! A verdict the auditor emits is *evidence-backed*, not oracular: any
//! party may contest it before a resolver panel (`adlp-dispute`), and the
//! panel settles the contest by **re-deriving** the verdict from the
//! evidence — transferable proofs, and deterministic replays of recorded
//! traffic windows. This module supplies the two primitives that makes
//! possible:
//!
//! * [`ContestedVerdict`] — a compact, encodable description of *which*
//!   verdict is contested, with re-verification hooks ([`
//!   ContestedVerdict::supported_by`], [`ContestedVerdict::exonerated_by`])
//!   that test a fresh [`AuditReport`] for the verdict instead of trusting
//!   either party's account of it;
//! * [`canonical_report_bytes`] — a byte-deterministic serialization of an
//!   [`AuditReport`]: two audits of the same entry multiset produce the
//!   same bytes, so "replaying the recording twice yields byte-identical
//!   reports" is checkable with `==` and a verdict can never flip on
//!   replay nondeterminism.

use crate::auditor::AuditReport;
use crate::classify::{Anomaly, EntryClass, HiddenRecord};
use adlp_logger::encoding::{read_str, read_uvarint, write_str, write_uvarint};
use adlp_logger::{Direction, LogError};
use adlp_pubsub::{NodeId, Topic};

/// The audit verdict a dispute contests. Only verdicts that convict a
/// party are contestable — there is nothing to overturn about `Valid`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ContestedVerdict {
    /// "`component` hid its `direction`-side entry for (`topic`, `seq`)" —
    /// a Lemma 2 conviction. Contestable with a recorded traffic window:
    /// if a sound replay shows the entry deposited and valid, the original
    /// audit ran on an incomplete view.
    Hidden {
        /// The convicted component.
        component: NodeId,
        /// Which side it allegedly hid.
        direction: Direction,
        /// The topic.
        topic: Topic,
        /// The sequence number.
        seq: u64,
    },
    /// "Log `log` signed two different roots at tree size `size`" — a
    /// split-view conviction carried by a `SplitViewProof`. The proof is
    /// self-certifying, so the contest turns entirely on whether a
    /// verifying proof for this (log, size) exists among the evidence.
    SplitView {
        /// The convicted log's identity.
        log: NodeId,
        /// The tree size both signed heads claim.
        size: u64,
    },
    /// "Replica (`shard`, `replica`) attested two conflicting heads" — an
    /// equivocation conviction carried by an `EquivocationProof`, likewise
    /// self-certifying.
    Equivocation {
        /// The shard of the convicted replica.
        shard: u64,
        /// The replica index within the shard.
        replica: u64,
    },
}

impl ContestedVerdict {
    /// The party the verdict convicts (the natural claimant of a dispute
    /// contesting it). Replica convictions name a synthetic
    /// `shard<N>-replica<M>` party.
    pub fn convicted(&self) -> NodeId {
        match self {
            ContestedVerdict::Hidden { component, .. } => component.clone(),
            ContestedVerdict::SplitView { log, .. } => log.clone(),
            ContestedVerdict::Equivocation { shard, replica } => {
                NodeId::new(format!("shard{shard}-replica{replica}"))
            }
        }
    }

    /// Whether a *fresh* audit report still carries this verdict. Used by
    /// resolvers re-deriving the verdict from replayed traffic: the
    /// original accusation is never taken on faith.
    pub fn supported_by(&self, report: &AuditReport) -> bool {
        match self {
            ContestedVerdict::Hidden {
                component,
                direction,
                topic,
                seq,
            } => report.hidden.iter().any(|h| {
                &h.component == component
                    && h.direction == *direction
                    && &h.topic == topic
                    && h.seq == *seq
            }),
            // Proof-carried convictions are not derivable from a traffic
            // replay; their support is the proof itself (checked by the
            // resolver against the evidence set, not against a report).
            ContestedVerdict::SplitView { .. } | ContestedVerdict::Equivocation { .. } => false,
        }
    }

    /// Whether a fresh audit report affirmatively *clears* the convicted
    /// party of this verdict. Clearing demands positive proof — the
    /// accused's entry present and classified [`EntryClass::Valid`] on the
    /// contested link — never mere absence of the accusation (an evidence
    /// window that simply omits the link proves nothing).
    pub fn exonerated_by(&self, report: &AuditReport) -> bool {
        match self {
            ContestedVerdict::Hidden {
                component,
                direction,
                topic,
                seq,
            } => {
                if self.supported_by(report) {
                    return false;
                }
                report.links.iter().any(|l| {
                    &l.topic == topic
                        && l.seq == *seq
                        && match direction {
                            Direction::Out => {
                                &l.publisher == component
                                    && l.publisher_entry == Some(EntryClass::Valid)
                            }
                            Direction::In => {
                                &l.subscriber == component
                                    && l.subscriber_entry == Some(EntryClass::Valid)
                            }
                        }
                })
            }
            ContestedVerdict::SplitView { .. } | ContestedVerdict::Equivocation { .. } => false,
        }
    }

    /// Encodes the verdict description for wire transfer and ledger
    /// persistence.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(32);
        match self {
            ContestedVerdict::Hidden {
                component,
                direction,
                topic,
                seq,
            } => {
                out.push(1);
                write_str(&mut out, component.as_str());
                out.push(match direction {
                    Direction::Out => 0,
                    Direction::In => 1,
                });
                write_str(&mut out, topic.as_str());
                write_uvarint(&mut out, *seq);
            }
            ContestedVerdict::SplitView { log, size } => {
                out.push(2);
                write_str(&mut out, log.as_str());
                write_uvarint(&mut out, *size);
            }
            ContestedVerdict::Equivocation { shard, replica } => {
                out.push(3);
                write_uvarint(&mut out, *shard);
                write_uvarint(&mut out, *replica);
            }
        }
        out
    }

    /// Decodes a verdict description, consuming from `input`.
    ///
    /// # Errors
    ///
    /// Returns [`LogError::Malformed`] on truncated or unknown encodings.
    pub fn decode(input: &mut &[u8]) -> Result<Self, LogError> {
        let (&tag, rest) = input
            .split_first()
            .ok_or(LogError::Malformed("contested verdict (tag)"))?;
        *input = rest;
        match tag {
            1 => {
                let component = NodeId::new(read_str(input)?);
                let (&d, rest) = input
                    .split_first()
                    .ok_or(LogError::Malformed("contested verdict (direction)"))?;
                *input = rest;
                let direction = match d {
                    0 => Direction::Out,
                    1 => Direction::In,
                    _ => return Err(LogError::Malformed("contested verdict (direction)")),
                };
                let topic = Topic::new(read_str(input)?);
                let seq = read_uvarint(input)?;
                Ok(ContestedVerdict::Hidden {
                    component,
                    direction,
                    topic,
                    seq,
                })
            }
            2 => {
                let log = NodeId::new(read_str(input)?);
                let size = read_uvarint(input)?;
                Ok(ContestedVerdict::SplitView { log, size })
            }
            3 => {
                let shard = read_uvarint(input)?;
                let replica = read_uvarint(input)?;
                Ok(ContestedVerdict::Equivocation { shard, replica })
            }
            _ => Err(LogError::Malformed("contested verdict (tag)")),
        }
    }
}

/// Every contestable verdict an audit report carries, in deterministic
/// order — the hook a dispute ledger offers parties ("these are the
/// convictions you may contest").
pub fn contestable_verdicts(report: &AuditReport) -> Vec<ContestedVerdict> {
    let mut out: Vec<ContestedVerdict> = report
        .hidden
        .iter()
        .map(|h| ContestedVerdict::Hidden {
            component: h.component.clone(),
            direction: h.direction,
            topic: h.topic.clone(),
            seq: h.seq,
        })
        .collect();
    out.sort_by_key(|a| a.encode());
    out.dedup();
    out
}

fn direction_byte(d: Direction) -> u8 {
    match d {
        Direction::Out => 0,
        Direction::In => 1,
    }
}

fn write_entry_class(out: &mut Vec<u8>, class: &Option<EntryClass>) {
    match class {
        None => out.push(0),
        Some(EntryClass::Valid) => out.push(1),
        Some(EntryClass::Invalid(reason)) => {
            out.push(2);
            write_str(out, &reason.to_string());
        }
        Some(EntryClass::Unproven) => out.push(3),
        Some(EntryClass::Shed {
            first_seq,
            last_seq,
        }) => {
            out.push(4);
            write_uvarint(out, *first_seq);
            write_uvarint(out, *last_seq);
        }
    }
}

fn write_hidden(out: &mut Vec<u8>, h: &HiddenRecord) {
    write_str(out, h.component.as_str());
    out.push(direction_byte(h.direction));
    write_str(out, h.topic.as_str());
    write_uvarint(out, h.seq);
    write_str(out, h.proven_by.as_str());
}

fn write_anomaly(out: &mut Vec<u8>, a: &Anomaly) {
    // `Anomaly` is non_exhaustive: downstream crates cannot rely on this
    // match being total, and a future variant must extend the encoder
    // before it can appear in canonical bytes. Inside the defining crate
    // the fallback is (deliberately) unreachable today.
    #[allow(unreachable_patterns)]
    match a {
        Anomaly::ConflictingEvidence { topic, seq, parties } => {
            out.push(1);
            write_str(out, topic.as_str());
            write_uvarint(out, *seq);
            write_str(out, parties.0.as_str());
            write_str(out, parties.1.as_str());
        }
        Anomaly::ImpersonationSuspected { claimed, topic, seq } => {
            out.push(2);
            write_str(out, claimed.as_str());
            write_str(out, topic.as_str());
            write_uvarint(out, *seq);
        }
        Anomaly::SequenceGap {
            topic,
            subscriber,
            missing,
        } => {
            out.push(3);
            write_str(out, topic.as_str());
            write_str(out, subscriber.as_str());
            write_uvarint(out, missing.len() as u64);
            for m in missing {
                write_uvarint(out, *m);
            }
        }
        Anomaly::InconsistentAck {
            topic,
            seq,
            publisher,
        } => {
            out.push(4);
            write_str(out, topic.as_str());
            write_uvarint(out, *seq);
            write_str(out, publisher.as_str());
        }
        _ => out.push(255),
    }
}

/// Serializes an [`AuditReport`] into canonical bytes: every section is
/// emitted in a sorted order independent of the order entries were fed to
/// the auditor, so equal reports — and only equal reports — serialize
/// identically. This is the equality the replay-determinism guarantee is
/// stated over.
pub fn canonical_report_bytes(report: &AuditReport) -> Vec<u8> {
    let mut out = Vec::with_capacity(256);
    out.extend_from_slice(b"ADLPAUD1");

    // Links, sorted by (topic, seq, subscriber, publisher) encoding.
    let mut links: Vec<Vec<u8>> = report
        .links
        .iter()
        .map(|l| {
            let mut b = Vec::with_capacity(64);
            write_str(&mut b, l.topic.as_str());
            write_uvarint(&mut b, l.seq);
            write_str(&mut b, l.subscriber.as_str());
            write_str(&mut b, l.publisher.as_str());
            write_entry_class(&mut b, &l.publisher_entry);
            write_entry_class(&mut b, &l.subscriber_entry);
            write_uvarint(&mut b, l.hidden.len() as u64);
            let mut hidden: Vec<Vec<u8>> = l
                .hidden
                .iter()
                .map(|h| {
                    let mut hb = Vec::new();
                    write_hidden(&mut hb, h);
                    hb
                })
                .collect();
            hidden.sort();
            for h in hidden {
                b.extend_from_slice(&h);
            }
            b
        })
        .collect();
    links.sort();
    write_uvarint(&mut out, links.len() as u64);
    for l in links {
        out.extend_from_slice(&l);
    }

    // Hidden records, sorted.
    let mut hidden: Vec<Vec<u8>> = report
        .hidden
        .iter()
        .map(|h| {
            let mut b = Vec::new();
            write_hidden(&mut b, h);
            b
        })
        .collect();
    hidden.sort();
    write_uvarint(&mut out, hidden.len() as u64);
    for h in hidden {
        out.extend_from_slice(&h);
    }

    // Verdicts: BTreeMap iteration is already sorted by component; each
    // component's violations are sorted by their encoding.
    write_uvarint(&mut out, report.verdicts.len() as u64);
    for (component, verdict) in &report.verdicts {
        write_str(&mut out, component.as_str());
        write_uvarint(&mut out, verdict.valid_entries as u64);
        let mut violations: Vec<Vec<u8>> = verdict
            .violations
            .iter()
            .map(|v| {
                let mut b = Vec::new();
                write_str(&mut b, v.topic.as_str());
                write_uvarint(&mut b, v.seq);
                write_str(&mut b, &format!("{:?}", v.kind));
                b
            })
            .collect();
        violations.sort();
        write_uvarint(&mut out, violations.len() as u64);
        for v in violations {
            out.extend_from_slice(&v);
        }
    }

    // Anomalies, sorted by encoding.
    let mut anomalies: Vec<Vec<u8>> = report
        .anomalies
        .iter()
        .map(|a| {
            let mut b = Vec::new();
            write_anomaly(&mut b, a);
            b
        })
        .collect();
    anomalies.sort();
    write_uvarint(&mut out, anomalies.len() as u64);
    for a in anomalies {
        out.extend_from_slice(&a);
    }

    // Rejected entries: the full encoded entry plus the reason, sorted.
    let mut rejected: Vec<Vec<u8>> = report
        .rejected_entries
        .iter()
        .map(|(entry, reason)| {
            let mut b = Vec::new();
            let encoded = entry.encode();
            write_uvarint(&mut b, encoded.len() as u64);
            b.extend_from_slice(&encoded);
            write_str(&mut b, &reason.to_string());
            b
        })
        .collect();
    rejected.sort();
    write_uvarint(&mut out, rejected.len() as u64);
    for r in rejected {
        out.extend_from_slice(&r);
    }

    // Verified gap receipts, sorted by payload encoding.
    let mut shed: Vec<Vec<u8>> = report.shed.iter().map(|r| r.to_payload()).collect();
    shed.sort();
    write_uvarint(&mut out, shed.len() as u64);
    for s in shed {
        write_uvarint(&mut out, s.len() as u64);
        out.extend_from_slice(&s);
    }

    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::auditor::Auditor;
    use adlp_logger::{KeyRegistry, LogEntry};

    fn naive(component: &str, topic: &str, dir: Direction, seq: u64) -> LogEntry {
        LogEntry::naive(
            NodeId::new(component),
            Topic::new(topic),
            dir,
            seq,
            seq,
            vec![seq as u8; 8],
        )
    }

    #[test]
    fn contested_verdict_roundtrips() {
        let verdicts = [
            ContestedVerdict::Hidden {
                component: NodeId::new("camera"),
                direction: Direction::Out,
                topic: Topic::new("image"),
                seq: 42,
            },
            ContestedVerdict::SplitView {
                log: NodeId::new("logger-a"),
                size: 7,
            },
            ContestedVerdict::Equivocation {
                shard: 2,
                replica: 1,
            },
        ];
        for v in verdicts {
            let bytes = v.encode();
            let mut input = bytes.as_slice();
            assert_eq!(ContestedVerdict::decode(&mut input).unwrap(), v);
            assert!(input.is_empty());
        }
    }

    #[test]
    fn truncated_verdict_encoding_is_malformed() {
        let bytes = ContestedVerdict::SplitView {
            log: NodeId::new("logger-a"),
            size: 7,
        }
        .encode();
        for cut in 0..bytes.len() {
            let mut input = &bytes[..cut];
            assert!(ContestedVerdict::decode(&mut input).is_err());
        }
    }

    #[test]
    fn canonical_bytes_are_input_order_independent() {
        let auditor = Auditor::new(KeyRegistry::new());
        let mut entries = vec![
            naive("cam", "image", Direction::Out, 1),
            naive("det", "image", Direction::In, 1),
            naive("cam", "image", Direction::Out, 2),
            naive("det", "image", Direction::In, 2),
        ];
        let forward = canonical_report_bytes(&auditor.audit(&entries));
        entries.reverse();
        let backward = canonical_report_bytes(&auditor.audit(&entries));
        assert_eq!(forward, backward);
    }

    #[test]
    fn canonical_bytes_distinguish_different_reports() {
        let auditor = Auditor::new(KeyRegistry::new());
        let a = canonical_report_bytes(&auditor.audit(&[naive("cam", "image", Direction::Out, 1)]));
        let b = canonical_report_bytes(&auditor.audit(&[naive("cam", "image", Direction::Out, 2)]));
        assert_ne!(a, b);
    }

    #[test]
    fn exoneration_requires_positive_proof() {
        let auditor = Auditor::new(KeyRegistry::new());
        let empty = auditor.audit(&[]);
        let claim = ContestedVerdict::Hidden {
            component: NodeId::new("cam"),
            direction: Direction::Out,
            topic: Topic::new("image"),
            seq: 1,
        };
        // An empty replay neither supports nor exonerates: absence of the
        // accusation is not proof of innocence.
        assert!(!claim.supported_by(&empty));
        assert!(!claim.exonerated_by(&empty));
    }
}
