//! Provenance reconstruction: the proven data-flow graph and backward
//! tracing.
//!
//! "A well-constructed log of data flow among software components can help
//! detect the origin of a faulty operation by keeping track of dependencies
//! between data production (output) and consumption (input)" (§I). This
//! module rebuilds that graph from audited log entries: each proven
//! transmission is an edge; tracing a faulty output walks backwards through
//! the consuming component's most recent inputs.

use adlp_logger::{Direction, LogEntry};
use adlp_pubsub::{NodeId, Topic};
use std::collections::{BTreeMap, HashMap};

/// One proven transmission.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlowEdge {
    /// The data type.
    pub topic: Topic,
    /// The sequence number.
    pub seq: u64,
    /// Producer.
    pub publisher: NodeId,
    /// Consumer.
    pub subscriber: NodeId,
    /// The publisher's claimed timestamp (`None` if only the subscriber
    /// reported).
    pub t_out_ns: Option<u64>,
    /// The subscriber's claimed timestamp (`None` if only the publisher
    /// reported).
    pub t_in_ns: Option<u64>,
}

/// A node in a backward provenance trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProvenanceNode {
    /// The component that produced the datum.
    pub component: NodeId,
    /// The produced datum.
    pub topic: Topic,
    /// Its sequence number.
    pub seq: u64,
    /// Production timestamp (best available claim).
    pub timestamp_ns: u64,
    /// The inputs this production most plausibly consumed (the latest
    /// receipt of each subscribed type before the production instant).
    pub inputs: Vec<ProvenanceNode>,
}

impl ProvenanceNode {
    /// Flattens the trace into (component, topic, seq) triples,
    /// depth-first.
    pub fn flatten(&self) -> Vec<(NodeId, Topic, u64)> {
        let mut out = vec![(self.component.clone(), self.topic.clone(), self.seq)];
        for i in &self.inputs {
            out.extend(i.flatten());
        }
        out
    }

    /// Depth of the trace (1 for a leaf).
    pub fn depth(&self) -> usize {
        1 + self.inputs.iter().map(ProvenanceNode::depth).max().unwrap_or(0)
    }
}

/// One hop of a *forward* (impact) trace: a component that consumed the
/// datum, and what it went on to produce.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ImpactNode {
    /// The consuming component.
    pub subscriber: NodeId,
    /// Its claimed receipt time.
    pub t_in_ns: u64,
    /// Productions plausibly derived from this input: for each output
    /// topic, the first production after the receipt, with its own
    /// downstream impact.
    pub outputs: Vec<(Topic, u64, Vec<ImpactNode>)>,
}

impl ImpactNode {
    /// All (topic, seq) data items in this impact subtree.
    pub fn affected(&self) -> Vec<(Topic, u64)> {
        let mut out = Vec::new();
        for (t, s, downstream) in &self.outputs {
            out.push((t.clone(), *s));
            for d in downstream {
                out.extend(d.affected());
            }
        }
        out
    }
}

/// The reconstructed data-flow graph.
#[derive(Debug, Clone, Default)]
pub struct ProvenanceGraph {
    edges: Vec<FlowEdge>,
    /// (topic, seq) → publication timestamp + publisher.
    productions: BTreeMap<(Topic, u64), (NodeId, u64)>,
    /// component → receipts (topic, seq, t_in).
    receipts: HashMap<NodeId, Vec<(Topic, u64, u64)>>,
    /// component → productions (topic, seq, t_out).
    produced_by: HashMap<NodeId, Vec<(Topic, u64, u64)>>,
}

impl ProvenanceGraph {
    /// Builds the graph from (preferably audited-valid) entries.
    pub fn from_entries<'a>(entries: impl IntoIterator<Item = &'a LogEntry>) -> Self {
        let mut g = ProvenanceGraph::default();
        let mut outs: BTreeMap<(Topic, u64, NodeId), (NodeId, u64)> = BTreeMap::new();
        let mut ins: BTreeMap<(Topic, u64, NodeId), (u64, Option<NodeId>)> = BTreeMap::new();

        for e in entries {
            match e.direction {
                Direction::Out => {
                    g.productions
                        .entry((e.topic.clone(), e.seq))
                        .or_insert((e.component.clone(), e.timestamp_ns));
                    let produced = g.produced_by.entry(e.component.clone()).or_default();
                    if !produced.iter().any(|(t, s, _)| t == &e.topic && *s == e.seq) {
                        produced.push((e.topic.clone(), e.seq, e.timestamp_ns));
                    }
                    if let Some(peer) = &e.peer {
                        outs.insert(
                            (e.topic.clone(), e.seq, peer.clone()),
                            (e.component.clone(), e.timestamp_ns),
                        );
                    }
                    for ack in &e.acks {
                        outs.insert(
                            (e.topic.clone(), e.seq, ack.subscriber.clone()),
                            (e.component.clone(), e.timestamp_ns),
                        );
                    }
                }
                Direction::In => {
                    ins.insert(
                        (e.topic.clone(), e.seq, e.component.clone()),
                        (e.timestamp_ns, e.peer.clone()),
                    );
                    g.receipts.entry(e.component.clone()).or_default().push((
                        e.topic.clone(),
                        e.seq,
                        e.timestamp_ns,
                    ));
                }
            }
        }

        // Merge the two sides into edges.
        let mut keys: Vec<(Topic, u64, NodeId)> = outs.keys().cloned().collect();
        for k in ins.keys() {
            if !outs.contains_key(k) {
                keys.push(k.clone());
            }
        }
        for key in keys {
            let (topic, seq, subscriber) = key.clone();
            let out = outs.get(&key);
            let in_side = ins.get(&key);
            let publisher = out
                .map(|(p, _)| p.clone())
                .or_else(|| g.productions.get(&(topic.clone(), seq)).map(|(p, _)| p.clone()))
                .or_else(|| in_side.and_then(|(_, claimed)| claimed.clone()))
                .unwrap_or_else(|| NodeId::new("?"));
            g.edges.push(FlowEdge {
                topic,
                seq,
                publisher,
                subscriber,
                t_out_ns: out.map(|&(_, t)| t),
                t_in_ns: in_side.map(|&(t, _)| t),
            });
        }
        g
    }

    /// All proven edges.
    pub fn edges(&self) -> &[FlowEdge] {
        &self.edges
    }

    /// Traces the *impact* of `(topic, seq)` forwards up to `max_depth`
    /// hops: which components consumed it, and the first thing each
    /// produced on every output topic afterwards (the plausible derived
    /// data). The incident-analysis question "which actuations did this
    /// corrupt frame influence?".
    pub fn trace_forward(&self, topic: &Topic, seq: u64, max_depth: usize) -> Vec<ImpactNode> {
        let consumers: Vec<(NodeId, u64)> = self
            .edges
            .iter()
            .filter(|e| &e.topic == topic && e.seq == seq)
            .filter_map(|e| e.t_in_ns.map(|t| (e.subscriber.clone(), t)))
            .collect();
        consumers
            .into_iter()
            .map(|(subscriber, t_in)| self.impact_of(subscriber, t_in, max_depth))
            .collect()
    }

    fn impact_of(&self, subscriber: NodeId, t_in: u64, depth_left: usize) -> ImpactNode {
        let mut outputs = Vec::new();
        if depth_left > 0 {
            if let Some(prods) = self.produced_by.get(&subscriber) {
                // First production per output topic at or after the receipt.
                let mut first: BTreeMap<Topic, (u64, u64)> = BTreeMap::new();
                for (t, s, t_out) in prods {
                    if *t_out >= t_in {
                        let slot = first.entry(t.clone()).or_insert((*s, *t_out));
                        if *t_out < slot.1 {
                            *slot = (*s, *t_out);
                        }
                    }
                }
                for (t, (s, _)) in first {
                    let downstream = self.trace_forward(&t, s, depth_left - 1);
                    outputs.push((t, s, downstream));
                }
            }
        }
        ImpactNode {
            subscriber,
            t_in_ns: t_in,
            outputs,
        }
    }

    /// Traces the provenance of `(topic, seq)` backwards up to `max_depth`
    /// hops. Returns `None` if no production record exists.
    pub fn trace(&self, topic: &Topic, seq: u64, max_depth: usize) -> Option<ProvenanceNode> {
        let (producer, t_prod) = self.productions.get(&(topic.clone(), seq))?.clone();
        Some(self.trace_inner(producer, topic.clone(), seq, t_prod, max_depth))
    }

    fn trace_inner(
        &self,
        component: NodeId,
        topic: Topic,
        seq: u64,
        t_prod: u64,
        depth_left: usize,
    ) -> ProvenanceNode {
        let mut inputs = Vec::new();
        if depth_left > 0 {
            // Latest receipt per input topic strictly before production.
            let mut latest: BTreeMap<Topic, (u64, u64)> = BTreeMap::new();
            if let Some(rs) = self.receipts.get(&component) {
                for (t, s, t_in) in rs {
                    if *t_in <= t_prod {
                        let slot = latest.entry(t.clone()).or_insert((*s, *t_in));
                        if *t_in >= slot.1 {
                            *slot = (*s, *t_in);
                        }
                    }
                }
            }
            for (in_topic, (in_seq, _)) in latest {
                if let Some((producer, t)) = self.productions.get(&(in_topic.clone(), in_seq)) {
                    inputs.push(self.trace_inner(
                        producer.clone(),
                        in_topic,
                        in_seq,
                        *t,
                        depth_left - 1,
                    ));
                } else {
                    // Input with no production record (hidden publisher):
                    // still surface it as a leaf.
                    inputs.push(ProvenanceNode {
                        component: NodeId::new("?"),
                        topic: in_topic,
                        seq: in_seq,
                        timestamp_ns: 0,
                        inputs: Vec::new(),
                    });
                }
            }
        }
        ProvenanceNode {
            component,
            topic,
            seq,
            timestamp_ns: t_prod,
            inputs,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(topic: &str, seq: u64, who: &str, dir: Direction, t: u64, peer: Option<&str>) -> LogEntry {
        let mut e = LogEntry::naive(
            NodeId::new(who),
            Topic::new(topic),
            dir,
            seq,
            t,
            vec![0u8; 4],
        );
        e.peer = peer.map(NodeId::new);
        e
    }

    /// camera →(image#3)→ detector →(steer#9)→ actuator
    fn pipeline_entries() -> Vec<LogEntry> {
        vec![
            entry("image", 3, "camera", Direction::Out, 100, Some("detector")),
            entry("image", 3, "detector", Direction::In, 110, Some("camera")),
            entry("steer", 9, "detector", Direction::Out, 120, Some("actuator")),
            entry("steer", 9, "actuator", Direction::In, 130, Some("detector")),
        ]
    }

    #[test]
    fn edges_are_reconstructed() {
        let entries = pipeline_entries();
        let g = ProvenanceGraph::from_entries(&entries);
        assert_eq!(g.edges().len(), 2);
        let image = g
            .edges()
            .iter()
            .find(|e| e.topic == Topic::new("image"))
            .unwrap();
        assert_eq!(image.publisher, NodeId::new("camera"));
        assert_eq!(image.subscriber, NodeId::new("detector"));
        assert_eq!(image.t_out_ns, Some(100));
        assert_eq!(image.t_in_ns, Some(110));
    }

    #[test]
    fn backward_trace_finds_the_camera_frame() {
        let entries = pipeline_entries();
        let g = ProvenanceGraph::from_entries(&entries);
        let trace = g.trace(&Topic::new("steer"), 9, 5).unwrap();
        assert_eq!(trace.component, NodeId::new("detector"));
        assert_eq!(trace.depth(), 2);
        let flat = trace.flatten();
        assert!(flat.contains(&(NodeId::new("camera"), Topic::new("image"), 3)));
    }

    #[test]
    fn trace_uses_latest_input_before_production() {
        let mut entries = pipeline_entries();
        // An older image receipt that must NOT be selected.
        entries.push(entry("image", 2, "detector", Direction::In, 90, Some("camera")));
        entries.push(entry("image", 2, "camera", Direction::Out, 85, Some("detector")));
        let g = ProvenanceGraph::from_entries(&entries);
        let trace = g.trace(&Topic::new("steer"), 9, 5).unwrap();
        let flat = trace.flatten();
        assert!(flat.contains(&(NodeId::new("camera"), Topic::new("image"), 3)));
        assert!(!flat.contains(&(NodeId::new("camera"), Topic::new("image"), 2)));
    }

    #[test]
    fn depth_limit_truncates() {
        let entries = pipeline_entries();
        let g = ProvenanceGraph::from_entries(&entries);
        let trace = g.trace(&Topic::new("steer"), 9, 0).unwrap();
        assert!(trace.inputs.is_empty());
    }

    #[test]
    fn unknown_datum_yields_none() {
        let g = ProvenanceGraph::from_entries(&pipeline_entries());
        assert!(g.trace(&Topic::new("steer"), 999, 3).is_none());
    }

    #[test]
    fn forward_trace_finds_downstream_actuation() {
        let entries = pipeline_entries();
        let g = ProvenanceGraph::from_entries(&entries);
        let impact = g.trace_forward(&Topic::new("image"), 3, 5);
        assert_eq!(impact.len(), 1);
        assert_eq!(impact[0].subscriber, NodeId::new("detector"));
        let affected = impact[0].affected();
        assert!(affected.contains(&(Topic::new("steer"), 9)));
    }

    #[test]
    fn forward_trace_ignores_productions_before_receipt() {
        let mut entries = pipeline_entries();
        // A steering command produced BEFORE the image arrived cannot have
        // been derived from it.
        entries.push(entry("steer", 8, "detector", Direction::Out, 50, Some("actuator")));
        let g = ProvenanceGraph::from_entries(&entries);
        let impact = g.trace_forward(&Topic::new("image"), 3, 5);
        let affected = impact[0].affected();
        assert!(affected.contains(&(Topic::new("steer"), 9)));
        assert!(!affected.contains(&(Topic::new("steer"), 8)));
    }

    #[test]
    fn forward_trace_depth_limit() {
        let entries = pipeline_entries();
        let g = ProvenanceGraph::from_entries(&entries);
        let impact = g.trace_forward(&Topic::new("image"), 3, 0);
        assert_eq!(impact.len(), 1);
        assert!(impact[0].outputs.is_empty());
    }

    #[test]
    fn subscriber_only_edge_surfaces_with_unknown_timestamps() {
        // Publisher hid: only the receipt exists.
        let entries = vec![entry("image", 1, "detector", Direction::In, 50, Some("camera"))];
        let g = ProvenanceGraph::from_entries(&entries);
        assert_eq!(g.edges().len(), 1);
        assert_eq!(g.edges()[0].t_out_ns, None);
        assert_eq!(g.edges()[0].publisher, NodeId::new("camera"));
    }
}
