//! Post-recovery verification: is a recovered log an honest prefix of
//! what was acknowledged before the crash?
//!
//! The durability layer (`adlp_logger::DurableLog`) promises that every
//! entry it acknowledged as durable survives a crash, and that a torn tail
//! is truncated and *reported*, never silently absorbed. This module gives
//! the auditor the other half of that contract: a [`RetainedCommitment`] —
//! the record hashes and Merkle root an operator retains out-of-band while
//! the system runs — and [`verify_recovered_store`], which classifies what
//! a restarted logger actually holds against it:
//!
//! * [`RecoveryVerdict::Intact`] — the committed records are all present,
//!   hash-for-hash (possibly with entries appended after the commitment);
//! * [`RecoveryVerdict::TruncatedTail`] — the recovered log is a *proper
//!   prefix* of the commitment: crash loss at the tail, quantified, exactly
//!   the degradation the recovery counters report;
//! * [`RecoveryVerdict::RootMismatch`] — the recovered content conflicts
//!   with the commitment at some index. Crash recovery cannot produce a
//!   conflict (it only ever loses a suffix), so this is tamper evidence,
//!   not crash debris — and it names the first rewritten record.
//!
//! A bare `(length, root)` pair could not distinguish honest tail loss
//! from a rewritten-then-rechained log, so the commitment retains the leaf
//! hashes themselves (32 bytes per record — the same cost as the hash
//! chain) and anchors them under one root for cross-checking against epoch
//! seals.
//!
//! The hash chain inside the recovered store is verified independently
//! ([`RecoveryCheck::chain_ok`]): a torn tail never breaks the chain, so a
//! broken chain is always evidence, whatever the prefix verdict says.

use adlp_crypto::sha256::Digest;
use adlp_logger::merkle::MerkleTree;
use adlp_logger::LogStore;

/// A commitment over a log prefix — its record hashes and their Merkle
/// root — retained out-of-band (e.g. alongside an epoch seal) while the
/// logger runs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RetainedCommitment {
    /// Hash of every committed record, in log order.
    pub leaves: Vec<Digest>,
    /// Merkle root over `leaves` (`None` iff the commitment is empty);
    /// the compact value to anchor or publish.
    pub root: Option<Digest>,
}

impl RetainedCommitment {
    /// Commits to the store's current contents.
    pub fn of_store(store: &LogStore) -> Self {
        let leaves = store.record_hashes();
        let root = MerkleTree::build(&leaves).root();
        RetainedCommitment { leaves, root }
    }

    /// Records the commitment covers.
    pub fn len(&self) -> usize {
        self.leaves.len()
    }

    /// Whether the commitment covers no records.
    pub fn is_empty(&self) -> bool {
        self.leaves.is_empty()
    }
}

/// How a recovered log relates to a retained commitment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RecoveryVerdict {
    /// Every committed record is present; `extra` records follow them.
    Intact {
        /// Records appended after the commitment was taken.
        extra: usize,
    },
    /// The recovered log is a proper prefix of the commitment — tail loss
    /// from the crash, `missing` records short. Availability damage only;
    /// cross-check `missing` against the recovery's truncation counters.
    TruncatedTail {
        /// Committed records absent from the recovered log.
        missing: usize,
    },
    /// The recovered content conflicts with the commitment. Crash recovery
    /// only ever loses a suffix, so a conflict is tamper evidence.
    RootMismatch {
        /// First index whose record hash disagrees with the commitment.
        first_divergent_index: usize,
    },
}

/// The full post-recovery check: prefix verdict plus chain integrity.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecoveryCheck {
    /// Relation of the recovered log to the retained commitment.
    pub verdict: RecoveryVerdict,
    /// Whether the recovered store's internal hash chain verifies. Torn
    /// tails never break the chain, so `false` is independent evidence.
    pub chain_ok: bool,
}

impl RecoveryCheck {
    /// Whether recovery is fully explained: committed records intact and
    /// the chain unbroken.
    pub fn clean(&self) -> bool {
        self.chain_ok && matches!(self.verdict, RecoveryVerdict::Intact { .. })
    }
}

/// Classifies a recovered store against a commitment retained before the
/// crash. Never panics, whatever the store holds.
pub fn verify_recovered_store(store: &LogStore, retained: &RetainedCommitment) -> RecoveryCheck {
    let leaves = store.record_hashes();
    let chain_ok = store.verify_chain().is_ok();
    let common = leaves
        .iter()
        .zip(retained.leaves.iter())
        .take_while(|(a, b)| a == b)
        .count();
    let verdict = if common < leaves.len().min(retained.len()) {
        RecoveryVerdict::RootMismatch {
            first_divergent_index: common,
        }
    } else if leaves.len() < retained.len() {
        RecoveryVerdict::TruncatedTail {
            missing: retained.len() - leaves.len(),
        }
    } else {
        RecoveryVerdict::Intact {
            extra: leaves.len() - retained.len(),
        }
    };
    RecoveryCheck { verdict, chain_ok }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adlp_logger::{Direction, LogEntry};
    use adlp_pubsub::{NodeId, Topic};

    fn entry(seq: u64) -> LogEntry {
        LogEntry::naive(
            NodeId::new("cam"),
            Topic::new("image"),
            Direction::Out,
            seq,
            seq,
            vec![seq as u8; 24],
        )
    }

    fn store_with(n: u64) -> LogStore {
        let store = LogStore::new();
        for i in 0..n {
            store.append(&entry(i));
        }
        store
    }

    #[test]
    fn intact_store_verifies() {
        let store = store_with(6);
        let retained = RetainedCommitment::of_store(&store);
        assert_eq!(retained.len(), 6);
        assert!(retained.root.is_some());
        let check = verify_recovered_store(&store, &retained);
        assert!(check.clean());
        assert_eq!(check.verdict, RecoveryVerdict::Intact { extra: 0 });
    }

    #[test]
    fn appended_entries_after_commitment_are_extra() {
        let store = store_with(4);
        let retained = RetainedCommitment::of_store(&store);
        store.append(&entry(4));
        store.append(&entry(5));
        let check = verify_recovered_store(&store, &retained);
        assert!(check.clean());
        assert_eq!(check.verdict, RecoveryVerdict::Intact { extra: 2 });
    }

    #[test]
    fn tail_loss_is_truncation_not_mismatch() {
        let full = store_with(8);
        let retained = RetainedCommitment::of_store(&full);
        // A crash recovered only the first 5 records.
        let recovered = LogStore::new();
        for rec in full.encoded_records().iter().take(5) {
            recovered.append_encoded(rec.clone());
        }
        let check = verify_recovered_store(&recovered, &retained);
        assert!(check.chain_ok);
        assert_eq!(check.verdict, RecoveryVerdict::TruncatedTail { missing: 3 });
        assert!(!check.clean());
    }

    #[test]
    fn rewritten_record_is_root_mismatch() {
        let store = store_with(6);
        let retained = RetainedCommitment::of_store(&store);
        store.tamper_with_record(2, entry(99).encode()).unwrap();
        let check = verify_recovered_store(&store, &retained);
        assert_eq!(
            check.verdict,
            RecoveryVerdict::RootMismatch {
                first_divergent_index: 2
            }
        );
        assert!(!check.chain_ok, "in-place rewrite also breaks the chain");
        assert!(!check.clean());
    }

    #[test]
    fn rewritten_then_truncated_log_is_mismatch_not_truncation() {
        // An attacker rewrites record 1 and rebuilds a consistent chain of
        // length 3. A bare (len, root) check would see "some shorter log"
        // and might call it truncation; leaf-level comparison names the
        // rewrite.
        let full = store_with(8);
        let retained = RetainedCommitment::of_store(&full);
        let forged = LogStore::new();
        let records = full.encoded_records();
        forged.append_encoded(records[0].clone());
        forged.append(&entry(77)); // re-chained rewrite of record 1
        forged.append_encoded(records[2].clone());
        let check = verify_recovered_store(&forged, &retained);
        assert!(matches!(
            check.verdict,
            RecoveryVerdict::RootMismatch {
                first_divergent_index: 1
            }
        ));
    }

    #[test]
    fn empty_recovery_of_empty_commitment_is_intact() {
        let store = LogStore::new();
        let retained = RetainedCommitment::of_store(&store);
        assert!(retained.is_empty());
        let check = verify_recovered_store(&store, &retained);
        assert!(check.clean());
    }

    #[test]
    fn empty_recovery_of_nonempty_commitment_is_full_truncation() {
        let full = store_with(3);
        let retained = RetainedCommitment::of_store(&full);
        let empty = LogStore::new();
        let check = verify_recovered_store(&empty, &retained);
        assert_eq!(check.verdict, RecoveryVerdict::TruncatedTail { missing: 3 });
    }
}
