//! Collusion groups (paper Definition 1).
//!
//! A collusion group is the transitive closure of pairwise collusion
//! edges; maximal groups partition the components. The auditor cannot
//! *observe* collusion directly (a colluding pair is unobservable), but it
//! can derive **candidate** edges from unresolvable conflicts and sequence
//! gaps, and scenario code can state ground-truth edges to verify the
//! partition logic itself.

use crate::classify::Anomaly;
use adlp_pubsub::NodeId;
use std::collections::{BTreeMap, BTreeSet};

/// A union-find over components, yielding maximal collusion groups.
#[derive(Debug, Clone, Default)]
pub struct CollusionGroups {
    parent: BTreeMap<NodeId, NodeId>,
}

impl CollusionGroups {
    /// Creates an empty structure (every component a singleton).
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds from explicit pairwise collusion edges.
    pub fn from_edges(edges: impl IntoIterator<Item = (NodeId, NodeId)>) -> Self {
        let mut g = Self::new();
        for (a, b) in edges {
            g.add_edge(a, b);
        }
        g
    }

    /// Derives *candidate* edges from audit anomalies: conflicting evidence
    /// implicates the pair; (other anomaly kinds carry no pair information).
    pub fn candidates_from_anomalies<'a>(
        anomalies: impl IntoIterator<Item = &'a Anomaly>,
    ) -> Self {
        let mut g = Self::new();
        for a in anomalies {
            if let Anomaly::ConflictingEvidence { parties, .. } = a {
                g.add_edge(parties.0.clone(), parties.1.clone());
            }
        }
        g
    }

    /// Registers a component (as a singleton if unseen).
    pub fn add_component(&mut self, c: NodeId) {
        self.parent.entry(c.clone()).or_insert(c);
    }

    /// Records that `a` and `b` collude.
    pub fn add_edge(&mut self, a: NodeId, b: NodeId) {
        self.add_component(a.clone());
        self.add_component(b.clone());
        let ra = self.find(&a);
        let rb = self.find(&b);
        if ra != rb {
            self.parent.insert(rb, ra);
        }
    }

    fn find(&mut self, c: &NodeId) -> NodeId {
        let p = self.parent.get(c).cloned().unwrap_or_else(|| c.clone());
        if &p == c {
            return p;
        }
        let root = self.find(&p);
        self.parent.insert(c.clone(), root.clone());
        root
    }

    /// Whether `a` and `b` are in the same maximal group.
    pub fn same_group(&mut self, a: &NodeId, b: &NodeId) -> bool {
        self.add_component(a.clone());
        self.add_component(b.clone());
        self.find(a) == self.find(b)
    }

    /// The maximal collusion groups (sorted members, sorted groups).
    pub fn maximal_groups(&mut self) -> Vec<Vec<NodeId>> {
        let members: Vec<NodeId> = self.parent.keys().cloned().collect();
        let mut groups: BTreeMap<NodeId, BTreeSet<NodeId>> = BTreeMap::new();
        for m in members {
            let root = self.find(&m);
            groups.entry(root).or_default().insert(m);
        }
        groups
            .into_values()
            .map(|s| s.into_iter().collect())
            .collect()
    }

    /// A system is collusion-free iff every maximal group is a singleton.
    pub fn is_collusion_free(&mut self) -> bool {
        self.maximal_groups().iter().all(|g| g.len() == 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adlp_pubsub::Topic;

    fn n(s: &str) -> NodeId {
        NodeId::new(s)
    }

    #[test]
    fn singletons_are_collusion_free() {
        let mut g = CollusionGroups::new();
        g.add_component(n("a"));
        g.add_component(n("b"));
        assert!(g.is_collusion_free());
        assert_eq!(g.maximal_groups(), vec![vec![n("a")], vec![n("b")]]);
    }

    #[test]
    fn transitive_closure_forms_maximal_group() {
        // The paper's Figure 2: {B, C} collude, A and D are singletons.
        let mut g = CollusionGroups::from_edges([(n("b"), n("c"))]);
        g.add_component(n("a"));
        g.add_component(n("d"));
        assert!(!g.is_collusion_free());
        assert!(g.same_group(&n("b"), &n("c")));
        assert!(!g.same_group(&n("a"), &n("b")));
        let groups = g.maximal_groups();
        assert_eq!(groups.len(), 3);
        assert!(groups.contains(&vec![n("b"), n("c")]));
    }

    #[test]
    fn chains_merge() {
        let mut g = CollusionGroups::from_edges([(n("a"), n("b")), (n("b"), n("c")), (n("d"), n("e"))]);
        assert!(g.same_group(&n("a"), &n("c")));
        assert!(!g.same_group(&n("a"), &n("d")));
        assert_eq!(g.maximal_groups().len(), 2);
    }

    #[test]
    fn candidates_from_conflicting_evidence() {
        let anomalies = vec![
            Anomaly::ConflictingEvidence {
                topic: Topic::new("t"),
                seq: 1,
                parties: (n("p"), n("s")),
            },
            Anomaly::SequenceGap {
                topic: Topic::new("t"),
                subscriber: n("x"),
                missing: vec![2],
            },
        ];
        let mut g = CollusionGroups::candidates_from_anomalies(&anomalies);
        assert!(g.same_group(&n("p"), &n("s")));
        assert!(!g.parent.contains_key(&n("x")), "gaps carry no pair info");
    }
}
